//! Learning under injected noise: the headline guarantee of the
//! noise-robustness subsystem.
//!
//! Learning through a fault-injecting [`NoisySimBackend`] at a 5% per-access
//! flip rate with the engine's majority vote enabled must recover the
//! **byte-identical** automaton (text rendering and state count) of the
//! noise-free run — the simulated analogue of the paper's §5 claim that
//! repetition and majority voting make noisy hardware measurements usable
//! for exact learning.
//!
//! The suite also pins the *negative*: with voting disabled, the same fault
//! rate corrupts or aborts the run — proving the voting layer (not luck) is
//! what the positive test exercises.

use automata::render_mealy;
use cachequery::{NoiseSpec, VoteConfig};
use polca::{learn_noisy_policy, learn_simulated_policy, LearnSetup};
use policies::PolicyKind;

/// 5% per-access classification flips, the rate the subsystem targets.
const FLIP_RATE: NoiseSpec = NoiseSpec {
    flip_permille: 50,
    drop_permille: 0,
    evict_permille: 0,
    seed: 2024,
};

/// Membership-query determinism needs a fixed worker count — same as the
/// remote byte-identity suite.  (The voted answers themselves are
/// worker-count-independent: each query's fault stream depends only on its
/// own execution index.)
fn setup() -> LearnSetup {
    LearnSetup {
        workers: 1,
        ..LearnSetup::default()
    }
}

fn assert_noisy_learning_matches_clean(kind: PolicyKind, assoc: usize, expected_states: usize) {
    let clean = learn_simulated_policy(kind, assoc, &setup()).expect("noise-free learning");
    let noisy = learn_noisy_policy(kind, assoc, FLIP_RATE, VoteConfig::default(), &setup())
        .unwrap_or_else(|e| panic!("{kind}/{assoc} failed to learn under 5% flips: {e}"));

    assert_eq!(
        noisy.machine.num_states(),
        expected_states,
        "{kind}/{assoc} learned under noise must reproduce its Table 2 state count"
    );
    assert_eq!(
        render_mealy(&noisy.machine),
        render_mealy(&clean.machine),
        "{kind}/{assoc}: the automaton learned under 5% flips diverged from the clean run"
    );
    assert_eq!(
        noisy.stats.membership_queries, clean.stats.membership_queries,
        "{kind}/{assoc}: voting changed the learner's membership-query count"
    );
}

#[test]
fn lru_4_learned_under_noise_is_byte_identical() {
    assert_noisy_learning_matches_clean(PolicyKind::Lru, 4, 24);
}

#[test]
fn srrip_fp_2_learned_under_noise_is_byte_identical() {
    assert_noisy_learning_matches_clean(PolicyKind::SrripFp, 2, 16);
}

#[test]
fn disabling_the_vote_breaks_learning_at_the_same_rate() {
    // Same policy, same fault stream, voting off: every query is a single
    // corrupted measurement.  Polca then either detects the inconsistency
    // (a tracked block "misses", a fresh block "hits", no evicted line is
    // found — all oracle errors) or the learner converges on garbage.  A
    // time budget and state cap bound the garbage path.
    let setup = LearnSetup {
        workers: 1,
        max_states: 200,
        time_budget: Some(std::time::Duration::from_secs(120)),
        ..LearnSetup::default()
    };
    let clean = learn_simulated_policy(PolicyKind::Lru, 4, &setup).expect("noise-free learning");
    match learn_noisy_policy(
        PolicyKind::Lru,
        4,
        FLIP_RATE,
        VoteConfig::disabled(),
        &setup,
    ) {
        Err(_) => {} // aborted: the expected outcome
        Ok(outcome) => {
            assert_ne!(
                render_mealy(&outcome.machine),
                render_mealy(&clean.machine),
                "voting-disabled learning at 5% flips reproduced the clean automaton — \
                 the fault injection is not reaching the learner and this suite has no teeth"
            );
        }
    }
}
