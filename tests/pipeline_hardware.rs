//! Integration tests for the §7 pipeline: CacheQuery against the simulated
//! silicon CPUs, Polca, and the learner — including the negative results the
//! paper reports (wrong reset sequences, adaptive follower sets).

use cache::LevelId;
use cachequery::{ResetSequence, Target};
use hardware::CpuModel;
use polca::{identify_policy, learn_hardware_policy, HardwareTarget, LearnSetup};
use policies::PolicyKind;

fn setup() -> LearnSetup {
    LearnSetup {
        conformance_depth: 1,
        max_states: 1024,
        time_budget: Some(std::time::Duration::from_secs(600)),
        ..LearnSetup::default()
    }
}

#[test]
fn skylake_l3_leader_set_under_cat_learns_new2() {
    // Table 4: the Skylake L3 leader sets run the undocumented New2 policy
    // and can be learned with a plain Flush+Refill reset.  CAT is used to
    // reduce the associativity (the paper uses 4; 2 keeps the test fast).
    let hardware = HardwareTarget {
        model: CpuModel::SkylakeI5_6500,
        target: Target::new(LevelId::L3, 33, 0),
        reset: ResetSequence::FlushRefill,
        cat_ways: Some(2),
        seed: 11,
    };
    let outcome = learn_hardware_policy(&hardware, &setup()).expect("leader sets are learnable");
    let identified = identify_policy(&outcome.machine, 2, &PolicyKind::ALL_DETERMINISTIC);
    assert_eq!(
        identified.map(|(k, _)| k),
        Some(PolicyKind::New2),
        "the leader set policy was not identified as New2 ({} states)",
        outcome.machine.num_states()
    );
}

#[test]
fn skylake_l2_with_flush_refill_reset_is_rejected_as_nondeterministic() {
    // Table 4: Flush+Refill is not a valid reset sequence for the Skylake L2;
    // the paper notes that wrong reset sequences surface as nondeterminism
    // during learning.  The pipeline must fail rather than return a machine.
    let hardware = HardwareTarget {
        model: CpuModel::SkylakeI5_6500,
        target: Target::new(LevelId::L2, 63, 0),
        reset: ResetSequence::FlushRefill,
        cat_ways: None,
        seed: 11,
    };
    let result = learn_hardware_policy(&hardware, &setup());
    assert!(
        result.is_err(),
        "learning with a wrong reset sequence unexpectedly succeeded"
    );
}

#[test]
fn haswell_l3_cannot_be_learned_because_cat_is_unsupported() {
    let hardware = HardwareTarget {
        model: CpuModel::HaswellI7_4790,
        target: Target::new(LevelId::L3, 512, 0),
        reset: ResetSequence::FlushRefill,
        cat_ways: Some(4),
        seed: 11,
    };
    let result = learn_hardware_policy(&hardware, &setup());
    assert!(
        result.is_err(),
        "CAT should not be available on the Haswell model"
    );
}

#[test]
fn skylake_l2_with_the_table_4_reset_sequence_starts_learning_cleanly() {
    // With the custom reset sequence of Table 4 the very same cache set that
    // rejects Flush+Refill answers membership queries consistently.  (The
    // complete 160-state learning run lives in the table4 benchmark binary;
    // here we verify a healthy prefix of the interaction.)
    use cachequery::CacheQuery;
    use hardware::SimulatedCpu;
    use learning::MembershipOracle;
    use polca::{CacheQueryOracle, PolcaOracle};
    use policies::PolicyInput;

    let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 11);
    let mut tool = CacheQuery::new(cpu);
    tool.set_reset_sequence(ResetSequence::Custom("D C B A @".to_string()));
    tool.set_target(Target::new(LevelId::L2, 63, 0)).unwrap();
    let oracle = CacheQueryOracle::new(tool).unwrap();
    let mut polca = PolcaOracle::new(oracle);
    // A batch of words that exercises hits, misses and findEvicted; asking
    // twice must give identical answers (the determinism the learner needs).
    let words = [
        vec![PolicyInput::Evct, PolicyInput::Evct, PolicyInput::Evct],
        vec![
            PolicyInput::Line(0),
            PolicyInput::Evct,
            PolicyInput::Line(2),
            PolicyInput::Evct,
        ],
        vec![
            PolicyInput::Line(3),
            PolicyInput::Line(3),
            PolicyInput::Evct,
            PolicyInput::Evct,
        ],
    ];
    for word in &words {
        let first = polca.query(word).expect("oracle answers");
        let second = polca.query(word).expect("oracle answers again");
        assert_eq!(first, second, "inconsistent answers for {word:?}");
    }
}
