//! End-to-end trace replay: learned machines vs. their source simulators
//! under synthetic traffic, pinned hit counts on golden traces, and the
//! hierarchy/dueling replay invariants.
//!
//! Three layers of guarantee:
//!
//! 1. **Differential conformance under traffic** — for every deterministic
//!    policy at ways 2–4, the automaton learned by the polca pipeline
//!    replays every trace generator access-for-access identically to the
//!    executable simulator (zero hit/miss or victim-line divergences).
//! 2. **Golden traces** — exact per-policy hit counts on two small traces
//!    checked into `tests/fixtures/`: a hand-written pattern mix and a
//!    generated zipfian trace (which is also pinned byte-for-byte against
//!    regeneration, so generator drift cannot slip by).
//! 3. **Composite caches** — replaying through a two-level hierarchy and a
//!    set-dueling cache preserves their defining invariants: an inclusive
//!    L2 never loses hits over L1 alone, and dueling followers become the
//!    winning leader policy.

use std::collections::HashMap;

use cache::{
    AccessResult, Block, CacheGeometry, CacheLevel, CacheSet, DuelingCache, DuelingRole, Hierarchy,
    HierarchyConfig, HitMiss, LevelConfig, LevelId, PhysAddr,
};
use polca::{exact_learn_setup, learn_simulated_policy};
use policies::PolicyKind;
use trace::{
    differential_replay, generate, replay, replay_hierarchy, replay_policy, GeneratorKind,
    ReplayEvent, Replayer, Trace, TraceSpec,
};

/// The replay geometry: 16 sets of `assoc` ways.  A 48-line working set
/// overflows it at 2 ways, exactly fills it at 3 and fits at 4, so the
/// replays exercise thrash, steady state and pure reuse.
fn geometry(assoc: usize) -> CacheGeometry {
    CacheGeometry::new(assoc, 16, 1, 64)
}

fn spec(generator: GeneratorKind, accesses: usize, lines: usize, seed: u64) -> TraceSpec {
    TraceSpec {
        generator,
        accesses,
        lines,
        seed,
        ..TraceSpec::default()
    }
}

/// Learns `kind` at every supported associativity in 2–4 and replays all
/// four generators differentially: the learned machine must agree with the
/// ground-truth simulator on every single access.
fn assert_replay_conformance(kind: PolicyKind) {
    for assoc in 2..=4 {
        if !kind.supports_associativity(assoc) {
            continue;
        }
        let outcome = learn_simulated_policy(kind, assoc, &exact_learn_setup(assoc))
            .unwrap_or_else(|e| panic!("learning {kind}@{assoc} failed: {e}"));
        for generator in GeneratorKind::ALL {
            let trace = generate(&spec(generator, 20_000, 48, 7));
            let report = differential_replay(&trace, kind, geometry(assoc), &outcome.machine)
                .expect("the learned machine matches the replay geometry");
            assert!(
                report.passed(),
                "{kind}@{assoc} diverged on {generator}: {:?}",
                report.divergence
            );
            assert_eq!(
                report.simulator, report.machine,
                "{kind}@{assoc} on {generator}: divergence-free replays must agree on counters"
            );
            assert_eq!(report.simulator.accesses, 20_000);
        }
    }
}

#[test]
fn fifo_replays_without_divergence() {
    assert_replay_conformance(PolicyKind::Fifo);
}

#[test]
fn lru_replays_without_divergence() {
    assert_replay_conformance(PolicyKind::Lru);
}

#[test]
fn plru_replays_without_divergence() {
    assert_replay_conformance(PolicyKind::Plru);
}

#[test]
fn mru_replays_without_divergence() {
    assert_replay_conformance(PolicyKind::Mru);
}

#[test]
fn lip_replays_without_divergence() {
    assert_replay_conformance(PolicyKind::Lip);
}

#[test]
fn srrip_hp_replays_without_divergence() {
    assert_replay_conformance(PolicyKind::SrripHp);
}

#[test]
fn srrip_fp_replays_without_divergence() {
    assert_replay_conformance(PolicyKind::SrripFp);
}

#[test]
fn new1_replays_without_divergence() {
    assert_replay_conformance(PolicyKind::New1);
}

#[test]
fn new2_replays_without_divergence() {
    assert_replay_conformance(PolicyKind::New2);
}

fn load_fixture(name: &str) -> Trace {
    let text = std::fs::read_to_string(format!("tests/fixtures/{name}"))
        .unwrap_or_else(|e| panic!("fixture {name} is readable: {e}"));
    Trace::from_text(&text).unwrap_or_else(|e| panic!("fixture {name} parses: {e}"))
}

/// Hits per policy on the hand-written mix at 2 ways × 4 sets.  The trace
/// mixes a recency-vs-insertion discriminator, a recency-friendly set, a
/// scan with a retouch and a hot line (see the fixture's comments); the
/// counts were produced by the simulator and are pinned forever.
const HANDWRITTEN_HITS: [(PolicyKind, u64); 9] = [
    (PolicyKind::Fifo, 7),
    (PolicyKind::Lru, 8),
    (PolicyKind::Plru, 8),
    (PolicyKind::Mru, 8),
    (PolicyKind::Lip, 4),
    (PolicyKind::SrripHp, 8),
    (PolicyKind::SrripFp, 8),
    (PolicyKind::New1, 8),
    (PolicyKind::New2, 8),
];

/// Hits per policy on the small zipfian trace at 2 ways × 16 sets.
const ZIPF_HITS: [(PolicyKind, u64); 9] = [
    (PolicyKind::Fifo, 268),
    (PolicyKind::Lru, 268),
    (PolicyKind::Plru, 268),
    (PolicyKind::Mru, 268),
    (PolicyKind::Lip, 253),
    (PolicyKind::SrripHp, 268),
    (PolicyKind::SrripFp, 268),
    (PolicyKind::New1, 268),
    (PolicyKind::New2, 268),
];

#[test]
fn handwritten_golden_trace_hit_counts_are_pinned() {
    let trace = load_fixture("handwritten_mix.trace");
    assert_eq!(trace.len(), 19);
    let geometry = CacheGeometry::new(2, 4, 1, 64);
    for (kind, hits) in HANDWRITTEN_HITS {
        let counts = replay_policy(&trace, kind, geometry).unwrap();
        assert_eq!(counts.accesses, 19, "{kind}");
        assert_eq!(
            counts.hits, hits,
            "{kind} hit count moved on the golden trace"
        );
        assert_eq!(counts.hits + counts.misses, counts.accesses, "{kind}");
    }
}

#[test]
fn zipfian_golden_trace_hit_counts_are_pinned() {
    let trace = load_fixture("zipf_small.trace");
    // The checked-in fixture must be exactly what the generator produces
    // for its recorded spec — any drift in the zipfian sampler shows up
    // here before it silently re-pins the hit counts below.
    let regenerated = generate(&TraceSpec {
        generator: GeneratorKind::Zipfian,
        accesses: 300,
        lines: 32,
        seed: 5,
        ..TraceSpec::default()
    });
    assert_eq!(
        trace, regenerated,
        "zipf_small.trace no longer matches its spec"
    );
    let geometry = CacheGeometry::new(2, 16, 1, 64);
    for (kind, hits) in ZIPF_HITS {
        let counts = replay_policy(&trace, kind, geometry).unwrap();
        assert_eq!(counts.accesses, 300, "{kind}");
        assert_eq!(
            counts.hits, hits,
            "{kind} hit count moved on the golden trace"
        );
    }
}

/// Builds the small LRU L1 used by the hierarchy test: 2 ways × 16 sets
/// (32 lines — an eighth of the test's working set).
fn small_l1() -> CacheLevel {
    CacheLevel::new(
        LevelConfig {
            name: "L1".to_string(),
            geometry: CacheGeometry::new(2, 16, 1, 64),
            inclusive: false,
        },
        |_| PolicyKind::Lru.build(2).unwrap(),
    )
}

#[test]
fn an_inclusive_l2_never_loses_hits_over_l1_alone() {
    let trace = generate(&spec(GeneratorKind::Zipfian, 20_000, 256, 3));

    let mut solo = Hierarchy::new(HierarchyConfig {
        levels: vec![small_l1()],
    });
    let solo_report = replay_hierarchy(&trace, &mut solo);

    // 8 ways x 64 sets = 512 lines: the whole 256-line working set fits, so
    // the L2 never evicts and never back-invalidates the L1.
    let l2 = CacheLevel::new(
        LevelConfig {
            name: "L2".to_string(),
            geometry: CacheGeometry::new(8, 64, 1, 64),
            inclusive: true,
        },
        |_| PolicyKind::Lru.build(8).unwrap(),
    );
    let mut pair = Hierarchy::new(HierarchyConfig {
        levels: vec![small_l1(), l2],
    });
    let pair_report = replay_hierarchy(&trace, &mut pair);

    assert_eq!(solo_report.accesses, 20_000);
    assert_eq!(pair_report.accesses, 20_000);
    // The headline invariant: adding a level can only serve more accesses.
    assert!(pair_report.total_hits() >= solo_report.total_hits());
    // A fitting inclusive L2 never evicts, so the L1 sees the exact same
    // stream of fills as it did alone...
    let solo_l1 = solo_report.level(LevelId::L1).unwrap();
    let pair_l1 = pair_report.level(LevelId::L1).unwrap();
    assert_eq!(solo_l1.hits, pair_l1.hits);
    assert_eq!(pair_l1.hits + pair_l1.misses, pair_report.accesses);
    // ...and only the 256 cold fills ever reach memory.
    assert_eq!(pair_report.memory_accesses, 256);
    let pair_l2 = pair_report.level(LevelId::L2).unwrap();
    assert_eq!(pair_l2.hits, pair_l1.misses - 256);
}

/// Adapts a composite cache to the [`Replayer`] interface so traces drive
/// it through [`trace::replay`].
struct DuelingReplayer(DuelingCache);

impl Replayer for DuelingReplayer {
    fn access(&mut self, addr: PhysAddr) -> ReplayEvent {
        match self.0.access(addr) {
            AccessResult::Hit { .. } => ReplayEvent {
                outcome: HitMiss::Hit,
                evicted_line: None,
            },
            AccessResult::Miss { line, evicted } => ReplayEvent {
                outcome: HitMiss::Miss,
                evicted_line: evicted.map(|_| line),
            },
        }
    }
}

/// A cold-start single-policy reference: one fresh [`CacheSet`] per touched
/// set, all running `kind` — what a dueling follower must behave like once
/// the PSEL counter has settled on `kind`.
struct FreshSets {
    kind: PolicyKind,
    geometry: CacheGeometry,
    sets: HashMap<usize, CacheSet>,
}

impl FreshSets {
    fn new(kind: PolicyKind, geometry: CacheGeometry) -> Self {
        FreshSets {
            kind,
            geometry,
            sets: HashMap::new(),
        }
    }
}

impl Replayer for FreshSets {
    fn access(&mut self, addr: PhysAddr) -> ReplayEvent {
        let (kind, assoc) = (self.kind, self.geometry.associativity);
        let flat = self.geometry.flat_index(addr);
        let set = self
            .sets
            .entry(flat)
            .or_insert_with(|| CacheSet::new(kind.build(assoc).unwrap()));
        let block = Block::new(addr.line_base(self.geometry.line_size).0);
        match set.access(block) {
            AccessResult::Hit { .. } => ReplayEvent {
                outcome: HitMiss::Hit,
                evicted_line: None,
            },
            AccessResult::Miss { line, evicted } => ReplayEvent {
                outcome: HitMiss::Miss,
                evicted_line: evicted.map(|_| line),
            },
        }
    }
}

#[test]
fn dueling_followers_become_the_winning_policy_under_traffic() {
    // 2 ways x 16 sets; set 0 leads the primary (LRU), set 1 leads the
    // alternate (LIP), the remaining 14 sets follow the PSEL counter.
    let geometry = CacheGeometry::new(2, 16, 1, 64);
    let mut roles = vec![DuelingRole::Follower; 16];
    roles[0] = DuelingRole::LeaderPrimary;
    roles[1] = DuelingRole::LeaderAlternate;
    let cache = DuelingCache::new(
        geometry,
        roles,
        |_| PolicyKind::Lru.build(2).unwrap(),
        |_| PolicyKind::Lip.build(2).unwrap(),
    );
    let mut dueling = DuelingReplayer(cache);

    // Phase 1: a strided scan whose stride (16 lines) wraps the 16 sets, so
    // every access lands in set 0 — three congruent lines thrashing the
    // 2-way primary leader.  Each leader miss tips PSEL towards LIP.
    let thrash = generate(&TraceSpec {
        generator: GeneratorKind::Strided,
        accesses: 60,
        lines: 48,
        stride: 16,
        seed: 2,
        ..TraceSpec::default()
    });
    let thrash_counts = replay(&thrash, &mut dueling);
    assert_eq!(thrash_counts.hits, 0, "the leader thrash must be hitless");
    assert!(dueling.0.dueling().followers_use_alternate());
    let psel_after_thrash = dueling.0.dueling().psel();

    // Phase 2: drive every follower set with the tag pattern A B C D A —
    // LIP's insert-at-LRU sacrifices each newcomer and pins A (1 hit per
    // set) where LRU's insert-at-MRU churns everything and goes hitless.
    // Addresses are tag << 10 | set << 6 for this geometry; sets 2..15
    // stay followers.
    let pattern = [0u64, 1, 2, 3, 0];
    let mut addresses = Vec::new();
    for &tag in &pattern {
        for set in 2..16u64 {
            addresses.push(PhysAddr((tag << 10) | (set << 6)));
        }
    }
    let followers = Trace::new(addresses);

    let follower_counts = replay(&followers, &mut dueling);
    let lip_counts = replay(&followers, &mut FreshSets::new(PolicyKind::Lip, geometry));
    let lru_counts = replay(&followers, &mut FreshSets::new(PolicyKind::Lru, geometry));

    // The followers are exactly the winning (alternate) policy, and the
    // two candidate policies genuinely disagree on this pattern.
    assert_eq!(follower_counts, lip_counts);
    assert_eq!(lip_counts.hits, 14);
    assert_eq!(lru_counts.hits, 0);
    // Follower misses never move PSEL.
    assert_eq!(dueling.0.dueling().psel(), psel_after_thrash);
}
