//! Learning over the network: `learn_policy` through a [`RemoteBackend`]
//! against a loopback `cqd` daemon must be **byte-identical** to the
//! in-process run — the same automaton (down to its textual rendering) and
//! the same membership-query count, for the Table 2 policies this suite
//! pins.
//!
//! This is the end-to-end guarantee of the unified query path: the learner
//! does not know (and cannot tell) whether its concrete queries are answered
//! by a local simulation or by a daemon on the other end of a socket.

use automata::render_mealy;
use cachequery::QueryEngine;
use polca::{learn_policy, learn_simulated_policy, CacheQueryOracle, LearnSetup};
use policies::PolicyKind;
use server::{spawn, CqdConfig, RemoteBackend, SessionSpec};

/// Runs the same learning campaign locally and over loopback and checks
/// byte-identity; returns the daemon-reported store hit rate for sanity.
fn assert_remote_matches_in_process(
    kind: PolicyKind,
    assoc: usize,
    expected_states: usize,
    expected_queries: u64,
) {
    // Determinism of the membership-query count needs a fixed worker count;
    // 1 is also what a real remote campaign against scarce hardware uses.
    let setup = LearnSetup {
        workers: 1,
        ..LearnSetup::default()
    };

    let local = learn_simulated_policy(kind, assoc, &setup).expect("in-process learning succeeds");

    let daemon = spawn(CqdConfig::default()).expect("ephemeral port is bindable");
    let spec = SessionSpec {
        policy: Some(format!("{kind}@{assoc}")),
        ..SessionSpec::default()
    };
    let backend =
        RemoteBackend::connect(daemon.addr(), &spec).expect("daemon accepts the session spec");
    let engine = QueryEngine::new(backend);
    let client_store = std::sync::Arc::clone(engine.store());
    let oracle = CacheQueryOracle::from_engine(engine).expect("the remote target is configured");
    let remote = learn_policy(oracle, &setup).expect("remote learning succeeds");

    assert_eq!(
        remote.machine.num_states(),
        expected_states,
        "{kind}/{assoc} must reproduce its Table 2 state count over the network"
    );
    assert_eq!(
        render_mealy(&remote.machine),
        render_mealy(&local.machine),
        "{kind}/{assoc}: the remotely learned automaton diverged from the in-process one"
    );
    assert_eq!(
        remote.stats.membership_queries, local.stats.membership_queries,
        "{kind}/{assoc}: the remote run issued a different number of membership queries"
    );
    assert_eq!(
        remote.stats.membership_queries, expected_queries,
        "{kind}/{assoc}: the batched wire path drifted from the pinned query count"
    );

    // The client-side engine store absorbs the replay-session blowup before
    // anything reaches the network: most probes are answered from the local
    // trie, and only genuinely novel queries cross the wire (which is why
    // the daemon itself sees practically no repeats).
    assert!(
        client_store.hits() > 0,
        "the client-side store never absorbed a replayed prefix"
    );
    assert!(
        client_store.hits() > client_store.misses(),
        "most probes should be served locally (hits {}, misses {})",
        client_store.hits(),
        client_store.misses()
    );
    daemon.shutdown();
}

#[test]
fn lru_4_learns_identically_over_the_network() {
    assert_remote_matches_in_process(PolicyKind::Lru, 4, 24, 7_569);
}

#[test]
fn srrip_fp_2_learns_identically_over_the_network() {
    assert_remote_matches_in_process(PolicyKind::SrripFp, 2, 16, 2_966);
}

#[test]
fn remote_batches_answer_like_per_query_round_trips() {
    // `RemoteBackend::execute_batch` maps an engine batch onto one wire
    // `batch` request; its answers must be byte-identical to issuing the same
    // concrete queries as individual `query` round trips.
    use cachequery::QueryBackend;

    let daemon = spawn(CqdConfig::default()).expect("ephemeral port is bindable");
    let spec = SessionSpec {
        policy: Some("LRU@4".to_string()),
        ..SessionSpec::default()
    };
    let mut backend =
        RemoteBackend::connect(daemon.addr(), &spec).expect("daemon accepts the session spec");

    let mut queries = Vec::new();
    for expr in ["@ X _?", "C B? A?", "A B X Y A? B? C?"] {
        queries.extend(mbl::expand_query(expr, 4).expect("well-formed MBL"));
    }
    let batched = backend
        .execute_batch(&queries)
        .expect("one wire batch answers the lot");
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| backend.execute(q).expect("per-query round trip"))
        .collect();
    assert_eq!(batched, sequential, "the wire batch path diverged");
    daemon.shutdown();
}
