//! Integration test of the `cqd` daemon: many concurrent sessions with
//! overlapping workloads must get answers byte-identical to an in-process
//! `CacheQuery`, while the shared cross-session store absorbs the overlap.

use std::collections::BTreeMap;
use std::thread;

use cache::LevelId;
use cachequery::{CacheQuery, Target};
use hardware::{CpuModel, SimulatedCpu};
use server::{spawn, Client, CqdConfig, Response, SessionSpec};

/// The overlapping workload: every client runs all of these expressions
/// against both target sets, in a client-specific order.
const EXPRESSIONS: &[&str] = &[
    "A B C A?",
    "@ X A?",
    "@ X _?",
    "X? X?",
    "A A! A?",
    "(@)?",
    "A B C D E F G H I J? A?",
];

const SETS: &[u64] = &[3, 9];
const CLIENTS: usize = 8;

fn spec_for(set: u64) -> SessionSpec {
    SessionSpec {
        set,
        ..SessionSpec::default()
    }
}

/// (set, expression) → the answers as `query -> pattern/consistent` lines —
/// the byte-level form the equality assertions compare.
type Answers = BTreeMap<(u64, String), Vec<String>>;

fn render_answers(results: &[server::WireOutcome]) -> Vec<String> {
    results
        .iter()
        .map(|r| format!("{} -> {} ({})", r.query, r.pattern, r.consistent))
        .collect()
}

#[test]
fn concurrent_sessions_agree_with_the_direct_oracle() {
    let daemon = spawn(CqdConfig {
        workers: 4,
        // A small queue so the test also exercises the backpressure path.
        queue_depth: 4,
        ..CqdConfig::default()
    })
    .expect("ephemeral port is always bindable");
    let addr = daemon.addr();

    // 8 concurrent clients, each covering every (set, expression) pair in a
    // client-specific order so the overlap arrives interleaved.
    let answers: Vec<Answers> = thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client_index| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("daemon accepts connections");
                    assert_eq!(client.hello().unwrap().server, "cqd");
                    let mut collected: Answers = BTreeMap::new();
                    for step in 0..EXPRESSIONS.len() * SETS.len() {
                        let rotated = (step + client_index) % (EXPRESSIONS.len() * SETS.len());
                        let set = SETS[rotated % SETS.len()];
                        let expr = EXPRESSIONS[rotated / SETS.len()];
                        client.target(&spec_for(set)).unwrap();
                        let results = client.query(expr).unwrap();
                        collected.insert((set, expr.to_string()), render_answers(&results));
                    }
                    client.quit().unwrap();
                    collected
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // The in-process oracle: the same simulated machine, driven directly.
    let mut oracle = CacheQuery::new(SimulatedCpu::new(CpuModel::SkylakeI5_6500, 7));
    let mut expected: Answers = BTreeMap::new();
    for &set in SETS {
        oracle
            .set_target(Target::new(LevelId::L1, set as usize, 0))
            .unwrap();
        for &expr in EXPRESSIONS {
            let results = oracle.query(expr).unwrap();
            let rendered: Vec<String> = results
                .iter()
                .map(|r| {
                    let pattern: String = r
                        .outcomes
                        .iter()
                        .map(|o| if *o == cache::HitMiss::Hit { 'H' } else { 'M' })
                        .collect();
                    format!("{} -> {} ({})", r.rendered, pattern, r.consistent)
                })
                .collect();
            expected.insert((set, expr.to_string()), rendered);
        }
    }

    for (client_index, collected) in answers.iter().enumerate() {
        assert_eq!(
            collected, &expected,
            "client {client_index} diverged from the direct CacheQuery oracle"
        );
    }

    // The workload overlaps massively (8 clients × identical queries), so
    // the shared store must have served a substantial share from memory.
    let hit_rate = daemon.store_hit_rate();
    assert!(
        hit_rate > 0.0,
        "no cross-session sharing happened (hit rate {hit_rate})"
    );
    // Only one backend configuration was used.
    assert_eq!(daemon.backend_instances(), 1);
    daemon.shutdown();
}

#[test]
fn stats_jobs_batch_and_repl_work_over_the_wire() {
    let daemon = spawn(CqdConfig::default()).unwrap();
    let mut client = Client::connect(daemon.addr()).unwrap();

    // Batch mode groups results per expression.
    let groups = client.batch(&["A?", "@ X _?"]).unwrap();
    assert_eq!(groups.len(), 2);
    assert_eq!(groups[0].len(), 1);
    assert_eq!(groups[1].len(), 8);

    // The REPL command language is shared with the in-process shell.
    match client.repl("set 5").unwrap() {
        Response::Done { message } => assert!(message.contains('5')),
        other => panic!("unexpected repl response: {other:?}"),
    }
    match client.repl("assoc").unwrap() {
        Response::Done { message } => assert!(message.contains('8')),
        other => panic!("unexpected repl response: {other:?}"),
    }
    match client.repl("A B C A?").unwrap() {
        Response::Outcomes { results } => assert_eq!(results[0].pattern, "H"),
        other => panic!("unexpected repl response: {other:?}"),
    }
    // Invalid configurations are rejected eagerly.
    assert!(client.repl("set 100000").is_err());

    // Learning jobs run asynchronously and stream status over `wait`.
    let id = client.learn("LRU@2").unwrap();
    let mut status_lines = 0;
    let done = client.wait_with(id, |_| status_lines += 1).unwrap();
    assert_eq!(done.state, "done");
    assert_eq!(done.states, 2);
    assert_eq!(done.detail, "identified as LRU");
    assert!(status_lines >= 1);
    // Polling after completion still works.
    assert_eq!(client.job(id).unwrap().state, "done");
    // Unknown jobs and bad specs are errors.
    assert!(client.job(999).is_err());
    assert!(client.learn("LRU@64").is_err());
    assert!(client.learn("CLAIRVOYANT@2").is_err());

    // Global metrics reflect the traffic of this session.
    let stats = client.stats().unwrap();
    let (global, session) = (stats.global, stats.session);
    assert!(global.queries >= 9);
    assert_eq!(global.jobs_spawned, 1);
    assert_eq!(global.jobs_finished, 1);
    assert_eq!(global.sessions_active, 1);
    assert!(session.queries >= 9);
    // The stats response breaks the store down per namespace; this session
    // only used the default hardware namespace plus the learn campaign's.
    assert!(!stats.namespaces.is_empty());
    assert!(stats
        .namespaces
        .iter()
        .any(|ns| ns.name.starts_with("skylake seed=7") && ns.entries > 0));

    client.quit().unwrap();
    daemon.shutdown();

    let second = spawn(CqdConfig::default()).unwrap();
    // A second daemon starts cleanly after the first shut down (distinct
    // ephemeral ports, no leaked state).
    let mut client = Client::connect(second.addr()).unwrap();
    assert_eq!(client.query("A?").unwrap().len(), 1);
    second.shutdown();
}

#[test]
fn learn_campaigns_fill_the_store_sessions_read() {
    // The store-integrated learn path: a `learn LRU@2` campaign runs through
    // the daemon's shared query store, so a session targeting the same
    // simulated policy afterwards replays the campaign's expansions straight
    // from memory — cross-session hits, with zero backend executions.
    let daemon = spawn(CqdConfig::default()).unwrap();
    let mut client = Client::connect(daemon.addr()).unwrap();

    let id = client.learn("LRU@2").unwrap();
    let done = client.wait(id).unwrap();
    assert_eq!(done.state, "done");
    assert_eq!(done.states, 2);

    // A fresh session targets the campaign's namespace and replays some of
    // its expansions: the very first membership queries of the L* run touch
    // the initial content (blocks A and B), so these prefixes are cached.
    let mut replay = Client::connect(daemon.addr()).unwrap();
    replay
        .target(&SessionSpec {
            policy: Some("LRU@2".into()),
            ..SessionSpec::default()
        })
        .unwrap();
    let results = replay.query("A?").unwrap();
    assert!(
        results[0].cached,
        "the campaign's expansions must be served from the shared store"
    );
    assert_eq!(results[0].pattern, "H");

    let stats = replay.stats().unwrap();
    assert!(
        stats.session.store_hits > 0,
        "hit-rate must be > 0 for a session replaying the campaign"
    );
    assert!(stats
        .namespaces
        .iter()
        .any(|ns| ns.name.starts_with("policy:LRU@2") && ns.entries > 0));
    // The deterministic policy simulation never contradicts itself.
    assert_eq!(stats.global.store_conflicts, 0);

    client.quit().unwrap();
    replay.quit().unwrap();
    daemon.shutdown();
}

#[test]
fn noisy_sessions_vote_their_way_to_the_clean_answers() {
    // The noise-robustness path over the wire: a session targeting a
    // fault-injecting policy backend gets answers byte-identical to the
    // clean simulation — the daemon's engine votes server-side — and the
    // vote-margin statistics show up in `stats`.
    let daemon = spawn(CqdConfig::default()).unwrap();
    let mut clean = Client::connect(daemon.addr()).unwrap();
    clean
        .target(&SessionSpec {
            policy: Some("LRU@4".into()),
            ..SessionSpec::default()
        })
        .unwrap();
    let mut noisy = Client::connect(daemon.addr()).unwrap();
    noisy
        .target(&SessionSpec {
            policy: Some("LRU@4+noise(flip=0.05,seed=3)".into()),
            ..SessionSpec::default()
        })
        .unwrap();

    for expr in EXPRESSIONS {
        let reference = clean.query(expr).unwrap();
        let voted = noisy.query(expr).unwrap();
        assert_eq!(
            render_answers(&voted),
            render_answers(&reference),
            "voting failed to recover the clean answers for '{expr}'"
        );
        // Noisy answers live in their own namespace: nothing the clean
        // session executed can have pre-answered them.
        assert!(voted.iter().all(|r| r.consistent));
    }

    let stats = noisy.stats().unwrap();
    assert!(
        stats.global.votes > 0,
        "noisy queries must go through the vote"
    );
    assert!(stats.global.vote_min_margin_permille <= 1000);
    assert_eq!(
        stats.global.vote_unsettled, 0,
        "5% flips must settle within the escalation budget"
    );
    assert!(stats
        .namespaces
        .iter()
        .any(|ns| ns.name.starts_with("noisy[flip=50,") && ns.entries > 0));

    // A noisy learn campaign reaches the same automaton as the clean one.
    let clean_job = clean.learn("LRU@2").unwrap();
    let noisy_job = clean.learn("LRU@2+noise(flip=0.05,seed=5)").unwrap();
    let clean_done = clean.wait(clean_job).unwrap();
    let noisy_done = clean.wait(noisy_job).unwrap();
    assert_eq!(clean_done.state, "done");
    assert_eq!(noisy_done.state, "done");
    assert_eq!(noisy_done.states, clean_done.states);
    assert_eq!(noisy_done.detail, "identified as LRU");

    clean.quit().unwrap();
    noisy.quit().unwrap();
    daemon.shutdown();
}

#[test]
fn different_seeds_and_targets_do_not_share_answers() {
    let daemon = spawn(CqdConfig::default()).unwrap();
    let mut a = Client::connect(daemon.addr()).unwrap();
    let mut b = Client::connect(daemon.addr()).unwrap();
    a.target(&SessionSpec::default()).unwrap();
    b.target(&SessionSpec {
        seed: 8,
        ..SessionSpec::default()
    })
    .unwrap();

    let first = a.query("@ X A?").unwrap();
    assert!(!first[0].cached, "fresh query cannot be cached");
    // Different seed → different namespace → not served from the store.
    let other_seed = b.query("@ X A?").unwrap();
    assert!(!other_seed[0].cached, "seeds must not share a namespace");
    // Same seed and target, different session → shared.
    let mut c = Client::connect(daemon.addr()).unwrap();
    let shared = c.query("@ X A?").unwrap();
    assert!(shared[0].cached, "identical configurations must share");
    assert_eq!(shared[0].pattern, first[0].pattern);
    // Two distinct (model, seed, cat) combinations were instantiated.
    assert_eq!(daemon.backend_instances(), 2);
    daemon.shutdown();
}
