//! End-to-end observability: the span timeline of a learning run and the
//! metrics surface of a live `cqd` daemon.
//!
//! Three guarantees are pinned here:
//!
//! * **JSONL schema** — every record a [`obs::Recorder`] emits is one JSON
//!   object per line with exactly `{ts_ns, span_id, parent, name, dur_ns,
//!   fields}`, and the learner's phase spans nest under the `lstar.learn`
//!   root (the §5 learner loop, phase by phase);
//! * **metrics coverage** — a daemon that has answered queries and run a
//!   learning campaign reports them through the `metrics` request: query
//!   and store-hit counters, vote gauges (§4.3), and a request-latency
//!   histogram, in both Prometheus text and typed form;
//! * **profile conservation** — the per-phase query counts a finished job
//!   reports over the wire sum exactly to the job's total membership
//!   queries.

use std::sync::Arc;

use obs::{Recorder, RingSink};
use polca::{learn_simulated_policy, LearnSetup};
use policies::PolicyKind;
use server::{spawn, Client, CqdConfig, Json};

/// Parses one JSONL record and asserts the exact schema, returning
/// `(span_id, parent, name)`.
fn parse_record(line: &str) -> (u64, Option<u64>, String) {
    let record =
        Json::parse(line).unwrap_or_else(|e| panic!("unparseable JSONL line {line:?}: {e}"));
    let Json::Obj(pairs) = &record else {
        panic!("JSONL line is not an object: {line:?}");
    };
    let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        ["ts_ns", "span_id", "parent", "name", "dur_ns", "fields"],
        "span record schema drifted: {line:?}"
    );
    record
        .get("ts_ns")
        .and_then(Json::as_u64)
        .expect("ts_ns is a u64");
    record
        .get("dur_ns")
        .and_then(Json::as_u64)
        .expect("dur_ns is a u64");
    assert!(
        matches!(record.get("fields"), Some(Json::Obj(_))),
        "fields must be an object: {line:?}"
    );
    let span_id = record
        .get("span_id")
        .and_then(Json::as_u64)
        .expect("span_id is a u64");
    let parent = match record.get("parent").expect("parent is present") {
        Json::Null => None,
        p => Some(p.as_u64().expect("parent is a u64 or null")),
    };
    let name = record
        .get("name")
        .and_then(Json::as_str)
        .expect("name is a string")
        .to_string();
    (span_id, parent, name)
}

#[test]
fn a_learning_run_emits_a_nested_jsonl_timeline() {
    let sink = Arc::new(RingSink::new(1 << 16));
    let recorder = Arc::new(Recorder::new(sink.clone() as Arc<dyn obs::EventSink>));
    let setup = LearnSetup {
        workers: 1,
        recorder: Some(Arc::clone(&recorder)),
        ..LearnSetup::default()
    };
    let outcome = learn_simulated_policy(PolicyKind::Lru, 2, &setup).expect("LRU@2 learns");
    recorder.flush();
    assert_eq!(
        sink.dropped(),
        0,
        "the ring must be large enough for a small learn"
    );

    let lines = sink.drain();
    assert!(!lines.is_empty(), "an instrumented learn must emit spans");
    let records: Vec<(u64, Option<u64>, String)> = lines.iter().map(|l| parse_record(l)).collect();

    // Exactly one root: the learner loop itself.
    let roots: Vec<&(u64, Option<u64>, String)> = records
        .iter()
        .filter(|(_, _, name)| name == "lstar.learn")
        .collect();
    assert_eq!(roots.len(), 1, "exactly one lstar.learn root span");
    let (root_id, root_parent, _) = roots[0];
    assert_eq!(*root_parent, None, "lstar.learn is a root span");

    // Every phase of the §5 loop nests under it.
    for phase in ["lstar.table_fill", "lstar.closure", "lstar.equivalence"] {
        let children: Vec<_> = records
            .iter()
            .filter(|(_, _, name)| name == phase)
            .collect();
        assert!(!children.is_empty(), "{phase} spans must be emitted");
        for (_, parent, _) in &children {
            assert_eq!(
                *parent,
                Some(*root_id),
                "{phase} must be a child of lstar.learn"
            );
        }
    }

    // The profile derived from the same run is conservative: phase query
    // counts sum exactly to the learner's membership-query total.
    assert_eq!(
        outcome.profile.total_queries(),
        outcome.stats.membership_queries,
        "CampaignProfile must conserve the membership-query total"
    );
}

#[test]
fn the_daemon_reports_metrics_and_per_phase_profiles() {
    let daemon = spawn(CqdConfig::default()).expect("ephemeral port is bindable");
    let mut client = Client::connect(daemon.addr()).expect("daemon accepts connections");

    // Generate traffic on every surface the registry covers: ad-hoc
    // queries, then a full learning campaign.
    client.query("A B C A?").expect("query runs");
    client.query("@ X A?").expect("query runs");
    let id = client.learn("LRU@2").expect("learn job spawns");
    let status = client.wait(id).expect("job finishes");
    assert_eq!(
        status.state, "done",
        "LRU@2 must learn cleanly: {}",
        status.detail
    );

    // Per-phase profile: present on the final status, conservative in its
    // query counts, and covering the learner's phases.
    assert!(
        !status.phases.is_empty(),
        "a finished job must carry its phase profile"
    );
    let phase_total: u64 = status.phases.iter().map(|p| p.queries).sum();
    assert_eq!(
        phase_total, status.queries,
        "wire phase queries must sum to the job's membership-query total"
    );
    assert!(
        status.phases.iter().any(|p| p.name == "table_fill"),
        "the profile must include the table-fill phase: {:?}",
        status.phases
    );

    // The typed metrics surface.
    let (text, metrics) = client.metrics().expect("metrics request answers");
    let find = |name: &str| {
        metrics
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("metric {name} missing from {metrics:?}"))
    };
    assert!(find("cqd_queries_total").value > 0, "queries were answered");
    assert_eq!(find("cqd_queries_total").kind, "counter");
    assert_eq!(find("cqd_store_hits_total").kind, "counter");
    assert_eq!(find("cqd_votes").kind, "gauge");
    let latency = find("cqd_request_ns");
    assert_eq!(latency.kind, "histogram");
    assert!(latency.value > 0, "requests were timed");
    // Quantiles are log-linear bucket upper bounds, so p99 may exceed the
    // exact raw max — only monotonicity among quantiles is guaranteed.
    assert!(latency.p50 > 0 && latency.p99 >= latency.p50 && latency.max > 0);

    // The Prometheus text form carries the same instruments.
    for needle in [
        "# TYPE cqd_queries_total counter",
        "# TYPE cqd_request_ns summary",
        "cqd_store_hits_total",
        "cqd_votes",
    ] {
        assert!(
            text.contains(needle),
            "prometheus text missing {needle:?}:\n{text}"
        );
    }

    // Stats gained uptime, request-latency quantiles and store byte sizes.
    let stats = client.stats().expect("stats request answers");
    assert!(
        stats.global.request_p50_ns > 0,
        "latency histogram feeds stats"
    );
    assert!(
        stats.global.request_max_ns > 0,
        "latency histogram records a max"
    );
    assert!(
        stats.namespaces.iter().any(|ns| ns.bytes > 0),
        "the learn campaign must leave sized store namespaces: {:?}",
        stats.namespaces
    );

    daemon.shutdown();
}

#[test]
fn trace_log_writes_parseable_jsonl_with_request_spans() {
    let path = std::env::temp_dir().join(format!("cqd_trace_{}.jsonl", std::process::id()));
    let daemon = spawn(CqdConfig {
        trace_log: Some(path.clone()),
        ..CqdConfig::default()
    })
    .expect("ephemeral port is bindable");

    let mut client = Client::connect(daemon.addr()).expect("daemon accepts connections");
    client.query("A B C A?").expect("query runs");
    client.stats().expect("stats request answers");
    drop(client);
    daemon.shutdown(); // flushes the trace writer

    let contents = std::fs::read_to_string(&path).expect("trace log was written");
    std::fs::remove_file(&path).ok();
    let mut request_spans = 0usize;
    for line in contents.lines() {
        let (_, _, name) = parse_record(line);
        if name == "cqd.request" {
            request_spans += 1;
            let record = Json::parse(line).expect("parsed above");
            let cmd = record
                .get("fields")
                .and_then(|f| f.get("cmd"))
                .and_then(Json::as_str)
                .expect("cqd.request spans carry the cmd field");
            assert!(
                ["hello", "target", "query", "stats", "quit"].contains(&cmd),
                "unexpected request span cmd {cmd:?}"
            );
        }
    }
    assert!(
        request_spans >= 2,
        "the query and stats requests must both leave cqd.request spans"
    );
}
