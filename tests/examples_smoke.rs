//! Smoke test: every example in `examples/` must build and run to completion.
//!
//! Each test shells out to `cargo run --example` (reusing the already-warm
//! target directory) with the smallest sensible arguments, so examples cannot
//! silently rot.  Long-running configurations (high associativity, many cache
//! sets) are avoided via the examples' positional arguments; the interactive
//! REPL is driven through a scripted stdin session.

use std::io::Write;
use std::process::{Command, Stdio};

/// Runs one example with the given arguments (and optional stdin script),
/// asserting it exits successfully.  Returns captured stdout for content
/// checks.
fn run_example(name: &str, args: &[&str], stdin: Option<&str>) -> String {
    let cargo = env!("CARGO");
    let mut command = Command::new(cargo);
    command
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .args(["run", "--quiet", "--example", name, "--"])
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .stdin(if stdin.is_some() {
            Stdio::piped()
        } else {
            Stdio::null()
        });

    let mut child = command
        .spawn()
        .unwrap_or_else(|e| panic!("failed to spawn example {name}: {e}"));
    if let Some(script) = stdin {
        child
            .stdin
            .take()
            .expect("stdin was piped")
            .write_all(script.as_bytes())
            .expect("example accepts stdin");
    }
    let output = child
        .wait_with_output()
        .unwrap_or_else(|e| panic!("failed to wait for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} {args:?} failed with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// The examples this suite knows how to drive.  `every_example_is_covered`
/// derives the actual list from `examples/` and fails when a new example is
/// added without a smoke test here, so examples cannot silently rot.
const COVERED: &[&str] = &[
    "leader_sets",
    "learn_hardware",
    "learn_noisy",
    "learn_over_server",
    "learn_simulated",
    "mbl_repl",
    "quickstart",
    "replay_trace",
    "server_client",
    "synthesize_policy",
];

#[test]
fn every_example_is_covered() {
    let examples_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut found: Vec<String> = std::fs::read_dir(&examples_dir)
        .expect("examples/ exists")
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            (path.extension().is_some_and(|e| e == "rs"))
                .then(|| path.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    found.sort();
    assert_eq!(
        found, COVERED,
        "examples/ and the smoke-test list diverged: add a run_example test \
         for every new example and list it in COVERED"
    );
}

#[test]
fn quickstart_runs() {
    let stdout = run_example("quickstart", &[], None);
    assert!(stdout.contains("identified as: LRU"), "stdout:\n{stdout}");
}

#[test]
fn learn_simulated_runs() {
    let stdout = run_example("learn_simulated", &["LRU", "2"], None);
    assert!(
        stdout.contains("learned machine is exactly LRU"),
        "stdout:\n{stdout}"
    );
}

#[test]
fn learn_noisy_runs() {
    let stdout = run_example("learn_noisy", &["LRU", "2", "50"], None);
    assert!(
        stdout.contains("byte-identical to the noise-free automaton"),
        "stdout:\n{stdout}"
    );
    assert!(stdout.contains("zero divergences"), "stdout:\n{stdout}");
}

#[test]
fn learn_hardware_runs() {
    // The L3 leader set with CAT reduced to 2 ways is the fast configuration
    // the example's own documentation recommends.
    let stdout = run_example("learn_hardware", &["skylake", "L3", "33", "2"], None);
    assert!(stdout.contains("identified policy"), "stdout:\n{stdout}");
}

#[test]
fn synthesize_policy_runs() {
    let stdout = run_example("synthesize_policy", &["FIFO", "2"], None);
    assert!(stdout.contains("template program"), "stdout:\n{stdout}");
}

#[test]
fn leader_sets_runs() {
    let stdout = run_example("leader_sets", &["8"], None);
    assert!(stdout.contains("Thrashing"), "stdout:\n{stdout}");
}

#[test]
fn learn_over_server_runs() {
    let stdout = run_example("learn_over_server", &["LRU", "2"], None);
    assert!(
        stdout.contains("byte-identical to the in-process run"),
        "stdout:\n{stdout}"
    );
    assert!(stdout.contains("cached: true"), "stdout:\n{stdout}");
}

#[test]
fn replay_trace_runs() {
    let stdout = run_example("replay_trace", &["2000", "2", "16"], None);
    assert!(stdout.contains("pointer-chase"), "stdout:\n{stdout}");
    assert!(stdout.contains("zero divergences"), "stdout:\n{stdout}");
}

#[test]
fn server_client_runs() {
    let stdout = run_example("server_client", &["FIFO@2"], None);
    assert!(stdout.contains("cached: true"), "stdout:\n{stdout}");
    assert!(stdout.contains("finished: 2 states"), "stdout:\n{stdout}");
    assert!(stdout.contains("daemon stopped"), "stdout:\n{stdout}");
}

#[test]
fn mbl_repl_runs_a_scripted_session() {
    let stdout = run_example(
        "mbl_repl",
        &[],
        Some("help\nlevel L1\nset 3\n@ X A?\nquit\n"),
    );
    assert!(stdout.contains("cachequery>"), "stdout:\n{stdout}");
}
