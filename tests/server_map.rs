//! End-to-end test of the `map` request: a `cqd` daemon sweeps the first
//! sets of the simulated Skylake-like L3 and returns a per-set policy map
//! that must agree with the roles the simulator actually planted.

use cache::{DuelingRole, LevelId};
use hardware::{CpuModel, SimulatedCpu};
use server::{spawn, Client, CqdConfig};

/// Sets to sweep: covers both primary leaders (0, 33) and one alternate
/// leader (31) of the 64-set dueling period, plus plenty of followers.
const SETS: u64 = 40;

#[test]
fn map_labels_every_set_like_the_simulator() {
    let daemon = spawn(CqdConfig::default()).unwrap();
    let mut client = Client::connect(daemon.addr()).unwrap();

    let map = client
        .map("skylake", 99, Some(2), 0, SETS)
        .expect("the map campaign runs");
    assert_eq!(map.model, "skylake");
    assert_eq!(map.level, "L3");
    assert_eq!(map.cat, Some(2));
    assert_eq!(map.sets.len(), SETS as usize);

    // Both leader groups ran a campaign; the primary (thrash-vulnerable)
    // group's fixed policy is the planted New2, learned and identified.
    assert_eq!(map.groups.len(), 2);
    let primary = map
        .groups
        .iter()
        .find(|g| g.class == "thrash-vulnerable")
        .expect("a primary leader group");
    assert_eq!(primary.outcome, "learned");
    assert_eq!(primary.identified, "New2");
    assert!(primary.states > 0 && primary.queries > 0);
    assert!(primary.namespace.contains("cat=2"));
    let alternate = map
        .groups
        .iter()
        .find(|g| g.class == "thrash-resistant")
        .expect("an alternate leader group");
    // The planted alternate policy is randomized: the campaign either
    // aborts with statistical evidence or learns a non-library skeleton.
    match alternate.outcome.as_str() {
        "learned" => assert!(
            alternate.identified.is_empty(),
            "skeleton must not identify"
        ),
        "not-deterministic" => assert!(alternate.disagreement_permille > 0),
        other => panic!("unexpected alternate outcome '{other}'"),
    }

    // Every per-set verdict agrees with the simulator's planted role.
    let truth = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 99);
    let sets_per_slice = CpuModel::SkylakeI5_6500
        .spec()
        .level(LevelId::L3)
        .unwrap()
        .geometry
        .sets_per_slice;
    for entry in &map.sets {
        let role = truth.l3_role(entry.slice as usize * sets_per_slice + entry.set as usize);
        match role {
            DuelingRole::LeaderPrimary => {
                assert_eq!(entry.verdict, "fixed", "set {}", entry.set);
                assert_eq!(entry.policy, "New2", "set {}", entry.set);
            }
            DuelingRole::LeaderAlternate => {
                assert_eq!(entry.class, "thrash-resistant", "set {}", entry.set);
                match entry.verdict.as_str() {
                    "fixed" => assert!(entry.policy.is_empty(), "set {}", entry.set),
                    "fixed-nondet" => {
                        assert!(entry.disagreement_permille > 0, "set {}", entry.set);
                    }
                    other => panic!(
                        "unexpected alternate verdict '{other}' on set {}",
                        entry.set
                    ),
                }
            }
            DuelingRole::Follower => {
                assert_eq!(entry.verdict, "adaptive", "set {}", entry.set);
                assert!(
                    entry.disagreement_permille > 0,
                    "set {}: a follower must flip with the forced duel polarity",
                    entry.set
                );
            }
        }
    }

    // Remapping the same CPU is deterministic — and served from the same
    // store namespaces the first sweep filled.
    let again = client.map("skylake", 99, Some(2), 0, SETS).unwrap();
    assert_eq!(again, map);
    let stats = client.stats().unwrap();
    assert!(
        stats
            .namespaces
            .iter()
            .any(|ns| ns.name == primary.namespace && ns.entries > 0),
        "the campaign namespace must be visible in the store: {:?}",
        stats.namespaces
    );
}

#[test]
fn map_rejects_bad_arguments() {
    let daemon = spawn(CqdConfig::default()).unwrap();
    let mut client = Client::connect(daemon.addr()).unwrap();

    // Unknown model.
    assert!(client.map("pentium", 1, Some(2), 0, 4).is_err());
    // Haswell has no CAT.
    assert!(client.map("haswell", 1, Some(2), 0, 4).is_err());
    // CAT ways beyond the Skylake L3's 12 ways.
    assert!(client.map("skylake", 1, Some(13), 0, 4).is_err());
    // No CAT restriction: learning at 12 ways exceeds the server's limit.
    assert!(client.map("skylake", 1, None, 0, 4).is_err());
    // Slice out of range (the Skylake L3 has 8 slices).
    assert!(client.map("skylake", 1, Some(2), 9, 4).is_err());
}
