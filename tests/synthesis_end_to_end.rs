//! Integration tests for the §8 synthesis step on top of learned automata.

use automata::check_equivalence;
use polca::{learn_simulated_policy, LearnSetup};
use policies::{policy_to_mealy, PolicyKind};
use synth::{reference_program, synthesize, ProgramPolicy, SynthesisConfig, Template};

#[test]
fn learned_fifo_yields_a_simple_template_program() {
    let outcome = learn_simulated_policy(PolicyKind::Fifo, 3, &LearnSetup::default()).unwrap();
    let config = SynthesisConfig {
        max_age: 2,
        ..SynthesisConfig::default()
    };
    let result = synthesize(&outcome.machine, 3, &config).expect("FIFO is explainable");
    assert_eq!(result.template, Template::Simple);
    let program_machine = policy_to_mealy(&ProgramPolicy::new(result.program), 1 << 16);
    assert!(check_equivalence(&program_machine, &outcome.machine).is_none());
}

#[test]
fn learned_new2_matches_the_figure_5_reference_explanation() {
    // Learn New2 from the simulated cache and check that the learned machine
    // is exactly explained by the Figure 5b program (the synthesized search
    // at associativity 4 runs in the benchmark harness; here we verify the
    // explanation itself end to end).
    let outcome = learn_simulated_policy(PolicyKind::New2, 4, &LearnSetup::default()).unwrap();
    let reference = reference_program(PolicyKind::New2, 4).unwrap();
    let reference_machine = policy_to_mealy(&ProgramPolicy::new(reference), 1 << 16);
    assert!(check_equivalence(&reference_machine, &outcome.machine).is_none());
}

#[test]
fn reference_explanations_cover_every_table_5_policy_except_plru() {
    for kind in [
        PolicyKind::Fifo,
        PolicyKind::Lru,
        PolicyKind::Lip,
        PolicyKind::Mru,
        PolicyKind::SrripHp,
        PolicyKind::SrripFp,
        PolicyKind::New1,
        PolicyKind::New2,
    ] {
        let program = reference_program(kind, 4).expect("explanation exists");
        let machine = policy_to_mealy(&ProgramPolicy::new(program.clone()), 1 << 16);
        let target = policy_to_mealy(kind.build(4).unwrap().as_ref(), 1 << 16);
        assert!(
            check_equivalence(&machine, &target).is_none(),
            "reference explanation for {kind} mismatches the policy"
        );
        // Table 5's template column.
        let expected_template = match kind {
            PolicyKind::Fifo | PolicyKind::Lru | PolicyKind::Lip => Template::Simple,
            _ => Template::Extended,
        };
        assert_eq!(program.template(), expected_template, "template of {kind}");
    }
    assert!(reference_program(PolicyKind::Plru, 4).is_none());
}

#[test]
fn synthesized_programs_execute_as_policies() {
    // A synthesized program can be plugged back into the cache model and
    // behaves like the original policy in a cache simulation.
    let learned = policy_to_mealy(PolicyKind::Lru.build(3).unwrap().as_ref(), 1 << 16);
    let config = SynthesisConfig {
        max_age: 2,
        ..SynthesisConfig::default()
    };
    let program = synthesize(&learned, 3, &config).unwrap().program;
    let mut synthesized_set = cache::CacheSet::filled(
        Box::new(ProgramPolicy::new(program)),
        (0..3).map(cache::Block::new),
    );
    let mut reference_set = cache::CacheSet::filled(
        PolicyKind::Lru.build(3).unwrap(),
        (0..3).map(cache::Block::new),
    );
    for b in [0u64, 3, 1, 4, 4, 2, 5, 0, 3, 1, 6, 2] {
        assert_eq!(
            synthesized_set.access(cache::Block::new(b)).outcome(),
            reference_set.access(cache::Block::new(b)).outcome(),
            "divergence at block {b}"
        );
    }
}
