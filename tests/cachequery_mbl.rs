//! Integration tests spanning the MBL language, the CacheQuery tool and the
//! simulated hardware.

use cache::{HitMiss, LevelId};
use cachequery::{detect_leader_sets, CacheQuery, LeaderClass, Target};
use hardware::{CpuModel, SimulatedCpu};

fn tool(model: CpuModel, seed: u64) -> CacheQuery {
    CacheQuery::new(SimulatedCpu::new(model, seed))
}

#[test]
fn example_4_1_against_every_cache_level() {
    // The '@ X _?' query (Example 4.1 / the findEvicted building block):
    // exactly one of the originally loaded blocks must miss after loading one
    // extra block, at every cache level of the simulated Skylake.
    let mut cq = tool(CpuModel::SkylakeI5_6500, 3);
    for (level, set) in [(LevelId::L1, 7), (LevelId::L2, 100), (LevelId::L3, 33)] {
        cq.set_target(Target::new(level, set, 0)).unwrap();
        let results = cq.query("@ X _?").unwrap();
        let assoc = cq.associativity().unwrap();
        assert_eq!(results.len(), assoc, "wrong expansion count at {level}");
        let misses = results
            .iter()
            .filter(|r| r.outcomes[0] == HitMiss::Miss)
            .count();
        assert_eq!(misses, 1, "expected exactly one eviction at {level}");
    }
}

#[test]
fn l2_behaviour_differs_between_haswell_and_skylake() {
    // The Haswell L2 is an 8-way PLRU set while the Skylake L2 is a 4-way
    // set running the New1 policy: a five-block working set fits in the
    // former but thrashes the latter, so the same MBL query distinguishes the
    // two simulated CPUs purely from hit/miss observations.
    let query = "A B C D E (A)?";
    let mut haswell = tool(CpuModel::HaswellI7_4790, 5);
    haswell.set_target(Target::new(LevelId::L2, 50, 0)).unwrap();
    let hw = &haswell.query(query).unwrap()[0].outcomes;

    let mut skylake = tool(CpuModel::SkylakeI5_6500, 5);
    skylake.set_target(Target::new(LevelId::L2, 50, 0)).unwrap();
    let sky = &skylake.query(query).unwrap()[0].outcomes;

    assert_eq!(
        hw,
        &vec![HitMiss::Hit],
        "five blocks fit in the 8-way Haswell L2"
    );
    assert_eq!(
        sky,
        &vec![HitMiss::Miss],
        "the 4-way Skylake L2 evicts block A"
    );
}

#[test]
fn query_cache_survives_export_import_across_tools() {
    let mut cq = tool(CpuModel::SkylakeI5_6500, 9);
    cq.set_target(Target::new(LevelId::L1, 2, 0)).unwrap();
    cq.query("@ X _?").unwrap();
    let exported = cq.export_cache();
    assert!(cq.cache_len() > 0);

    let mut other = tool(CpuModel::SkylakeI5_6500, 9);
    other.set_target(Target::new(LevelId::L1, 2, 0)).unwrap();
    other.import_cache(&exported);
    let results = other.query("@ X _?").unwrap();
    assert!(results.iter().all(|r| r.from_cache));
}

#[test]
fn leader_detection_flags_the_formula_sets() {
    let mut cq = tool(CpuModel::SkylakeI5_6500, 17);
    cq.apply_cat(4).unwrap();
    let candidates = [(0, 0), (33, 0), (2, 0), (40, 0)];
    let report = detect_leader_sets(&mut cq, LevelId::L3, &candidates, 1).unwrap();
    let vulnerable = report.thrash_vulnerable();
    assert!(vulnerable.contains(&(0, 0)));
    assert!(vulnerable.contains(&(33, 0)));
    for info in &report.sets {
        if info.set == 2 || info.set == 40 {
            assert_ne!(info.class, LeaderClass::ThrashVulnerable);
        }
    }
}
