//! Round-trip integration test: executable policy → ground-truth Mealy
//! machine (`policy_to_mealy`) → active learning from a simulated cache
//! (`learn_simulated_policy`) → identification against the policy library
//! (`identify_policy`).
//!
//! For every [`PolicyKind`] at associativities 2–4 the learned machine must
//! be trace-equivalent to the minimized ground truth (hence match its Table 2
//! state count), and identification must recover a policy that behaves
//! exactly like the source. One `#[test]` per policy keeps the expensive
//! associativity-4 learners running in parallel.

use automata::{equivalent, minimize};
use polca::{identify_policy, learn_simulated_policy, LearnSetup};
use policies::{policy_to_mealy, PolicyKind};

/// Table 2 of the paper at associativity 4 (the largest size this test
/// learns), pinned as literals so a regression in any layer of the pipeline
/// cannot silently drift the reproduced numbers.
fn table2_states_at_4(kind: PolicyKind) -> usize {
    match kind {
        PolicyKind::Fifo => 4,
        PolicyKind::Lru => 24,
        PolicyKind::Plru => 8,
        PolicyKind::Mru => 14,
        PolicyKind::Lip => 24,
        PolicyKind::SrripHp => 178,
        PolicyKind::SrripFp => 256,
        PolicyKind::New1 => 160,
        PolicyKind::New2 => 175,
        other => panic!("no Table 2 entry for {other}"),
    }
}

fn roundtrip(kind: PolicyKind) {
    for assoc in 2..=4usize {
        if !kind.supports_associativity(assoc) {
            continue;
        }
        // Conformance depth 2 keeps Theorem 3.3's exactness guarantee at the
        // small sizes (with k = 1 the MRU hypothesis can stall below the
        // target size); at associativity 4 depth 1 already learns exactly and
        // depth 2 would blow up the Wp suite of the 256-state policies.
        let setup = LearnSetup {
            conformance_depth: if assoc < 4 { 2 } else { 1 },
            ..LearnSetup::default()
        };
        let outcome = learn_simulated_policy(kind, assoc, &setup)
            .unwrap_or_else(|e| panic!("learning {kind} at associativity {assoc} failed: {e}"));
        let reference = minimize(&policy_to_mealy(
            kind.build(assoc).unwrap().as_ref(),
            1 << 18,
        ));

        assert!(
            equivalent(&outcome.machine, &reference),
            "{kind} at associativity {assoc} was mislearned"
        );
        assert_eq!(
            outcome.machine.num_states(),
            reference.num_states(),
            "{kind} at associativity {assoc}: learned machine is not minimal"
        );
        if assoc == 4 {
            assert_eq!(
                outcome.machine.num_states(),
                table2_states_at_4(kind),
                "{kind} at associativity 4 does not match Table 2"
            );
        }

        // Identification must find *a* policy, and that policy must behave
        // exactly like the source.  (At small associativities two library
        // entries may coincide semantically, so the returned kind itself is
        // only required to be behaviourally correct.)
        let (identified, _) =
            identify_policy(&outcome.machine, assoc, &PolicyKind::ALL_DETERMINISTIC)
                .unwrap_or_else(|| panic!("{kind} at associativity {assoc} was not identified"));
        let identified_reference = minimize(&policy_to_mealy(
            identified.build(assoc).unwrap().as_ref(),
            1 << 18,
        ));
        assert!(
            equivalent(&identified_reference, &reference),
            "{kind} at associativity {assoc} was identified as {identified}, \
             which is not trace-equivalent to it"
        );
    }
}

macro_rules! roundtrip_tests {
    ($($name:ident => $kind:expr,)*) => {$(
        #[test]
        fn $name() {
            roundtrip($kind);
        }
    )*};
}

roundtrip_tests! {
    fifo_roundtrips => PolicyKind::Fifo,
    lru_roundtrips => PolicyKind::Lru,
    plru_roundtrips => PolicyKind::Plru,
    mru_roundtrips => PolicyKind::Mru,
    lip_roundtrips => PolicyKind::Lip,
    srrip_hp_roundtrips => PolicyKind::SrripHp,
    srrip_fp_roundtrips => PolicyKind::SrripFp,
    new1_roundtrips => PolicyKind::New1,
    new2_roundtrips => PolicyKind::New2,
}
