//! Integration tests for the §6 pipeline: Polca + L* + Wp-method over
//! software-simulated caches, across crates.

use automata::{check_equivalence, minimize};
use polca::{identify_policy, learn_simulated_policy, LearnSetup};
use policies::{policy_to_mealy, PolicyKind};

fn learn(kind: PolicyKind, assoc: usize) -> polca::LearnOutcome {
    learn_simulated_policy(kind, assoc, &LearnSetup::default())
        .unwrap_or_else(|e| panic!("learning {kind} at associativity {assoc} failed: {e}"))
}

#[test]
fn every_policy_is_learned_exactly_at_small_associativity() {
    // Conformance depth 2: with k = 1 the MRU hypothesis can stall at 4
    // states while the target has 6 (> |H| + k), which Theorem 3.3 permits;
    // depth 2 restores the guarantee for every policy at these sizes.
    let setup = LearnSetup {
        conformance_depth: 2,
        ..LearnSetup::default()
    };
    for kind in PolicyKind::ALL_DETERMINISTIC {
        let assoc = if kind == PolicyKind::Plru { 4 } else { 3 };
        if !kind.supports_associativity(assoc) {
            continue;
        }
        let outcome = learn_simulated_policy(kind, assoc, &setup)
            .unwrap_or_else(|e| panic!("learning {kind} at associativity {assoc} failed: {e}"));
        let reference = policy_to_mealy(kind.build(assoc).unwrap().as_ref(), 1 << 18);
        assert!(
            check_equivalence(&outcome.machine, &minimize(&reference)).is_none(),
            "{kind} at associativity {assoc} was mislearned"
        );
    }
}

#[test]
fn learned_machines_are_identified_as_their_source_policy() {
    for kind in [
        PolicyKind::Fifo,
        PolicyKind::Lru,
        PolicyKind::Plru,
        PolicyKind::Mru,
    ] {
        let assoc = 4;
        let outcome = learn(kind, assoc);
        let identified = identify_policy(&outcome.machine, assoc, &PolicyKind::ALL_DETERMINISTIC)
            .map(|(k, _)| k);
        assert_eq!(identified, Some(kind), "misidentified {kind}");
    }
}

#[test]
fn table_2_state_counts_for_associativity_4() {
    // The learned automaton sizes must match Table 2 (and Table 4 for the
    // two policies learned from hardware) at associativity 4.
    let expected = [
        (PolicyKind::Fifo, 4),
        (PolicyKind::Lru, 24),
        (PolicyKind::Plru, 8),
        (PolicyKind::Mru, 14),
        (PolicyKind::Lip, 24),
        (PolicyKind::SrripHp, 178),
        (PolicyKind::SrripFp, 256),
        (PolicyKind::New1, 160),
        (PolicyKind::New2, 175),
    ];
    for (kind, states) in expected {
        let outcome = learn(kind, 4);
        assert_eq!(
            outcome.machine.num_states(),
            states,
            "unexpected state count for {kind}"
        );
    }
}

#[test]
fn learning_statistics_are_consistent() {
    let outcome = learn(PolicyKind::Mru, 4);
    assert!(outcome.stats.membership_queries > 0);
    assert!(outcome.cache_probes >= outcome.stats.membership_queries);
    assert!(outcome.block_accesses >= outcome.cache_probes);
    assert!(outcome.stats.equivalence_queries >= 1);
}
