//! Teeth test of the statistical non-determinism detector: learning a
//! dueling *follower* set of the simulated adaptive L3 while the duel state
//! is being agitated.
//!
//! A follower set has no fixed policy — it executes whichever of the two
//! leader policies the PSEL counter currently selects.  With the engine's
//! vote-based detection enabled, L* must **abort with evidence**
//! ([`learning::LearnError::NotDeterministic`]) instead of diverging or
//! returning a wrong automaton.  With detection disabled
//! ([`cachequery::VoteConfig::disabled`]), the same run must abort for some
//! other reason or converge on garbage — proving the detector (not luck) is
//! what the positive test exercises, mirroring the voting teeth test in
//! `tests/learn_noisy.rs`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use automata::render_mealy;
use cache::{DuelingRole, HitMiss, LevelId, SetDueling};
use cachequery::{
    Backend, BackendError, QueryBackend, QueryConfig, QueryEngine, Target, VoteConfig,
};
use hardware::{CpuModel, SimulatedCpu};
use learning::LearnError;
use mbl::Query;
use polca::{learn_policy, learn_simulated_policy, CacheQueryOracle, LearnSetup};
use policies::PolicyKind;

/// A follower set of the Skylake-like dueling layout (the leaders of each
/// 64-set period are 0/33 and 31/62).
const FOLLOWER_SET: usize = 1;
const SEED: u64 = 99;
const CAT_WAYS: usize = 2;

/// A [`QueryBackend`] that flips the duel polarity before every raw
/// execution: even executions force the PSEL deep into primary territory,
/// odd ones deep into alternate territory.  A follower set then answers each
/// repetition with a *different* policy — the adversarial environment the
/// detector exists for.  (On real silicon the agitation is co-running
/// traffic; here it is manufactured deterministically.)
#[derive(Clone)]
struct DuelAgitator {
    inner: Backend,
    dueling: SetDueling,
    executions: Arc<AtomicU64>,
}

impl DuelAgitator {
    fn new() -> Self {
        let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, SEED);
        let mut inner = Backend::new(cpu);
        inner
            .apply_cat(CAT_WAYS)
            .expect("the Skylake model supports CAT");
        inner.set_repetitions(5);
        inner
            .select_target(Target::new(LevelId::L3, FOLLOWER_SET, 0))
            .expect("the follower set is in range");
        // The handle must be taken *after* `apply_cat`: CAT rebuilds the
        // hierarchy and with it the dueling controller.
        let dueling = inner
            .cpu()
            .l3_dueling()
            .expect("the Skylake L3 is adaptive");
        assert_eq!(
            inner.cpu().l3_role(FOLLOWER_SET),
            DuelingRole::Follower,
            "the test must target a follower set"
        );
        DuelAgitator {
            inner,
            dueling,
            executions: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl QueryBackend for DuelAgitator {
    fn execute(&mut self, query: &Query) -> Result<(Vec<HitMiss>, bool), BackendError> {
        let n = self.executions.fetch_add(1, Ordering::Relaxed);
        self.dueling.force_psel(if n.is_multiple_of(2) {
            i32::MIN / 2
        } else {
            i32::MAX / 2
        });
        self.inner.execute(query)
    }

    fn config(&self) -> Result<QueryConfig, BackendError> {
        self.inner.config()
    }

    fn associativity(&self) -> Result<usize, BackendError> {
        self.inner.associativity()
    }
}

fn setup() -> LearnSetup {
    LearnSetup {
        workers: 1,
        max_states: 200,
        time_budget: Some(std::time::Duration::from_secs(120)),
        ..LearnSetup::default()
    }
}

#[test]
fn learning_a_follower_aborts_with_statistical_evidence() {
    let engine = QueryEngine::new(DuelAgitator::new());
    let oracle = CacheQueryOracle::from_engine(engine).expect("the backend is configured");
    match learn_policy(oracle, &setup()) {
        Err(LearnError::NotDeterministic(evidence)) => {
            assert!(
                evidence.disagreement_permille > 0,
                "the verdict must carry a nonzero disagreement rate: {evidence}"
            );
            assert!(
                evidence.worst_margin_permille < 500,
                "the worst vote must fall below the 500‰ margin rule: {evidence}"
            );
            assert!(
                !evidence.worst_query.is_empty(),
                "the verdict must name the worst query"
            );
            assert!(evidence.voted_queries > 0 && evidence.unsettled_queries > 0);
        }
        Err(other) => panic!("expected a NotDeterministic verdict, got: {other}"),
        Ok(outcome) => panic!(
            "learning a dueling follower under agitation converged on a {}-state machine — \
             the non-determinism detector has no teeth",
            outcome.machine.num_states()
        ),
    }
}

#[test]
fn disabling_detection_breaks_follower_learning() {
    // Same follower, same agitation, voting off: every query is a single
    // measurement taken under whichever polarity the flip counter landed on.
    // The learner must abort for some other reason or converge on garbage —
    // it must NOT reproduce the primary leader policy's automaton.
    let reference = learn_simulated_policy(PolicyKind::New2, CAT_WAYS, &setup())
        .expect("the primary policy learns noise-free");
    let mut engine = QueryEngine::new(DuelAgitator::new());
    engine.set_vote_config(VoteConfig::disabled());
    let oracle = CacheQueryOracle::from_engine(engine).expect("the backend is configured");
    match learn_policy(oracle, &setup()) {
        Err(LearnError::NotDeterministic(evidence)) => {
            panic!("voting is disabled, yet the run produced a statistical verdict: {evidence}")
        }
        Err(_) => {} // aborted (oracle inconsistency, state cap, budget): expected
        Ok(outcome) => {
            assert_ne!(
                render_mealy(&outcome.machine),
                render_mealy(&reference.machine),
                "detection-disabled learning of an agitated follower reproduced the \
                 primary policy's automaton — the agitation is not reaching the learner \
                 and this suite has no teeth"
            );
        }
    }
}
