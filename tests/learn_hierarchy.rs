//! Learning *through* a two-level inclusive hierarchy: the cache-filtering
//! guarantee of the cartography subsystem.
//!
//! Every probe of a [`polca::HierarchyBackend`] traverses a full
//! [`cache::Hierarchy`] — the policy under learning governs a single-set L1
//! with an inclusive L2 interposed — instead of a bare policy simulator.
//! The filtered placement must be *transparent*: the automaton learned
//! through the hierarchy is **byte-identical** (text rendering and state
//! count) to the bare-policy run, and it survives the differential
//! conformance harness against the executable ground-truth policy.

use automata::render_mealy;
use polca::{conformance_walk, learn_hierarchy_policy, learn_simulated_policy, LearnSetup};
use policies::PolicyKind;

/// Membership-query determinism needs a fixed worker count — same as the
/// noisy and remote byte-identity suites.
fn setup() -> LearnSetup {
    LearnSetup {
        workers: 1,
        ..LearnSetup::default()
    }
}

fn assert_hierarchy_learning_matches_bare(kind: PolicyKind, assoc: usize, expected_states: usize) {
    let bare = learn_simulated_policy(kind, assoc, &setup()).expect("bare-policy learning");
    let filtered = learn_hierarchy_policy(kind, assoc, &setup())
        .unwrap_or_else(|e| panic!("{kind}/{assoc} failed to learn through the hierarchy: {e}"));

    assert_eq!(
        filtered.machine.num_states(),
        expected_states,
        "{kind}/{assoc} learned through the hierarchy must reproduce its Table 2 state count"
    );
    assert_eq!(
        render_mealy(&filtered.machine),
        render_mealy(&bare.machine),
        "{kind}/{assoc}: the automaton learned through the inclusive L2 diverged \
         from the bare-policy run — the hierarchy is not transparent"
    );
    assert_eq!(
        filtered.stats.membership_queries, bare.stats.membership_queries,
        "{kind}/{assoc}: the hierarchy changed the learner's membership-query count"
    );

    // Third, independent angle: random-walk the filtered automaton against
    // the executable ground-truth policy simulator.
    let report = conformance_walk(&filtered.machine, kind, assoc, 4000, 0xCAFE)
        .expect("the policy supports the associativity");
    assert!(
        report.passed(),
        "{kind}/{assoc}: the hierarchy-learned automaton diverged from the \
         ground-truth simulator: {:?}",
        report.divergence
    );
}

#[test]
fn lru_4_learned_through_the_hierarchy_is_byte_identical() {
    assert_hierarchy_learning_matches_bare(PolicyKind::Lru, 4, 24);
}

#[test]
fn plru_4_learned_through_the_hierarchy_is_byte_identical() {
    assert_hierarchy_learning_matches_bare(PolicyKind::Plru, 4, 8);
}

#[test]
fn srrip_fp_2_learned_through_the_hierarchy_is_byte_identical() {
    assert_hierarchy_learning_matches_bare(PolicyKind::SrripFp, 2, 16);
}
