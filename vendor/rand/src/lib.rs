//! Offline, vendored subset of the `rand` 0.8 API.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! workspace vendors the small slice of `rand` the code actually uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`].  The generator is a `SplitMix64`-seeded `xoshiro256**`
//! — statistically strong, deterministic across platforms, and more than
//! adequate for the simulation/noise/random-walk duties it serves here.
//! It is **not** cryptographically secure, exactly like `StdRng`'s
//! documented contract of "reproducible, not security-grade" when seeded
//! via `seed_from_u64`.
//!
//! Only the APIs the workspace uses are provided; anything else from real
//! `rand` is intentionally absent so accidental new uses fail loudly at
//! compile time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A value that can be sampled uniformly from an `Rng` ("standard"
/// distribution in real `rand` terms).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.  Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Draws a uniform value in `[0, bound)` with multiply-shift rejection
/// (Lemire's method, the same family real `rand` uses).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.  Panics on an empty range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed, mirroring
/// `rand::SeedableRng` (only the `seed_from_u64` entry point is vendored).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: `xoshiro256**`
    /// seeded through `SplitMix64`, as recommended by its authors.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut state);
            }
            // All-zero state would trap xoshiro in the zero cycle.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
