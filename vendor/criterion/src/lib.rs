//! Offline, vendored subset of the `criterion` benchmarking API.
//!
//! The build container has no crates.io access, so the workspace's benches
//! (`harness = false` targets) link against this small reimplementation of
//! the criterion surface they use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`bench_with_input`](BenchmarkGroup::bench_with_input),
//! [`Bencher::iter`], [`BenchmarkId`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Instead of criterion's statistics engine it runs a fixed warm-up followed
//! by `sample_size` timed samples and reports min / mean / max per benchmark
//! — enough to track trajectories in `CHANGES.md` without external deps.
//! Like real criterion it understands being invoked by `cargo bench`
//! (ignoring harness flags such as `--bench`) and filters benchmarks by any
//! positional substring argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function, mirroring
/// `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Identifies one benchmark inside a group: a function name plus a
/// parameter, rendered `name/parameter` like real criterion.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.parameter)
        } else if self.parameter.is_empty() {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{}/{}", self.name, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: String::new(),
        }
    }
}

/// Drives the timed closure, mirroring `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, once per sample, after a small warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            std_black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in this group records.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample_size must be positive");
        self.sample_size = samples;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(id, |bencher| routine(bencher));
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(id, |bencher| routine(bencher, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut routine: impl FnMut(&mut Bencher)) {
        let full_name = format!("{}/{}", self.name, id);
        if !self.criterion.matches_filter(&full_name) {
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        report(&full_name, &bencher.samples);
    }

    /// Ends the group (a no-op here; present for API compatibility).
    pub fn finish(self) {}
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples recorded)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{name:<50} time: [{} {} {}]  ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// The benchmark manager, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench invokes the target with harness flags (e.g. `--bench`)
        // and forwards user arguments; treat the first non-flag argument as a
        // substring filter, like real criterion.
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function(BenchmarkId::from(""), routine);
        group.finish();
        self
    }

    fn matches_filter(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(filter) => full_name.contains(filter.as_str()),
            None => true,
        }
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function running one or more groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
