//! Offline, vendored subset of the `proptest` API.
//!
//! The build container has no crates.io access, so this crate reimplements
//! the slice of `proptest` that the workspace's five property suites use:
//! the [`proptest!`] macro (including `#![proptest_config(..)]`), the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`strategy::Just`], [`collection::vec`], [`sample::select`],
//! [`prop_oneof!`] and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.**  A failing case is reported with its full inputs and
//!   the deterministic seed that produced it, but it is not minimized.
//! * **Deterministic by default.**  Cases derive from a fixed base seed so CI
//!   runs are reproducible; set `PROPTEST_SEED` to explore a different
//!   stream and `PROPTEST_CASES` (or `proptest.toml`'s `cases = N`) to
//!   change the number of cases per property.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with the case's inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{}\n  both: {:?}",
            format!($($fmt)*),
            l
        );
    }};
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property-based tests, mirroring `proptest::proptest!`.
///
/// Supports the subset of the real grammar used in this workspace: an
/// optional `#![proptest_config(expr)]` header followed by `#[test]`
/// functions whose arguments have the form `pattern in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg_pat:pat in $arg_strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_property(
                    stringify!($name),
                    &config,
                    |__proptest_rng| {
                        let mut __proptest_inputs: ::std::vec::Vec<::std::string::String> =
                            ::std::vec::Vec::new();
                        $(
                            let __proptest_value = $crate::strategy::Strategy::new_value(
                                &($arg_strategy),
                                __proptest_rng,
                            );
                            __proptest_inputs.push(format!(
                                "{} = {:?}",
                                stringify!($arg_pat),
                                &__proptest_value
                            ));
                            let $arg_pat = __proptest_value;
                        )+
                        let __proptest_body = ||
                            -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::core::result::Result::Ok(())
                        };
                        __proptest_body().map_err(|e| e.with_inputs(&__proptest_inputs))
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}
