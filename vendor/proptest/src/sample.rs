//! Sampling strategies, mirroring `proptest::sample`.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy drawing uniformly from a fixed list of values.
///
/// Panics at construction if the list is empty, like real proptest.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "sample::select on an empty list");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}
