//! Value-generation strategies, mirroring `proptest::strategy`.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy just
/// draws a fresh value from the runner's deterministic RNG.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<T, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, map }
    }

    /// Generates an intermediate value and uses it to pick a second-stage
    /// strategy, from which the final value is drawn.
    fn prop_flat_map<S, F>(self, flat_map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            source: self,
            flat_map,
        }
    }

    /// Erases the concrete strategy type (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        self.inner.new_value(rng)
    }
}

/// Strategy that always produces a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        (self.map)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone, Copy)]
pub struct FlatMap<S, F> {
    source: S,
    flat_map: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.flat_map)(self.source.new_value(rng)).new_value(rng)
    }
}

/// Uniform choice between type-erased alternatives; built by
/// [`prop_oneof!`](crate::prop_oneof).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        let choice = rng.gen_range(0..self.options.len());
        self.options[choice].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
