//! Collection strategies, mirroring `proptest::collection`.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A length specification for collection strategies, mirroring
/// `proptest::collection::SizeRange`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
