//! The case-generation loop behind the [`proptest!`](crate::proptest) macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A failed property case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
    inputs: Vec<String>,
}

impl TestCaseError {
    /// Creates a failure with the given message (what `prop_assert!` emits).
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            inputs: Vec::new(),
        }
    }

    /// Attaches the generated inputs of the failing case for reporting.
    pub fn with_inputs(mut self, inputs: &[String]) -> Self {
        self.inputs = inputs.to_vec();
        self
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Base seed from which per-case seeds derive.
    pub seed: u64,
}

impl ProptestConfig {
    /// A configuration running `cases` cases (other fields default).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: default_cases(),
            seed: default_seed(),
        }
    }
}

/// Resolves the default case count: `PROPTEST_CASES` env var, then a
/// `cases = N` line in a `proptest.toml` found in the manifest directory or
/// one of its ancestors, then 64.
fn default_cases() -> u32 {
    if let Ok(value) = std::env::var("PROPTEST_CASES") {
        if let Ok(parsed) = value.trim().parse() {
            return parsed;
        }
    }
    if let Some(cases) = cases_from_proptest_toml() {
        return cases;
    }
    64
}

/// Looks for `proptest.toml` beside the running test's manifest and in its
/// ancestor directories (so a single workspace-root file governs every
/// crate), reading only the `cases = N` key.
fn cases_from_proptest_toml() -> Option<u32> {
    let start = std::env::var("CARGO_MANIFEST_DIR").ok()?;
    let mut dir = Some(std::path::PathBuf::from(start));
    while let Some(d) = dir {
        let candidate = d.join("proptest.toml");
        if let Ok(text) = std::fs::read_to_string(&candidate) {
            for line in text.lines() {
                let line = line.split('#').next().unwrap_or("").trim();
                if let Some(rest) = line.strip_prefix("cases") {
                    let rest = rest.trim_start();
                    if let Some(value) = rest.strip_prefix('=') {
                        if let Ok(parsed) = value.trim().parse() {
                            return Some(parsed);
                        }
                    }
                }
            }
            return None;
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}

fn default_seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(value) => value
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {value:?}")),
        Err(_) => 0xCAC4E_u64,
    }
}

/// Runs one property `config.cases` times with deterministic per-case seeds,
/// panicking (to fail the `#[test]`) on the first failing case.
///
/// Unlike real proptest there is no shrinking: the failing case is reported
/// verbatim together with the seed that reproduces it.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    for index in 0..config.cases {
        let case_seed = config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(index));
        let mut rng = StdRng::seed_from_u64(case_seed);
        if let Err(error) = case(&mut rng) {
            let mut report = format!(
                "property `{name}` failed at case {index}/{} (base seed {}, case seed {case_seed}):\n  {}",
                config.cases, config.seed, error.message
            );
            if !error.inputs.is_empty() {
                report.push_str("\ninputs:");
                for input in &error.inputs {
                    report.push_str("\n  ");
                    report.push_str(input);
                }
            }
            report.push_str(
                "\n(no shrinking in the vendored proptest; rerun with \
                 PROPTEST_SEED to explore nearby cases)",
            );
            panic!("{report}");
        }
    }
}
