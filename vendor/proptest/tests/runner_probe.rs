//! Self-tests of the vendored proptest: the macro really runs cases, honors
//! config, reports failures, and strategies cover their domains.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

static CASES_RUN: AtomicU32 = AtomicU32::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(37))]

    #[test]
    fn config_case_count_is_honored(_x in 0u32..10) {
        CASES_RUN.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn z_config_case_count_was_honored() {
    // Test ordering is not guaranteed; re-invoke the property so the counter
    // holds a whole number of 37-case batches regardless.
    config_case_count_is_honored();
    assert_eq!(CASES_RUN.load(Ordering::SeqCst) % 37, 0);
    assert!(CASES_RUN.load(Ordering::SeqCst) > 0);
}

proptest! {
    #[test]
    fn ranges_cover_their_domain(x in 5usize..8) {
        prop_assert!((5..8).contains(&x));
    }

    #[test]
    fn vec_lengths_are_in_range(v in proptest::collection::vec(0u8..4, 2..5)) {
        prop_assert!((2..5).contains(&v.len()));
        prop_assert!(v.iter().all(|&b| b < 4));
    }

    #[test]
    fn select_draws_from_the_list(x in proptest::sample::select(vec![2usize, 4, 6])) {
        prop_assert!(x == 2 || x == 4 || x == 6);
    }

    #[test]
    fn oneof_and_flat_map_compose(
        (len, v) in (1usize..4).prop_flat_map(|n| {
            (Just(n), proptest::collection::vec(prop_oneof![Just(0u8), Just(9)], n..=n))
        })
    ) {
        prop_assert_eq!(v.len(), len);
        prop_assert!(v.iter().all(|&b| b == 0 || b == 9));
    }
}

#[test]
// The nested `#[test]` is deliberate: this checks what the macro expands to.
#[allow(unnameable_test_items)]
fn failing_properties_panic_with_inputs() {
    let result = std::panic::catch_unwind(|| {
        proptest! {
            #[test]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    });
    let message = *result
        .expect_err("property must fail")
        .downcast::<String>()
        .unwrap();
    assert!(message.contains("always_fails"), "message: {message}");
    assert!(message.contains("x ="), "message: {message}");
}

#[test]
fn workspace_proptest_toml_is_discovered() {
    // The workspace root checks in a proptest.toml with `cases = 64`; the
    // default config must pick it up by walking up from the manifest dir
    // (unless the environment explicitly overrides it).
    if std::env::var("PROPTEST_CASES").is_err() {
        assert_eq!(ProptestConfig::default().cases, 64);
    }
}
