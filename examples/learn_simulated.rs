//! The §6 case study for a single policy: learn a replacement policy from a
//! noiseless software-simulated cache and compare it against the ground
//! truth.
//!
//! Run with: `cargo run --release --example learn_simulated -- [POLICY] [ASSOC] [DEPTH] [WORKERS]`
//! e.g.      `cargo run --release --example learn_simulated -- SRRIP-HP 4 1`
//!
//! `WORKERS` (default 0 = auto) shards conformance testing across a worker
//! pool; the `CACHEQUERY_WORKERS` environment variable sets the same knob.

use automata::check_equivalence;
use polca::{learn_simulated_policy, LearnSetup};
use policies::{policy_to_mealy, PolicyKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let policy: PolicyKind = args
        .first()
        .and_then(|p| p.parse().ok())
        .unwrap_or(PolicyKind::Mru);
    let assoc: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let depth: usize = args.get(2).and_then(|d| d.parse().ok()).unwrap_or(1);
    let workers: usize = args.get(3).and_then(|w| w.parse().ok()).unwrap_or(0);

    if !policy.supports_associativity(assoc) {
        eprintln!("{policy} does not support associativity {assoc}");
        std::process::exit(1);
    }

    println!("Learning {policy} at associativity {assoc} from a software-simulated cache");
    let setup = LearnSetup {
        conformance_depth: depth,
        workers,
        ..LearnSetup::default()
    };
    let outcome = learn_simulated_policy(policy, assoc, &setup).expect("learning succeeds");
    println!("  states                : {}", outcome.machine.num_states());
    println!(
        "  membership queries    : {}",
        outcome.stats.membership_queries
    );
    println!(
        "  query-cache hit rate  : {:.1}% ({} hits / {} misses)",
        outcome.stats.cache_hit_rate() * 100.0,
        outcome.stats.cache_hits,
        outcome.stats.cache_misses
    );
    println!(
        "  equivalence queries   : {}",
        outcome.stats.equivalence_queries
    );
    println!(
        "  conformance tests     : {} across {} worker shards",
        outcome.stats.conformance_tests, outcome.stats.equivalence_shards
    );
    println!(
        "  counterexamples       : {}",
        outcome.stats.counterexamples
    );
    println!("  cache probes (Polca)  : {}", outcome.cache_probes);
    println!("  block accesses        : {}", outcome.block_accesses);
    println!("  wall-clock time       : {:?}", outcome.stats.duration);

    let reference = policy_to_mealy(policy.build(assoc).unwrap().as_ref(), 1 << 20);
    match check_equivalence(&outcome.machine, &reference) {
        None => println!("  ground-truth check    : learned machine is exactly {policy}"),
        Some(cex) => println!(
            "  ground-truth check    : MISMATCH on {:?} ({} vs {})",
            cex.word, cex.left_output, cex.right_output
        ),
    }
}
