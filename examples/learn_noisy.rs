//! Learning under injected noise: learn a policy through a fault-injecting
//! simulated backend and show that the engine's repetition/majority vote
//! recovers the exact noise-free automaton (the simulated analogue of the
//! paper's §5 noise handling).
//!
//! Run with: `cargo run --release --example learn_noisy -- [POLICY] [ASSOC] [FLIP_PERMILLE]`
//! e.g.      `cargo run --release --example learn_noisy -- LRU 4 50`
//!
//! `FLIP_PERMILLE` is the per-access classification-flip rate in permille
//! (default 50 = the 5% rate the noise-robustness tests pin); drops and
//! spurious evictions are demonstrated at small fixed rates.

use automata::render_mealy;
use cachequery::{NoiseSpec, VoteConfig};
use polca::{conformance_walk, learn_noisy_policy, learn_simulated_policy, LearnSetup};
use policies::PolicyKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let policy: PolicyKind = args
        .first()
        .and_then(|p| p.parse().ok())
        .unwrap_or(PolicyKind::Lru);
    let assoc: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let flip_permille: u32 = args.get(2).and_then(|f| f.parse().ok()).unwrap_or(50);

    if !policy.supports_associativity(assoc) {
        eprintln!("{policy} does not support associativity {assoc}");
        std::process::exit(1);
    }
    let noise = NoiseSpec {
        flip_permille,
        drop_permille: 5,
        evict_permille: 5,
        seed: 7,
    };
    // One worker keeps the membership-query count deterministic (the voted
    // answers themselves are worker-count-independent).
    let setup = LearnSetup {
        workers: 1,
        ..LearnSetup::default()
    };

    println!("Learning {policy} at associativity {assoc} without noise");
    let clean = learn_simulated_policy(policy, assoc, &setup).expect("noise-free learning");
    println!(
        "  states: {}, membership queries: {}",
        clean.machine.num_states(),
        clean.stats.membership_queries
    );

    println!(
        "Learning {policy}@{assoc} again through a noisy backend \
         (flips {}/1000 per access, drops 5/1000, spurious evictions 5/1000)",
        noise.flip_permille
    );
    let noisy = learn_noisy_policy(policy, assoc, noise, VoteConfig::default(), &setup)
        .expect("voted learning absorbs the faults");
    println!(
        "  states: {}, membership queries: {}",
        noisy.machine.num_states(),
        noisy.stats.membership_queries
    );

    if render_mealy(&noisy.machine) == render_mealy(&clean.machine) {
        println!("  the noisy run is byte-identical to the noise-free automaton");
    } else {
        println!("  MISMATCH: the noisy run diverged from the noise-free automaton");
        std::process::exit(1);
    }

    // Close the loop with the differential conformance harness: random-walk
    // the noisily-learned machine against the ground-truth simulator.
    let report =
        conformance_walk(&noisy.machine, policy, assoc, 2000, 1).expect("supported associativity");
    match report.divergence {
        None => println!("  conformance walk: 2000 random steps, zero divergences"),
        Some(divergence) => {
            println!("  conformance walk DIVERGED: {divergence}");
            std::process::exit(1);
        }
    }
}
