//! §8 end to end for one policy: learn a policy automaton from a simulated
//! cache and synthesize a human-readable explanation for it (Figure 5 style).
//!
//! Run with: `cargo run --release --example synthesize_policy -- [POLICY] [ASSOC]`
//! e.g.      `cargo run --release --example synthesize_policy -- New2 4`
//!
//! Associativity 4 with the full age range (as in Table 5) can take a few
//! minutes for the Extended-template policies; associativity 2-3 finishes in
//! seconds.

use polca::{learn_simulated_policy, LearnSetup};
use policies::PolicyKind;
use synth::{synthesize, SynthesisConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let policy: PolicyKind = args
        .first()
        .and_then(|p| p.parse().ok())
        .unwrap_or(PolicyKind::New1);
    let assoc: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("Step 1: learning {policy} at associativity {assoc} from a simulated cache");
    let outcome =
        learn_simulated_policy(policy, assoc, &LearnSetup::default()).expect("learning succeeds");
    println!(
        "  learned a {}-state automaton",
        outcome.machine.num_states()
    );

    println!("Step 2: synthesizing an explanation");
    let config = SynthesisConfig::default();
    match synthesize(&outcome.machine, assoc, &config) {
        Some(result) => {
            println!(
                "  found a {} template program after {} phase-A and {} phase-B candidates ({:?})",
                result.template,
                result.stats.phase_a_candidates,
                result.stats.phase_b_candidates,
                result.stats.duration
            );
            println!();
            println!("{}", result.program);
        }
        None => {
            println!("  no program in the template space matches this policy");
            println!("  (expected for tree-based PLRU, cf. §8.2 of the paper)");
        }
    }
}
