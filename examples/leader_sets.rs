//! Appendix B in miniature: detect the leader sets of the simulated Skylake
//! last-level cache with thrashing queries.
//!
//! Run with: `cargo run --release --example leader_sets -- [NUM_SETS]`

use cache::LevelId;
use cachequery::{detect_leader_sets, CacheQuery, LeaderClass};
use hardware::{CpuModel, SimulatedCpu};

fn main() {
    let sample: usize = std::env::args()
        .nth(1)
        .and_then(|n| n.parse().ok())
        .unwrap_or(40);

    let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 5);
    let mut tool = CacheQuery::new(cpu);
    tool.apply_cat(4)
        .expect("the simulated Skylake supports CAT");

    println!("Thrashing the first {sample} sets of the simulated Skylake L3 (slice 0)");
    let candidates: Vec<(usize, usize)> = (0..sample).map(|set| (set, 0)).collect();
    let report =
        detect_leader_sets(&mut tool, LevelId::L3, &candidates, 2).expect("detection runs");

    for info in &report.sets {
        let label = match info.class {
            LeaderClass::ThrashVulnerable => "LEADER (thrash-vulnerable, fixed policy)",
            LeaderClass::ThrashResistant => "thrash-resistant",
            LeaderClass::Adaptive => "adaptive follower",
        };
        println!(
            "  set {:>3}: miss rate {:.2} -> {:.2}  {label}",
            info.set, info.miss_rate_initial, info.miss_rate_after_duel
        );
    }
    println!();
    println!(
        "thrash-vulnerable leader sets found: {:?}",
        report
            .thrash_vulnerable()
            .iter()
            .map(|(s, _)| s)
            .collect::<Vec<_>>()
    );
    println!("paper (Appendix B): leaders at sets 0, 33, 132, 165, ... (16 per slice)");
}
