//! Trace replay end to end: generate synthetic traffic, sweep it through
//! every deterministic policy, then prove a learned machine on it.
//!
//! Run with: `cargo run --release --example replay_trace -- [ACCESSES] [WAYS] [SETS]`
//! e.g.      `cargo run --release --example replay_trace -- 100000 4 64`
//!
//! Three steps:
//!
//! 1. Generate one trace per generator (sequential, strided, zipfian,
//!    pointer-chase), all pure functions of their seed.
//! 2. Replay each trace through the executable simulator of every
//!    deterministic policy and print the per-policy hit-rate table.
//! 3. Learn LRU from scratch and replay the learned automaton
//!    *differentially* against its simulator — every access must agree.

use cache::CacheGeometry;
use polca::{exact_learn_setup, learn_simulated_policy};
use policies::PolicyKind;
use trace::{differential_replay, generate, replay_policy, GeneratorKind, TraceSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let accesses: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(50_000);
    let ways: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(2);
    let sets: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(64);

    let geometry = CacheGeometry::new(ways, sets, 1, 64);
    // A working set of 1.5x the cache capacity: enough reuse to hit, enough
    // pressure to make the policies' choices matter.
    let lines = ways * sets * 3 / 2;
    let spec = |generator| TraceSpec {
        generator,
        accesses,
        lines,
        seed: 1,
        ..TraceSpec::default()
    };

    println!(
        "Replaying {accesses} accesses over a {lines}-line working set \
         through {ways}-way x {sets}-set caches"
    );
    println!();

    // ---- Step 2: the per-policy hit-rate table. --------------------------
    let header = format!(
        "{:<10} {:>11} {:>9} {:>9} {:>14}",
        "policy", "sequential", "strided", "zipfian", "pointer-chase"
    );
    println!("{header}");
    println!("{}", "-".repeat(header.len()));
    for kind in PolicyKind::ALL_DETERMINISTIC {
        if !kind.supports_associativity(ways) {
            continue;
        }
        let mut cells = format!("{:<10}", kind.to_string());
        for generator in GeneratorKind::ALL {
            let trace = generate(&spec(generator));
            let counts = replay_policy(&trace, kind, geometry).expect("supported associativity");
            let width = match generator {
                GeneratorKind::Sequential => 11,
                GeneratorKind::PointerChase => 14,
                _ => 9,
            };
            cells.push_str(&format!(
                " {:>width$}",
                format!("{:.1}%", 100.0 * counts.hit_rate())
            ));
        }
        println!("{cells}");
    }

    // ---- Step 3: a learned machine survives the same traffic. ------------
    println!();
    let kind = PolicyKind::Lru;
    println!("Learning {kind}@{ways} and replaying the learned automaton differentially...");
    let outcome =
        learn_simulated_policy(kind, ways, &exact_learn_setup(ways)).expect("learning succeeds");
    let mut replayed = 0u64;
    for generator in GeneratorKind::ALL {
        let trace = generate(&spec(generator));
        let report = differential_replay(&trace, kind, geometry, &outcome.machine)
            .expect("the learned machine matches the geometry");
        if let Some(divergence) = report.divergence {
            println!("  {generator}: DIVERGED — {divergence}");
            std::process::exit(1);
        }
        replayed += report.simulator.accesses;
    }
    println!(
        "  learned {kind}@{ways} ({} states) replayed {replayed} accesses \
         with zero divergences",
        outcome.machine.num_states()
    );
}
