//! The interactive CacheQuery shell (the "interactive mode" of §4.2).
//!
//! Run with: `cargo run --example mbl_repl -- [CPU]` and type MBL queries or
//! configuration commands (`help` lists them, `quit` exits).

use std::io::{self, BufRead, Write};

use cachequery::{process_command, CacheQuery, ReplSession};
use hardware::{CpuModel, SimulatedCpu};

fn main() {
    let cpu_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "skylake".to_string());
    let model = match cpu_name.to_ascii_lowercase().as_str() {
        "haswell" => CpuModel::HaswellI7_4790,
        "kabylake" | "kaby-lake" => CpuModel::KabyLakeI7_8550U,
        _ => CpuModel::SkylakeI5_6500,
    };
    println!(
        "CacheQuery interactive shell on the simulated {}",
        model.spec().name
    );
    println!("type 'help' for commands, 'quit' to exit");

    let mut session = ReplSession::new(CacheQuery::new(SimulatedCpu::new(model, 7)));
    let stdin = io::stdin();
    loop {
        print!("cachequery> ");
        io::stdout().flush().expect("stdout is writable");
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        let response = process_command(&mut session, line);
        if !response.is_empty() {
            println!("{response}");
        }
    }
}
