//! A complete `cqd` client session: spawn an in-process daemon, configure a
//! target, run queries from two sessions (demonstrating the shared
//! cross-session store), start a learning job, and read the metrics.
//!
//! Run with: `cargo run --example server_client -- [POLICY@ASSOC]`

use server::{spawn, Client, CqdConfig, SessionSpec};

fn main() {
    let learn_spec = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "LRU@2".to_string());

    // In production `cqd` runs standalone (`cargo run -p server --bin cqd`);
    // for a self-contained example an in-process daemon on an ephemeral
    // port behaves identically.
    let daemon = spawn(CqdConfig::default()).expect("ephemeral port is bindable");
    println!("cqd listening on {}", daemon.addr());

    let mut client = Client::connect(daemon.addr()).expect("daemon accepts connections");
    let info = client.hello().expect("handshake");
    println!(
        "connected to {} (proto {}, {} workers)",
        info.server, info.proto, info.workers
    );

    // Target the simulated Skylake L2, set 63 — the Figure 1 configuration.
    let spec = SessionSpec {
        level: "L2".to_string(),
        set: 63,
        ..SessionSpec::default()
    };
    println!("{}", client.target(&spec).expect("valid target"));

    // Figure 1's trace: fill A B C, then profile the re-access of A.
    for outcome in client.query("A B C A?").expect("well-formed MBL") {
        println!(
            "  {} -> {} (cached: {})",
            outcome.query, outcome.pattern, outcome.cached
        );
    }

    // A second session asking an overlapping question is answered from the
    // shared store without touching the backend.
    let mut second = Client::connect(daemon.addr()).expect("daemon accepts connections");
    second.target(&spec).expect("valid target");
    for outcome in second.query("A B C A?").expect("well-formed MBL") {
        println!(
            "  second session: {} -> {} (cached: {})",
            outcome.query, outcome.pattern, outcome.cached
        );
    }

    // Learning runs asynchronously; `wait` streams status lines.
    let id = client.learn(&learn_spec).expect("valid learn spec");
    println!("learning {learn_spec} as job {id}");
    let done = client
        .wait_with(id, |status| {
            println!(
                "  job {}: {} ({} ms)",
                status.id, status.state, status.millis
            );
        })
        .expect("job exists");
    println!(
        "job {} finished: {} states, {} queries, {}",
        id, done.states, done.queries, done.detail
    );

    let stats = client.stats().expect("stats");
    let (global, session) = (stats.global, stats.session);
    println!(
        "served {} queries ({} from the shared store, hit rate {:.1}%), {} sessions",
        global.queries,
        global.store_hits,
        100.0 * global.hit_rate(),
        global.sessions_total,
    );
    println!("this session asked {} queries", session.queries);
    for namespace in &stats.namespaces {
        println!(
            "store namespace '{}': {} entries",
            namespace.name, namespace.entries
        );
    }

    client.quit().expect("clean shutdown");
    second.quit().expect("clean shutdown");
    daemon.shutdown();
    println!("daemon stopped");
}
