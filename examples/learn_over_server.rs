//! Learning over the network: run the full `polca` learning pipeline against
//! a `cqd` daemon instead of an in-process cache.
//!
//! The unified query path makes this a one-line swap: `learn_policy` takes a
//! cache oracle, the oracle takes a `QueryEngine`, and the engine takes any
//! `QueryBackend` — here a [`server::RemoteBackend`] speaking the wire
//! protocol over loopback.  The client-side engine store absorbs the
//! replay-session blowup (most probes never reach the network), and the
//! daemon's shared store memoizes whatever does, so a second campaign — or
//! an interactive session replaying the campaign's queries — is served from
//! memory.
//!
//! Run with: `cargo run --example learn_over_server -- [POLICY] [ASSOC]`

use std::sync::Arc;
use std::time::Instant;

use cachequery::QueryEngine;
use polca::{learn_policy, learn_simulated_policy, CacheQueryOracle, LearnSetup};
use policies::PolicyKind;
use server::{spawn, Client, CqdConfig, RemoteBackend, SessionSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let kind: PolicyKind = args
        .next()
        .unwrap_or_else(|| "LRU".to_string())
        .parse()
        .expect("known policy name");
    let assoc: usize = args
        .next()
        .unwrap_or_else(|| "2".to_string())
        .parse()
        .expect("numeric associativity");
    let setup = LearnSetup {
        workers: 1,
        ..LearnSetup::default()
    };

    // In production the daemon runs on another machine; an in-process one on
    // an ephemeral port speaks the identical protocol.
    let daemon = spawn(CqdConfig::default()).expect("ephemeral port is bindable");
    println!("cqd listening on {}", daemon.addr());

    // The whole learning pipeline, pointed at the network.
    let spec = SessionSpec {
        policy: Some(format!("{kind}@{assoc}")),
        ..SessionSpec::default()
    };
    let backend = RemoteBackend::connect(daemon.addr(), &spec).expect("daemon accepts the spec");
    let engine = QueryEngine::new(backend);
    let store = Arc::clone(engine.store());
    let oracle = CacheQueryOracle::from_engine(engine).expect("remote target configured");
    let started = Instant::now();
    let remote = learn_policy(oracle, &setup).expect("remote learning succeeds");
    println!(
        "learned {kind}@{assoc} over the server: {} states, {} membership queries in {:.3} s \
         (client store hit-rate {:.1}%)",
        remote.machine.num_states(),
        remote.stats.membership_queries,
        started.elapsed().as_secs_f64(),
        100.0 * store.hit_rate(),
    );

    // The in-process run answers identically — the learner cannot tell the
    // backends apart.
    let local = learn_simulated_policy(kind, assoc, &setup).expect("in-process learning succeeds");
    assert_eq!(
        automata::render_mealy(&remote.machine),
        automata::render_mealy(&local.machine)
    );
    assert_eq!(
        remote.stats.membership_queries,
        local.stats.membership_queries
    );
    println!("byte-identical to the in-process run");

    // The campaign filled the daemon's shared store: an interactive session
    // replaying one of its expansions is served from memory.
    let mut session = Client::connect(daemon.addr()).expect("daemon accepts connections");
    session.target(&spec).expect("valid target");
    let replay = session.query("A?").expect("well-formed MBL");
    println!(
        "replaying the campaign's first expansion: {} -> {} (cached: {})",
        replay[0].query, replay[0].pattern, replay[0].cached
    );
    session.quit().expect("clean disconnect");

    daemon.shutdown();
    println!("daemon stopped");
}
