//! The §7 case study for a single cache set: learn the replacement policy of
//! one set of a simulated Intel CPU through the full CacheQuery pipeline.
//!
//! Run with:
//!   cargo run --release --example learn_hardware -- [CPU] [LEVEL] [SET] [CAT_WAYS]
//! e.g.
//!   cargo run --release --example learn_hardware -- skylake L3 33 2
//!
//! Learning the Skylake L2 (160-state New1) or an L1 (128-state PLRU) takes
//! several minutes; the L3 leader set with CAT reduced to 2-4 ways finishes
//! much faster and already demonstrates the undocumented New2 policy.

use cache::LevelId;
use cachequery::{ResetSequence, Target};
use hardware::CpuModel;
use polca::{identify_policy, learn_hardware_policy, HardwareTarget, LearnSetup};
use policies::PolicyKind;

fn parse_cpu(name: &str) -> CpuModel {
    match name.to_ascii_lowercase().as_str() {
        "haswell" => CpuModel::HaswellI7_4790,
        "kabylake" | "kaby-lake" => CpuModel::KabyLakeI7_8550U,
        _ => CpuModel::SkylakeI5_6500,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cpu = parse_cpu(args.first().map(String::as_str).unwrap_or("skylake"));
    let level = args
        .get(1)
        .and_then(|l| LevelId::parse(l))
        .unwrap_or(LevelId::L3);
    let set: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(33);
    let cat_ways: Option<usize> = args.get(3).and_then(|w| w.parse().ok());

    // Table 4: the Skylake/Kaby Lake L2 needs the custom reset sequence.
    let reset = if level == LevelId::L2 && cpu != CpuModel::HaswellI7_4790 {
        ResetSequence::Custom("D C B A @".to_string())
    } else {
        ResetSequence::FlushRefill
    };
    let cat_ways = if level == LevelId::L3 {
        Some(cat_ways.unwrap_or(2))
    } else {
        None
    };

    println!(
        "Learning {} {level} set {set} (reset '{reset}', CAT {cat_ways:?})",
        cpu.spec().name
    );
    let hardware = HardwareTarget {
        model: cpu,
        target: Target::new(level, set, 0),
        reset,
        cat_ways,
        seed: 2024,
    };
    match learn_hardware_policy(&hardware, &LearnSetup::default()) {
        Ok(outcome) => {
            let assoc =
                cat_ways.unwrap_or_else(|| cpu.spec().level(level).unwrap().geometry.associativity);
            println!("  states              : {}", outcome.machine.num_states());
            println!(
                "  membership queries  : {}",
                outcome.stats.membership_queries
            );
            println!("  cache probes        : {}", outcome.cache_probes);
            println!("  wall-clock time     : {:?}", outcome.stats.duration);
            let identified =
                identify_policy(&outcome.machine, assoc, &PolicyKind::ALL_DETERMINISTIC);
            println!(
                "  identified policy   : {}",
                identified
                    .map(|(k, _)| k.name())
                    .unwrap_or("unknown (possibly a new policy)")
            );
        }
        Err(e) => {
            println!("  learning failed: {e}");
            println!("  (expected for follower sets, adaptive policies, or wrong reset sequences)");
        }
    }
}
