//! Quickstart: the toy pipeline of Figure 1.
//!
//! A 2-way set-associative cache set is queried through CacheQuery (Figure
//! 1c), Polca translates policy-level questions into block accesses (Figure
//! 1b), and the automata learner reconstructs the replacement policy (Figure
//! 1a).
//!
//! Run with: `cargo run --example quickstart`

use cache::LevelId;
use cachequery::{CacheQuery, Target};
use hardware::{CpuModel, SimulatedCpu};
use learning::MembershipOracle;
use polca::{
    identify_policy, learn_simulated_policy, LearnSetup, PolcaOracle, SimulatedCacheOracle,
};
use policies::{PolicyInput, PolicyKind};

fn main() {
    // ---- Figure 1c: CacheQuery turns abstract block patterns into hit/miss
    // traces measured on the (simulated) hardware. -------------------------
    println!("== CacheQuery (Figure 1c) ==");
    let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 42);
    let mut cq = CacheQuery::new(cpu);
    cq.set_target(Target::new(LevelId::L2, 63, 0))
        .expect("the simulated Skylake has an L2 set 63");
    for pattern in ["A B C (A)?", "A B C (B)?"] {
        let results = cq.query(pattern).expect("query runs");
        for r in &results {
            println!("  {:<12} -> {:?}", r.rendered, r.outcomes);
        }
    }

    // ---- Figure 1b: Polca answers policy-level queries (over cache lines
    // and eviction requests) by tracking the cache content. ----------------
    println!();
    println!("== Polca (Figure 1b) ==");
    let oracle = SimulatedCacheOracle::new(PolicyKind::Lru, 2).expect("LRU supports 2 ways");
    let mut polca = PolcaOracle::new(oracle);
    let word = vec![
        PolicyInput::Line(0),
        PolicyInput::Line(1),
        PolicyInput::Evct,
    ];
    let outputs = polca.query(&word).expect("the simulated cache answers");
    println!(
        "  {:?}",
        word.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    println!(
        "  -> {:?}",
        outputs.iter().map(ToString::to_string).collect::<Vec<_>>()
    );

    // ---- Figure 1a: the learner reconstructs the policy automaton. --------
    println!();
    println!("== Learning (Figure 1a) ==");
    let outcome = learn_simulated_policy(PolicyKind::Lru, 2, &LearnSetup::default())
        .expect("learning a 2-state policy is instantaneous");
    println!(
        "  learned a {}-state machine with {} membership queries",
        outcome.machine.num_states(),
        outcome.stats.membership_queries
    );
    let identified = identify_policy(&outcome.machine, 2, &PolicyKind::ALL_DETERMINISTIC);
    println!(
        "  identified as: {}",
        identified.map(|(k, _)| k.name()).unwrap_or("unknown")
    );
    println!();
    println!("Learned automaton (Graphviz):");
    println!("{}", automata::to_dot(&outcome.machine, "lru2"));
}
