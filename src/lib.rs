//! Umbrella crate of the CacheQuery/Polca reproduction.
//!
//! Re-exports the individual crates so examples, integration tests, and
//! downstream users can depend on a single package.

#![forbid(unsafe_code)]

pub use automata;
pub use cache;
pub use cachequery;
pub use hardware;
pub use learning;
pub use mbl;
pub use obs;
pub use polca;
pub use policies;
pub use server;
pub use synth;
