//! `QueryBackend::execute_batch` semantics: every native bulk implementation
//! must be observationally identical to the default per-query loop.
//!
//! The batched engine only stays byte-reproducible (pinned Table 2 counts,
//! server byte-identity) if batching is *pure plumbing* — same answers, same
//! ordering of any per-query internal state.  The delicate case is the noisy
//! backend, whose fault stream depends on each query's own execution index:
//! a batch containing the same query twice must draw that query's 1st and
//! 2nd fault sets, exactly as two sequential `execute` calls would.

use cachequery::{NoiseSpec, QueryBackend, QueryEngine, VoteConfig};
use mbl::{expand_query, Query};
use polca::{noisy_sim_backend, HierarchyBackend, PolicySimBackend};
use policies::PolicyKind;

/// A mixed workload: plain accesses, profiled accesses, invalidations, and a
/// duplicated query (the fault-index probe for the noisy backend).
fn workload(assoc: usize) -> Vec<Query> {
    let mut queries = Vec::new();
    for expr in [
        "@ X _?",
        "A B X Y A? B? C?",
        "A! A? B C D E A?",
        "@ X _?", // duplicate of the first expansion set
        "C B? A?",
    ] {
        queries.extend(expand_query(expr, assoc).expect("well-formed MBL"));
    }
    queries
}

/// Runs the default loop (`execute` per query) on one backend and the native
/// batch on an identically-constructed one; both must agree exactly.
fn assert_batch_equals_loop<B: QueryBackend>(mut looped: B, mut batched: B, queries: &[Query]) {
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| looped.execute(q).expect("sequential execution succeeds"))
        .collect();
    let bulk = batched
        .execute_batch(queries)
        .expect("batched execution succeeds");
    assert_eq!(
        sequential, bulk,
        "native batch diverged from the default loop"
    );
}

#[test]
fn sim_backend_batch_equals_the_default_loop() {
    for kind in [PolicyKind::Lru, PolicyKind::Plru, PolicyKind::SrripFp] {
        let queries = workload(4);
        assert_batch_equals_loop(
            PolicySimBackend::new(kind, 4).unwrap(),
            PolicySimBackend::new(kind, 4).unwrap(),
            &queries,
        );
    }
}

#[test]
fn hierarchy_backend_batch_equals_the_default_loop() {
    for kind in [PolicyKind::Lru, PolicyKind::SrripHp] {
        let queries = workload(4);
        assert_batch_equals_loop(
            HierarchyBackend::new(kind, 4).unwrap(),
            HierarchyBackend::new(kind, 4).unwrap(),
            &queries,
        );
    }
}

#[test]
fn noisy_backend_preserves_fault_indices_across_the_batch_boundary() {
    // High fault rates so divergence cannot hide: if the batch path consumed
    // the fault stream in any other order (or reseeded it per batch), the
    // duplicated queries in the workload would draw different faults.
    let spec = NoiseSpec {
        flip_permille: 300,
        drop_permille: 100,
        evict_permille: 100,
        seed: 42,
    };
    let queries = workload(4);
    assert_batch_equals_loop(
        noisy_sim_backend(PolicyKind::Lru, 4, spec).unwrap(),
        noisy_sim_backend(PolicyKind::Lru, 4, spec).unwrap(),
        &queries,
    );
}

#[test]
fn noisy_batches_continue_the_fault_stream_between_calls() {
    // Two consecutive batches of the same query must see its 1st..=6th fault
    // sets, exactly like six sequential executions.
    let spec = NoiseSpec::flips(500, 7);
    let query = expand_query("A? B? C?", 4).unwrap().pop().unwrap();
    let batch = vec![query.clone(), query.clone(), query.clone()];

    let mut sequential = noisy_sim_backend(PolicyKind::Lru, 4, spec).unwrap();
    let expected: Vec<_> = (0..6)
        .map(|_| sequential.execute(&query).unwrap())
        .collect();

    let mut batched = noisy_sim_backend(PolicyKind::Lru, 4, spec).unwrap();
    let mut actual = batched.execute_batch(&batch).unwrap();
    actual.extend(batched.execute_batch(&batch).unwrap());
    assert_eq!(expected, actual, "the fault stream reset between batches");
}

#[test]
fn a_failing_query_fails_the_whole_batch() {
    // HierarchyBackend refuses queries that overflow an L2 set; the batch
    // contract is fail-fast with no partial results.
    let mut backend = HierarchyBackend::new(PolicyKind::Lru, 2).unwrap();
    let good = expand_query("C B? A?", 2).unwrap().pop().unwrap();
    let bad: Query = (0..=8u32)
        .map(|i| mbl::MemOp::access(mbl::BlockId(i * 64)))
        .collect();
    assert!(backend.execute_batch(&[good, bad]).is_err());
}

#[test]
fn engine_batches_equal_sequential_runs_through_the_voted_path() {
    // End to end: a voted engine over a noisy backend answers a whole batch
    // exactly as an identically-seeded engine answers the queries one by one.
    let spec = NoiseSpec::flips(80, 11);
    let make_engine = || {
        let mut engine = QueryEngine::new(noisy_sim_backend(PolicyKind::Plru, 4, spec).unwrap());
        engine.set_vote_config(VoteConfig::default());
        engine
    };
    let queries = workload(4);

    let mut one_by_one = make_engine();
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| one_by_one.run(q).expect("sequential run succeeds"))
        .collect();

    let mut batched = make_engine();
    let bulk = batched.run_many(&queries).expect("batched run succeeds");

    // Outcomes and consistency must match; `from_cache` legitimately differs
    // (a duplicate inside one batch is answered by the store in the
    // sequential path only after its first run completes — in the batch path
    // the store is consulted up front), so compare the answers themselves.
    assert_eq!(sequential.len(), bulk.len());
    for (s, b) in sequential.iter().zip(&bulk) {
        assert_eq!(s.rendered, b.rendered);
        assert_eq!(s.outcomes, b.outcomes, "batch diverged on {}", s.rendered);
        assert_eq!(s.consistent, b.consistent);
    }
}
