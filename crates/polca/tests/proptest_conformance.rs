//! Random-walk conformance property: for every deterministic policy at ways
//! 2–4, long random walks on the *learned* automaton agree with the
//! ground-truth policy simulator on every step.
//!
//! This is net-new coverage the pinned Table 2 state counts do not give:
//! state counts (and even minimized equivalence against an explored
//! machine) compare automata with automata, while the walk drives the
//! learned machine against the executable simulator itself — the same code
//! the simulated caches run — catching any systematic translation error
//! shared by the Mealy constructions.
//!
//! Learning each (policy, ways) pair takes seconds in the worst case, so the
//! machines are learned once and cached; the proptest then samples cases and
//! seeds and walks 1 000 steps each.

use std::collections::HashMap;
use std::sync::OnceLock;

use polca::{conformance_cases, conformance_walk, exact_learn_setup, learn_simulated_policy};
use policies::{PolicyKind, PolicyMealy};
use proptest::prelude::*;

fn learned_machines() -> &'static HashMap<(PolicyKind, usize), PolicyMealy> {
    static MACHINES: OnceLock<HashMap<(PolicyKind, usize), PolicyMealy>> = OnceLock::new();
    MACHINES.get_or_init(|| {
        conformance_cases(4)
            .into_iter()
            .map(|(kind, assoc)| {
                let outcome = learn_simulated_policy(kind, assoc, &exact_learn_setup(assoc))
                    .unwrap_or_else(|e| panic!("learning {kind}@{assoc} failed: {e}"));
                ((kind, assoc), outcome.machine)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// 1 000-step random walks on every learned automaton agree with the
    /// policy simulator, for arbitrary walk seeds.
    #[test]
    fn learned_automata_conform_on_random_walks(
        case in proptest::sample::select(conformance_cases(4)),
        seed in 0u64..1_000_000,
    ) {
        let (kind, assoc) = case;
        let machine = &learned_machines()[&case];
        let report = conformance_walk(machine, kind, assoc, 1000, seed)
            .expect("supported associativity");
        prop_assert!(
            report.passed(),
            "{kind}@{assoc} diverged from its simulator: {}",
            report.divergence.expect("failed reports carry a divergence")
        );
    }
}

/// Every case is walked at least once regardless of how the property above
/// samples — the deterministic floor under the randomized roof.
#[test]
fn every_case_conforms_at_least_once() {
    for ((kind, assoc), machine) in learned_machines() {
        let report = conformance_walk(machine, *kind, *assoc, 1000, 42).unwrap();
        assert!(
            report.passed(),
            "{kind}@{assoc} diverged: {}",
            report
                .divergence
                .expect("failed reports carry a divergence")
        );
    }
}
