//! Property-based tests for Polca: Theorem 3.1 on random words — the
//! membership oracle's answers coincide with the policy semantics — and the
//! cache-consistency invariant of the memoization layer.

use learning::{CachedOracle, MembershipOracle};
use polca::{CacheOracle, CacheSession, PolcaOracle, ReplaySession, SimulatedCacheOracle};
use policies::{policy_to_mealy, PolicyInput, PolicyKind};
use proptest::prelude::*;

fn word_strategy(assoc: usize) -> impl Strategy<Value = Vec<PolicyInput>> {
    proptest::collection::vec(0usize..=assoc, 1..40).prop_map(move |raw| {
        raw.into_iter()
            .map(|i| {
                if i == assoc {
                    PolicyInput::Evct
                } else {
                    PolicyInput::line(i)
                }
            })
            .collect()
    })
}

fn case_strategy() -> impl Strategy<Value = (PolicyKind, usize, Vec<PolicyInput>)> {
    (2usize..=6).prop_flat_map(|assoc| {
        let kinds: Vec<PolicyKind> = PolicyKind::ALL_DETERMINISTIC
            .into_iter()
            .filter(|k| k.supports_associativity(assoc))
            .collect();
        (
            proptest::sample::select(kinds),
            Just(assoc),
            word_strategy(assoc),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 3.1: for every policy and every input word, Polca applied to
    /// the induced cache produces exactly the policy's output word.
    #[test]
    fn polca_answers_equal_the_policy_semantics((kind, assoc, word) in case_strategy()) {
        let reference = policy_to_mealy(kind.build(assoc).unwrap().as_ref(), 1 << 18);
        let cache = SimulatedCacheOracle::new(kind, assoc).unwrap();
        let mut polca = PolcaOracle::new(cache);
        let answered = polca.query(&word).expect("the simulated cache never fails");
        prop_assert_eq!(answered, reference.output_word(word.iter()));
    }

    /// Polca is stateless across queries: asking the same word twice gives
    /// the same answer even after unrelated queries in between.
    #[test]
    fn polca_queries_are_independent((kind, assoc, word) in case_strategy(),
                                     other in proptest::collection::vec(0usize..4, 0..10)) {
        let cache = SimulatedCacheOracle::new(kind, assoc).unwrap();
        let mut polca = PolcaOracle::new(cache);
        let first = polca.query(&word).unwrap();
        let interleaved: Vec<PolicyInput> = other
            .into_iter()
            .map(|i| if i == 0 { PolicyInput::Evct } else { PolicyInput::line(i % assoc) })
            .collect();
        if !interleaved.is_empty() {
            polca.query(&interleaved).unwrap();
        }
        prop_assert_eq!(polca.query(&word).unwrap(), first);
    }

    /// Cache-consistency invariant: the memoized oracle returns byte-identical
    /// outputs to the uncached `PolcaOracle` for arbitrary query sequences —
    /// including repeats and overlapping words, where answers come from the
    /// prefix trie instead of the cache simulator.
    #[test]
    fn memoized_oracle_is_byte_identical_to_the_uncached_oracle(
        (kind, assoc, word) in case_strategy(),
        more in proptest::collection::vec(proptest::collection::vec(0usize..5, 1..20), 1..5),
    ) {
        let mut plain = PolcaOracle::new(SimulatedCacheOracle::new(kind, assoc).unwrap());
        let mut memoized =
            CachedOracle::new(PolcaOracle::new(SimulatedCacheOracle::new(kind, assoc).unwrap()));
        // The generated word, every word derived from it, and each word twice:
        // exercises cold paths, prefix hits, and exact repeats.
        let mut words: Vec<Vec<PolicyInput>> = vec![word.clone()];
        for raw in more {
            words.push(
                raw.into_iter()
                    .map(|i| if i % (assoc + 1) == assoc {
                        PolicyInput::Evct
                    } else {
                        PolicyInput::line(i % (assoc + 1))
                    })
                    .collect(),
            );
        }
        words.push(word[..word.len().div_ceil(2)].to_vec());
        for word in words.iter().chain(words.iter()) {
            if word.is_empty() {
                continue;
            }
            prop_assert_eq!(
                memoized.query(word).unwrap(),
                plain.query(word).unwrap(),
                "memoized and uncached answers diverged on {:?}", word
            );
        }
        // The repeats above must have produced real cache traffic.
        prop_assert!(memoized.cache_hits() >= words.len() as u64);
    }

    /// The incremental simulated probe session agrees with the paper's
    /// replay-based session on every step and speculation.
    #[test]
    fn incremental_and_replay_sessions_agree((kind, assoc, word) in case_strategy()) {
        let mut incremental_host = SimulatedCacheOracle::new(kind, assoc).unwrap();
        let mut replay_host = SimulatedCacheOracle::new(kind, assoc).unwrap();
        let mut incremental = incremental_host.begin();
        let mut replay = ReplaySession::new(&mut replay_host);
        // Drive both sessions with the blocks a Polca run would use and
        // interleave speculations on every initially-resident block.
        for (step, input) in word.iter().enumerate() {
            let block = match input {
                PolicyInput::Line(i) => mbl::BlockId(*i as u32),
                PolicyInput::Evct => mbl::BlockId((assoc + step) as u32),
            };
            prop_assert_eq!(
                incremental.access(block).unwrap(),
                replay.access(block).unwrap(),
                "sessions diverged on access at step {}", step
            );
            let probe = mbl::BlockId((step % assoc) as u32);
            prop_assert_eq!(
                incremental.speculate(probe).unwrap(),
                replay.speculate(probe).unwrap(),
                "sessions diverged on speculation at step {}", step
            );
        }
    }
}
