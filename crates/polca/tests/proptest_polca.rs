//! Property-based tests for Polca: Theorem 3.1 on random words — the
//! membership oracle's answers coincide with the policy semantics.

use learning::MembershipOracle;
use polca::{PolcaOracle, SimulatedCacheOracle};
use policies::{policy_to_mealy, PolicyInput, PolicyKind};
use proptest::prelude::*;

fn word_strategy(assoc: usize) -> impl Strategy<Value = Vec<PolicyInput>> {
    proptest::collection::vec(0usize..=assoc, 1..40).prop_map(move |raw| {
        raw.into_iter()
            .map(|i| {
                if i == assoc {
                    PolicyInput::Evct
                } else {
                    PolicyInput::Line(i)
                }
            })
            .collect()
    })
}

fn case_strategy() -> impl Strategy<Value = (PolicyKind, usize, Vec<PolicyInput>)> {
    (2usize..=6).prop_flat_map(|assoc| {
        let kinds: Vec<PolicyKind> = PolicyKind::ALL_DETERMINISTIC
            .into_iter()
            .filter(|k| k.supports_associativity(assoc))
            .collect();
        (
            proptest::sample::select(kinds),
            Just(assoc),
            word_strategy(assoc),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 3.1: for every policy and every input word, Polca applied to
    /// the induced cache produces exactly the policy's output word.
    #[test]
    fn polca_answers_equal_the_policy_semantics((kind, assoc, word) in case_strategy()) {
        let reference = policy_to_mealy(kind.build(assoc).unwrap().as_ref(), 1 << 18);
        let cache = SimulatedCacheOracle::new(kind, assoc).unwrap();
        let mut polca = PolcaOracle::new(cache);
        let answered = polca.query(&word).expect("the simulated cache never fails");
        prop_assert_eq!(answered, reference.output_word(word.iter()));
    }

    /// Polca is stateless across queries: asking the same word twice gives
    /// the same answer even after unrelated queries in between.
    #[test]
    fn polca_queries_are_independent((kind, assoc, word) in case_strategy(),
                                     other in proptest::collection::vec(0usize..4, 0..10)) {
        let cache = SimulatedCacheOracle::new(kind, assoc).unwrap();
        let mut polca = PolcaOracle::new(cache);
        let first = polca.query(&word).unwrap();
        let interleaved: Vec<PolicyInput> = other
            .into_iter()
            .map(|i| if i == 0 { PolicyInput::Evct } else { PolicyInput::Line(i % assoc) })
            .collect();
        if !interleaved.is_empty() {
            polca.query(&interleaved).unwrap();
        }
        prop_assert_eq!(polca.query(&word).unwrap(), first);
    }
}
