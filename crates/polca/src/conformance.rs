//! Differential conformance: random-walk a learned policy automaton against
//! the ground-truth executable policy and report the first divergence.
//!
//! The pinned Table 2 state counts say a learned machine has the right
//! *size*; [`check_equivalence`](automata::check_equivalence) says it equals
//! the explored ground-truth *machine*.  The random walk adds a third,
//! independent angle: it drives the learned automaton and the executable
//! [`ReplacementPolicy`](policies::ReplacementPolicy) — the very simulator
//! the caches are built from, no Mealy construction in the loop — with the
//! same seeded input stream and compares outputs step by step.  It is cheap
//! enough to run for thousands of steps per policy, usable both from tests
//! and as the `conformance` CLI workload in `crates/bench`.

use automata::{random_walk_check, WalkDivergence};
use policies::{PolicyError, PolicyInput, PolicyKind, PolicyMealy, PolicyOutput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The first disagreement of a conformance walk.
pub type ConformanceDivergence = WalkDivergence<PolicyInput, PolicyOutput>;

/// Result of one conformance walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceReport {
    /// The policy walked against.
    pub kind: PolicyKind,
    /// Its associativity.
    pub associativity: usize,
    /// Steps requested.
    pub steps: usize,
    /// The first divergence, if any (`None` is the pass verdict).
    pub divergence: Option<ConformanceDivergence>,
}

impl ConformanceReport {
    /// Whether the walk completed without a divergence.
    pub fn passed(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Random-walks `machine` against a fresh ground-truth simulator of `kind`
/// at `associativity` for `steps` steps, drawing inputs from a generator
/// seeded with `seed`.
///
/// The machine must have been learned from the canonical initial state
/// `cc0` with identity line naming (what [`learn_policy`](crate::learn_policy)
/// produces for simulated caches), so machine and simulator start aligned.
///
/// # Errors
///
/// Returns a [`PolicyError`] if the policy does not support the
/// associativity.
///
/// # Example
///
/// ```
/// use polca::{conformance_walk, learn_simulated_policy, LearnSetup};
/// use policies::PolicyKind;
///
/// let outcome = learn_simulated_policy(PolicyKind::Lru, 2, &LearnSetup::default()).unwrap();
/// let report = conformance_walk(&outcome.machine, PolicyKind::Lru, 2, 500, 7).unwrap();
/// assert!(report.passed());
/// ```
pub fn conformance_walk(
    machine: &PolicyMealy,
    kind: PolicyKind,
    associativity: usize,
    steps: usize,
    seed: u64,
) -> Result<ConformanceReport, PolicyError> {
    let mut policy = kind.build(associativity)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let divergence = random_walk_check(
        machine,
        |input: &PolicyInput| policy.apply(*input),
        steps,
        |n| rng.gen_range(0..n),
    );
    Ok(ConformanceReport {
        kind,
        associativity,
        steps,
        divergence,
    })
}

/// The [`LearnSetup`](crate::LearnSetup) that learns *exactly* at small
/// sizes: conformance depth 2 below associativity 4, depth 1 at 4 and above.
///
/// With depth 1 the Wp-method only guarantees exactness while the true
/// machine has at most one state more than the hypothesis (Theorem 3.3);
/// MRU at associativity 3 genuinely stalls at 4 of its 6 states under depth
/// 1 — the first divergence this harness ever reported.  Depth 2 restores
/// the guarantee at the small sizes, and at associativity 4 depth 1 already
/// learns exactly while depth 2 would blow up the 256-state Wp suites.
pub fn exact_learn_setup(associativity: usize) -> crate::LearnSetup {
    crate::LearnSetup {
        conformance_depth: if associativity < 4 { 2 } else { 1 },
        ..crate::LearnSetup::default()
    }
}

/// Every `(kind, associativity)` pair the conformance harness covers for
/// ways `2..=max_assoc`: all deterministic policies of the paper, at each
/// associativity they support.
pub fn conformance_cases(max_assoc: usize) -> Vec<(PolicyKind, usize)> {
    let mut cases = Vec::new();
    for assoc in 2..=max_assoc {
        for kind in PolicyKind::ALL_DETERMINISTIC {
            if kind.supports_associativity(assoc) {
                cases.push((kind, assoc));
            }
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{learn_simulated_policy, LearnSetup};
    use policies::policy_to_mealy;

    #[test]
    fn learned_machines_survive_long_walks() {
        let outcome = learn_simulated_policy(PolicyKind::Plru, 4, &LearnSetup::default()).unwrap();
        for seed in [1u64, 2, 3] {
            let report =
                conformance_walk(&outcome.machine, PolicyKind::Plru, 4, 2000, seed).unwrap();
            assert!(report.passed(), "PLRU/4 diverged: {:?}", report.divergence);
        }
    }

    #[test]
    fn a_wrong_machine_is_caught() {
        // Walk the FIFO ground truth against the LRU simulator: the walk
        // must find a divergence and report its position.
        let fifo = policy_to_mealy(PolicyKind::Fifo.build(4).unwrap().as_ref(), 1 << 16);
        let report = conformance_walk(&fifo, PolicyKind::Lru, 4, 5000, 99).unwrap();
        let divergence = report.divergence.expect("FIFO cannot emulate LRU");
        assert_eq!(divergence.inputs.len(), divergence.step + 1);
        assert_ne!(divergence.expected, divergence.actual);
    }

    #[test]
    fn walks_are_reproducible_per_seed() {
        let fifo = policy_to_mealy(PolicyKind::Fifo.build(2).unwrap().as_ref(), 1 << 16);
        let a = conformance_walk(&fifo, PolicyKind::Lru, 2, 1000, 5).unwrap();
        let b = conformance_walk(&fifo, PolicyKind::Lru, 2, 1000, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn the_case_list_covers_every_supported_policy() {
        let cases = conformance_cases(4);
        // 9 deterministic policies at ways 2 and 4; PLRU drops out at 3.
        assert_eq!(cases.iter().filter(|(_, a)| *a == 2).count(), 9);
        assert_eq!(cases.iter().filter(|(_, a)| *a == 3).count(), 8);
        assert_eq!(cases.iter().filter(|(_, a)| *a == 4).count(), 9);
        assert!(!cases.iter().any(|(k, a)| *k == PolicyKind::Plru && *a == 3));
        assert!(!cases.iter().any(|(k, _)| *k == PolicyKind::Brrip));
    }
}
