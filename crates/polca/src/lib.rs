//! Polca: the membership oracle for replacement policies, and the end-to-end
//! learning pipeline.
//!
//! Polca (§3 of the paper) sits between the automata-learning algorithm and a
//! cache: learning asks questions about the *replacement policy* (over the
//! alphabet `Ln(i)` / `Evct` of Table 1), while a cache only answers *block
//! accesses* with hits and misses.  Polca translates between the two by
//! keeping track of which block currently occupies which cache line
//! (Algorithm 1), issuing additional probes to discover which line a miss
//! evicted (`findEvicted`), and picking fresh blocks for eviction requests —
//! exploiting the data-independence of replacement policies that makes
//! learning tractable.
//!
//! The crate provides:
//!
//! * [`CacheOracle`] — the abstract cache interface Polca needs, implemented
//!   by [`SimulatedCacheOracle`] (the noiseless software-simulated caches of
//!   the §6 case study) and [`CacheQueryOracle`] (real — here: simulated —
//!   hardware through CacheQuery, §7);
//! * [`CacheSession`] / [`ReplaySession`] — stateful probe sessions: the
//!   simulated caches step once per accessed block (linear-cost queries),
//!   while hardware sessions replay the whole trace per step, which is the
//!   cost model of the paper;
//! * [`PolcaOracle`] — Algorithm 1 as a [`learning::MembershipOracle`];
//!   cloneable, so `|| PolcaOracle::new(cache.clone())` is an
//!   [`learning::OracleFactory`] for the parallel learner;
//! * [`learn_policy`], [`learn_simulated_policy`] and
//!   [`learn_hardware_policy`] — the complete learning loop (L* + Wp-method,
//!   memoized through the prefix-trie query cache and sharded across the
//!   worker pool) over either kind of cache;
//! * [`spawn_simulated_learn_job`] — the job-oriented asynchronous form of
//!   the pipeline (a background thread plus a pollable [`JobStatus`]), which
//!   the `cqd` server uses to run learning campaigns without blocking its
//!   query traffic;
//! * [`identify_policy`] — matching a learned automaton against the library
//!   of reference policies, up to the renaming of cache lines induced by the
//!   reset sequence;
//! * [`NoisySimBackend`] / [`learn_noisy_policy`] — the noise-robustness
//!   path: the exact simulation with seeded fault injection on top, learned
//!   through the engine's repetition/majority vote (§5's noise handling,
//!   manufactured deterministically);
//! * [`conformance_walk`] — the differential harness: random-walk a learned
//!   automaton against the ground-truth policy simulator and report the
//!   first divergence.
//!
//! # Example: the §6 case study in one call
//!
//! ```
//! use polca::{learn_simulated_policy, LearnSetup};
//! use policies::PolicyKind;
//!
//! let outcome = learn_simulated_policy(PolicyKind::Lru, 2, &LearnSetup::default()).unwrap();
//! assert_eq!(outcome.machine.num_states(), 2); // Example 2.2: 2-state LRU
//! // Query statistics are tracked centrally by the learner's cache layer.
//! assert_eq!(
//!     outcome.stats.membership_queries,
//!     outcome.stats.cache_hits + outcome.stats.cache_misses,
//! );
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cache_oracle;
mod cartography;
mod conformance;
mod hierarchy_backend;
mod identify;
mod job;
mod membership;
mod pipeline;
mod sim_backend;

pub use cache_oracle::{
    CacheOracle, CacheQueryOracle, CacheSession, ReplaySession, SimulatedCacheOracle,
};
pub use cartography::{
    map_cache, CacheMap, GroupOutcome, GroupReport, MapConfig, SetEntry, SetVerdict,
};
pub use conformance::{
    conformance_cases, conformance_walk, exact_learn_setup, ConformanceDivergence,
    ConformanceReport,
};
pub use hierarchy_backend::HierarchyBackend;
pub use identify::{identify_policy, LinePermutation};
pub use job::{spawn_learn_job, spawn_simulated_learn_job, JobResult, JobStatus, LearnJob};
pub use membership::PolcaOracle;
pub use pipeline::{
    learn_hardware_policy, learn_hierarchy_policy, learn_noisy_policy, learn_policy,
    learn_simulated_policy, CampaignProfile, HardwareTarget, LearnOutcome, LearnSetup,
    PhaseProfile,
};
pub use sim_backend::{noisy_sim_backend, noisy_sim_config_for, NoisySimBackend, PolicySimBackend};
