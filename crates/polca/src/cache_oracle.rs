//! The abstract cache interface Polca builds on, and its two implementations.

use cache::{Block, CacheSet, HitMiss};
use cachequery::{CacheQuery, Target};
use learning::OracleError;
use mbl::{BlockId, MemOp, Query};
use policies::PolicyKind;

/// A cache set that can be probed with block traces from a fixed initial
/// state (the `probeCache` primitive of Algorithm 1).
///
/// Implementations must guarantee that every probe starts from the same
/// initial cache state `cc0`, in which block `i` (for `i` in
/// `0..associativity`) occupies line `i`.
pub trait CacheOracle {
    /// Associativity of the cache set.
    fn associativity(&self) -> usize;

    /// Accesses all blocks of `trace` in order, starting from the fixed
    /// initial state, and returns whether the **last** access hit or missed.
    ///
    /// # Errors
    ///
    /// Returns an [`OracleError`] if the underlying cache misbehaves (e.g.
    /// inconsistent timing measurements on the hardware path).
    fn probe(&mut self, trace: &[BlockId]) -> Result<HitMiss, OracleError>;

    /// Number of probes executed so far.
    fn probes(&self) -> u64;

    /// Total number of block accesses executed so far (each probe accesses
    /// `trace.len()` blocks).
    fn block_accesses(&self) -> u64;
}

/// The software-simulated cache of the §6 case study: a [`CacheSet`] driven
/// by an executable replacement policy, probed without any noise.
#[derive(Debug, Clone)]
pub struct SimulatedCacheOracle {
    template: CacheSet,
    probes: u64,
    accesses: u64,
}

impl SimulatedCacheOracle {
    /// Creates the oracle for the given policy and associativity, with the
    /// canonical initial content (block `i` in line `i`).
    ///
    /// # Errors
    ///
    /// Returns an error if the policy does not support the associativity.
    pub fn new(kind: PolicyKind, associativity: usize) -> Result<Self, policies::PolicyError> {
        let policy = kind.build(associativity)?;
        let template = CacheSet::filled(policy, (0..associativity as u64).map(Block::new));
        Ok(SimulatedCacheOracle {
            template,
            probes: 0,
            accesses: 0,
        })
    }

    /// Creates the oracle from an arbitrary pre-filled cache set (useful for
    /// testing custom policies).
    pub fn from_set(template: CacheSet) -> Self {
        SimulatedCacheOracle {
            template,
            probes: 0,
            accesses: 0,
        }
    }
}

impl CacheOracle for SimulatedCacheOracle {
    fn associativity(&self) -> usize {
        self.template.associativity()
    }

    fn probe(&mut self, trace: &[BlockId]) -> Result<HitMiss, OracleError> {
        if trace.is_empty() {
            return Err(OracleError::new("cannot probe with an empty trace"));
        }
        self.probes += 1;
        self.accesses += trace.len() as u64;
        let mut set = self.template.clone();
        let mut last = HitMiss::Miss;
        for block in trace {
            last = set.access(Block::new(block.0 as u64)).outcome();
        }
        Ok(last)
    }

    fn probes(&self) -> u64 {
        self.probes
    }

    fn block_accesses(&self) -> u64 {
        self.accesses
    }
}

/// The hardware-backed cache oracle of §7: probes are turned into CacheQuery
/// queries whose last access is profiled.
///
/// The CacheQuery reset sequence plays the role of establishing the fixed
/// initial state; the oracle additionally verifies that repeated executions
/// agree and reports an error otherwise (the nondeterminism signal discussed
/// in §7.1).
#[derive(Debug)]
pub struct CacheQueryOracle {
    tool: CacheQuery,
    associativity: usize,
    probes: u64,
    accesses: u64,
}

impl CacheQueryOracle {
    /// Wraps a CacheQuery instance that already has its target selected.
    ///
    /// The number of repetitions per query is raised to 5 so that stray
    /// measurement outliers are outvoted instead of being mistaken for
    /// nondeterministic cache behaviour.
    ///
    /// # Errors
    ///
    /// Returns an error if no target is selected.
    pub fn new(mut tool: CacheQuery) -> Result<Self, OracleError> {
        let associativity = tool
            .associativity()
            .map_err(|e| OracleError::new(e.to_string()))?;
        tool.set_repetitions(5);
        Ok(CacheQueryOracle {
            tool,
            associativity,
            probes: 0,
            accesses: 0,
        })
    }

    /// Selects a target and wraps the tool.
    ///
    /// # Errors
    ///
    /// Propagates target-selection failures.
    pub fn with_target(mut tool: CacheQuery, target: Target) -> Result<Self, OracleError> {
        tool.set_target(target)
            .map_err(|e| OracleError::new(e.to_string()))?;
        Self::new(tool)
    }

    /// Read access to the wrapped tool (e.g. for statistics).
    pub fn tool(&self) -> &CacheQuery {
        &self.tool
    }

    /// Consumes the oracle and returns the wrapped tool.
    pub fn into_tool(self) -> CacheQuery {
        self.tool
    }

    /// Builds the MBL query corresponding to a probe: access every block,
    /// profile the last one.
    fn probe_query(trace: &[BlockId]) -> Query {
        let mut query: Query = trace[..trace.len() - 1]
            .iter()
            .map(|&b| MemOp::access(b))
            .collect();
        query.push(MemOp::profiled(trace[trace.len() - 1]));
        query
    }
}

impl CacheOracle for CacheQueryOracle {
    fn associativity(&self) -> usize {
        self.associativity
    }

    fn probe(&mut self, trace: &[BlockId]) -> Result<HitMiss, OracleError> {
        if trace.is_empty() {
            return Err(OracleError::new("cannot probe with an empty trace"));
        }
        self.probes += 1;
        self.accesses += trace.len() as u64;
        let query = Self::probe_query(trace);
        let outcome = self
            .tool
            .run_query(&query)
            .map_err(|e| OracleError::new(e.to_string()))?;
        if !outcome.consistent {
            return Err(OracleError::new(format!(
                "inconsistent measurements for query '{}': the cache set behaves \
                 non-deterministically (wrong reset sequence or adaptive policy)",
                outcome.rendered
            )));
        }
        outcome
            .outcomes
            .first()
            .copied()
            .ok_or_else(|| OracleError::new("backend returned no profiled outcome"))
    }

    fn probes(&self) -> u64 {
        self.probes
    }

    fn block_accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache::LevelId;
    use hardware::{CpuModel, SimulatedCpu};

    fn blocks(ids: &[u32]) -> Vec<BlockId> {
        ids.iter().map(|&i| BlockId(i)).collect()
    }

    #[test]
    fn simulated_oracle_replays_figure_1_traces() {
        let mut oracle = SimulatedCacheOracle::new(PolicyKind::Lru, 2).unwrap();
        // A B C A -> last access misses; A B C B -> last access hits.
        assert_eq!(oracle.probe(&blocks(&[0, 1, 2, 0])).unwrap(), HitMiss::Miss);
        assert_eq!(oracle.probe(&blocks(&[0, 1, 2, 1])).unwrap(), HitMiss::Hit);
        assert_eq!(oracle.probes(), 2);
        assert_eq!(oracle.block_accesses(), 8);
    }

    #[test]
    fn simulated_oracle_always_starts_from_cc0() {
        let mut oracle = SimulatedCacheOracle::new(PolicyKind::Fifo, 4).unwrap();
        // The same probe gives the same answer regardless of history.
        let t = blocks(&[9, 0]);
        let first = oracle.probe(&t).unwrap();
        oracle.probe(&blocks(&[5, 6, 7, 8])).unwrap();
        assert_eq!(oracle.probe(&t).unwrap(), first);
    }

    #[test]
    fn empty_probes_are_rejected() {
        let mut oracle = SimulatedCacheOracle::new(PolicyKind::Lru, 2).unwrap();
        assert!(oracle.probe(&[]).is_err());
    }

    #[test]
    fn cachequery_oracle_probes_the_simulated_hardware() {
        let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 21);
        let mut tool = CacheQuery::new(cpu);
        tool.set_target(Target::new(LevelId::L1, 17, 0)).unwrap();
        let mut oracle = CacheQueryOracle::new(tool).unwrap();
        assert_eq!(oracle.associativity(), 8);
        // Within-set probe: the initial content 0..7 is established by the
        // reset sequence, so probing block 3 hits.
        assert_eq!(oracle.probe(&blocks(&[3])).unwrap(), HitMiss::Hit);
        // A fresh block misses.
        assert_eq!(oracle.probe(&blocks(&[11])).unwrap(), HitMiss::Miss);
    }

    #[test]
    fn probe_query_profiles_only_the_last_access() {
        let q = CacheQueryOracle::probe_query(&blocks(&[0, 1, 2]));
        assert_eq!(q.len(), 3);
        assert!(q[0].tag.is_none());
        assert!(q[1].tag.is_none());
        assert_eq!(q[2].tag, Some(mbl::Tag::Profile));
    }
}
