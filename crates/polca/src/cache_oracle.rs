//! The abstract cache interface Polca builds on, and its two implementations.
//!
//! Next to the paper's `probeCache` primitive (replay a whole block trace
//! from the fixed initial state), the interface exposes *probe sessions*: a
//! stateful walk along one trace with speculative side probes.  Hardware
//! caches can only implement sessions by replaying ([`ReplaySession`], the
//! cost model of the paper), but the software-simulated caches of §6 step
//! their cache set once per accessed block — turning Polca's per-query cost
//! from quadratic to linear in the word length, which is where the bulk of a
//! simulated learning run's time used to go.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cache::{Block, CacheSet, HitMiss};
use cachequery::{Backend, CacheQuery, QueryBackend, QueryEngine, Target};
use learning::{NonDeterminism, OracleError};
use mbl::{BlockId, MemOp, Query};
use policies::PolicyKind;

/// A stateful probe along one block trace, with speculative side probes.
///
/// Obtained from [`CacheOracle::begin`]; the session starts at the oracle's
/// fixed initial state `cc0` and advances one block per [`access`] call.
/// [`speculate`] answers "would this block hit right now?" without advancing
/// the session — exactly the side probe `findEvicted` needs (Algorithm 1).
///
/// [`access`]: CacheSession::access
/// [`speculate`]: CacheSession::speculate
pub trait CacheSession {
    /// Accesses `block`, advancing the session, and reports whether the
    /// access hit.
    ///
    /// # Errors
    ///
    /// Returns an [`OracleError`] if the underlying cache misbehaves.
    fn access(&mut self, block: BlockId) -> Result<HitMiss, OracleError>;

    /// Reports whether accessing `block` *now* would hit, without advancing
    /// the session.
    ///
    /// # Errors
    ///
    /// Returns an [`OracleError`] if the underlying cache misbehaves.
    fn speculate(&mut self, block: BlockId) -> Result<HitMiss, OracleError>;
}

/// A cache set that can be probed with block traces from a fixed initial
/// state (the `probeCache` primitive of Algorithm 1).
///
/// Implementations must guarantee that every probe (and every session)
/// starts from the same initial cache state `cc0`, in which block `i` (for
/// `i` in `0..associativity`) occupies line `i`.
///
/// **Contract for `Clone` implementations:** clones must answer identically
/// to the original (they are the per-worker instances of a parallel learning
/// run) *and share the [`probes`](CacheOracle::probes) /
/// [`block_accesses`](CacheOracle::block_accesses) counters* — e.g. behind
/// `Arc<AtomicU64>`, as [`SimulatedCacheOracle`] and [`CacheQueryOracle`]
/// do.  [`learn_policy`](crate::learn_policy) reads whole-run statistics
/// from a retained clone; per-clone counters would silently report (near)
/// zero probes for the run.
pub trait CacheOracle {
    /// Associativity of the cache set.
    fn associativity(&self) -> usize;

    /// Accesses all blocks of `trace` in order, starting from the fixed
    /// initial state, and returns whether the **last** access hit or missed.
    ///
    /// # Errors
    ///
    /// Returns an [`OracleError`] if the underlying cache misbehaves (e.g.
    /// inconsistent timing measurements on the hardware path).
    fn probe(&mut self, trace: &[BlockId]) -> Result<HitMiss, OracleError>;

    /// Starts a probe session from the fixed initial state.
    fn begin(&mut self) -> Box<dyn CacheSession + '_>;

    /// Number of probes executed so far.  A replayed trace counts as one
    /// probe, and so does each step of a probe session.
    fn probes(&self) -> u64;

    /// Total number of block accesses executed so far.  A replayed probe
    /// accesses `trace.len()` blocks; an incremental session step accesses
    /// exactly one.
    fn block_accesses(&self) -> u64;
}

/// A [`CacheSession`] for caches that can only be driven by whole-trace
/// replay: every step re-probes the full trace so far.
///
/// This is the cost model of the paper's hardware experiments (§7): real
/// silicon cannot snapshot its replacement state, so the `n`-th session step
/// costs `n` block accesses.  Any [`CacheOracle`] gets a correct session
/// implementation by wrapping itself in a `ReplaySession`.
#[derive(Debug)]
pub struct ReplaySession<'a, C: ?Sized> {
    oracle: &'a mut C,
    trace: Vec<BlockId>,
}

impl<'a, C: CacheOracle + ?Sized> ReplaySession<'a, C> {
    /// Starts a replay-based session on `oracle`.
    pub fn new(oracle: &'a mut C) -> Self {
        ReplaySession {
            oracle,
            trace: Vec::new(),
        }
    }
}

impl<C: CacheOracle + ?Sized> CacheSession for ReplaySession<'_, C> {
    fn access(&mut self, block: BlockId) -> Result<HitMiss, OracleError> {
        self.trace.push(block);
        self.oracle.probe(&self.trace)
    }

    fn speculate(&mut self, block: BlockId) -> Result<HitMiss, OracleError> {
        let mut probe = self.trace.clone();
        probe.push(block);
        self.oracle.probe(&probe)
    }
}

/// The software-simulated cache of the §6 case study: a [`CacheSet`] driven
/// by an executable replacement policy, probed without any noise.
///
/// Clones share their probe counters (the clones are the per-worker
/// instances of a parallel learning run, and statistics are per run, not per
/// worker).
#[derive(Debug, Clone)]
pub struct SimulatedCacheOracle {
    template: CacheSet,
    probes: Arc<AtomicU64>,
    accesses: Arc<AtomicU64>,
}

impl SimulatedCacheOracle {
    /// Creates the oracle for the given policy and associativity, with the
    /// canonical initial content (block `i` in line `i`).
    ///
    /// # Errors
    ///
    /// Returns an error if the policy does not support the associativity.
    pub fn new(kind: PolicyKind, associativity: usize) -> Result<Self, policies::PolicyError> {
        let policy = kind.build(associativity)?;
        let template = CacheSet::filled(policy, (0..associativity as u64).map(Block::new));
        Ok(Self::from_set(template))
    }

    /// Creates the oracle from an arbitrary pre-filled cache set (useful for
    /// testing custom policies).
    pub fn from_set(template: CacheSet) -> Self {
        SimulatedCacheOracle {
            template,
            probes: Arc::new(AtomicU64::new(0)),
            accesses: Arc::new(AtomicU64::new(0)),
        }
    }
}

/// An incremental session over a simulated cache set: one policy step per
/// accessed block, one set clone per speculation.
#[derive(Debug)]
struct SimulatedSession {
    set: CacheSet,
    probes: Arc<AtomicU64>,
    accesses: Arc<AtomicU64>,
}

impl CacheSession for SimulatedSession {
    fn access(&mut self, block: BlockId) -> Result<HitMiss, OracleError> {
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.accesses.fetch_add(1, Ordering::Relaxed);
        Ok(self.set.access(Block::new(block.0 as u64)).outcome())
    }

    fn speculate(&mut self, block: BlockId) -> Result<HitMiss, OracleError> {
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.accesses.fetch_add(1, Ordering::Relaxed);
        // A speculative access hits exactly when the block is currently
        // cached; checking containment avoids cloning the whole set (policy
        // state included) for an answer the lookup alone determines.
        if self.set.contains(Block::new(block.0 as u64)) {
            Ok(HitMiss::Hit)
        } else {
            Ok(HitMiss::Miss)
        }
    }
}

impl CacheOracle for SimulatedCacheOracle {
    fn associativity(&self) -> usize {
        self.template.associativity()
    }

    fn probe(&mut self, trace: &[BlockId]) -> Result<HitMiss, OracleError> {
        if trace.is_empty() {
            return Err(OracleError::new("cannot probe with an empty trace"));
        }
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.accesses
            .fetch_add(trace.len() as u64, Ordering::Relaxed);
        let mut set = self.template.clone();
        let mut last = HitMiss::Miss;
        for block in trace {
            last = set.access(Block::new(block.0 as u64)).outcome();
        }
        Ok(last)
    }

    fn begin(&mut self) -> Box<dyn CacheSession + '_> {
        Box::new(SimulatedSession {
            set: self.template.clone(),
            probes: Arc::clone(&self.probes),
            accesses: Arc::clone(&self.accesses),
        })
    }

    fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    fn block_accesses(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }
}

/// The engine-backed cache oracle of §7: probes are turned into concrete
/// queries whose last access is profiled, and every query flows through one
/// [`QueryEngine`] — so a learning run shares the same memoization layer (and
/// the same [`QueryStore`](cachequery::QueryStore), when shared) as every
/// other consumer of the query path.
///
/// The backend's reset sequence plays the role of establishing the fixed
/// initial state; the oracle additionally verifies that repeated executions
/// agree and reports an error otherwise (the nondeterminism signal discussed
/// in §7.1).  Sessions replay, as real hardware must (see [`ReplaySession`])
/// — but a replayed prefix is a prefix of an already-recorded query, so the
/// engine's prefix trie absorbs most of the replay blowup.
///
/// The oracle is generic over the [`QueryBackend`]: the simulated-hardware
/// [`Backend`], a [`PolicySimBackend`](crate::PolicySimBackend), or a remote
/// `cqd` session (`server::RemoteBackend`) all learn through the same code.
///
/// Clones carry an independent copy of the backend (which must answer
/// identically — true for deterministic simulations; on real silicon there
/// is only one cache, so pin `workers = 1`) but share the probe counters and
/// the engine's store.
#[derive(Debug)]
pub struct CacheQueryOracle<B = Backend> {
    engine: QueryEngine<B>,
    associativity: usize,
    probes: Arc<AtomicU64>,
    accesses: Arc<AtomicU64>,
}

impl<B: Clone> Clone for CacheQueryOracle<B> {
    fn clone(&self) -> Self {
        CacheQueryOracle {
            engine: self.engine.clone(),
            associativity: self.associativity,
            probes: Arc::clone(&self.probes),
            accesses: Arc::clone(&self.accesses),
        }
    }
}

impl CacheQueryOracle<Backend> {
    /// Wraps a CacheQuery instance that already has its target selected.
    ///
    /// The number of repetitions per query is raised to 5 so that stray
    /// measurement outliers are outvoted instead of being mistaken for
    /// nondeterministic cache behaviour.
    ///
    /// # Errors
    ///
    /// Returns an error if no target is selected.
    pub fn new(mut tool: CacheQuery) -> Result<Self, OracleError> {
        tool.set_repetitions(5);
        Self::from_engine(tool.into_engine())
    }

    /// Selects a target and wraps the tool.
    ///
    /// # Errors
    ///
    /// Propagates target-selection failures.
    pub fn with_target(mut tool: CacheQuery, target: Target) -> Result<Self, OracleError> {
        tool.set_target(target)
            .map_err(|e| OracleError::new(e.to_string()))?;
        Self::new(tool)
    }
}

impl<B: QueryBackend> CacheQueryOracle<B> {
    /// Wraps an already-configured engine: the generic entry point for
    /// simulated-policy and remote backends.
    ///
    /// # Errors
    ///
    /// Returns an error if the backend has no configured target.
    pub fn from_engine(engine: QueryEngine<B>) -> Result<Self, OracleError> {
        let associativity = engine
            .backend()
            .associativity()
            .map_err(|e| OracleError::new(e.to_string()))?;
        Ok(CacheQueryOracle {
            engine,
            associativity,
            probes: Arc::new(AtomicU64::new(0)),
            accesses: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Read access to the wrapped engine (e.g. for store statistics).
    pub fn engine(&self) -> &QueryEngine<B> {
        &self.engine
    }

    /// Mutable access to the wrapped engine (e.g. to attach a span recorder
    /// or adjust the vote configuration before learning starts).
    pub fn engine_mut(&mut self) -> &mut QueryEngine<B> {
        &mut self.engine
    }

    /// Consumes the oracle and returns the wrapped engine.
    pub fn into_engine(self) -> QueryEngine<B> {
        self.engine
    }

    /// Builds the MBL query corresponding to a probe: access every block,
    /// profile the last one.
    fn probe_query(trace: &[BlockId]) -> Query {
        let mut query: Query = trace[..trace.len() - 1]
            .iter()
            .map(|&b| MemOp::access(b))
            .collect();
        query.push(MemOp::profiled(trace[trace.len() - 1]));
        query
    }
}

impl<B: QueryBackend> CacheOracle for CacheQueryOracle<B> {
    fn associativity(&self) -> usize {
        self.associativity
    }

    fn probe(&mut self, trace: &[BlockId]) -> Result<HitMiss, OracleError> {
        if trace.is_empty() {
            return Err(OracleError::new("cannot probe with an empty trace"));
        }
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.accesses
            .fetch_add(trace.len() as u64, Ordering::Relaxed);
        let query = Self::probe_query(trace);
        let outcome = self
            .engine
            .run(&query)
            .map_err(|e| OracleError::new(e.to_string()))?;
        if !outcome.consistent {
            let message = format!(
                "inconsistent measurements for query '{}': the cache set behaves \
                 non-deterministically (wrong reset sequence or adaptive policy)",
                outcome.rendered
            );
            // With voting enabled the engine has been tallying margins; turn
            // its evidence into the statistical non-determinism verdict the
            // learner aborts with (instead of retrying a hopeless target).
            let evidence = self.engine.vote_evidence();
            if evidence.unsettled > 0 {
                return Err(OracleError::not_deterministic(
                    message,
                    NonDeterminism {
                        disagreement_permille: evidence.disagreement_permille(),
                        worst_margin_permille: evidence.worst_margin_permille,
                        worst_query: evidence.worst_query.clone(),
                        required_margin_permille: u64::from(
                            self.engine.vote_config().margin_permille,
                        ),
                        voted_queries: evidence.voted,
                        unsettled_queries: evidence.unsettled,
                    },
                ));
            }
            return Err(OracleError::new(message));
        }
        outcome
            .outcomes
            .first()
            .copied()
            .ok_or_else(|| OracleError::new("backend returned no profiled outcome"))
    }

    fn begin(&mut self) -> Box<dyn CacheSession + '_> {
        Box::new(ReplaySession::new(self))
    }

    fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    fn block_accesses(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache::LevelId;
    use hardware::{CpuModel, SimulatedCpu};

    fn blocks(ids: &[u32]) -> Vec<BlockId> {
        ids.iter().map(|&i| BlockId(i)).collect()
    }

    #[test]
    fn simulated_oracle_replays_figure_1_traces() {
        let mut oracle = SimulatedCacheOracle::new(PolicyKind::Lru, 2).unwrap();
        // A B C A -> last access misses; A B C B -> last access hits.
        assert_eq!(oracle.probe(&blocks(&[0, 1, 2, 0])).unwrap(), HitMiss::Miss);
        assert_eq!(oracle.probe(&blocks(&[0, 1, 2, 1])).unwrap(), HitMiss::Hit);
        assert_eq!(oracle.probes(), 2);
        assert_eq!(oracle.block_accesses(), 8);
    }

    #[test]
    fn simulated_oracle_always_starts_from_cc0() {
        let mut oracle = SimulatedCacheOracle::new(PolicyKind::Fifo, 4).unwrap();
        // The same probe gives the same answer regardless of history.
        let t = blocks(&[9, 0]);
        let first = oracle.probe(&t).unwrap();
        oracle.probe(&blocks(&[5, 6, 7, 8])).unwrap();
        assert_eq!(oracle.probe(&t).unwrap(), first);
    }

    #[test]
    fn empty_probes_are_rejected() {
        let mut oracle = SimulatedCacheOracle::new(PolicyKind::Lru, 2).unwrap();
        assert!(oracle.probe(&[]).is_err());
    }

    #[test]
    fn sessions_agree_with_replayed_probes() {
        // Step a session along a trace and check each intermediate outcome
        // against a from-scratch probe of the same prefix.
        let trace = blocks(&[0, 3, 4, 0, 5, 1, 4]);
        for kind in [PolicyKind::Lru, PolicyKind::Plru, PolicyKind::SrripHp] {
            let mut replay = SimulatedCacheOracle::new(kind, 4).unwrap();
            let mut oracle = SimulatedCacheOracle::new(kind, 4).unwrap();
            let mut session = oracle.begin();
            for len in 1..=trace.len() {
                let stepped = session.access(trace[len - 1]).unwrap();
                assert_eq!(
                    stepped,
                    replay.probe(&trace[..len]).unwrap(),
                    "{kind} diverged at prefix length {len}"
                );
            }
        }
    }

    #[test]
    fn speculation_does_not_advance_the_session() {
        let mut oracle = SimulatedCacheOracle::new(PolicyKind::Lru, 2).unwrap();
        let mut session = oracle.begin();
        // Fill with 5, evicting LRU block 0; speculative misses on 0 must not
        // disturb the state no matter how often they run.
        assert_eq!(session.access(BlockId(5)).unwrap(), HitMiss::Miss);
        for _ in 0..3 {
            assert_eq!(session.speculate(BlockId(0)).unwrap(), HitMiss::Miss);
            assert_eq!(session.speculate(BlockId(1)).unwrap(), HitMiss::Hit);
        }
        assert_eq!(session.access(BlockId(1)).unwrap(), HitMiss::Hit);
    }

    #[test]
    fn session_steps_cost_one_access_each() {
        let mut oracle = SimulatedCacheOracle::new(PolicyKind::Lru, 2).unwrap();
        let mut session = oracle.begin();
        session.access(BlockId(7)).unwrap();
        session.access(BlockId(8)).unwrap();
        session.speculate(BlockId(0)).unwrap();
        drop(session);
        assert_eq!(oracle.probes(), 3);
        assert_eq!(oracle.block_accesses(), 3);
    }

    #[test]
    fn cloned_oracles_answer_identically_and_share_counters() {
        let oracle = SimulatedCacheOracle::new(PolicyKind::Plru, 4).unwrap();
        let mut clone_a = oracle.clone();
        let mut clone_b = oracle.clone();
        let t = blocks(&[5, 1, 6, 2]);
        assert_eq!(clone_a.probe(&t).unwrap(), clone_b.probe(&t).unwrap());
        // Both probes land in the shared per-run counters.
        assert_eq!(oracle.probes(), 2);
        assert_eq!(oracle.block_accesses(), 8);
    }

    #[test]
    fn cachequery_oracle_probes_the_simulated_hardware() {
        let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 21);
        let mut tool = CacheQuery::new(cpu);
        tool.set_target(Target::new(LevelId::L1, 17, 0)).unwrap();
        let mut oracle = CacheQueryOracle::new(tool).unwrap();
        assert_eq!(oracle.associativity(), 8);
        // Within-set probe: the initial content 0..7 is established by the
        // reset sequence, so probing block 3 hits.
        assert_eq!(oracle.probe(&blocks(&[3])).unwrap(), HitMiss::Hit);
        // A fresh block misses.
        assert_eq!(oracle.probe(&blocks(&[11])).unwrap(), HitMiss::Miss);
    }

    #[test]
    fn cachequery_sessions_replay_the_whole_trace() {
        let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 21);
        let mut tool = CacheQuery::new(cpu);
        tool.set_target(Target::new(LevelId::L1, 17, 0)).unwrap();
        let mut oracle = CacheQueryOracle::new(tool).unwrap();
        let mut session = oracle.begin();
        assert_eq!(session.access(BlockId(11)).unwrap(), HitMiss::Miss);
        assert_eq!(session.access(BlockId(11)).unwrap(), HitMiss::Hit);
        assert_eq!(session.speculate(BlockId(11)).unwrap(), HitMiss::Hit);
        drop(session);
        // Replay cost model: 1 + 2 + 3 block accesses for the three steps.
        assert_eq!(oracle.probes(), 3);
        assert_eq!(oracle.block_accesses(), 6);
    }

    #[test]
    fn probe_query_profiles_only_the_last_access() {
        let q = CacheQueryOracle::<Backend>::probe_query(&blocks(&[0, 1, 2]));
        assert_eq!(q.len(), 3);
        assert!(q[0].tag.is_none());
        assert!(q[1].tag.is_none());
        assert_eq!(q[2].tag, Some(mbl::Tag::Profile));
    }
}
