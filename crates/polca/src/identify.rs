//! Matching learned automata against the library of known policies.
//!
//! Machines learned from hardware name cache lines after the order in which
//! the reset sequence filled them, and their initial control state is the
//! state the reset sequence leaves the policy in — neither necessarily
//! matches the reference implementation's conventions.  Identification
//! therefore searches for a permutation of line indices and a starting state
//! of the reference policy under which the two machines are trace-equivalent.
//! (This is how the paper checks that the learned L1/L2 machines "are" PLRU,
//! §7.2.)

use automata::{check_equivalence, Mealy, StateId};
use policies::{policy_to_mealy, PolicyInput, PolicyKind, PolicyMealy, PolicyOutput};

/// A permutation of cache-line indices under which a learned machine matches
/// a reference policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinePermutation(pub Vec<usize>);

impl LinePermutation {
    /// Applies the permutation to a policy input.
    pub fn apply_input(&self, input: PolicyInput) -> PolicyInput {
        match input {
            PolicyInput::Line(i) => PolicyInput::line(self.0[usize::from(i)]),
            PolicyInput::Evct => PolicyInput::Evct,
        }
    }

    /// Applies the permutation to a policy output.
    pub fn apply_output(&self, output: PolicyOutput) -> PolicyOutput {
        match output {
            PolicyOutput::Evicted(i) => PolicyOutput::evicted(self.0[usize::from(i)]),
            PolicyOutput::None => PolicyOutput::None,
        }
    }
}

/// Generates all permutations of `0..n` (Heap's algorithm).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut result = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    fn heap(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut items, &mut result);
    result
}

/// Short probe words used to prune (permutation, start-state) candidates
/// before running a full equivalence check.
fn probe_words(assoc: usize) -> Vec<Vec<PolicyInput>> {
    let singles: Vec<PolicyInput> = (0..assoc)
        .map(PolicyInput::line)
        .chain(std::iter::once(PolicyInput::Evct))
        .collect();
    let mut words: Vec<Vec<PolicyInput>> = Vec::new();
    for &a in &singles {
        words.push(vec![a]);
        for &b in &singles {
            words.push(vec![a, b]);
        }
    }
    // A longer eviction-heavy word: evictions are where policies differ most.
    words.push(vec![PolicyInput::Evct; assoc + 2]);
    words
}

/// Output signature of `machine` started in `state` on the probe words.
fn signature(
    machine: &PolicyMealy,
    state: StateId,
    words: &[Vec<PolicyInput>],
) -> Vec<Vec<PolicyOutput>> {
    words
        .iter()
        .map(|word| {
            let mut current = state;
            let mut outputs = Vec::with_capacity(word.len());
            for input in word {
                let (next, output) = machine.step(current, input);
                outputs.push(output);
                current = next;
            }
            outputs
        })
        .collect()
}

/// Builds a copy of `reference` whose initial state is `state`.
fn with_initial(reference: &PolicyMealy, state: StateId) -> PolicyMealy {
    let inputs = reference.inputs().to_vec();
    let transitions = reference
        .states()
        .map(|s| {
            (0..inputs.len())
                .map(|ii| {
                    let (t, o) = reference.step_by_index(s, ii);
                    (t, *o)
                })
                .collect()
        })
        .collect();
    Mealy::from_tables(inputs, transitions, state).expect("same shape as the reference")
}

/// Tries to identify `learned` as one of `candidates`.
///
/// Returns the first matching policy kind together with the line permutation
/// that witnesses the match.  The search considers every starting state of
/// the reference machine, because the learned machine starts in whatever
/// control state the reset sequence establishes.
///
/// # Panics
///
/// Panics if `learned`'s alphabet is not the policy alphabet for `assoc`.
pub fn identify_policy(
    learned: &PolicyMealy,
    assoc: usize,
    candidates: &[PolicyKind],
) -> Option<(PolicyKind, LinePermutation)> {
    let words = probe_words(assoc);
    let perms = permutations(assoc);

    for &kind in candidates {
        if !kind.supports_associativity(assoc) || !kind.is_deterministic() {
            continue;
        }
        let Ok(policy) = kind.build(assoc) else {
            continue;
        };
        let reference = policy_to_mealy(policy.as_ref(), 1 << 20);
        if reference.num_states() < learned.num_states() {
            // The learned machine explores at most the reference's reachable
            // component, so it can never have more states.
            continue;
        }
        // Signatures of every reference state, for pruning.
        let reference_signatures: Vec<_> = reference
            .states()
            .map(|s| signature(&reference, s, &words))
            .collect();

        for perm in &perms {
            let permutation = LinePermutation(perm.clone());
            let relabelled = learned.map_alphabets(
                |i| permutation.apply_input(*i),
                |o| permutation.apply_output(*o),
            );
            let learned_signature = signature(&relabelled, relabelled.initial(), &words);
            for (state_index, reference_signature) in reference_signatures.iter().enumerate() {
                if *reference_signature != learned_signature {
                    continue;
                }
                let candidate = with_initial(&reference, StateId::new(state_index));
                if check_equivalence(&relabelled, &candidate).is_none() {
                    return Some((kind, permutation));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use policies::PolicyKind;

    const CANDIDATES: [PolicyKind; 9] = PolicyKind::ALL_DETERMINISTIC;

    #[test]
    fn identifies_each_policy_at_assoc_4_with_identity_permutation() {
        for kind in [
            PolicyKind::Fifo,
            PolicyKind::Lru,
            PolicyKind::Plru,
            PolicyKind::Mru,
            PolicyKind::New1,
            PolicyKind::New2,
        ] {
            let machine = policy_to_mealy(kind.build(4).unwrap().as_ref(), 1 << 16);
            let (found, perm) = identify_policy(&machine, 4, &CANDIDATES)
                .unwrap_or_else(|| panic!("failed to identify {kind}"));
            assert_eq!(found, kind);
            assert_eq!(perm.0, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn identifies_a_line_permuted_machine() {
        // Relabel LRU's lines with a non-trivial permutation and check that
        // identification still recognizes it as LRU.
        let reference = policy_to_mealy(PolicyKind::Lru.build(3).unwrap().as_ref(), 1 << 16);
        let shuffle = LinePermutation(vec![2, 0, 1]);
        let permuted =
            reference.map_alphabets(|i| shuffle.apply_input(*i), |o| shuffle.apply_output(*o));
        let (found, _) = identify_policy(&permuted, 3, &CANDIDATES).unwrap();
        assert_eq!(found, PolicyKind::Lru);
    }

    #[test]
    fn identifies_a_machine_started_in_a_non_initial_state() {
        // Advance MRU by a few inputs before exporting its machine: the
        // identification must still succeed by searching start states.
        let mut policy = PolicyKind::Mru.build(4).unwrap();
        policy.on_hit(2);
        policy.on_miss();
        let machine = policy_to_mealy(policy.as_ref(), 1 << 16);
        let (found, _) = identify_policy(&machine, 4, &CANDIDATES).unwrap();
        assert_eq!(found, PolicyKind::Mru);
    }

    #[test]
    fn lru_and_lip_are_distinguished() {
        // LIP differs from LRU only in the insertion position; make sure the
        // identification does not confuse them.
        let lip = policy_to_mealy(PolicyKind::Lip.build(4).unwrap().as_ref(), 1 << 16);
        let (found, _) = identify_policy(&lip, 4, &CANDIDATES).unwrap();
        assert_eq!(found, PolicyKind::Lip);
    }

    #[test]
    fn unknown_machines_are_not_identified() {
        // A FIFO machine at associativity 3 is not PLRU/MRU/...; restricting
        // the candidate set must yield no match.
        let fifo = policy_to_mealy(PolicyKind::Fifo.build(3).unwrap().as_ref(), 1 << 16);
        assert!(identify_policy(&fifo, 3, &[PolicyKind::Lru, PolicyKind::Mru]).is_none());
    }

    #[test]
    fn permutation_helpers_apply_to_inputs_and_outputs() {
        let perm = LinePermutation(vec![1, 0]);
        assert_eq!(perm.apply_input(PolicyInput::Line(0)), PolicyInput::Line(1));
        assert_eq!(perm.apply_input(PolicyInput::Evct), PolicyInput::Evct);
        assert_eq!(
            perm.apply_output(PolicyOutput::Evicted(1)),
            PolicyOutput::Evicted(0)
        );
    }
}
