//! The end-to-end learning pipeline: Polca + L* + Wp-method over either a
//! software-simulated cache (§6) or simulated hardware through CacheQuery
//! (§7).

use std::sync::Arc;
use std::time::Duration;

use automata::minimize;
use cache::LevelId;
use cachequery::{CacheQuery, ResetSequence, Target};
use hardware::{CpuModel, SimulatedCpu};
use learning::{
    learn_mealy, LearnError, LearnOptions, LearnPhase, LearnProgress, LearnStats, WpMethodOracle,
};
use obs::Recorder;
use policies::{policy_alphabet, PolicyKind, PolicyMealy};

use crate::cache_oracle::{CacheOracle, CacheQueryOracle, SimulatedCacheOracle};
use crate::membership::PolcaOracle;

/// Configuration of a learning run.
#[derive(Debug, Clone)]
pub struct LearnSetup {
    /// Extra depth `k` of the conformance test suite (§3.4; the paper uses 1).
    pub conformance_depth: usize,
    /// Upper bound on the hypothesis size.
    pub max_states: usize,
    /// Wall-clock budget (the paper's §6 experiments use 36 hours; harness
    /// defaults are much smaller).
    pub time_budget: Option<Duration>,
    /// Worker threads for parallel conformance testing and batched
    /// observation-table filling.  `0` (the default) resolves the count from
    /// the `CACHEQUERY_WORKERS` environment variable or the machine's
    /// available parallelism.  Learning real (non-simulated) hardware should
    /// pin this to `1`: there is only one physical cache to probe.
    pub workers: usize,
    /// Whether to memoize membership queries in the shared prefix-trie query
    /// cache (default `true`).
    pub memoize: bool,
    /// Optional live progress counters (hypothesis size, membership queries),
    /// updated once per hypothesis round — the job layer polls these while a
    /// run is in flight.
    pub progress: Option<Arc<LearnProgress>>,
    /// Optional span recorder: the learner emits its per-phase spans into it
    /// (see [`learning::LearnOptions::recorder`]), and engine-backed
    /// pipelines attach it to their [`cachequery::QueryEngine`] so the batch
    /// and vote-escalation spans land in the same timeline.
    pub recorder: Option<Arc<Recorder>>,
}

impl Default for LearnSetup {
    fn default() -> Self {
        LearnSetup {
            conformance_depth: 1,
            max_states: 1 << 16,
            time_budget: None,
            workers: 0,
            memoize: true,
            progress: None,
            recorder: None,
        }
    }
}

impl LearnSetup {
    /// The [`LearnOptions`] equivalent of this setup.
    fn options(&self) -> LearnOptions {
        LearnOptions {
            max_states: self.max_states,
            time_budget: self.time_budget,
            workers: self.workers,
            memoize: self.memoize,
            progress: self.progress.clone(),
            recorder: self.recorder.clone(),
        }
    }
}

/// One L* phase of a campaign, reduced to the plain facts a status protocol
/// reports: its name, the membership queries it issued, and its wall-clock
/// share.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Phase name (`table_fill`, `closure`, `equivalence`, `identification`).
    pub name: String,
    /// Membership queries attributed to this phase.
    pub queries: u64,
    /// Wall-clock time spent in this phase, in milliseconds.
    pub millis: u64,
}

/// The per-phase profile of one learning campaign: where the membership
/// queries and the wall-clock time went, phase by phase (§5's learner loop).
///
/// Phase attribution is exact — the learner's regions partition its whole
/// loop — so [`CampaignProfile::total_queries`] equals the campaign's
/// [`LearnStats::membership_queries`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CampaignProfile {
    /// One entry per L* phase, in [`LearnPhase::ALL`] order.
    pub phases: Vec<PhaseProfile>,
}

impl CampaignProfile {
    /// Builds the profile from a finished run's statistics.
    pub fn from_stats(stats: &LearnStats) -> Self {
        CampaignProfile {
            phases: LearnPhase::ALL
                .iter()
                .map(|&phase| {
                    let s = stats.phases.get(phase);
                    PhaseProfile {
                        name: phase.name().to_string(),
                        queries: s.queries,
                        millis: s.duration.as_millis() as u64,
                    }
                })
                .collect(),
        }
    }

    /// Membership queries summed over all phases (equals the run's total).
    pub fn total_queries(&self) -> u64 {
        self.phases.iter().map(|p| p.queries).sum()
    }

    /// The profile entry for `name`, if present.
    pub fn phase(&self, name: &str) -> Option<&PhaseProfile> {
        self.phases.iter().find(|p| p.name == name)
    }
}

/// Result of a learning run.
#[derive(Debug, Clone)]
pub struct LearnOutcome {
    /// The learned (and minimized) policy automaton.
    pub machine: PolicyMealy,
    /// Learner statistics: membership/equivalence queries, cache hit rate,
    /// conformance shards, counterexamples, wall-clock time.
    pub stats: LearnStats,
    /// Cache probes issued by Polca across all workers (session steps and
    /// speculative probes included).
    pub cache_probes: u64,
    /// Individual block accesses issued by Polca across all workers.
    pub block_accesses: u64,
    /// Per-phase query/duration breakdown of the run (derived from
    /// [`LearnStats::phases`]; its query counts sum to
    /// [`LearnStats::membership_queries`] exactly).
    pub profile: CampaignProfile,
}

/// Learns the replacement policy of an arbitrary [`CacheOracle`].
///
/// This is the generic pipeline: Polca provides membership queries, a
/// Wp-method conformance oracle provides equivalence queries, and the learned
/// machine is minimized before being returned.  The cache oracle doubles as
/// the oracle *factory*: each worker of the learner's query pool drives its
/// own clone, and clones share their probe counters, so [`LearnOutcome`]
/// reports whole-run statistics.
///
/// # Errors
///
/// Propagates learner errors ([`LearnError`]), including oracle failures and
/// detected nondeterminism.
pub fn learn_policy<C>(cache: C, setup: &LearnSetup) -> Result<LearnOutcome, LearnError>
where
    C: CacheOracle + Clone + Send + 'static,
{
    let associativity = cache.associativity();
    let alphabet = policy_alphabet(associativity);
    let stats_handle = cache.clone();
    let factory = move || PolcaOracle::new(cache.clone());
    let mut equivalence = WpMethodOracle::new(setup.conformance_depth);
    let (machine, stats) = learn_mealy(alphabet, &factory, &mut equivalence, setup.options())?;
    let profile = CampaignProfile::from_stats(&stats);
    Ok(LearnOutcome {
        machine: minimize(&machine),
        stats,
        cache_probes: stats_handle.probes(),
        block_accesses: stats_handle.block_accesses(),
        profile,
    })
}

/// Learns a named policy from a noiseless software-simulated cache (the §6
/// case study).
///
/// # Errors
///
/// Returns an error if the policy does not support the associativity or if
/// learning fails.
pub fn learn_simulated_policy(
    kind: PolicyKind,
    associativity: usize,
    setup: &LearnSetup,
) -> Result<LearnOutcome, LearnError> {
    let cache = SimulatedCacheOracle::new(kind, associativity)
        .map_err(|e| LearnError::Oracle(learning::OracleError::new(e.to_string())))?;
    learn_policy(cache, setup)
}

/// Learns a named policy through a fault-injecting simulated backend
/// ([`NoisySimBackend`](crate::NoisySimBackend)): the noise-robustness form
/// of [`learn_simulated_policy`].
///
/// Every probe flows through a memoizing `QueryEngine` whose majority vote
/// (repetitions + escalation, see `cachequery::VoteConfig`) must absorb the
/// injected faults; at the rates the noise subsystem targets (≤ 10%) the
/// learned automaton is byte-identical to the noise-free run, which
/// `tests/learn_noisy.rs` pins.  The engine's `VoteConfig` is passed in
/// explicitly so tests can also prove the *negative*: with
/// `VoteConfig::disabled()` the same fault rates corrupt or abort the run.
///
/// # Errors
///
/// Returns an error if the policy does not support the associativity, or if
/// learning fails (with voting disabled, the expected outcome).
pub fn learn_noisy_policy(
    kind: PolicyKind,
    associativity: usize,
    noise: cachequery::NoiseSpec,
    voting: cachequery::VoteConfig,
    setup: &LearnSetup,
) -> Result<LearnOutcome, LearnError> {
    let backend = crate::noisy_sim_backend(kind, associativity, noise)
        .map_err(|e| LearnError::Oracle(learning::OracleError::new(e.to_string())))?;
    let mut engine = cachequery::QueryEngine::new(backend);
    engine.set_vote_config(voting);
    engine.set_recorder(setup.recorder.clone());
    let oracle = CacheQueryOracle::from_engine(engine).map_err(LearnError::Oracle)?;
    learn_policy(oracle, setup)
}

/// Learns a named policy through a two-level inclusive hierarchy
/// ([`HierarchyBackend`](crate::HierarchyBackend)): the cache-filtering form
/// of [`learn_simulated_policy`].
///
/// Every probe traverses the full [`cache::Hierarchy`] — the policy under
/// learning governs a single-set L1 with an inclusive L2 interposed — yet
/// the filtered block placement keeps the L2 from ever evicting a live
/// block, so the learned automaton is byte-identical to the bare-policy run
/// (which `tests/learn_hierarchy.rs` pins).
///
/// # Errors
///
/// Returns an error if the policy does not support the associativity or if
/// learning fails.
pub fn learn_hierarchy_policy(
    kind: PolicyKind,
    associativity: usize,
    setup: &LearnSetup,
) -> Result<LearnOutcome, LearnError> {
    let backend = crate::HierarchyBackend::new(kind, associativity)
        .map_err(|e| LearnError::Oracle(learning::OracleError::new(e.to_string())))?;
    let mut engine = cachequery::QueryEngine::new(backend);
    engine.set_recorder(setup.recorder.clone());
    let oracle = CacheQueryOracle::from_engine(engine).map_err(LearnError::Oracle)?;
    learn_policy(oracle, setup)
}

/// Configuration of a hardware learning run (§7).
#[derive(Debug, Clone)]
pub struct HardwareTarget {
    /// The CPU model to simulate.
    pub model: CpuModel,
    /// The cache set to learn.
    pub target: Target,
    /// Reset sequence (Table 4).
    pub reset: ResetSequence,
    /// If set, restrict the last-level cache to this many ways with CAT
    /// before learning (Table 4 reduces the Skylake/Kaby Lake L3 to 4 ways).
    pub cat_ways: Option<usize>,
    /// Seed of the simulated machine.
    pub seed: u64,
}

/// Learns the replacement policy of one cache set of a simulated CPU through
/// the full CacheQuery pipeline.
///
/// The simulated CPU is deterministic, so the per-worker clones of the
/// learner answer identically and parallel conformance testing is sound.  On
/// real silicon there is only one cache — pin [`LearnSetup::workers`] to 1
/// there.
///
/// # Errors
///
/// Propagates CacheQuery errors (e.g. CAT being unsupported on the Haswell
/// model) and learner errors, including the nondeterminism failures expected
/// on adaptive follower sets.
pub fn learn_hardware_policy(
    hardware: &HardwareTarget,
    setup: &LearnSetup,
) -> Result<LearnOutcome, LearnError> {
    let cpu = SimulatedCpu::new(hardware.model, hardware.seed);
    let mut tool = CacheQuery::new(cpu);
    tool.set_reset_sequence(hardware.reset.clone());
    if let Some(ways) = hardware.cat_ways {
        tool.apply_cat(ways)
            .map_err(|e| LearnError::Oracle(learning::OracleError::new(e.to_string())))?;
    }
    tool.set_target(hardware.target)
        .map_err(|e| LearnError::Oracle(learning::OracleError::new(e.to_string())))?;
    let mut oracle = CacheQueryOracle::new(tool).map_err(LearnError::Oracle)?;
    oracle.engine_mut().set_recorder(setup.recorder.clone());
    learn_policy(oracle, setup)
}

impl HardwareTarget {
    /// Convenience constructor for an L1 target (always learnable with
    /// Flush+Refill on the modelled CPUs).
    pub fn l1(model: CpuModel, set: usize, seed: u64) -> Self {
        HardwareTarget {
            model,
            target: Target::new(LevelId::L1, set, 0),
            reset: ResetSequence::FlushRefill,
            cat_ways: None,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::check_equivalence;
    use policies::policy_to_mealy;

    #[test]
    fn learns_lru_2_exactly() {
        let outcome = learn_simulated_policy(PolicyKind::Lru, 2, &LearnSetup::default()).unwrap();
        assert_eq!(outcome.machine.num_states(), 2);
        let reference = policy_to_mealy(PolicyKind::Lru.build(2).unwrap().as_ref(), 100);
        assert!(check_equivalence(&outcome.machine, &reference).is_none());
        assert!(outcome.cache_probes > 0);
        assert!(outcome.block_accesses >= outcome.cache_probes);
    }

    #[test]
    fn learns_the_table_2_small_policies() {
        // A sample of Table 2 at small associativities; the learned state
        // counts must match the table exactly.
        let cases = [
            (PolicyKind::Fifo, 4, 4),
            (PolicyKind::Lru, 4, 24),
            (PolicyKind::Plru, 4, 8),
            (PolicyKind::Mru, 4, 14),
            (PolicyKind::SrripHp, 2, 12),
            (PolicyKind::SrripFp, 2, 16),
        ];
        for (kind, assoc, expected_states) in cases {
            let outcome = learn_simulated_policy(kind, assoc, &LearnSetup::default()).unwrap();
            assert_eq!(
                outcome.machine.num_states(),
                expected_states,
                "wrong state count for {kind} at associativity {assoc}"
            );
            let reference = policy_to_mealy(kind.build(assoc).unwrap().as_ref(), 1 << 16);
            assert!(
                check_equivalence(&outcome.machine, &reference).is_none(),
                "{kind} mislearned"
            );
        }
    }

    #[test]
    fn campaign_profile_query_counts_sum_to_the_run_total() {
        let outcome = learn_simulated_policy(PolicyKind::Lru, 4, &LearnSetup::default()).unwrap();
        assert_eq!(
            outcome.profile.total_queries(),
            outcome.stats.membership_queries,
            "phase attribution must partition the run exactly"
        );
        assert_eq!(outcome.profile.phases.len(), 4);
        assert!(outcome.profile.phase("table_fill").unwrap().queries > 0);
        assert!(outcome.profile.phase("equivalence").unwrap().queries > 0);
        assert!(outcome.profile.phase("no_such_phase").is_none());
    }

    #[test]
    fn learning_reports_cache_statistics() {
        let outcome = learn_simulated_policy(PolicyKind::Mru, 4, &LearnSetup::default()).unwrap();
        let stats = outcome.stats;
        assert_eq!(
            stats.membership_queries,
            stats.cache_hits + stats.cache_misses
        );
        assert!(stats.cache_hits > 0, "learning never hit the query cache");
        assert!(stats.conformance_tests > 0);
        assert!(stats.equivalence_shards >= stats.equivalence_queries);
        assert!(stats.cache_hit_rate() > 0.0);
    }

    #[test]
    fn worker_counts_do_not_change_the_learned_machine() {
        let reference = policy_to_mealy(PolicyKind::Plru.build(4).unwrap().as_ref(), 1 << 16);
        for workers in [1usize, 4] {
            let setup = LearnSetup {
                workers,
                ..LearnSetup::default()
            };
            let outcome = learn_simulated_policy(PolicyKind::Plru, 4, &setup).unwrap();
            assert_eq!(outcome.machine.num_states(), 8);
            assert!(
                check_equivalence(&outcome.machine, &reference).is_none(),
                "PLRU mislearned with {workers} workers"
            );
        }
    }

    #[test]
    fn disabling_memoization_still_learns_correctly() {
        let setup = LearnSetup {
            memoize: false,
            ..LearnSetup::default()
        };
        let outcome = learn_simulated_policy(PolicyKind::Plru, 4, &setup).unwrap();
        assert_eq!(outcome.machine.num_states(), 8);
        assert_eq!(outcome.stats.cache_hits, 0);
        assert!(outcome.stats.membership_queries > 0);
    }

    #[test]
    fn state_limit_aborts_learning() {
        let setup = LearnSetup {
            max_states: 4,
            ..LearnSetup::default()
        };
        let result = learn_simulated_policy(PolicyKind::Lru, 4, &setup);
        assert!(matches!(result, Err(LearnError::StateLimitExceeded(_))));
    }

    #[test]
    fn hardware_target_constructor_defaults() {
        // Full hardware-path learning runs live in the workspace integration
        // tests (they take seconds to minutes); here we only check the
        // convenience constructor.
        let hw = HardwareTarget::l1(CpuModel::SkylakeI5_6500, 33, 7);
        assert_eq!(hw.target.level, LevelId::L1);
        assert_eq!(hw.target.set, 33);
        assert_eq!(hw.reset, ResetSequence::FlushRefill);
        assert_eq!(hw.cat_ways, None);
        assert!(LearnSetup::default().time_budget.is_none());
        assert!(LearnSetup::default().memoize);
        assert_eq!(LearnSetup::default().workers, 0);
    }
}
