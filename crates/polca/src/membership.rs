//! Algorithm 1: the membership oracle for replacement policies.

use cache::HitMiss;
use learning::{MembershipOracle, OracleError};
use mbl::BlockId;
use policies::{PolicyInput, PolicyOutput};

use crate::cache_oracle::{CacheOracle, CacheSession};

/// Polca as a [`MembershipOracle`] over the policy alphabet.
///
/// For every policy input the oracle maps the symbol to a concrete memory
/// block (`mapInput`), accesses the block through a probe session, and maps
/// the hit/miss answer back to a policy output (`mapOutput`), using
/// speculative probes to locate the evicted line on a miss (`findEvicted`).
/// The paper's Algorithm 1 *checks* a candidate trace; this implementation
/// *produces* the output word for an input word, which is the form the L*
/// loop needs — the two are equivalent because the policy is deterministic.
///
/// On simulated caches the probe session advances one policy step per input
/// symbol, so a query costs `O(|word| + associativity · #evictions)` block
/// accesses; on hardware (whose sessions must replay, see
/// [`ReplaySession`](crate::ReplaySession)) the same code degenerates to the
/// paper's quadratic probe count.
///
/// `PolcaOracle` is `Clone` whenever its cache oracle is: clones are
/// independent workers answering from the same fixed initial state, which is
/// what makes a `Fn() -> PolcaOracle<C>` closure an
/// [`OracleFactory`](learning::OracleFactory) for parallel learning.
#[derive(Debug, Clone)]
pub struct PolcaOracle<C> {
    cache: C,
    queries: u64,
}

impl<C: CacheOracle> PolcaOracle<C> {
    /// Wraps a cache oracle.
    pub fn new(cache: C) -> Self {
        PolcaOracle { cache, queries: 0 }
    }

    /// The wrapped cache oracle (e.g. for probe statistics).
    pub fn cache(&self) -> &C {
        &self.cache
    }

    /// Consumes the oracle and returns the wrapped cache oracle.
    pub fn into_cache(self) -> C {
        self.cache
    }
}

/// `findEvicted` (Algorithm 1): speculatively probes every tracked block and
/// returns the line whose block now misses.
fn find_evicted(session: &mut dyn CacheSession, content: &[BlockId]) -> Result<usize, OracleError> {
    for (line, &block) in content.iter().enumerate() {
        if session.speculate(block)? == HitMiss::Miss {
            return Ok(line);
        }
    }
    Err(OracleError::new(
        "no cached block was evicted by a miss: the cache is not behaving \
         like an associativity-consistent deterministic cache",
    ))
}

impl<C: CacheOracle> MembershipOracle<PolicyInput, PolicyOutput> for PolcaOracle<C> {
    fn query(&mut self, word: &[PolicyInput]) -> Result<Vec<PolicyOutput>, OracleError> {
        self.queries += 1;
        let n = self.cache.associativity();
        // cc0: block i occupies line i (established by the cache oracle's
        // fixed initial state / reset sequence).
        let mut content: Vec<BlockId> = (0..n as u32).map(BlockId).collect();
        // Fresh blocks for eviction requests never collide with cc0.
        let mut next_fresh = n as u32;

        let mut session = self.cache.begin();
        let mut outputs = Vec::with_capacity(word.len());
        for input in word {
            let block = match input {
                PolicyInput::Line(i) => {
                    let i = usize::from(*i);
                    if i >= n {
                        return Err(OracleError::new(format!(
                            "input Ln({i}) is out of range for associativity {n}"
                        )));
                    }
                    content[i]
                }
                PolicyInput::Evct => {
                    let b = BlockId(next_fresh);
                    next_fresh += 1;
                    b
                }
            };
            let outcome = session.access(block)?;
            let output = match (input, outcome) {
                (PolicyInput::Line(_), HitMiss::Hit) => PolicyOutput::None,
                (PolicyInput::Evct, HitMiss::Miss) => {
                    let line = find_evicted(session.as_mut(), &content)?;
                    content[line] = block;
                    PolicyOutput::evicted(line)
                }
                (PolicyInput::Line(i), HitMiss::Miss) => {
                    return Err(OracleError::new(format!(
                        "access to the block tracked in line {i} unexpectedly missed: \
                         the cache state drifted (wrong reset sequence, noise, or an \
                         adaptive policy)"
                    )))
                }
                (PolicyInput::Evct, HitMiss::Hit) => {
                    return Err(OracleError::new(
                        "a fresh block unexpectedly hit the cache: measurement noise or \
                         block aliasing",
                    ))
                }
            };
            outputs.push(output);
        }
        Ok(outputs)
    }

    fn queries_answered(&self) -> u64 {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_oracle::SimulatedCacheOracle;
    use policies::{policy_to_mealy, PolicyKind};

    fn oracle(kind: PolicyKind, assoc: usize) -> PolcaOracle<SimulatedCacheOracle> {
        PolcaOracle::new(SimulatedCacheOracle::new(kind, assoc).unwrap())
    }

    #[test]
    fn figure_1b_translation() {
        // Figure 1b: the policy trace Ln(0) Ln(1) Evct over a 2-way LRU cache
        // produces ⊥ ⊥ 0 (line 0 holds the least recently used block after
        // touching line 1 last... here: touching 0 then 1 makes line 0 LRU).
        let mut polca = oracle(PolicyKind::Lru, 2);
        let out = polca
            .query(&[
                PolicyInput::Line(0),
                PolicyInput::Line(1),
                PolicyInput::Evct,
            ])
            .unwrap();
        assert_eq!(
            out,
            vec![
                PolicyOutput::None,
                PolicyOutput::None,
                PolicyOutput::Evicted(0)
            ]
        );
    }

    #[test]
    fn outputs_match_the_ground_truth_mealy_machine() {
        // Theorem 3.1 in miniature: Polca's answers coincide with the policy
        // semantics for a batch of words.
        for kind in [
            PolicyKind::Fifo,
            PolicyKind::Lru,
            PolicyKind::Plru,
            PolicyKind::Mru,
            PolicyKind::SrripHp,
            PolicyKind::New1,
            PolicyKind::New2,
        ] {
            let assoc = 4;
            let machine = policy_to_mealy(kind.build(assoc).unwrap().as_ref(), 1 << 16);
            let mut polca = oracle(kind, assoc);
            let words: Vec<Vec<PolicyInput>> = vec![
                vec![PolicyInput::Evct; 6],
                vec![
                    PolicyInput::Line(2),
                    PolicyInput::Evct,
                    PolicyInput::Line(0),
                    PolicyInput::Evct,
                    PolicyInput::Evct,
                ],
                vec![
                    PolicyInput::Line(3),
                    PolicyInput::Line(1),
                    PolicyInput::Line(3),
                    PolicyInput::Evct,
                    PolicyInput::Line(0),
                    PolicyInput::Evct,
                ],
            ];
            for word in words {
                assert_eq!(
                    polca.query(&word).unwrap(),
                    machine.output_word(word.iter()),
                    "mismatch for {kind} on {word:?}"
                );
            }
        }
    }

    #[test]
    fn eviction_requests_use_fresh_blocks() {
        let mut polca = oracle(PolicyKind::Fifo, 2);
        // Repeated evictions cycle through the lines under FIFO.
        let out = polca.query(&[PolicyInput::Evct; 4]).unwrap();
        assert_eq!(
            out,
            vec![
                PolicyOutput::Evicted(0),
                PolicyOutput::Evicted(1),
                PolicyOutput::Evicted(0),
                PolicyOutput::Evicted(1)
            ]
        );
    }

    #[test]
    fn out_of_range_lines_are_rejected() {
        let mut polca = oracle(PolicyKind::Lru, 2);
        assert!(polca.query(&[PolicyInput::Line(2)]).is_err());
    }

    #[test]
    fn probe_counts_grow_linearly_with_word_length() {
        // The incremental session costs one probe per hit and at most
        // `1 + associativity` probes per eviction — not the quadratic replay
        // cost of the paper's hardware path.
        let mut polca = oracle(PolicyKind::Lru, 4);
        polca
            .query(&[PolicyInput::Line(0), PolicyInput::Line(1)])
            .unwrap();
        // Two session steps for two hits, no findEvicted probes.
        assert_eq!(polca.cache().probes(), 2);
        assert_eq!(polca.cache().block_accesses(), 2);
        let mut polca = oracle(PolicyKind::Lru, 4);
        polca.query(&[PolicyInput::Evct]).unwrap();
        // One step for the miss plus one speculation (the LRU victim is line
        // 0, found on the first try).
        assert_eq!(polca.cache().probes(), 2);
    }

    #[test]
    fn cloned_polca_oracles_answer_like_the_original() {
        let mut original = oracle(PolicyKind::New2, 4);
        let mut clone = original.clone();
        let word = vec![
            PolicyInput::Evct,
            PolicyInput::Line(2),
            PolicyInput::Evct,
            PolicyInput::Line(0),
            PolicyInput::Evct,
        ];
        assert_eq!(original.query(&word).unwrap(), clone.query(&word).unwrap());
        assert_eq!(original.queries_answered(), 1);
        assert_eq!(clone.queries_answered(), 1);
    }
}
