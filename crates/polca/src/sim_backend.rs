//! A [`QueryBackend`] over a bare software-simulated cache set: the §6 case
//! study's noiseless caches, speaking the same concrete-query protocol as
//! the simulated hardware.
//!
//! This backend is what lets a *learning campaign* share the unified query
//! path: the `cqd` daemon learns `POLICY@ASSOC` by pointing the standard
//! [`CacheQueryOracle`](crate::CacheQueryOracle) at a `PolicySimBackend`
//! whose engine shares the daemon's query store — so every concrete query a
//! campaign issues lands in the same trie interactive sessions are served
//! from, and vice versa.

use cache::{Block, CacheSet, HitMiss};
use cachequery::{BackendError, NoiseSpec, NoisyBackend, QueryConfig, Target};
use mbl::{Query, Tag};
use policies::{PolicyError, PolicyKind};

/// A fault-injecting decoration of a [`PolicySimBackend`]: the §6 exact
/// simulation with the §5 measurement noise layered on top, at seeded,
/// reproducible rates (see [`cachequery::NoisyBackend`]).  This is the
/// backend the noise-robustness tests learn through: the engine's majority
/// vote must recover the exact noise-free automaton from it.
pub type NoisySimBackend = NoisyBackend<PolicySimBackend>;

/// Builds a [`NoisySimBackend`] for `kind` at `associativity` with the fault
/// rates of `spec` (and the default noisy repetition count,
/// [`cachequery::DEFAULT_NOISY_REPS`]).
///
/// # Errors
///
/// Returns an error if the policy does not support the associativity.
pub fn noisy_sim_backend(
    kind: PolicyKind,
    associativity: usize,
    spec: NoiseSpec,
) -> Result<NoisySimBackend, PolicyError> {
    Ok(NoisyBackend::new(
        PolicySimBackend::new(kind, associativity)?,
        spec,
    ))
}

/// The memoization namespace of a [`NoisySimBackend`] built by
/// [`noisy_sim_backend`] — exposed so servers can compute a noisy session's
/// store namespace without building the backend.
pub fn noisy_sim_config_for(
    kind: PolicyKind,
    associativity: usize,
    spec: &NoiseSpec,
    reps: usize,
) -> QueryConfig {
    NoisyBackend::<PolicySimBackend>::config_for(
        PolicySimBackend::config_for(kind, associativity),
        spec,
        reps,
    )
}

/// A deterministic cache-set backend running a named replacement policy.
///
/// Every query starts from the canonical initial state `cc0` (block `i`
/// occupies line `i` — the state the hardware path establishes with its
/// reset sequence), executes the operations one policy step at a time, and
/// classifies each profiled access.  Execution is exact, so answers are
/// always consistent and repetitions are pointless; the memoization
/// namespace is pinned to `reset=cc0 reps=1` accordingly.
#[derive(Debug, Clone)]
pub struct PolicySimBackend {
    kind: PolicyKind,
    template: CacheSet,
}

impl PolicySimBackend {
    /// Creates the backend for `kind` at `associativity`, pre-filled with the
    /// canonical initial content.
    ///
    /// # Errors
    ///
    /// Returns an error if the policy does not support the associativity.
    pub fn new(kind: PolicyKind, associativity: usize) -> Result<Self, PolicyError> {
        let policy = kind.build(associativity)?;
        let template = CacheSet::filled(policy, (0..associativity as u64).map(Block::new));
        Ok(PolicySimBackend { kind, template })
    }

    /// The simulated policy.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// The memoization namespace of a `kind @ associativity` simulation —
    /// exposed so servers can hand sessions and learn jobs the *same*
    /// namespace without building a backend first.
    pub fn config_for(kind: PolicyKind, associativity: usize) -> QueryConfig {
        QueryConfig {
            backend: format!("policy:{kind}@{associativity}"),
            reset: "cc0".to_string(),
            reps: 1,
            target: Target::new(cache::LevelId::L1, 0, 0),
        }
    }
}

impl PolicySimBackend {
    /// Simulates one query from `cc0`; the exact-simulation core shared by
    /// the single-query and batch paths.
    fn simulate(&self, query: &Query) -> (Vec<HitMiss>, bool) {
        let mut set = self.template.clone();
        let mut outcomes = Vec::new();
        for op in query {
            let block = Block::new(u64::from(op.block.0));
            match op.tag {
                Some(Tag::Invalidate) => {
                    set.invalidate(block);
                }
                tag => {
                    let outcome = set.access(block).outcome();
                    if tag == Some(Tag::Profile) {
                        outcomes.push(outcome);
                    }
                }
            }
        }
        (outcomes, true)
    }
}

impl cachequery::QueryBackend for PolicySimBackend {
    fn execute(&mut self, query: &Query) -> Result<(Vec<HitMiss>, bool), BackendError> {
        Ok(self.simulate(query))
    }

    fn execute_batch(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<(Vec<HitMiss>, bool)>, BackendError> {
        // Simulation is exact and each query restarts from cc0, so the batch
        // is one tight monomorphized loop — no per-query trait dispatch, one
        // pre-sized result vector.
        let mut results = Vec::with_capacity(queries.len());
        for query in queries {
            results.push(self.simulate(query));
        }
        Ok(results)
    }

    fn config(&self) -> Result<QueryConfig, BackendError> {
        Ok(Self::config_for(self.kind, self.template.associativity()))
    }

    fn associativity(&self) -> Result<usize, BackendError> {
        Ok(self.template.associativity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachequery::{QueryBackend, QueryEngine};
    use mbl::expand_query;

    fn concrete(mbl: &str, assoc: usize) -> Query {
        expand_query(mbl, assoc).unwrap().pop().unwrap()
    }

    #[test]
    fn figure_1_traces_replay_exactly() {
        let mut backend = PolicySimBackend::new(PolicyKind::Lru, 2).unwrap();
        // cc0 = {A, B}; C evicts the LRU block A, so B still hits and the
        // subsequent re-access of A misses.
        let (outcomes, consistent) = backend.execute(&concrete("C B? A?", 2)).unwrap();
        assert!(consistent);
        assert_eq!(outcomes, vec![HitMiss::Hit, HitMiss::Miss]);
    }

    #[test]
    fn every_query_starts_from_cc0() {
        let mut backend = PolicySimBackend::new(PolicyKind::Fifo, 4).unwrap();
        let q = concrete("X A?", 4);
        let first = backend.execute(&q).unwrap();
        backend.execute(&concrete("X Y Z _?", 4)).unwrap();
        assert_eq!(backend.execute(&q).unwrap(), first);
    }

    #[test]
    fn invalidation_is_honoured() {
        let mut backend = PolicySimBackend::new(PolicyKind::Lru, 2).unwrap();
        let (outcomes, _) = backend.execute(&concrete("A! A?", 2)).unwrap();
        assert_eq!(outcomes, vec![HitMiss::Miss]);
    }

    #[test]
    fn engines_memoize_policy_simulations() {
        let mut engine = QueryEngine::new(PolicySimBackend::new(PolicyKind::Plru, 4).unwrap());
        let results = engine.query_mbl("@ X _?").unwrap();
        assert_eq!(results.len(), 4);
        assert_eq!(
            results
                .iter()
                .filter(|r| r.outcomes[0] == HitMiss::Miss)
                .count(),
            1,
            "exactly one of the original blocks was evicted"
        );
        assert!(engine
            .query_mbl("@ X _?")
            .unwrap()
            .iter()
            .all(|r| r.from_cache));
    }

    #[test]
    fn the_namespace_is_policy_specific() {
        let backend = PolicySimBackend::new(PolicyKind::Lru, 4).unwrap();
        let config = QueryBackend::config(&backend).unwrap();
        assert_eq!(config.backend, "policy:LRU@4");
        assert_eq!(config, PolicySimBackend::config_for(PolicyKind::Lru, 4));
    }
}
