//! A [`QueryBackend`] that drives a policy *through* a two-level inclusive
//! hierarchy instead of a bare cache set.
//!
//! The §7 hardware path never talks to an isolated cache set: every access
//! traverses the full hierarchy, and an inclusive outer level can evict —
//! and thereby back-invalidate — blocks the learner believes are resident in
//! the level under study.  CacheQuery's answer on real silicon is *cache
//! filtering*: pick congruent addresses that collide in the target set but
//! spread across the other levels, so the interference never fires.
//!
//! [`HierarchyBackend`] reproduces that situation in miniature, end to end:
//! the policy under learning governs a single-set L1, an inclusive L2 sits
//! behind it, and every query flows through [`cache::Hierarchy::access`] —
//! back-invalidation, fill-on-miss and all.  Block `i` is mapped to physical
//! line `i`, which is exactly the filtered placement: all blocks collide in
//! the single L1 set while landing in distinct L2 sets, so the inclusive L2
//! (whose capacity the backend checks per query) never evicts a live block.
//! Learning through this backend must therefore produce automata
//! byte-identical to the bare [`PolicySimBackend`](crate::PolicySimBackend)
//! runs — which `tests/learn_hierarchy.rs` pins.

use cache::{
    Block, CacheGeometry, CacheLevel, CacheSet, Hierarchy, HierarchyConfig, HitMiss, LevelConfig,
    LevelId, PhysAddr,
};
use cachequery::{BackendError, QueryConfig, Target};
use mbl::{Query, Tag};
use policies::{PolicyError, PolicyKind};

/// Number of sets of the interfering L2.
const L2_SETS: usize = 64;
/// Associativity of the interfering L2.
const L2_ASSOC: usize = 8;
/// Line size shared by both levels.
const LINE: u64 = 64;

/// A deterministic two-level backend: the policy under learning runs a
/// single-set L1 with an inclusive LRU L2 behind it.
///
/// Every query starts from the canonical initial state `cc0` (block `i`
/// occupies L1 line `i`), executes through the full hierarchy, and profiles
/// accesses at L1.  Execution is exact, so the memoization namespace is
/// pinned to `reset=cc0 reps=1`, like the bare simulation's.
#[derive(Debug, Clone)]
pub struct HierarchyBackend {
    kind: PolicyKind,
    associativity: usize,
    template: Hierarchy,
}

impl HierarchyBackend {
    /// Creates the backend for `kind` at `associativity`, with the canonical
    /// initial L1 content planted and an empty inclusive L2 behind it.
    ///
    /// # Errors
    ///
    /// Returns an error if the policy does not support the associativity.
    pub fn new(kind: PolicyKind, associativity: usize) -> Result<Self, PolicyError> {
        // Validate the associativity before building anything.
        let policy = kind.build(associativity)?;
        let l1 = CacheLevel::new(
            LevelConfig {
                name: "L1".to_string(),
                geometry: CacheGeometry::new(associativity, 1, 1, LINE),
                inclusive: false,
            },
            |_| kind.build(associativity).expect("validated above"),
        );
        let l2 = CacheLevel::new(
            LevelConfig {
                name: "L2".to_string(),
                geometry: CacheGeometry::new(L2_ASSOC, L2_SETS, 1, LINE),
                inclusive: true,
            },
            |_| {
                PolicyKind::Lru
                    .build(L2_ASSOC)
                    .expect("LRU supports every associativity")
            },
        );
        let mut template = Hierarchy::new(HierarchyConfig {
            levels: vec![l1, l2],
        });
        // Plant cc0: block `i` in L1 line `i`, with the policy in its initial
        // state — the exact state `CacheSet::filled` gives the bare
        // simulation, so the two learning paths are state-identical.  The L2
        // starts empty and fills on first touch; since it never evicts under
        // the filtered placement, its content cannot influence L1 outcomes.
        let blocks = (0..associativity).map(|i| Block::new(Self::addr_of(i as u32).0));
        *template.level_mut(LevelId::L1).set_mut(0) = CacheSet::filled(policy, blocks);
        Ok(HierarchyBackend {
            kind,
            associativity,
            template,
        })
    }

    /// The simulated L1 policy.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// The filtered placement: abstract block `b` lives at physical line `b`.
    /// With a single L1 set, every block is L1-congruent; with [`L2_SETS`]
    /// L2 sets, blocks spread across the L2.
    fn addr_of(block: u32) -> PhysAddr {
        PhysAddr(u64::from(block) * LINE)
    }

    /// The memoization namespace of a hierarchy-filtered `kind @
    /// associativity` run — distinct from the bare simulation's, so the two
    /// paths never serve each other's answers even on a shared store.
    pub fn config_for(kind: PolicyKind, associativity: usize) -> QueryConfig {
        QueryConfig {
            backend: format!("hier:{kind}@{associativity}+L2:{L2_SETS}x{L2_ASSOC}"),
            reset: "cc0".to_string(),
            reps: 1,
            target: Target::new(LevelId::L1, 0, 0),
        }
    }

    /// Checks that the query's blocks keep every L2 set within its
    /// associativity, i.e. that the placement filters out all inclusive-L2
    /// interference.  A query that would overflow an L2 set could trigger a
    /// back-invalidation of a live L1 line, and its L1 outcomes would no
    /// longer be those of the bare policy.
    fn check_filtered(&self, query: &Query) -> Result<(), BackendError> {
        let mut per_set: Vec<Vec<u32>> = vec![Vec::new(); L2_SETS];
        for op in query {
            let set = op.block.0 as usize % L2_SETS;
            if !per_set[set].contains(&op.block.0) {
                per_set[set].push(op.block.0);
            }
        }
        let worst = per_set.iter().map(Vec::len).max().unwrap_or(0);
        if worst > L2_ASSOC {
            return Err(BackendError::Service(format!(
                "query uses {worst} distinct blocks congruent in one L2 set \
                 (associativity {L2_ASSOC}): cache filtering cannot rule out \
                 inclusive-L2 interference"
            )));
        }
        Ok(())
    }
}

impl HierarchyBackend {
    /// Simulates one query through the full hierarchy from `cc0`; shared by
    /// the single-query and batch paths.
    fn simulate(&self, query: &Query) -> Result<(Vec<HitMiss>, bool), BackendError> {
        self.check_filtered(query)?;
        let mut hierarchy = self.template.clone();
        let mut outcomes = Vec::new();
        for op in query {
            let addr = Self::addr_of(op.block.0);
            match op.tag {
                Some(Tag::Invalidate) => {
                    hierarchy.flush(addr);
                }
                tag => {
                    let outcome = hierarchy.access(addr);
                    if tag == Some(Tag::Profile) {
                        outcomes.push(
                            outcome
                                .at(LevelId::L1)
                                .expect("L1 is consulted by every access"),
                        );
                    }
                }
            }
        }
        Ok((outcomes, true))
    }
}

impl cachequery::QueryBackend for HierarchyBackend {
    fn execute(&mut self, query: &Query) -> Result<(Vec<HitMiss>, bool), BackendError> {
        self.simulate(query)
    }

    fn execute_batch(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<(Vec<HitMiss>, bool)>, BackendError> {
        // Exact simulation from cc0 per query: the batch is one tight loop
        // over the shared simulation core, pre-sized like the bare backend's.
        let mut results = Vec::with_capacity(queries.len());
        for query in queries {
            results.push(self.simulate(query)?);
        }
        Ok(results)
    }

    fn config(&self) -> Result<QueryConfig, BackendError> {
        Ok(Self::config_for(self.kind, self.associativity))
    }

    fn associativity(&self) -> Result<usize, BackendError> {
        Ok(self.associativity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolicySimBackend;
    use cachequery::{QueryBackend, QueryEngine};
    use mbl::expand_query;

    fn concrete(mbl: &str, assoc: usize) -> Query {
        expand_query(mbl, assoc).unwrap().pop().unwrap()
    }

    #[test]
    fn figure_1_traces_replay_exactly() {
        let mut backend = HierarchyBackend::new(PolicyKind::Lru, 2).unwrap();
        let (outcomes, consistent) = backend.execute(&concrete("C B? A?", 2)).unwrap();
        assert!(consistent);
        assert_eq!(outcomes, vec![HitMiss::Hit, HitMiss::Miss]);
    }

    #[test]
    fn every_query_starts_from_cc0() {
        let mut backend = HierarchyBackend::new(PolicyKind::Fifo, 4).unwrap();
        let q = concrete("X A?", 4);
        let first = backend.execute(&q).unwrap();
        backend.execute(&concrete("X Y Z _?", 4)).unwrap();
        assert_eq!(backend.execute(&q).unwrap(), first);
    }

    #[test]
    fn l1_outcomes_match_the_bare_simulation() {
        // The whole point: with the filtered placement, the hierarchy is
        // invisible — profiled L1 outcomes equal the bare policy set's.
        for kind in [PolicyKind::Lru, PolicyKind::Plru, PolicyKind::SrripHp] {
            let mut hier = HierarchyBackend::new(kind, 4).unwrap();
            let mut bare = PolicySimBackend::new(kind, 4).unwrap();
            for mblq in ["@ X _?", "A B X Y A? B? C?", "A! A? B C D E A?"] {
                for q in expand_query(mblq, 4).unwrap() {
                    assert_eq!(
                        hier.execute(&q).unwrap(),
                        bare.execute(&q).unwrap(),
                        "{kind} diverged on {mblq}"
                    );
                }
            }
        }
    }

    #[test]
    fn an_l2_resident_block_still_misses_at_l1() {
        // Evict block A from the 2-way LRU L1; it stays in the (inclusive)
        // L2, so the hierarchy serves the re-access from L2 — but at L1 it
        // is a miss, exactly like the bare set reports.
        let mut backend = HierarchyBackend::new(PolicyKind::Lru, 2).unwrap();
        let (outcomes, _) = backend.execute(&concrete("C D A?", 2)).unwrap();
        assert_eq!(outcomes, vec![HitMiss::Miss]);
    }

    #[test]
    fn overflowing_an_l2_set_is_refused() {
        let mut backend = HierarchyBackend::new(PolicyKind::Lru, 2).unwrap();
        // Blocks 0, 64, 128, ... are all congruent in L2 set 0.
        let query: Query = (0..=L2_ASSOC as u32)
            .map(|i| mbl::MemOp::access(mbl::BlockId(i * L2_SETS as u32)))
            .collect();
        assert!(matches!(
            backend.execute(&query),
            Err(BackendError::Service(_))
        ));
    }

    #[test]
    fn engines_memoize_hierarchy_simulations() {
        let mut engine = QueryEngine::new(HierarchyBackend::new(PolicyKind::Plru, 4).unwrap());
        let results = engine.query_mbl("@ X _?").unwrap();
        assert_eq!(results.len(), 4);
        assert!(engine
            .query_mbl("@ X _?")
            .unwrap()
            .iter()
            .all(|r| r.from_cache));
    }

    #[test]
    fn the_namespace_is_distinct_from_the_bare_simulation() {
        let backend = HierarchyBackend::new(PolicyKind::Lru, 4).unwrap();
        let config = QueryBackend::config(&backend).unwrap();
        assert_eq!(config, HierarchyBackend::config_for(PolicyKind::Lru, 4));
        assert_ne!(config, PolicySimBackend::config_for(PolicyKind::Lru, 4));
    }
}
