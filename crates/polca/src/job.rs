//! Job-oriented learning: running the pipeline asynchronously with live
//! status polling.
//!
//! The synchronous entry points ([`learn_policy`] and friends) block for the
//! whole run — fine for a CLI, useless for a server that must keep answering
//! queries while a multi-second learning campaign is in flight.  [`LearnJob`]
//! wraps one pipeline run in a background `std::thread`: the caller gets an
//! immediate handle, polls [`LearnJob::status`] for cheap snapshots (the
//! `cqd` daemon streams these to its clients), and can [`LearnJob::join`]
//! for the final outcome.
//!
//! Running jobs report *live* progress: the hypothesis size and membership
//! queries come from the learner's [`LearnProgress`] counters, and — for
//! engine-backed campaigns — the hit rate of the query-store namespace the
//! campaign fills, so an operator can watch the shared store absorb the run.

use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use cachequery::StoreSpace;
use learning::LearnProgress;
use policies::PolicyKind;

use crate::cache_oracle::{CacheOracle, SimulatedCacheOracle};
use crate::pipeline::{learn_policy, CampaignProfile, LearnOutcome, LearnSetup};

/// Final result of a finished learning job, reduced to the plain facts a
/// status protocol wants to report.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Number of states of the learned (minimized) machine.
    pub states: usize,
    /// Membership queries issued by the run.
    pub membership_queries: u64,
    /// Fraction of membership queries served by the learner's prefix-trie
    /// cache.
    pub cache_hit_rate: f64,
    /// Name of the reference policy the learned machine was identified as
    /// (up to line renaming), if any.
    pub identified: Option<String>,
    /// Per-phase query/duration breakdown of the campaign (its query counts
    /// sum exactly to [`JobResult::membership_queries`]).
    pub profile: CampaignProfile,
}

/// One point-in-time view of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// The pipeline is still running.
    Running {
        /// Time since the job was spawned.
        elapsed: Duration,
        /// States of the current hypothesis (0 until the first closure).
        states: u64,
        /// Membership queries issued so far.
        membership_queries: u64,
        /// Hit rate of the campaign's query-store namespace so far (0.0 for
        /// jobs that do not run through a shared store).
        store_hit_rate: f64,
    },
    /// The pipeline finished successfully.
    Done {
        /// Summary of the outcome.
        result: JobResult,
        /// Total wall-clock time of the run.
        elapsed: Duration,
    },
    /// The pipeline failed (oracle error, state limit, nondeterminism, …).
    Failed {
        /// The rendered error.
        error: String,
        /// Wall-clock time until the failure.
        elapsed: Duration,
    },
}

impl JobStatus {
    /// Whether the job has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobStatus::Running { .. })
    }
}

/// Shared state between the job thread and its handle.  The terminal
/// duration is frozen when the outcome is stored, so late polls do not
/// inflate a finished job's elapsed time.
#[derive(Debug)]
struct JobState {
    started: Instant,
    progress: Arc<LearnProgress>,
    store: Option<StoreSpace>,
    #[allow(clippy::type_complexity)]
    outcome: Mutex<Option<(Result<(LearnOutcome, JobResult), String>, Duration)>>,
}

/// A learning run executing on a background thread.
///
/// # Example
///
/// ```
/// use polca::{spawn_simulated_learn_job, LearnSetup};
/// use policies::PolicyKind;
///
/// let job = spawn_simulated_learn_job(PolicyKind::Lru, 2, LearnSetup::default());
/// let outcome = job.join().expect("LRU/2 learns in milliseconds");
/// assert_eq!(outcome.machine.num_states(), 2);
/// ```
#[derive(Debug)]
pub struct LearnJob {
    state: Arc<JobState>,
    handle: Option<thread::JoinHandle<()>>,
}

impl LearnJob {
    /// A cheap snapshot of the job's progress.
    pub fn status(&self) -> JobStatus {
        let outcome = self.state.outcome.lock().expect("job state lock poisoned");
        match outcome.as_ref() {
            None => JobStatus::Running {
                elapsed: self.state.started.elapsed(),
                states: self.state.progress.states(),
                membership_queries: self.state.progress.membership_queries(),
                store_hit_rate: self.state.store.as_ref().map_or(0.0, StoreSpace::hit_rate),
            },
            Some((Ok((_, result)), elapsed)) => JobStatus::Done {
                result: result.clone(),
                elapsed: *elapsed,
            },
            Some((Err(error), elapsed)) => JobStatus::Failed {
                error: error.clone(),
                elapsed: *elapsed,
            },
        }
    }

    /// The learned machine, if the job has completed successfully — the
    /// handle trace-replay consumers use to evaluate a finished campaign
    /// without consuming the job.
    ///
    /// Returns `None` while the job is running and after a failure.
    pub fn machine(&self) -> Option<policies::PolicyMealy> {
        let outcome = self.state.outcome.lock().expect("job state lock poisoned");
        match outcome.as_ref() {
            Some((Ok((full, _)), _)) => Some(full.machine.clone()),
            _ => None,
        }
    }

    /// Blocks until the job finishes and returns the full [`LearnOutcome`].
    ///
    /// # Errors
    ///
    /// Returns the rendered pipeline error if the run failed.
    pub fn join(mut self) -> Result<LearnOutcome, String> {
        if let Some(handle) = self.handle.take() {
            handle
                .join()
                .map_err(|_| "learning thread panicked".to_string())?;
        }
        let mut outcome = self.state.outcome.lock().expect("job state lock poisoned");
        match outcome.take() {
            Some((Ok((full, _)), _)) => Ok(full),
            Some((Err(error), _)) => Err(error),
            None => Err("learning thread exited without a result".to_string()),
        }
    }

    /// A job that is already terminal with `error` — what spawners return
    /// when the oracle cannot even be constructed.
    fn failed(error: String) -> LearnJob {
        LearnJob {
            state: Arc::new(JobState {
                started: Instant::now(),
                progress: Arc::new(LearnProgress::new()),
                store: None,
                outcome: Mutex::new(Some((Err(error), Duration::ZERO))),
            }),
            handle: None,
        }
    }
}

/// Spawns a background job learning the policy of an arbitrary cache oracle
/// (the asynchronous form of [`learn_policy`]).
///
/// After a successful run the learned machine is matched against
/// `candidates` with [`identify_policy`](crate::identify_policy), so the
/// reported [`JobResult::identified`] confirms (or refutes) what was
/// learned.  For engine-backed oracles, pass the campaign's
/// [`StoreSpace`] as `store` so running status lines can report the
/// namespace's live hit rate.
pub fn spawn_learn_job<C>(
    cache: C,
    candidates: Vec<PolicyKind>,
    setup: LearnSetup,
    store: Option<StoreSpace>,
) -> LearnJob
where
    C: CacheOracle + Clone + Send + 'static,
{
    let progress = setup
        .progress
        .clone()
        .unwrap_or_else(|| Arc::new(LearnProgress::new()));
    let setup = LearnSetup {
        progress: Some(Arc::clone(&progress)),
        ..setup
    };
    let state = Arc::new(JobState {
        started: Instant::now(),
        progress,
        store,
        outcome: Mutex::new(None),
    });
    let associativity = cache.associativity();
    let thread_state = Arc::clone(&state);
    let recorder = setup.recorder.clone();
    let handle = thread::Builder::new()
        .name(format!("learn-{associativity}"))
        .spawn(move || {
            let result = learn_policy(cache, &setup)
                .map(|outcome| {
                    let identify_span = obs::maybe_span(recorder.as_deref(), "polca.identify");
                    let identified =
                        crate::identify_policy(&outcome.machine, associativity, &candidates)
                            .map(|(found, _)| found.to_string());
                    drop(identify_span);
                    let summary = JobResult {
                        states: outcome.machine.num_states(),
                        membership_queries: outcome.stats.membership_queries,
                        cache_hit_rate: outcome.stats.cache_hit_rate(),
                        identified,
                        profile: outcome.profile.clone(),
                    };
                    (outcome, summary)
                })
                .map_err(|e| e.to_string());
            let elapsed = thread_state.started.elapsed();
            *thread_state
                .outcome
                .lock()
                .expect("job state lock poisoned") = Some((result, elapsed));
        })
        .expect("spawning a learning thread cannot fail");
    LearnJob {
        state,
        handle: Some(handle),
    }
}

/// Spawns a background job learning `kind` at `associativity` from a
/// noiseless simulated cache (the asynchronous form of
/// [`learn_simulated_policy`](crate::learn_simulated_policy)).
pub fn spawn_simulated_learn_job(
    kind: PolicyKind,
    associativity: usize,
    setup: LearnSetup,
) -> LearnJob {
    match SimulatedCacheOracle::new(kind, associativity) {
        Ok(cache) => spawn_learn_job(cache, vec![kind], setup, None),
        Err(e) => LearnJob::failed(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_backend::PolicySimBackend;
    use crate::CacheQueryOracle;
    use cachequery::QueryEngine;

    #[test]
    fn jobs_run_to_completion_and_identify() {
        let job = spawn_simulated_learn_job(PolicyKind::Fifo, 2, LearnSetup::default());
        // Status polling is non-destructive while the job runs or after it
        // finished.
        let _ = job.status();
        let outcome = job.join().unwrap();
        assert_eq!(outcome.machine.num_states(), 2);
    }

    #[test]
    fn finished_jobs_report_done_with_a_summary() {
        let job = spawn_simulated_learn_job(PolicyKind::Lru, 2, LearnSetup::default());
        // Wait for the terminal state via polling (exercises the status path).
        loop {
            let status = job.status();
            if status.is_terminal() {
                match status {
                    JobStatus::Done { result, .. } => {
                        assert_eq!(result.states, 2);
                        assert!(result.membership_queries > 0);
                        assert_eq!(result.identified.as_deref(), Some("LRU"));
                        assert_eq!(
                            result.profile.total_queries(),
                            result.membership_queries,
                            "the campaign profile partitions the run exactly"
                        );
                    }
                    other => panic!("unexpected terminal status: {other:?}"),
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // The machine stays retrievable (non-destructively) after completion.
        let machine = job.machine().expect("done jobs expose their machine");
        assert_eq!(machine.num_states(), 2);
        assert!(
            job.machine().is_some(),
            "machine() must not consume the job"
        );
    }

    #[test]
    fn failed_jobs_expose_no_machine() {
        let job = spawn_simulated_learn_job(PolicyKind::Plru, 3, LearnSetup::default());
        assert!(job.status().is_terminal());
        assert!(job.machine().is_none());
    }

    #[test]
    fn failing_jobs_report_the_error() {
        let setup = LearnSetup {
            max_states: 2,
            ..LearnSetup::default()
        };
        let job = spawn_simulated_learn_job(PolicyKind::Lru, 4, setup);
        let error = job.join().unwrap_err();
        assert!(error.contains("state"), "unexpected error: {error}");
    }

    #[test]
    fn unsupported_associativities_fail_immediately() {
        let job = spawn_simulated_learn_job(PolicyKind::Plru, 3, LearnSetup::default());
        assert!(job.status().is_terminal());
        assert!(job.join().is_err());
    }

    #[test]
    fn engine_backed_jobs_report_progress_and_store_hit_rate() {
        let engine = QueryEngine::new(PolicySimBackend::new(PolicyKind::Lru, 2).unwrap());
        let store = engine
            .store()
            .space(&PolicySimBackend::config_for(PolicyKind::Lru, 2).to_string());
        let oracle = CacheQueryOracle::from_engine(engine).unwrap();
        let job = spawn_learn_job(
            oracle,
            vec![PolicyKind::Lru],
            LearnSetup {
                workers: 1,
                ..LearnSetup::default()
            },
            Some(store.clone()),
        );
        let outcome = job.join().unwrap();
        assert_eq!(outcome.machine.num_states(), 2);
        // The campaign filled the engine's store namespace, and the replayed
        // probe sessions hit it heavily.
        assert!(store.entries() > 0);
        assert!(store.hit_rate() > 0.0);
    }
}
