//! Whole-cache policy cartography: classify and learn every set of a
//! simulated adaptive CPU.
//!
//! The paper's per-set experiments (Appendix B) stop at *finding* the leader
//! sets; the cartography campaign goes the rest of the way and produces a
//! complete map of a cache level:
//!
//! 1. [`detect_leader_sets_with`] classifies every candidate set as a
//!    thrash-vulnerable leader, a thrash-resistant leader, or a follower —
//!    from an arbitrary initial duel state, thanks to the down-drive phase;
//! 2. each *leader group* gets one learning campaign on a representative set
//!    (leaders implement a fixed policy, so one automaton describes the whole
//!    group), identified against the policy library; campaigns run through a
//!    shared [`QueryStore`], so remapping the same CPU dedupes by namespace
//!    and re-serves every answer from the store;
//! 3. every *follower* set is probed for statistical evidence of its
//!    adaptivity: the duel is forced to each polarity in turn
//!    ([`cache::SetDueling::force_psel`]) and the same thrashing query is
//!    executed under both — a fixed-policy set answers identically, a
//!    follower flips, and the disagreement rate (in permille) goes into the
//!    report.
//!
//! The result is a [`CacheMap`]: one verdict per set, plus the per-group
//! learning outcomes.  The `cqd` protocol exposes the campaign as the v5
//! `map` request, and the `cartography` bench binary checks a whole
//! simulated LLC against its planted ground truth in CI.

use std::sync::Arc;

use cache::LevelId;
use cachequery::{
    detect_leader_sets_with, BackendError, CacheQuery, LeaderClass, LeaderDetectConfig,
    QueryBackend, QueryStore, Target,
};
use hardware::SimulatedCpu;
use learning::{LearnError, NonDeterminism};
use mbl::{BlockId, MemOp, Query};
use policies::PolicyKind;

use crate::cache_oracle::CacheQueryOracle;
use crate::identify::identify_policy;
use crate::pipeline::{learn_policy, LearnSetup};

/// Configuration of a cartography campaign.
#[derive(Debug, Clone)]
pub struct MapConfig {
    /// The CPU model to map (geometry and policies come from its spec).
    pub model: hardware::CpuModel,
    /// Seed of the simulated machine.
    pub seed: u64,
    /// If set, restrict the last-level cache to this many ways with CAT
    /// before the campaign (Table 4 reduces the Skylake L3 to 4 ways, which
    /// shrinks the learned automata dramatically).
    pub cat_ways: Option<usize>,
    /// The slice whose sets are mapped.
    pub slice: usize,
    /// The set indices (within [`MapConfig::slice`]) to map.
    pub sets: Vec<usize>,
    /// Tuning of the leader-detection phases.
    pub detect: LeaderDetectConfig,
    /// Rounds of the follower flip probe: each round runs the thrashing
    /// query once per duel polarity and compares the outcomes.
    pub probe_rounds: usize,
    /// Reference policies the learned group automata are identified against.
    pub candidates: Vec<PolicyKind>,
    /// Learning configuration for the per-group campaigns.
    pub setup: LearnSetup,
}

impl MapConfig {
    /// A campaign over `sets` of slice 0 of `model` with default tuning:
    /// CAT down to 4 ways, default detection phases, 3 probe rounds, and the
    /// full deterministic policy library as identification candidates.
    pub fn new(model: hardware::CpuModel, seed: u64, sets: Vec<usize>) -> Self {
        MapConfig {
            model,
            seed,
            cat_ways: Some(4),
            slice: 0,
            sets,
            detect: LeaderDetectConfig::default(),
            probe_rounds: 3,
            candidates: PolicyKind::ALL_DETERMINISTIC.to_vec(),
            setup: LearnSetup::default(),
        }
    }
}

/// Outcome of one leader group's learning campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupOutcome {
    /// The group's fixed policy was learned (and possibly identified).
    Learned {
        /// States of the learned, minimized automaton.
        states: u64,
        /// Membership queries issued by the campaign.
        membership_queries: u64,
        /// Name of the library policy the automaton was identified as (up to
        /// line renaming), if any.
        identified: Option<String>,
    },
    /// The learner aborted with statistical evidence of non-determinism —
    /// the expected verdict for leader groups whose planted policy is
    /// genuinely randomized (e.g. a BRRIP-style bimodal insertion).
    NotDeterministic {
        /// The learner's evidence.
        evidence: NonDeterminism,
    },
    /// The campaign failed for another reason.
    Failed {
        /// The rendered error.
        error: String,
    },
}

/// One leader group of the map: its class, members, and learning outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupReport {
    /// The group's detection class ([`LeaderClass::ThrashVulnerable`] or
    /// [`LeaderClass::ThrashResistant`]).
    pub class: LeaderClass,
    /// All `(set, slice)` members of the group.
    pub members: Vec<(usize, usize)>,
    /// The member whose set the campaign learned.
    pub representative: (usize, usize),
    /// The query-store namespace the campaign filled — the dedupe key:
    /// remapping the same CPU re-serves the whole campaign from the store.
    pub namespace: String,
    /// What the campaign concluded.
    pub outcome: GroupOutcome,
}

/// The per-set verdict of the map.
#[derive(Debug, Clone, PartialEq)]
pub enum SetVerdict {
    /// A leader set implementing its group's learned fixed policy.
    Fixed {
        /// The identified policy name, if identification succeeded.
        policy: Option<String>,
        /// States of the group's learned automaton.
        states: u64,
    },
    /// A leader set whose fixed policy is statistically non-deterministic
    /// (the learner aborted with evidence).
    FixedNonDeterministic {
        /// Fraction of voted queries that never settled, in permille.
        disagreement_permille: u64,
    },
    /// An adaptive follower set, with flip-probe evidence.
    AdaptiveFollower {
        /// Fraction of profiled accesses that changed with the forced duel
        /// polarity, in permille.
        disagreement_permille: u64,
    },
    /// The set could not be mapped.
    Unmapped {
        /// The rendered error.
        error: String,
    },
}

/// One mapped set.
#[derive(Debug, Clone, PartialEq)]
pub struct SetEntry {
    /// Set index within the slice.
    pub set: usize,
    /// Slice index.
    pub slice: usize,
    /// The set's detection class.
    pub class: LeaderClass,
    /// The set's verdict.
    pub verdict: SetVerdict,
}

/// The complete map of one cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheMap {
    /// Short name of the mapped CPU model.
    pub model: String,
    /// The mapped cache level.
    pub level: LevelId,
    /// CAT restriction in effect during the campaign, if any.
    pub cat_ways: Option<usize>,
    /// Per-group learning outcomes (at most one group per leader class).
    pub groups: Vec<GroupReport>,
    /// One entry per mapped set, in the order of [`MapConfig::sets`].
    pub sets: Vec<SetEntry>,
}

impl CacheMap {
    /// The entry for `(set, slice)`, if that set was mapped.
    pub fn entry(&self, set: usize, slice: usize) -> Option<&SetEntry> {
        self.sets.iter().find(|e| e.set == set && e.slice == slice)
    }

    /// The group report for `class`, if a group of that class was found.
    pub fn group(&self, class: LeaderClass) -> Option<&GroupReport> {
        self.groups.iter().find(|g| g.class == class)
    }
}

/// The thrashing probe used for follower flip evidence: a working set of
/// `assoc + 1` blocks accessed cyclically, with the last round profiled
/// (the same shape leader detection uses).
fn flip_probe(assoc: usize) -> Query {
    const WARMUP_ROUNDS: usize = 3;
    let working_set = assoc + 1;
    let mut query = Vec::new();
    for round in 0..=WARMUP_ROUNDS {
        for b in 0..working_set {
            let op = if round == WARMUP_ROUNDS {
                MemOp::profiled(BlockId(b as u32))
            } else {
                MemOp::access(BlockId(b as u32))
            };
            query.push(op);
        }
    }
    query
}

/// Learns one leader group's policy on a fresh CPU sharing `store`.
fn learn_group(
    config: &MapConfig,
    representative: (usize, usize),
    store: &Arc<QueryStore>,
) -> (String, GroupOutcome) {
    let cpu = SimulatedCpu::new(config.model, config.seed);
    let mut tool = CacheQuery::with_store(cpu, Arc::clone(store));
    if let Some(ways) = config.cat_ways {
        if let Err(e) = tool.apply_cat(ways) {
            return (
                String::new(),
                GroupOutcome::Failed {
                    error: e.to_string(),
                },
            );
        }
    }
    let target = Target::new(LevelId::L3, representative.0, representative.1);
    let oracle = match CacheQueryOracle::with_target(tool, target) {
        Ok(oracle) => oracle,
        Err(e) => {
            return (
                String::new(),
                GroupOutcome::Failed {
                    error: e.to_string(),
                },
            );
        }
    };
    let namespace = oracle
        .engine()
        .backend()
        .config()
        .map(|c| c.to_string())
        .unwrap_or_default();
    let outcome = match learn_policy(oracle, &config.setup) {
        Ok(outcome) => {
            // The policy alphabet is Ln(0..assoc) plus Evct.
            let assoc = outcome.machine.inputs().len().saturating_sub(1);
            let identified = identify_policy(&outcome.machine, assoc, &config.candidates)
                .map(|(kind, _)| kind.to_string());
            GroupOutcome::Learned {
                states: outcome.machine.num_states() as u64,
                membership_queries: outcome.stats.membership_queries,
                identified,
            }
        }
        Err(LearnError::NotDeterministic(evidence)) => GroupOutcome::NotDeterministic { evidence },
        Err(e) => GroupOutcome::Failed {
            error: e.to_string(),
        },
    };
    (namespace, outcome)
}

/// Runs the cartography campaign described by `config`, memoizing every
/// concrete query (detection probes excepted — they are stateful) in
/// `store`.
///
/// # Errors
///
/// Propagates backend errors from the detection and probe phases (invalid
/// sets, address-selection failures).  Per-group learning failures are
/// reported in the map, not as errors.
pub fn map_cache(config: &MapConfig, store: Arc<QueryStore>) -> Result<CacheMap, BackendError> {
    let recorder = config.setup.recorder.clone();
    let mut root = obs::maybe_span(recorder.as_deref(), "polca.map_cache");
    if let Some(span) = root.as_mut() {
        span.set("sets", config.sets.len() as u64);
        span.set("model", config.model.short_name());
    }
    let cpu = SimulatedCpu::new(config.model, config.seed);
    let mut cq = CacheQuery::with_store(cpu, Arc::clone(&store));
    if let Some(ways) = config.cat_ways {
        cq.apply_cat(ways)?;
    }
    // The dueling handle must be taken *after* CAT: applying CAT rebuilds
    // the hierarchy and its dueling controller.
    let dueling = cq.backend().cpu().l3_dueling();

    let candidates: Vec<(usize, usize)> = config.sets.iter().map(|&s| (s, config.slice)).collect();
    let detect_span = root.as_ref().map(|r| r.child("polca.detect_leaders"));
    let report = detect_leader_sets_with(&mut cq, LevelId::L3, &candidates, &config.detect)?;
    drop(detect_span);

    // Phase 2: one learning campaign per leader group.
    let mut groups = Vec::new();
    for class in [LeaderClass::ThrashVulnerable, LeaderClass::ThrashResistant] {
        let members: Vec<(usize, usize)> = report
            .sets
            .iter()
            .filter(|s| s.class == class)
            .map(|s| (s.set, s.slice))
            .collect();
        let Some(&representative) = members.first() else {
            continue;
        };
        let mut group_span = root.as_ref().map(|r| r.child("polca.learn_group"));
        if let Some(span) = group_span.as_mut() {
            span.set("class", format!("{class:?}"));
            span.set("set", representative.0 as u64);
            span.set("members", members.len() as u64);
        }
        let (namespace, outcome) = learn_group(config, representative, &store);
        drop(group_span);
        groups.push(GroupReport {
            class,
            members,
            representative,
            namespace,
            outcome,
        });
    }

    // Phase 3: flip-probe evidence for every follower.  Forcing the duel to
    // each polarity and replaying the same thrashing query exposes the
    // adaptivity directly: fixed sets answer identically, followers flip.
    let mut follower_evidence: Vec<((usize, usize), u64)> = Vec::new();
    let followers = report.adaptive();
    if !followers.is_empty() {
        let mut probe_span = root.as_ref().map(|r| r.child("polca.flip_probes"));
        if let Some(span) = probe_span.as_mut() {
            span.set("followers", followers.len() as u64);
        }
        cq.enable_cache(false);
        let probe = flip_probe(cq.associativity().unwrap_or(4).max(1));
        for &(set, slice) in &followers {
            cq.set_target(Target::new(LevelId::L3, set, slice))?;
            let mut disagreements = 0u64;
            let mut total = 0u64;
            for _round in 0..config.probe_rounds.max(1) {
                let (primary, alternate) = match &dueling {
                    Some(d) => {
                        d.force_psel(i32::MIN / 2);
                        let primary = cq.run_query(&probe)?;
                        d.force_psel(i32::MAX / 2);
                        let alternate = cq.run_query(&probe)?;
                        (primary, alternate)
                    }
                    // No duel on this CPU: probe twice without forcing (the
                    // outcomes will agree, correctly yielding 0‰ evidence).
                    None => (cq.run_query(&probe)?, cq.run_query(&probe)?),
                };
                for (a, b) in primary.outcomes.iter().zip(&alternate.outcomes) {
                    total += 1;
                    if a != b {
                        disagreements += 1;
                    }
                }
            }
            let permille = (disagreements * 1000).checked_div(total).unwrap_or(0);
            follower_evidence.push(((set, slice), permille));
        }
        if let Some(d) = &dueling {
            d.force_psel(0);
        }
        cq.enable_cache(true);
    }

    // Assemble the per-set verdicts.
    let sets = report
        .sets
        .iter()
        .map(|info| {
            let verdict = match info.class {
                LeaderClass::Adaptive => {
                    let permille = follower_evidence
                        .iter()
                        .find(|((s, sl), _)| *s == info.set && *sl == info.slice)
                        .map(|(_, p)| *p)
                        .unwrap_or(0);
                    SetVerdict::AdaptiveFollower {
                        disagreement_permille: permille,
                    }
                }
                class => match groups.iter().find(|g| g.class == class) {
                    Some(group) => match &group.outcome {
                        GroupOutcome::Learned {
                            states, identified, ..
                        } => SetVerdict::Fixed {
                            policy: identified.clone(),
                            states: *states,
                        },
                        GroupOutcome::NotDeterministic { evidence } => {
                            SetVerdict::FixedNonDeterministic {
                                disagreement_permille: evidence.disagreement_permille,
                            }
                        }
                        GroupOutcome::Failed { error } => SetVerdict::Unmapped {
                            error: error.clone(),
                        },
                    },
                    None => SetVerdict::Unmapped {
                        error: "leader group was not learned".to_string(),
                    },
                },
            };
            SetEntry {
                set: info.set,
                slice: info.slice,
                class: info.class,
                verdict,
            }
        })
        .collect();

    Ok(CacheMap {
        model: config.model.short_name().to_string(),
        level: LevelId::L3,
        cat_ways: config.cat_ways,
        groups,
        sets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_probe_has_the_thrashing_shape() {
        let q = flip_probe(4);
        assert_eq!(q.len(), 5 * 4);
        assert_eq!(q.iter().filter(|op| op.tag.is_some()).count(), 5);
    }

    #[test]
    fn map_config_defaults() {
        let config = MapConfig::new(hardware::CpuModel::SkylakeI5_6500, 7, vec![0, 1]);
        assert_eq!(config.cat_ways, Some(4));
        assert_eq!(config.slice, 0);
        assert_eq!(config.probe_rounds, 3);
        assert!(!config.candidates.is_empty());
    }
}
