//! LRU Insertion Policy (Qureshi et al., ISCA 2007).

use crate::{assert_line_in_range, assert_valid_associativity, ReplacementPolicy};

/// LRU Insertion Policy (LIP).
///
/// LIP keeps the LRU recency stack and eviction rule but inserts new blocks
/// in the *least* recently used position instead of the most recently used
/// one, which makes the policy resistant to thrashing workloads: a block only
/// climbs the stack if it is re-referenced while cached.  Like LRU, the
/// induced Mealy machine has `associativity!` states (Table 2).
///
/// # Example
///
/// ```
/// use policies::{Lip, ReplacementPolicy};
///
/// let mut p = Lip::new(4);
/// // A newly inserted block is itself the next victim unless it gets hit.
/// let victim = p.on_miss();
/// assert_eq!(p.on_miss(), victim);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lip {
    /// `ages[i]` is the recency rank of line `i` (0 = MRU).
    ages: Vec<u8>,
}

impl Lip {
    /// Creates a LIP policy for a set with `assoc` lines.
    ///
    /// # Panics
    ///
    /// Panics if `assoc == 0` or `assoc > 255`.
    pub fn new(assoc: usize) -> Self {
        assert_valid_associativity(assoc);
        assert!(assoc <= 255, "associativity above 255 is not supported");
        Lip {
            ages: (0..assoc).rev().map(|a| a as u8).collect(),
        }
    }
}

impl ReplacementPolicy for Lip {
    fn associativity(&self) -> usize {
        self.ages.len()
    }

    fn on_hit(&mut self, line: usize) {
        assert_line_in_range(line, self.ages.len());
        let old = self.ages[line];
        for a in &mut self.ages {
            if *a < old {
                *a += 1;
            }
        }
        self.ages[line] = 0;
    }

    fn victim(&mut self) -> usize {
        let oldest = (self.ages.len() - 1) as u8;
        self.ages
            .iter()
            .position(|&a| a == oldest)
            .expect("ages form a permutation, so the maximum age is present")
    }

    fn on_insert(&mut self, line: usize) {
        assert_line_in_range(line, self.ages.len());
        // Insertion in the LRU position: the new block keeps the maximum age,
        // so the recency permutation is unchanged except that `line` now holds
        // the new block.  When filling an arbitrary invalid line (hardware
        // simulator), we demote that line to the LRU position to match the
        // "insert at LRU" semantics.
        let oldest = (self.ages.len() - 1) as u8;
        let old = self.ages[line];
        for a in &mut self.ages {
            if *a > old {
                *a -= 1;
            }
        }
        self.ages[line] = oldest;
    }

    fn reset(&mut self) {
        let assoc = self.ages.len();
        self.ages = (0..assoc).rev().map(|a| a as u8).collect();
    }

    fn state_key(&self) -> Vec<u32> {
        self.ages.iter().map(|&a| a as u32).collect()
    }

    fn name(&self) -> &'static str {
        "LIP"
    }

    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_blocks_stay_at_lru_until_hit() {
        let mut p = Lip::new(4);
        let v1 = p.on_miss();
        // Without a hit, the same line keeps being evicted (thrash
        // resistance for the rest of the working set).
        let v2 = p.on_miss();
        assert_eq!(v1, v2);
    }

    #[test]
    fn hit_promotes_inserted_block() {
        let mut p = Lip::new(4);
        let v1 = p.on_miss();
        p.on_hit(v1);
        let v2 = p.on_miss();
        assert_ne!(v1, v2);
    }

    #[test]
    fn ages_remain_a_permutation() {
        let mut p = Lip::new(4);
        for _ in 0..10 {
            p.on_miss();
            let mut ages = p.state_key();
            ages.sort_unstable();
            assert_eq!(ages, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn hits_behave_like_lru() {
        let mut p = Lip::new(3);
        p.on_hit(0);
        p.on_hit(2);
        // Recency order: 2, 0, 1 → victim is 1.
        assert_eq!(p.victim(), 1);
    }
}
