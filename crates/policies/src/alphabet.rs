//! The policy input/output alphabet of Table 1.

use std::fmt;
use std::str::FromStr;

/// Input symbol of a replacement policy (Table 1): an access to a cache line
/// or an eviction request.
///
/// The line index is a `u8` on purpose: the learner stores millions of input
/// words (test-suite dedup sets, the prefix-trie cache, observation-table
/// rows), and a byte-sized payload keeps a whole word in one or two cache
/// lines.  Real associativities are tiny, so nothing is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PolicyInput {
    /// `Ln(i)`: the block stored in line `i` was accessed (a cache hit).
    Line(u8),
    /// `Evct`: a line must be freed to make room for a new block (a miss).
    Evct,
}

impl PolicyInput {
    /// The `Ln(i)` symbol for a line index given as a `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `line` exceeds `u8::MAX` (no supported cache comes close).
    #[inline]
    pub fn line(line: usize) -> Self {
        PolicyInput::Line(u8::try_from(line).expect("line index exceeds u8::MAX"))
    }

    /// The line index of a `Ln(i)` symbol, widened back to `usize`.
    #[inline]
    pub fn line_index(self) -> Option<usize> {
        match self {
            PolicyInput::Line(i) => Some(usize::from(i)),
            PolicyInput::Evct => None,
        }
    }
}

impl fmt::Display for PolicyInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyInput::Line(i) => write!(f, "Ln({i})"),
            PolicyInput::Evct => write!(f, "Evct"),
        }
    }
}

/// Error returned when parsing a [`PolicyInput`] or [`PolicyOutput`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAlphabetError(pub String);

impl fmt::Display for ParseAlphabetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid policy alphabet symbol: {}", self.0)
    }
}

impl std::error::Error for ParseAlphabetError {}

impl FromStr for PolicyInput {
    type Err = ParseAlphabetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "Evct" {
            return Ok(PolicyInput::Evct);
        }
        if let Some(rest) = s.strip_prefix("Ln(").and_then(|r| r.strip_suffix(')')) {
            if let Ok(i) = rest.parse() {
                return Ok(PolicyInput::Line(i));
            }
        }
        Err(ParseAlphabetError(s.to_string()))
    }
}

/// Output symbol of a replacement policy (Table 1): either nothing (`⊥`, for
/// line accesses) or the index of the evicted line (for `Evct`).
///
/// Byte-sized for the same reason as [`PolicyInput`]: output words are stored
/// per trie node and per observation-table cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PolicyOutput {
    /// `⊥`: no line was freed.
    None,
    /// The index of the line that was freed.
    Evicted(u8),
}

impl PolicyOutput {
    /// The `Evicted(i)` symbol for a victim index given as a `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `line` exceeds `u8::MAX`.
    #[inline]
    pub fn evicted(line: usize) -> Self {
        PolicyOutput::Evicted(u8::try_from(line).expect("victim index exceeds u8::MAX"))
    }

    /// The victim index of an `Evicted(i)` symbol, widened back to `usize`.
    #[inline]
    pub fn victim_index(self) -> Option<usize> {
        match self {
            PolicyOutput::Evicted(i) => Some(usize::from(i)),
            PolicyOutput::None => None,
        }
    }
}

impl fmt::Display for PolicyOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyOutput::None => write!(f, "⊥"),
            PolicyOutput::Evicted(i) => write!(f, "{i}"),
        }
    }
}

impl FromStr for PolicyOutput {
    type Err = ParseAlphabetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "⊥" || s == "none" {
            return Ok(PolicyOutput::None);
        }
        s.parse()
            .map(PolicyOutput::Evicted)
            .map_err(|_| ParseAlphabetError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips() {
        for input in [
            PolicyInput::Line(0),
            PolicyInput::Line(15),
            PolicyInput::Evct,
        ] {
            assert_eq!(input.to_string().parse::<PolicyInput>().unwrap(), input);
        }
        for output in [PolicyOutput::None, PolicyOutput::Evicted(7)] {
            assert_eq!(output.to_string().parse::<PolicyOutput>().unwrap(), output);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!("Ln(x)".parse::<PolicyInput>().is_err());
        assert!("evict".parse::<PolicyInput>().is_err());
        assert!("x".parse::<PolicyOutput>().is_err());
    }
}
