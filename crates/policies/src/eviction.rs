//! Driving a replacement-policy simulator with *named* keys instead of line
//! indices.
//!
//! Every [`ReplacementPolicy`](crate::ReplacementPolicy) in this crate speaks
//! the paper's Mealy alphabet: lines are anonymous way indices `0..assoc`.
//! That is the right interface for learning and simulation, but a software
//! cache that wants to reuse these policies for its *own* eviction decisions
//! (the query store's bounded namespace set, for instance) thinks in keys —
//! namespace strings, file paths, whatever it caches.  [`KeyedPolicy`] is the
//! adapter: a fixed-associativity "set" whose ways hold keys, with hits,
//! insertions and victim selection translated onto the underlying policy
//! simulator.  The store's memory cap thereby becomes self-referential in the
//! CacheQuery sense: the same LRU/SRRIP/LIP machines the system learns and
//! simulates also decide what the system itself forgets.

use crate::ReplacementPolicy;

/// A fixed-associativity, key-addressed view of one [`ReplacementPolicy`].
///
/// The adapter owns `assoc` ways; each way optionally holds a key.  A
/// [`touch`](KeyedPolicy::touch) on a resident key is a policy hit; a touch
/// on an absent key fills an invalid way if one exists, otherwise asks the
/// policy for a victim and returns the displaced key.
/// [`evict`](KeyedPolicy::evict) displaces a key without inserting a new
/// one — the shape a capacity cap needs.
///
/// # Example
///
/// ```
/// use policies::{KeyedPolicy, PolicyKind};
///
/// let mut tracked = KeyedPolicy::new(PolicyKind::Lru.build(2).unwrap());
/// assert_eq!(tracked.touch("a"), None);
/// assert_eq!(tracked.touch("b"), None);
/// tracked.touch("a"); // promote "a"
/// // The set is full, so inserting "c" displaces the LRU key "b".
/// assert_eq!(tracked.touch("c"), Some("b"));
/// ```
#[derive(Debug)]
pub struct KeyedPolicy<K> {
    policy: Box<dyn ReplacementPolicy>,
    /// `slots[way]` is the key resident in that way, if any.
    slots: Vec<Option<K>>,
}

impl<K: Clone + Eq> KeyedPolicy<K> {
    /// Wraps `policy`; capacity is the policy's associativity.
    pub fn new(policy: Box<dyn ReplacementPolicy>) -> Self {
        let assoc = policy.associativity();
        KeyedPolicy {
            policy,
            slots: (0..assoc).map(|_| None).collect(),
        }
    }

    /// Number of ways (the maximum number of keys tracked at once).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no key is resident.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// The resident keys, in way order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.slots.iter().flatten()
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: &K) -> bool {
        self.way_of(key).is_some()
    }

    fn way_of(&self, key: &K) -> Option<usize> {
        self.slots
            .iter()
            .position(|slot| slot.as_ref() == Some(key))
    }

    /// Records an access to `key`.
    ///
    /// * resident key → policy hit, returns `None`;
    /// * absent key, free way → fill (policy insert), returns `None`;
    /// * absent key, full set → policy victim selection; the displaced key is
    ///   returned so the caller can act on the eviction.
    pub fn touch(&mut self, key: K) -> Option<K> {
        if let Some(way) = self.way_of(&key) {
            self.policy.on_hit(way);
            return None;
        }
        if let Some(free) = self.slots.iter().position(Option::is_none) {
            self.slots[free] = Some(key);
            self.policy.on_insert(free);
            return None;
        }
        let way = self.policy.victim();
        let displaced = self.slots[way].replace(key);
        self.policy.on_insert(way);
        displaced
    }

    /// Displaces one resident key chosen by the policy *without* inserting a
    /// replacement — the capacity-cap shape of eviction.  Returns `None` when
    /// nothing is resident.
    ///
    /// The freed way is invalidated on the policy (the default for most
    /// modelled policies keeps their metadata untouched, mirroring real
    /// hardware).
    pub fn evict(&mut self) -> Option<K> {
        if self.is_empty() {
            return None;
        }
        // `victim` may point at an empty way when keys were removed out of
        // band; scan from the policy's choice to the nearest resident way.
        let way = self.policy.victim();
        let assoc = self.capacity();
        let way = (0..assoc)
            .map(|offset| (way + offset) % assoc)
            .find(|&w| self.slots[w].is_some())?;
        let displaced = self.slots[way].take();
        self.policy.on_invalidate(way);
        displaced
    }

    /// Removes `key` from tracking (e.g. the caller dropped it out of band).
    /// Returns whether it was resident.
    pub fn forget(&mut self, key: &K) -> bool {
        match self.way_of(key) {
            Some(way) => {
                self.slots[way] = None;
                self.policy.on_invalidate(way);
                true
            }
            None => false,
        }
    }

    /// The underlying policy's display name (e.g. `LRU`).
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolicyKind;

    fn lru(assoc: usize) -> KeyedPolicy<String> {
        KeyedPolicy::new(PolicyKind::Lru.build(assoc).unwrap())
    }

    #[test]
    fn fills_free_ways_before_evicting() {
        let mut tracked = lru(3);
        assert_eq!(tracked.touch("a".into()), None);
        assert_eq!(tracked.touch("b".into()), None);
        assert_eq!(tracked.touch("c".into()), None);
        assert_eq!(tracked.len(), 3);
        assert!(tracked.contains(&"a".to_string()));
    }

    #[test]
    fn lru_touch_displaces_the_least_recent_key() {
        let mut tracked = lru(2);
        tracked.touch("a".to_string());
        tracked.touch("b".to_string());
        tracked.touch("a".to_string()); // "b" is now least recent
        assert_eq!(tracked.touch("c".to_string()), Some("b".to_string()));
        assert!(tracked.contains(&"a".to_string()));
        assert!(tracked.contains(&"c".to_string()));
    }

    #[test]
    fn evict_removes_without_inserting() {
        let mut tracked = lru(2);
        tracked.touch("a".to_string());
        tracked.touch("b".to_string());
        tracked.touch("a".to_string());
        assert_eq!(tracked.evict(), Some("b".to_string()));
        assert_eq!(tracked.len(), 1);
        assert_eq!(tracked.evict(), Some("a".to_string()));
        assert_eq!(tracked.evict(), None);
    }

    #[test]
    fn forget_frees_the_way_for_the_next_fill() {
        let mut tracked = lru(2);
        tracked.touch("a".to_string());
        tracked.touch("b".to_string());
        assert!(tracked.forget(&"a".to_string()));
        assert!(!tracked.forget(&"a".to_string()));
        assert_eq!(tracked.len(), 1);
        // The freed way is refilled without displacing "b".
        assert_eq!(tracked.touch("c".to_string()), None);
        assert_eq!(tracked.len(), 2);
    }

    #[test]
    fn evict_skips_ways_emptied_out_of_band() {
        let mut tracked = lru(4);
        for key in ["a", "b", "c", "d"] {
            tracked.touch(key.to_string());
        }
        // Empty some ways behind the policy's back; evict must still only
        // ever return resident keys, policy victim choice notwithstanding.
        tracked.forget(&"a".to_string());
        tracked.forget(&"b".to_string());
        let mut displaced = Vec::new();
        while let Some(key) = tracked.evict() {
            displaced.push(key);
        }
        displaced.sort();
        assert_eq!(displaced, vec!["c".to_string(), "d".to_string()]);
    }

    #[test]
    fn every_deterministic_policy_drives_the_adapter() {
        for kind in PolicyKind::ALL_DETERMINISTIC {
            if !kind.supports_associativity(4) {
                continue;
            }
            let mut tracked: KeyedPolicy<u32> = KeyedPolicy::new(kind.build(4).unwrap());
            for key in 0..16 {
                tracked.touch(key);
                tracked.touch(key % 3);
            }
            assert_eq!(tracked.capacity(), 4);
            assert_eq!(tracked.len(), 4, "{kind} should keep the set full");
            assert_eq!(tracked.policy_name(), kind.name());
        }
    }
}
