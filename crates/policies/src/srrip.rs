//! Static and Bimodal Re-Reference Interval Prediction (Jaleel et al., ISCA
//! 2010).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{assert_line_in_range, assert_valid_associativity, ReplacementPolicy};

/// Maximum re-reference prediction value for the 2-bit (4 ages) configuration
/// the paper evaluates.
pub(crate) const MAX_RRPV: u8 = 3;
/// RRPV assigned to newly inserted blocks ("long re-reference interval").
pub(crate) const INSERT_RRPV: u8 = 2;

/// Hit-promotion variant of SRRIP (§6 of the paper, "4 ages").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SrripVariant {
    /// Hit Priority: a hit resets the line's RRPV to 0.
    HitPriority,
    /// Frequency Priority: a hit decrements the line's RRPV (saturating at 0).
    FrequencyPriority,
}

impl SrripVariant {
    fn apply_hit(self, rrpv: u8) -> u8 {
        match self {
            SrripVariant::HitPriority => 0,
            SrripVariant::FrequencyPriority => rrpv.saturating_sub(1),
        }
    }
}

/// Static Re-Reference Interval Prediction (SRRIP) with 2-bit RRPVs.
///
/// Each line carries a re-reference prediction value (RRPV) in `0..=3`.
/// Insertion predicts a *long* re-reference interval (RRPV 2); a victim is the
/// left-most line with RRPV 3, ageing every line until one exists.  The two
/// variants differ in the promotion rule (see [`SrripVariant`]).
///
/// Table 2 reports 178 states for SRRIP-HP and 256 states for SRRIP-FP at
/// associativity 4.
///
/// # Example
///
/// ```
/// use policies::{ReplacementPolicy, Srrip, SrripVariant};
///
/// let mut p = Srrip::new(4, SrripVariant::HitPriority);
/// let victim = p.on_miss();
/// assert!(victim < 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Srrip {
    variant: SrripVariant,
    rrpv: Vec<u8>,
}

impl Srrip {
    /// Creates an SRRIP policy for a set with `assoc` lines.
    ///
    /// The initial state is all lines at the maximum RRPV, i.e. every line
    /// predicts a distant re-reference, as after an invalidation.  This is
    /// the initial state that reproduces the learned state counts of Table 2
    /// (12/178 states for SRRIP-HP and 16/256 for SRRIP-FP at associativity
    /// 2/4).
    ///
    /// # Panics
    ///
    /// Panics if `assoc == 0`.
    pub fn new(assoc: usize, variant: SrripVariant) -> Self {
        assert_valid_associativity(assoc);
        Srrip {
            variant,
            rrpv: vec![MAX_RRPV; assoc],
        }
    }

    /// The variant (hit promotion rule) of this instance.
    pub fn variant(&self) -> SrripVariant {
        self.variant
    }
}

/// Ages all lines until at least one has the maximum RRPV, then returns the
/// index of the left-most such line.
pub(crate) fn srrip_select_victim(rrpv: &mut [u8]) -> usize {
    loop {
        if let Some(i) = rrpv.iter().position(|&r| r == MAX_RRPV) {
            return i;
        }
        for r in rrpv.iter_mut() {
            *r += 1;
        }
    }
}

impl ReplacementPolicy for Srrip {
    fn associativity(&self) -> usize {
        self.rrpv.len()
    }

    fn on_hit(&mut self, line: usize) {
        assert_line_in_range(line, self.rrpv.len());
        self.rrpv[line] = self.variant.apply_hit(self.rrpv[line]);
    }

    fn victim(&mut self) -> usize {
        srrip_select_victim(&mut self.rrpv)
    }

    fn on_insert(&mut self, line: usize) {
        assert_line_in_range(line, self.rrpv.len());
        self.rrpv[line] = INSERT_RRPV;
    }

    fn reset(&mut self) {
        self.rrpv.iter_mut().for_each(|r| *r = MAX_RRPV);
    }

    fn state_key(&self) -> Vec<u32> {
        self.rrpv.iter().map(|&r| r as u32).collect()
    }

    fn name(&self) -> &'static str {
        match self.variant {
            SrripVariant::HitPriority => "SRRIP-HP",
            SrripVariant::FrequencyPriority => "SRRIP-FP",
        }
    }

    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

/// Bimodal RRIP (BRRIP): like SRRIP, but most insertions predict a *distant*
/// re-reference interval (RRPV 3) and only a small fraction (1/32, as in the
/// original proposal) predict a long one (RRPV 2).
///
/// BRRIP is *probabilistic* and therefore not learnable by the pipeline; it
/// exists to emulate the thrash-resistant half of the set-dueling adaptive
/// policy that the simulated last-level caches implement in their follower
/// sets (Appendix B observes this adaptivity on Skylake and Kaby Lake, and a
/// non-deterministic leader group on Haswell).
#[derive(Debug, Clone)]
pub struct Brrip {
    rrpv: Vec<u8>,
    rng: StdRng,
    seed: u64,
    /// Probability (out of `u32::MAX`) of inserting with a long interval.
    long_insert_threshold: u32,
}

impl Brrip {
    /// Probability of a "long" insertion, as in the original BRRIP proposal.
    pub const LONG_INSERT_PROBABILITY: f64 = 1.0 / 32.0;

    /// Creates a BRRIP policy with the given RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `assoc == 0`.
    pub fn new(assoc: usize, seed: u64) -> Self {
        assert_valid_associativity(assoc);
        Brrip {
            rrpv: vec![MAX_RRPV; assoc],
            rng: StdRng::seed_from_u64(seed),
            seed,
            long_insert_threshold: (Self::LONG_INSERT_PROBABILITY * u32::MAX as f64) as u32,
        }
    }
}

impl ReplacementPolicy for Brrip {
    fn associativity(&self) -> usize {
        self.rrpv.len()
    }

    fn on_hit(&mut self, line: usize) {
        assert_line_in_range(line, self.rrpv.len());
        self.rrpv[line] = 0;
    }

    fn victim(&mut self) -> usize {
        srrip_select_victim(&mut self.rrpv)
    }

    fn on_insert(&mut self, line: usize) {
        assert_line_in_range(line, self.rrpv.len());
        let long = self.rng.gen::<u32>() < self.long_insert_threshold;
        self.rrpv[line] = if long { INSERT_RRPV } else { MAX_RRPV };
    }

    fn reset(&mut self) {
        self.rrpv.iter_mut().for_each(|r| *r = MAX_RRPV);
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn state_key(&self) -> Vec<u32> {
        // The RNG state is deliberately excluded: BRRIP is documented as
        // non-deterministic and must not be fed to `policy_to_mealy`.
        self.rrpv.iter().map(|&r| r as u32).collect()
    }

    fn name(&self) -> &'static str {
        "BRRIP"
    }

    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_selection_ages_until_max() {
        let mut rrpv = vec![0, 1, 2, 1];
        let v = srrip_select_victim(&mut rrpv);
        assert_eq!(v, 2);
        assert_eq!(rrpv, vec![1, 2, 3, 2]);
    }

    #[test]
    fn hp_hit_resets_to_zero() {
        let mut p = Srrip::new(4, SrripVariant::HitPriority);
        p.on_hit(1);
        assert_eq!(p.state_key()[1], 0);
    }

    #[test]
    fn fp_hit_decrements() {
        let mut p = Srrip::new(4, SrripVariant::FrequencyPriority);
        // Initial RRPV is 3; each hit lowers it by one, saturating at 0.
        p.on_hit(1);
        assert_eq!(p.state_key()[1], 2);
        p.on_hit(1);
        assert_eq!(p.state_key()[1], 1);
        p.on_hit(1);
        assert_eq!(p.state_key()[1], 0);
        p.on_hit(1);
        assert_eq!(p.state_key()[1], 0);
    }

    #[test]
    fn miss_inserts_with_long_interval() {
        let mut p = Srrip::new(2, SrripVariant::HitPriority);
        let v = p.on_miss();
        assert_eq!(p.state_key()[v] as u8, INSERT_RRPV);
    }

    #[test]
    fn scanning_workload_does_not_evict_hot_line() {
        // A line that is re-referenced keeps winning against a scan: this is
        // the motivating property of RRIP.
        let mut p = Srrip::new(4, SrripVariant::HitPriority);
        p.on_hit(0);
        for _ in 0..8 {
            let v = p.on_miss();
            assert_ne!(v, 0, "the recently re-referenced line was evicted");
            p.on_hit(0);
        }
    }

    #[test]
    fn brrip_is_reproducible_for_a_fixed_seed() {
        let mut a = Brrip::new(4, 42);
        let mut b = Brrip::new(4, 42);
        for _ in 0..100 {
            assert_eq!(a.on_miss(), b.on_miss());
        }
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut p = Brrip::new(4, 7);
        let mut distant = 0;
        for _ in 0..1000 {
            let v = p.on_miss();
            if p.state_key()[v] as u8 == MAX_RRPV {
                distant += 1;
            }
        }
        assert!(distant > 900, "only {distant}/1000 distant insertions");
    }
}
