//! Construction of policies by name, used by the benchmark harness and the
//! simulated hardware configuration.

use std::fmt;
use std::str::FromStr;

use crate::{Brrip, Fifo, Lip, Lru, Mru, New1, New2, Plru, ReplacementPolicy, Srrip, SrripVariant};

/// Identifier of a concrete replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PolicyKind {
    /// First-In First-Out.
    Fifo,
    /// Least Recently Used.
    Lru,
    /// Tree-based Pseudo-LRU.
    Plru,
    /// MRU-bit replacement (bit-PLRU / NRU).
    Mru,
    /// LRU Insertion Policy.
    Lip,
    /// Static RRIP, hit-priority variant.
    SrripHp,
    /// Static RRIP, frequency-priority variant.
    SrripFp,
    /// Bimodal RRIP (probabilistic; follower sets of the simulated LLC).
    Brrip,
    /// Undocumented Skylake / Kaby Lake L2 policy.
    New1,
    /// Undocumented Skylake / Kaby Lake L3 leader-set policy.
    New2,
}

/// Error returned when a policy cannot be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// The associativity is not supported by the policy (e.g. PLRU requires a
    /// power of two).
    UnsupportedAssociativity {
        /// Policy that rejected the associativity.
        kind: PolicyKind,
        /// The offending associativity.
        assoc: usize,
    },
    /// The policy name is unknown (returned by [`PolicyKind::from_str`]).
    UnknownPolicy(String),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::UnsupportedAssociativity { kind, assoc } => {
                write!(f, "{} does not support associativity {assoc}", kind.name())
            }
            PolicyError::UnknownPolicy(name) => write!(f, "unknown policy name '{name}'"),
        }
    }
}

impl std::error::Error for PolicyError {}

impl PolicyKind {
    /// All deterministic policies evaluated in the paper's §6 case study, in
    /// the order of Table 2, followed by the two policies learned from
    /// hardware in §7.
    pub const ALL_DETERMINISTIC: [PolicyKind; 9] = [
        PolicyKind::Fifo,
        PolicyKind::Lru,
        PolicyKind::Plru,
        PolicyKind::Mru,
        PolicyKind::Lip,
        PolicyKind::SrripHp,
        PolicyKind::SrripFp,
        PolicyKind::New1,
        PolicyKind::New2,
    ];

    /// Canonical display name, matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Lru => "LRU",
            PolicyKind::Plru => "PLRU",
            PolicyKind::Mru => "MRU",
            PolicyKind::Lip => "LIP",
            PolicyKind::SrripHp => "SRRIP-HP",
            PolicyKind::SrripFp => "SRRIP-FP",
            PolicyKind::Brrip => "BRRIP",
            PolicyKind::New1 => "New1",
            PolicyKind::New2 => "New2",
        }
    }

    /// Whether the policy is a deterministic finite-state machine (BRRIP is
    /// the only exception).
    pub fn is_deterministic(self) -> bool {
        self != PolicyKind::Brrip
    }

    /// Whether `assoc` is a supported associativity for this policy.
    pub fn supports_associativity(self, assoc: usize) -> bool {
        match self {
            PolicyKind::Plru => assoc >= 2 && assoc.is_power_of_two(),
            PolicyKind::Mru => assoc >= 2,
            _ => assoc >= 1,
        }
    }

    /// Builds a boxed policy instance of this kind.
    ///
    /// Probabilistic policies are seeded with a fixed default seed; use
    /// [`PolicyKind::build_seeded`] to control it.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::UnsupportedAssociativity`] if `assoc` is not
    /// supported (see [`PolicyKind::supports_associativity`]).
    pub fn build(self, assoc: usize) -> Result<Box<dyn ReplacementPolicy>, PolicyError> {
        self.build_seeded(assoc, 0)
    }

    /// Builds a boxed policy instance, seeding probabilistic policies with
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::UnsupportedAssociativity`] if `assoc` is not
    /// supported.
    pub fn build_seeded(
        self,
        assoc: usize,
        seed: u64,
    ) -> Result<Box<dyn ReplacementPolicy>, PolicyError> {
        if crate::PackedPolicy::supports(self, assoc) {
            let packed = crate::PackedPolicy::new(self, assoc).expect("support was checked above");
            return Ok(Box::new(packed));
        }
        self.build_reference_seeded(assoc, seed)
    }

    /// Builds the `Vec<u8>`-based reference implementation of this kind,
    /// bypassing the packed fast path.
    ///
    /// The reference implementations are the oracle the packed simulators are
    /// differentially tested against; they also cover associativities beyond
    /// [`crate::PACKED_MAX_ASSOC`].
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::UnsupportedAssociativity`] if `assoc` is not
    /// supported.
    pub fn build_reference(self, assoc: usize) -> Result<Box<dyn ReplacementPolicy>, PolicyError> {
        self.build_reference_seeded(assoc, 0)
    }

    /// Builds the reference implementation, seeding probabilistic policies
    /// with `seed` (see [`PolicyKind::build_reference`]).
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::UnsupportedAssociativity`] if `assoc` is not
    /// supported.
    pub fn build_reference_seeded(
        self,
        assoc: usize,
        seed: u64,
    ) -> Result<Box<dyn ReplacementPolicy>, PolicyError> {
        if !self.supports_associativity(assoc) {
            return Err(PolicyError::UnsupportedAssociativity { kind: self, assoc });
        }
        Ok(match self {
            PolicyKind::Fifo => Box::new(Fifo::new(assoc)),
            PolicyKind::Lru => Box::new(Lru::new(assoc)),
            PolicyKind::Plru => {
                Box::new(Plru::new(assoc).expect("associativity support was checked above"))
            }
            PolicyKind::Mru => Box::new(Mru::new(assoc)),
            PolicyKind::Lip => Box::new(Lip::new(assoc)),
            PolicyKind::SrripHp => Box::new(Srrip::new(assoc, SrripVariant::HitPriority)),
            PolicyKind::SrripFp => Box::new(Srrip::new(assoc, SrripVariant::FrequencyPriority)),
            PolicyKind::Brrip => Box::new(Brrip::new(assoc, seed)),
            PolicyKind::New1 => Box::new(New1::new(assoc)),
            PolicyKind::New2 => Box::new(New2::new(assoc)),
        })
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PolicyKind {
    type Err = PolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized = s.to_ascii_uppercase().replace('_', "-");
        Ok(match normalized.as_str() {
            "FIFO" => PolicyKind::Fifo,
            "LRU" => PolicyKind::Lru,
            "PLRU" => PolicyKind::Plru,
            "MRU" => PolicyKind::Mru,
            "LIP" => PolicyKind::Lip,
            "SRRIP-HP" | "SRRIPHP" => PolicyKind::SrripHp,
            "SRRIP-FP" | "SRRIPFP" => PolicyKind::SrripFp,
            "BRRIP" => PolicyKind::Brrip,
            "NEW1" => PolicyKind::New1,
            "NEW2" => PolicyKind::New2,
            _ => return Err(PolicyError::UnknownPolicy(s.to_string())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_deterministic_policy_at_assoc_4() {
        for kind in PolicyKind::ALL_DETERMINISTIC {
            let p = kind.build(4).unwrap();
            assert_eq!(p.associativity(), 4);
            assert_eq!(p.name(), kind.name());
        }
    }

    #[test]
    fn plru_rejects_non_power_of_two() {
        assert!(matches!(
            PolicyKind::Plru.build(6),
            Err(PolicyError::UnsupportedAssociativity { .. })
        ));
    }

    #[test]
    fn names_round_trip_through_from_str() {
        for kind in PolicyKind::ALL_DETERMINISTIC {
            assert_eq!(kind.name().parse::<PolicyKind>().unwrap(), kind);
        }
        assert_eq!("brrip".parse::<PolicyKind>().unwrap(), PolicyKind::Brrip);
        assert!("clairvoyant".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn build_prefers_the_packed_fast_path() {
        for kind in PolicyKind::ALL_DETERMINISTIC {
            let packed = kind.build(4).unwrap();
            let reference = kind.build_reference(4).unwrap();
            assert!(
                format!("{packed:?}").starts_with("PackedPolicy"),
                "{kind} did not build packed"
            );
            assert!(!format!("{reference:?}").starts_with("PackedPolicy"));
            assert_eq!(packed.state_key(), reference.state_key());
        }
        // Beyond the packed lane budget the reference form is used.
        let wide = PolicyKind::Lru.build(12).unwrap();
        assert!(!format!("{wide:?}").starts_with("PackedPolicy"));
        // BRRIP is probabilistic and never packed.
        let brrip = PolicyKind::Brrip.build(4).unwrap();
        assert!(!format!("{brrip:?}").starts_with("PackedPolicy"));
    }

    #[test]
    fn brrip_is_flagged_nondeterministic() {
        assert!(!PolicyKind::Brrip.is_deterministic());
        assert!(PolicyKind::SrripHp.is_deterministic());
    }
}
