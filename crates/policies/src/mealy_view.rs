//! Conversion of executable policies into their ground-truth Mealy machines.

use std::collections::HashMap;

use automata::{Mealy, StateId};

use crate::{PolicyInput, PolicyOutput, ReplacementPolicy};

/// The Mealy-machine view of a replacement policy, over the alphabet of
/// Table 1.
pub type PolicyMealy = Mealy<PolicyInput, PolicyOutput>;

/// Returns the policy input alphabet `Ln(0), …, Ln(n−1), Evct` for
/// associativity `assoc`.
pub fn policy_alphabet(assoc: usize) -> Vec<PolicyInput> {
    let mut inputs: Vec<PolicyInput> = (0..assoc).map(PolicyInput::line).collect();
    inputs.push(PolicyInput::Evct);
    inputs
}

/// Enumerates the reachable control states of `policy` (starting from its
/// current state) and returns the induced Mealy machine of Definition 2.1.
///
/// States are identified by [`ReplacementPolicy::state_key`]; the machine is
/// *not* minimized — callers interested in the canonical state counts of
/// Table 2 should pass the result through [`automata::minimize`].
///
/// # Panics
///
/// Panics if more than `max_states` distinct control states are reachable.
/// This guards against accidentally exploring probabilistic policies (such as
/// [`crate::Brrip`]) whose `state_key` does not capture the RNG.
///
/// # Example
///
/// ```
/// use policies::{policy_to_mealy, Lru};
///
/// let machine = policy_to_mealy(&Lru::new(4), 100_000);
/// assert_eq!(machine.num_states(), 24); // 4! recency permutations
/// ```
pub fn policy_to_mealy(policy: &dyn ReplacementPolicy, max_states: usize) -> PolicyMealy {
    let inputs = policy_alphabet(policy.associativity());
    let mut ids: HashMap<Vec<u32>, StateId> = HashMap::new();
    let mut worklist: Vec<Box<dyn ReplacementPolicy>> = Vec::new();
    let mut transitions: Vec<Vec<(StateId, PolicyOutput)>> = Vec::new();

    let initial = policy.clone_box();
    ids.insert(initial.state_key(), StateId::new(0));
    worklist.push(initial);
    let mut cursor = 0usize;

    while cursor < worklist.len() {
        let current = worklist[cursor].clone();
        cursor += 1;
        let mut row = Vec::with_capacity(inputs.len());
        for &input in &inputs {
            let mut next = current.clone();
            let output = next.apply(input);
            let key = next.state_key();
            let id = match ids.get(&key) {
                Some(&id) => id,
                None => {
                    let id = StateId::new(ids.len());
                    assert!(
                        ids.len() < max_states,
                        "policy {} exceeds {} reachable states",
                        policy.name(),
                        max_states
                    );
                    ids.insert(key, id);
                    worklist.push(next);
                    id
                }
            };
            row.push((id, output));
        }
        transitions.push(row);
    }

    Mealy::from_tables(inputs, transitions, StateId::new(0))
        .expect("reachability exploration produces a complete machine")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fifo, Lip, Lru, Mru, New1, New2, Plru, Srrip, SrripVariant};
    use automata::{check_equivalence, minimize};

    /// Number of states of the *minimal* machine for `policy`.
    fn minimal_states(policy: &dyn ReplacementPolicy) -> usize {
        minimize(&policy_to_mealy(policy, 1 << 20)).num_states()
    }

    #[test]
    fn fifo_state_counts_match_table_2() {
        assert_eq!(minimal_states(&Fifo::new(2)), 2);
        assert_eq!(minimal_states(&Fifo::new(8)), 8);
        assert_eq!(minimal_states(&Fifo::new(16)), 16);
    }

    #[test]
    fn lru_state_counts_match_table_2() {
        assert_eq!(minimal_states(&Lru::new(2)), 2);
        assert_eq!(minimal_states(&Lru::new(4)), 24);
        assert_eq!(minimal_states(&Lru::new(6)), 720);
    }

    #[test]
    fn plru_state_counts_match_table_2() {
        assert_eq!(minimal_states(&Plru::new(2).unwrap()), 2);
        assert_eq!(minimal_states(&Plru::new(4).unwrap()), 8);
        assert_eq!(minimal_states(&Plru::new(8).unwrap()), 128);
    }

    #[test]
    fn mru_state_counts_match_table_2() {
        assert_eq!(minimal_states(&Mru::new(2)), 2);
        assert_eq!(minimal_states(&Mru::new(4)), 14);
        assert_eq!(minimal_states(&Mru::new(6)), 62);
        assert_eq!(minimal_states(&Mru::new(8)), 254);
    }

    #[test]
    fn lip_state_counts_match_table_2() {
        assert_eq!(minimal_states(&Lip::new(2)), 2);
        assert_eq!(minimal_states(&Lip::new(4)), 24);
    }

    #[test]
    fn srrip_state_counts_match_table_2() {
        assert_eq!(
            minimal_states(&Srrip::new(2, SrripVariant::HitPriority)),
            12
        );
        assert_eq!(
            minimal_states(&Srrip::new(4, SrripVariant::HitPriority)),
            178
        );
        assert_eq!(
            minimal_states(&Srrip::new(2, SrripVariant::FrequencyPriority)),
            16
        );
        assert_eq!(
            minimal_states(&Srrip::new(4, SrripVariant::FrequencyPriority)),
            256
        );
    }

    #[test]
    fn new_policy_state_counts_match_table_4() {
        assert_eq!(minimal_states(&New1::new(4)), 160);
        assert_eq!(minimal_states(&New2::new(4)), 175);
    }

    #[test]
    fn lru_mealy_matches_example_2_2() {
        let machine = policy_to_mealy(&Lru::new(2), 100);
        // Example 2.2: two states; accessing line 1 from the initial state
        // keeps the state, accessing line 0 swaps the victim.
        assert_eq!(minimize(&machine).num_states(), 2);
        assert_eq!(
            machine
                .output_word([PolicyInput::Line(0), PolicyInput::Evct, PolicyInput::Evct].iter()),
            vec![
                PolicyOutput::None,
                PolicyOutput::Evicted(1),
                PolicyOutput::Evicted(0)
            ]
        );
    }

    #[test]
    fn distinct_policies_are_inequivalent_at_assoc_4() {
        let machines = [
            policy_to_mealy(&Fifo::new(4), 1 << 16),
            policy_to_mealy(&Lru::new(4), 1 << 16),
            policy_to_mealy(&Plru::new(4).unwrap(), 1 << 16),
            policy_to_mealy(&Mru::new(4), 1 << 16),
            policy_to_mealy(&Lip::new(4), 1 << 16),
            policy_to_mealy(&Srrip::new(4, SrripVariant::HitPriority), 1 << 16),
            policy_to_mealy(&Srrip::new(4, SrripVariant::FrequencyPriority), 1 << 16),
            policy_to_mealy(&New1::new(4), 1 << 16),
            policy_to_mealy(&New2::new(4), 1 << 16),
        ];
        for i in 0..machines.len() {
            for j in i + 1..machines.len() {
                assert!(
                    check_equivalence(&machines[i], &machines[j]).is_some(),
                    "policies {i} and {j} are unexpectedly trace-equivalent"
                );
            }
        }
    }

    #[test]
    fn alphabet_has_expected_shape() {
        let alpha = policy_alphabet(3);
        assert_eq!(
            alpha,
            vec![
                PolicyInput::Line(0),
                PolicyInput::Line(1),
                PolicyInput::Line(2),
                PolicyInput::Evct
            ]
        );
    }
}
