//! Least Recently Used replacement.

use crate::{assert_line_in_range, assert_valid_associativity, ReplacementPolicy};

/// Least Recently Used (LRU) replacement.
///
/// The control state is a recency permutation: each line carries an age in
/// `0..associativity`, where age `0` is the most recently used line and age
/// `associativity − 1` the least recently used one.  A hit promotes the line
/// to age `0`; a miss evicts the oldest line and inserts the new block at age
/// `0`.  The induced Mealy machine therefore has `associativity!` states
/// (Table 2: 24 states at associativity 4, 720 at 6).
///
/// # Example
///
/// ```
/// use policies::{Lru, ReplacementPolicy};
///
/// let mut p = Lru::new(2);
/// p.on_hit(0);              // line 1 becomes least recently used
/// assert_eq!(p.on_miss(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lru {
    /// `ages[i]` is the recency rank of line `i` (0 = MRU).
    ages: Vec<u8>,
}

impl Lru {
    /// Creates an LRU policy for a set with `assoc` lines.
    ///
    /// The initial state corresponds to the lines having been filled in index
    /// order: line `assoc − 1` is the most recently used.
    ///
    /// # Panics
    ///
    /// Panics if `assoc == 0` or `assoc > 255`.
    pub fn new(assoc: usize) -> Self {
        assert_valid_associativity(assoc);
        assert!(assoc <= 255, "associativity above 255 is not supported");
        Lru {
            ages: (0..assoc).rev().map(|a| a as u8).collect(),
        }
    }

    fn promote(&mut self, line: usize) {
        let old = self.ages[line];
        for a in &mut self.ages {
            if *a < old {
                *a += 1;
            }
        }
        self.ages[line] = 0;
    }
}

impl ReplacementPolicy for Lru {
    fn associativity(&self) -> usize {
        self.ages.len()
    }

    fn on_hit(&mut self, line: usize) {
        assert_line_in_range(line, self.ages.len());
        self.promote(line);
    }

    fn victim(&mut self) -> usize {
        let oldest = (self.ages.len() - 1) as u8;
        self.ages
            .iter()
            .position(|&a| a == oldest)
            .expect("ages form a permutation, so the maximum age is present")
    }

    fn on_insert(&mut self, line: usize) {
        assert_line_in_range(line, self.ages.len());
        self.promote(line);
    }

    fn reset(&mut self) {
        let assoc = self.ages.len();
        self.ages = (0..assoc).rev().map(|a| a as u8).collect();
    }

    fn state_key(&self) -> Vec<u32> {
        self.ages.iter().map(|&a| a as u32).collect()
    }

    fn name(&self) -> &'static str {
        "LRU"
    }

    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_victim_is_line_zero() {
        // Lines were filled in order 0..n, so line 0 is the least recent.
        assert_eq!(Lru::new(4).on_miss(), 0);
    }

    #[test]
    fn hits_protect_lines() {
        let mut p = Lru::new(4);
        p.on_hit(0);
        p.on_hit(1);
        // Recency order (MRU..LRU) is now 1, 0, 3, 2.
        assert_eq!(p.on_miss(), 2);
        assert_eq!(p.on_miss(), 3);
        assert_eq!(p.on_miss(), 0);
        assert_eq!(p.on_miss(), 1);
    }

    #[test]
    fn ages_remain_a_permutation() {
        let mut p = Lru::new(5);
        for i in [0, 3, 1, 4, 2, 2, 0] {
            p.on_hit(i);
            let mut ages = p.state_key();
            ages.sort_unstable();
            assert_eq!(ages, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn matches_example_2_2_behaviour() {
        // The 2-way LRU machine of Example 2.2: after touching line 0, an
        // eviction frees line 1, then line 0.
        let mut p = Lru::new(2);
        p.on_hit(0);
        assert_eq!(p.on_miss(), 1);
        assert_eq!(p.on_miss(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_lines() {
        Lru::new(4).on_hit(4);
    }
}
