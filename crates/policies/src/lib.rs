//! Executable models of cache replacement policies.
//!
//! The paper (§2.2) models a replacement policy as a deterministic Mealy
//! machine over the alphabet `{Ln(0), …, Ln(n−1), Evct}` with outputs
//! `{⊥, 0, …, n−1}`.  This crate provides:
//!
//! * the [`ReplacementPolicy`] trait — an executable policy expressed with the
//!   same building blocks the paper's synthesis templates use (promotion on a
//!   hit, victim selection, insertion, normalization);
//! * concrete implementations of every policy the paper evaluates:
//!   [`Fifo`], [`Lru`], [`Plru`] (tree-based), [`Mru`] (bit-PLRU / NRU as in
//!   the Malamy patent), [`Lip`], [`Srrip`] in its HP and FP variants,
//!   probabilistic [`Brrip`] (used by the simulated adaptive last-level
//!   cache), and the two previously undocumented Intel policies [`New1`]
//!   (Skylake / Kaby Lake L2) and [`New2`] (Skylake / Kaby Lake L3 leader
//!   sets) as synthesized in Appendix C;
//! * [`PackedPolicy`] — bit-packed fast-path twins of every deterministic
//!   policy (the whole control state in one `u64` of 4-bit lanes at
//!   associativity ≤ 8), returned transparently by [`PolicyKind::build`],
//!   with the `Vec<u8>`-based implementations above retained as the
//!   reference oracle;
//! * [`policy_to_mealy`] — the reachability construction that produces the
//!   ground-truth automaton of a policy (the state counts of Table 2);
//! * [`PolicyKind`] — a registry for constructing policies by name, used by
//!   the benchmark harness and the simulated hardware configuration.
//!
//! # Example
//!
//! ```
//! use policies::{PolicyKind, ReplacementPolicy};
//!
//! let mut lru = PolicyKind::Lru.build(4).unwrap();
//! // Fill order is 0..3; touching line 0 makes line 1 the LRU victim.
//! lru.on_hit(0);
//! assert_eq!(lru.on_miss(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alphabet;
mod eviction;
mod fifo;
mod lip;
mod lru;
mod mealy_view;
mod mru;
mod new_intel;
mod packed;
mod plru;
mod registry;
mod srrip;

pub use alphabet::{PolicyInput, PolicyOutput};
pub use eviction::KeyedPolicy;
pub use fifo::Fifo;
pub use lip::Lip;
pub use lru::Lru;
pub use mealy_view::{policy_alphabet, policy_to_mealy, PolicyMealy};
pub use mru::Mru;
pub use new_intel::{New1, New2};
pub use packed::{PackedPolicy, PACKED_MAX_ASSOC};
pub use plru::{Plru, PlruAssocError};
pub use registry::{PolicyError, PolicyKind};
pub use srrip::{Brrip, Srrip, SrripVariant};

use std::fmt;

/// An executable cache replacement policy for a single cache set.
///
/// Implementations are deterministic finite-state machines (with the sole
/// exception of [`Brrip`], which is explicitly probabilistic and only used to
/// emulate the adaptive follower sets of the simulated last-level cache).
///
/// The trait mirrors the rule structure of the paper's synthesis templates
/// (§5): a *promotion* rule applied on hits, an *eviction* rule selecting a
/// victim, and an *insertion* rule applied to the filled line, with
/// normalization folded into each step.
pub trait ReplacementPolicy: fmt::Debug + Send {
    /// Number of lines (ways) this policy instance manages.
    fn associativity(&self) -> usize;

    /// Updates the control state after a hit on `line`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `line >= self.associativity()`.
    fn on_hit(&mut self, line: usize);

    /// Selects the line to evict for the next miss and performs any control
    /// state update that victim selection itself entails (e.g. the RRPV aging
    /// loop of SRRIP).
    fn victim(&mut self) -> usize;

    /// Updates the control state after inserting a new block into `line`.
    ///
    /// This is called with the line returned by [`ReplacementPolicy::victim`]
    /// on a regular miss, and directly with the index of an invalid line when
    /// the simulated hardware fills a line after a flush.
    ///
    /// # Panics
    ///
    /// Implementations panic if `line >= self.associativity()`.
    fn on_insert(&mut self, line: usize);

    /// Resets the control state to the policy's canonical initial state.
    fn reset(&mut self);

    /// Informs the policy that `line` was invalidated (e.g. by `clflush`).
    ///
    /// Most modelled policies keep their replacement metadata untouched on an
    /// invalidation (the default), which is why Flush+Refill is not a valid
    /// reset sequence for every cache in Table 4 of the paper.  Policies that
    /// do clear per-line metadata on invalidation (the simulated last-level
    /// cache) override this.
    fn on_invalidate(&mut self, line: usize) {
        let _ = line;
    }

    /// A canonical encoding of the control state.
    ///
    /// Two policy instances of the same type and associativity with equal
    /// state keys must behave identically on all future inputs; this is used
    /// by [`policy_to_mealy`] to enumerate the reachable state space and by
    /// tests to detect unintended nondeterminism.
    fn state_key(&self) -> Vec<u32>;

    /// Human-readable policy name (e.g. `"LRU"`, `"SRRIP-HP"`).
    fn name(&self) -> &'static str;

    /// Clones the policy into a boxed trait object.
    fn clone_box(&self) -> Box<dyn ReplacementPolicy>;

    /// Handles a complete miss: selects a victim, applies the insertion rule
    /// to it, and returns the victim line.
    fn on_miss(&mut self) -> usize {
        let v = self.victim();
        self.on_insert(v);
        v
    }

    /// Applies a policy-alphabet input and returns the corresponding output
    /// (Definition 2.1): `Ln(i)` yields `⊥`, `Evct` yields the victim line.
    fn apply(&mut self, input: PolicyInput) -> PolicyOutput {
        match input {
            PolicyInput::Line(i) => {
                self.on_hit(usize::from(i));
                PolicyOutput::None
            }
            PolicyInput::Evct => PolicyOutput::evicted(self.on_miss()),
        }
    }
}

impl Clone for Box<dyn ReplacementPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

pub(crate) fn assert_line_in_range(line: usize, assoc: usize) {
    assert!(
        line < assoc,
        "line index {line} out of range for associativity {assoc}"
    );
}

pub(crate) fn assert_valid_associativity(assoc: usize) {
    assert!(assoc >= 1, "associativity must be at least 1, got {assoc}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxed_policies_are_cloneable() {
        let p: Box<dyn ReplacementPolicy> = Box::new(Lru::new(4));
        let mut q = p.clone();
        assert_eq!(q.associativity(), 4);
        q.on_hit(0);
        // The original is unaffected by mutating the clone.
        assert_eq!(p.state_key(), Lru::new(4).state_key());
    }

    #[test]
    fn apply_maps_inputs_to_outputs() {
        let mut p = Fifo::new(2);
        assert_eq!(p.apply(PolicyInput::Line(0)), PolicyOutput::None);
        assert_eq!(p.apply(PolicyInput::Evct), PolicyOutput::Evicted(0));
        assert_eq!(p.apply(PolicyInput::Evct), PolicyOutput::Evicted(1));
    }
}
