//! First-In First-Out replacement.

use crate::{assert_line_in_range, assert_valid_associativity, ReplacementPolicy};

/// First-In First-Out (FIFO) replacement.
///
/// Lines are evicted in the order they were filled; hits do not modify the
/// control state.  The control state is a single pointer to the next victim,
/// so the induced Mealy machine has exactly `associativity` states (Table 2).
///
/// # Example
///
/// ```
/// use policies::{Fifo, ReplacementPolicy};
///
/// let mut p = Fifo::new(4);
/// assert_eq!(p.on_miss(), 0);
/// p.on_hit(0); // hits do not protect the line under FIFO
/// assert_eq!(p.on_miss(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fifo {
    assoc: usize,
    next_victim: usize,
}

impl Fifo {
    /// Creates a FIFO policy for a set with `assoc` lines.
    ///
    /// # Panics
    ///
    /// Panics if `assoc == 0`.
    pub fn new(assoc: usize) -> Self {
        assert_valid_associativity(assoc);
        Fifo {
            assoc,
            next_victim: 0,
        }
    }
}

impl ReplacementPolicy for Fifo {
    fn associativity(&self) -> usize {
        self.assoc
    }

    fn on_hit(&mut self, line: usize) {
        assert_line_in_range(line, self.assoc);
        // FIFO ignores hits.
    }

    fn victim(&mut self) -> usize {
        self.next_victim
    }

    fn on_insert(&mut self, line: usize) {
        assert_line_in_range(line, self.assoc);
        // Only advancing the queue pointer when the inserted line is the
        // victim keeps fills of invalid lines (used by the hardware
        // simulator) from skipping queue positions.
        if line == self.next_victim {
            self.next_victim = (self.next_victim + 1) % self.assoc;
        }
    }

    fn reset(&mut self) {
        self.next_victim = 0;
    }

    fn state_key(&self) -> Vec<u32> {
        vec![self.next_victim as u32]
    }

    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_round_robin() {
        let mut p = Fifo::new(3);
        assert_eq!(p.on_miss(), 0);
        assert_eq!(p.on_miss(), 1);
        assert_eq!(p.on_miss(), 2);
        assert_eq!(p.on_miss(), 0);
    }

    #[test]
    fn hits_do_not_change_the_victim() {
        let mut p = Fifo::new(4);
        p.on_hit(3);
        p.on_hit(1);
        assert_eq!(p.on_miss(), 0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut p = Fifo::new(4);
        p.on_miss();
        p.on_miss();
        p.reset();
        assert_eq!(p.state_key(), Fifo::new(4).state_key());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_lines() {
        Fifo::new(2).on_hit(2);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_associativity() {
        Fifo::new(0);
    }
}
