//! MRU-bit based replacement (bit-PLRU / NRU), Malamy et al. patent.

use crate::{assert_line_in_range, assert_valid_associativity, ReplacementPolicy};

/// MRU-bit replacement (also known as bit-PLRU or Not-Recently-Used), after
/// the Malamy et al. patent cited as \[26\] in the paper.
///
/// Each line carries a single *MRU bit*.  Accessing a line sets its bit; when
/// this would make every bit 1, all other bits are cleared (the normalization
/// rule).  The victim is the left-most line whose bit is 0.  The reachable
/// control states are all bit vectors except the all-zeros and all-ones
/// vectors, so the induced machine has `2^associativity − 2` states
/// (Table 2: 14 at associativity 4, 62 at 6, 254 at 8, 1022 at 10, 4094 at 12).
///
/// # Example
///
/// ```
/// use policies::{Mru, ReplacementPolicy};
///
/// let mut p = Mru::new(4);
/// p.on_hit(0);
/// // Line 0 is protected; the victim is the first line with a clear bit.
/// assert_eq!(p.on_miss(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mru {
    bits: Vec<bool>,
}

impl Mru {
    /// Creates an MRU-bit policy for a set with `assoc` lines.
    ///
    /// The initial state marks only the last line as recently used, matching
    /// a set that was just filled in index order (the last fill saturated the
    /// bits and cleared the others).
    ///
    /// # Panics
    ///
    /// Panics if `assoc < 2` (with a single line the all-ones/all-zeros
    /// exclusion leaves no valid state).
    pub fn new(assoc: usize) -> Self {
        assert_valid_associativity(assoc);
        assert!(assoc >= 2, "MRU-bit replacement needs at least 2 lines");
        let mut bits = vec![false; assoc];
        bits[assoc - 1] = true;
        Mru { bits }
    }

    fn touch(&mut self, line: usize) {
        self.bits[line] = true;
        if self.bits.iter().all(|&b| b) {
            for (i, b) in self.bits.iter_mut().enumerate() {
                *b = i == line;
            }
        }
    }
}

impl ReplacementPolicy for Mru {
    fn associativity(&self) -> usize {
        self.bits.len()
    }

    fn on_hit(&mut self, line: usize) {
        assert_line_in_range(line, self.bits.len());
        self.touch(line);
    }

    fn victim(&mut self) -> usize {
        self.bits
            .iter()
            .position(|&b| !b)
            .expect("the all-ones state is normalized away, so a clear bit exists")
    }

    fn on_insert(&mut self, line: usize) {
        assert_line_in_range(line, self.bits.len());
        self.touch(line);
    }

    fn reset(&mut self) {
        let assoc = self.bits.len();
        self.bits.iter_mut().for_each(|b| *b = false);
        self.bits[assoc - 1] = true;
    }

    fn state_key(&self) -> Vec<u32> {
        self.bits.iter().map(|&b| b as u32).collect()
    }

    fn name(&self) -> &'static str {
        "MRU"
    }

    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_is_leftmost_clear_bit() {
        let mut p = Mru::new(4);
        p.on_hit(0);
        p.on_hit(2);
        assert_eq!(p.victim(), 1);
    }

    #[test]
    fn saturation_clears_other_bits() {
        let mut p = Mru::new(3);
        // Initial state marks only line 2; hitting line 0 then line 1 would
        // set all bits, so normalization keeps only the last accessed line.
        p.on_hit(0);
        assert_eq!(p.state_key(), vec![1, 0, 1]);
        p.on_hit(1);
        assert_eq!(p.state_key(), vec![0, 1, 0]);
        assert_eq!(p.victim(), 0);
    }

    #[test]
    fn never_reaches_all_zero_or_all_one() {
        let mut p = Mru::new(4);
        for step in 0..64 {
            if step % 3 == 0 {
                p.on_miss();
            } else {
                p.on_hit(step % 4);
            }
            let ones = p.state_key().iter().sum::<u32>();
            assert!(ones > 0 && ones < 4, "invalid state {:?}", p.state_key());
        }
    }

    #[test]
    fn misses_walk_left_to_right() {
        let mut p = Mru::new(4);
        // Initial state: only line 3 marked.
        assert_eq!(p.on_miss(), 0);
        assert_eq!(p.on_miss(), 1);
        assert_eq!(p.on_miss(), 2);
        // All bits would now saturate; line 2 stays marked after clearing.
        assert_eq!(p.on_miss(), 0);
    }
}
