//! Tree-based Pseudo-LRU replacement.

use crate::{assert_line_in_range, ReplacementPolicy};

/// Tree-based Pseudo-LRU (PLRU).
///
/// The control state is a complete binary tree with `associativity − 1`
/// internal nodes, each holding one bit that points towards the subtree that
/// should be visited next on an eviction (the "colder" half).  On an access
/// to a line, all bits on the path from the root to that line are flipped to
/// point *away* from it.  The induced Mealy machine has
/// `2^(associativity − 1)` states (Table 2: 8 at associativity 4, 128 at 8,
/// 32768 at 16).
///
/// The paper identifies this policy in all three processors' L1 caches and in
/// Haswell's L2 (Table 4).
///
/// # Example
///
/// ```
/// use policies::{Plru, ReplacementPolicy};
///
/// let mut p = Plru::new(4).unwrap();
/// p.on_hit(0);
/// p.on_hit(1);
/// // Both accesses steered the tree towards the right half.
/// assert!(p.on_miss() >= 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plru {
    assoc: usize,
    /// Heap-ordered tree bits: node 0 is the root, node `i` has children
    /// `2i + 1` and `2i + 2`.  A bit value of 0 points to the left subtree
    /// (next victim candidate), 1 points to the right subtree.
    bits: Vec<bool>,
}

/// Error returned by [`Plru::new`] when the associativity is not a power of
/// two (tree-based PLRU is only defined for powers of two, cf. footnote 5 of
/// the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlruAssocError(pub usize);

impl std::fmt::Display for PlruAssocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tree-based PLRU requires a power-of-two associativity, got {}",
            self.0
        )
    }
}

impl std::error::Error for PlruAssocError {}

impl Plru {
    /// Creates a PLRU policy for a set with `assoc` lines.
    ///
    /// # Errors
    ///
    /// Returns [`PlruAssocError`] unless `assoc` is a power of two and at
    /// least 2.
    pub fn new(assoc: usize) -> Result<Self, PlruAssocError> {
        if assoc < 2 || !assoc.is_power_of_two() {
            return Err(PlruAssocError(assoc));
        }
        Ok(Plru {
            assoc,
            bits: vec![false; assoc - 1],
        })
    }

    /// Flips the path bits so that they point away from `line`.
    fn touch(&mut self, line: usize) {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.assoc;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if line < mid {
                // The accessed line is in the left half; point to the right.
                self.bits[node] = true;
                node = 2 * node + 1;
                hi = mid;
            } else {
                // The accessed line is in the right half; point to the left.
                self.bits[node] = false;
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }
}

impl ReplacementPolicy for Plru {
    fn associativity(&self) -> usize {
        self.assoc
    }

    fn on_hit(&mut self, line: usize) {
        assert_line_in_range(line, self.assoc);
        self.touch(line);
    }

    fn victim(&mut self) -> usize {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.assoc;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.bits[node] {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }

    fn on_insert(&mut self, line: usize) {
        assert_line_in_range(line, self.assoc);
        self.touch(line);
    }

    fn reset(&mut self) {
        self.bits.iter_mut().for_each(|b| *b = false);
    }

    fn state_key(&self) -> Vec<u32> {
        self.bits.iter().map(|&b| b as u32).collect()
    }

    fn name(&self) -> &'static str {
        "PLRU"
    }

    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_power_of_two() {
        assert!(Plru::new(3).is_err());
        assert!(Plru::new(0).is_err());
        assert!(Plru::new(1).is_err());
        assert!(Plru::new(6).is_err());
        assert!(Plru::new(8).is_ok());
    }

    #[test]
    fn assoc_two_behaves_like_lru() {
        // With 2 ways, PLRU and LRU coincide.
        let mut p = Plru::new(2).unwrap();
        p.on_hit(0);
        assert_eq!(p.on_miss(), 1);
        p.on_hit(1);
        assert_eq!(p.on_miss(), 0);
    }

    #[test]
    fn victim_avoids_recently_touched_half() {
        let mut p = Plru::new(4).unwrap();
        p.on_hit(0);
        p.on_hit(1);
        assert!(p.victim() >= 2);
        p.on_hit(2);
        p.on_hit(3);
        assert!(p.victim() < 2);
    }

    #[test]
    fn accessed_line_is_never_the_immediate_victim() {
        let mut p = Plru::new(8).unwrap();
        for line in 0..8 {
            p.on_hit(line);
            assert_ne!(p.victim(), line);
        }
    }

    #[test]
    fn state_space_is_two_to_the_ways_minus_one() {
        // Exhaustively drive the policy and collect distinct state keys.
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        let mut stack = vec![Plru::new(4).unwrap()];
        seen.insert(stack[0].state_key());
        while let Some(p) = stack.pop() {
            for line in 0..4 {
                let mut q = p.clone();
                q.on_hit(line);
                if seen.insert(q.state_key()) {
                    stack.push(q);
                }
            }
            let mut q = p.clone();
            q.on_miss();
            if seen.insert(q.state_key()) {
                stack.push(q);
            }
        }
        assert_eq!(seen.len(), 8);
    }
}
