//! The two previously undocumented Intel policies uncovered by the paper.
//!
//! * **New1** — the policy of the Skylake i5-6500 and Kaby Lake i7-8550U L2
//!   caches (Table 4, 160 learned states at associativity 4).
//! * **New2** — the policy of the Skylake and Kaby Lake L3 leader sets
//!   (Table 4, 175 learned states at associativity 4 after CAT reduction).
//!
//! Both are implemented from the synthesized programs of Appendix C
//! (Figure 5): per-line ages in `0..=3`, eviction of the left-most line with
//! age 3, insertion at age 1, and a normalization step that runs *after*
//! every hit and miss (in contrast to SRRIP-HP, which only normalizes before
//! a miss — the difference the paper highlights in §8.2).
//!
//! The Figure 5 programs apply the normalization increment **once** per
//! event; the prose of §8.2 describes it as a `while` loop.  The two
//! interpretations disagree on reachable states, and only the `while`
//! interpretation reproduces the state counts reported in Table 4 (160 and
//! 175 states at associativity 4), so the `while` form is what these
//! implementations use; see `state_counts_match_table_4` in the tests, which
//! pins the counts.

use crate::{assert_line_in_range, assert_valid_associativity, ReplacementPolicy};

const MAX_AGE: u8 = 3;
const INSERT_AGE: u8 = 1;

/// How the age-3 invariant is restored after a hit or a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NormalizeStyle {
    /// Increase the ages of all lines *except* the just touched one until some
    /// line has age 3 (New1).
    AllExceptTouched,
    /// Increase the ages of all lines until some line has age 3 (New2).
    All,
}

fn normalize(ages: &mut [u8], touched: Option<usize>, style: NormalizeStyle) {
    // Restore the invariant "some line has the maximum age".  The exempted
    // line bounds the number of iterations: every other line strictly
    // increases, so at most MAX_AGE rounds are needed.
    while !ages.contains(&MAX_AGE) {
        let mut changed = false;
        for (i, a) in ages.iter_mut().enumerate() {
            let exempt = style == NormalizeStyle::AllExceptTouched && Some(i) == touched;
            if !exempt && *a < MAX_AGE {
                *a += 1;
                changed = true;
            }
        }
        if !changed {
            // Degenerate single-line configuration where the only line is
            // exempted; give up rather than loop forever.
            break;
        }
    }
}

/// The undocumented Skylake / Kaby Lake **L2** policy ("New1" in Table 4).
///
/// Synthesized description (§8.2 / Appendix C):
/// * initial control state `{3, 3, …, 3, 0}`;
/// * *promote*: set the accessed line's age to 0;
/// * *evict*: the left-most line with age 3;
/// * *insert*: set the evicted line's age to 1;
/// * *normalize* (after a hit or a miss): while no line has age 3, increase
///   the age of every line except the just accessed/evicted one.
///
/// # Example
///
/// ```
/// use policies::{New1, ReplacementPolicy};
///
/// let mut p = New1::new(4);
/// // Initially the left-most line has age 3 and is the victim.
/// assert_eq!(p.on_miss(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct New1 {
    ages: Vec<u8>,
}

impl New1 {
    /// Creates a New1 policy for a set with `assoc` lines.
    ///
    /// # Panics
    ///
    /// Panics if `assoc == 0`.
    pub fn new(assoc: usize) -> Self {
        assert_valid_associativity(assoc);
        let mut ages = vec![MAX_AGE; assoc];
        ages[assoc - 1] = 0;
        New1 { ages }
    }
}

impl ReplacementPolicy for New1 {
    fn associativity(&self) -> usize {
        self.ages.len()
    }

    fn on_hit(&mut self, line: usize) {
        assert_line_in_range(line, self.ages.len());
        self.ages[line] = 0;
        normalize(&mut self.ages, Some(line), NormalizeStyle::AllExceptTouched);
    }

    fn victim(&mut self) -> usize {
        self.ages
            .iter()
            .position(|&a| a == MAX_AGE)
            .expect("normalization maintains the existence of an age-3 line")
    }

    fn on_insert(&mut self, line: usize) {
        assert_line_in_range(line, self.ages.len());
        self.ages[line] = INSERT_AGE;
        normalize(&mut self.ages, Some(line), NormalizeStyle::AllExceptTouched);
    }

    fn reset(&mut self) {
        let assoc = self.ages.len();
        self.ages = vec![MAX_AGE; assoc];
        self.ages[assoc - 1] = 0;
    }

    fn state_key(&self) -> Vec<u32> {
        self.ages.iter().map(|&a| a as u32).collect()
    }

    fn name(&self) -> &'static str {
        "New1"
    }

    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

/// The undocumented Skylake / Kaby Lake **L3 leader-set** policy ("New2" in
/// Table 4).
///
/// Synthesized description (§8.2 / Appendix C):
/// * initial control state `{3, 3, …, 3}`;
/// * *promote*: if the accessed line has age 1 set it to 0, otherwise (if its
///   age is greater than 1) set it to 1 — an access to an age-0 line leaves
///   it untouched;
/// * *evict*: the left-most line with age 3;
/// * *insert*: set the evicted line's age to 1;
/// * *normalize* (after a hit or a miss): while no line has age 3, increase
///   the age of every line.
///
/// # Example
///
/// ```
/// use policies::{New2, ReplacementPolicy};
///
/// let mut p = New2::new(4);
/// assert_eq!(p.on_miss(), 0);
/// // The freshly inserted block needs two hits to reach age 0.
/// p.on_hit(0);
/// p.on_hit(0);
/// assert_eq!(p.state_key()[0], 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct New2 {
    ages: Vec<u8>,
}

impl New2 {
    /// Creates a New2 policy for a set with `assoc` lines.
    ///
    /// # Panics
    ///
    /// Panics if `assoc == 0`.
    pub fn new(assoc: usize) -> Self {
        assert_valid_associativity(assoc);
        New2 {
            ages: vec![MAX_AGE; assoc],
        }
    }
}

impl ReplacementPolicy for New2 {
    fn associativity(&self) -> usize {
        self.ages.len()
    }

    fn on_hit(&mut self, line: usize) {
        assert_line_in_range(line, self.ages.len());
        let age = self.ages[line];
        if age == 1 {
            self.ages[line] = 0;
        } else if age > 1 {
            self.ages[line] = 1;
        }
        normalize(&mut self.ages, None, NormalizeStyle::All);
    }

    fn victim(&mut self) -> usize {
        self.ages
            .iter()
            .position(|&a| a == MAX_AGE)
            .expect("normalization maintains the existence of an age-3 line")
    }

    fn on_insert(&mut self, line: usize) {
        assert_line_in_range(line, self.ages.len());
        self.ages[line] = INSERT_AGE;
        normalize(&mut self.ages, None, NormalizeStyle::All);
    }

    fn reset(&mut self) {
        self.ages.iter_mut().for_each(|a| *a = MAX_AGE);
    }

    fn state_key(&self) -> Vec<u32> {
        self.ages.iter().map(|&a| a as u32).collect()
    }

    fn name(&self) -> &'static str {
        "New2"
    }

    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new1_initial_state_matches_appendix_c() {
        assert_eq!(New1::new(4).state_key(), vec![3, 3, 3, 0]);
    }

    #[test]
    fn new2_initial_state_matches_appendix_c() {
        assert_eq!(New2::new(4).state_key(), vec![3, 3, 3, 3]);
    }

    #[test]
    fn new1_promotion_resets_age_to_zero() {
        let mut p = New1::new(4);
        p.on_miss(); // line 0 gets age 1
        p.on_hit(0);
        assert_eq!(p.state_key()[0], 0);
    }

    #[test]
    fn new2_promotion_is_two_step() {
        let mut p = New2::new(4);
        p.on_miss(); // line 0 inserted with age 1
        assert_eq!(p.state_key()[0], 1);
        p.on_hit(0);
        assert_eq!(p.state_key()[0], 0);
        // An access to an age-0 line leaves it at 0.
        p.on_hit(0);
        assert_eq!(p.state_key()[0], 0);
    }

    #[test]
    fn eviction_picks_leftmost_max_age() {
        let mut p = New1::new(4);
        // ages: [3, 3, 3, 0] → victim 0; after insert [1, 3, 3, 0].
        assert_eq!(p.on_miss(), 0);
        assert_eq!(p.on_miss(), 1);
        assert_eq!(p.on_miss(), 2);
    }

    #[test]
    fn normalization_keeps_an_age_three_line() {
        let mut new1 = New1::new(4);
        let mut new2 = New2::new(4);
        for step in 0..200 {
            if step % 5 == 0 {
                new1.on_miss();
                new2.on_miss();
            } else {
                new1.on_hit(step % 4);
                new2.on_hit(step % 4);
            }
            assert!(new1.state_key().contains(&3), "New1 lost its age-3 line");
            assert!(new2.state_key().contains(&3), "New2 lost its age-3 line");
        }
    }

    #[test]
    fn both_policies_differ_from_each_other() {
        // The promotion rules differ on lines with age >= 2: New1 resets the
        // age to 0, New2 only lowers it to 1.
        let mut a = New1::new(4);
        let mut b = New2::new(4);
        a.on_hit(1);
        b.on_hit(1);
        assert_eq!(a.state_key()[1], 0);
        assert_eq!(b.state_key()[1], 1);
    }
}
