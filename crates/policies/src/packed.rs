//! Bit-packed policy simulators: every deterministic policy's control state
//! in a single `u64`.
//!
//! At associativity ≤ 8 every control state this crate models fits in one
//! machine word of 4-bit lanes (lane `i` = bits `4i..4i+4`):
//!
//! * LRU / LIP — one recency age (`0..assoc`) per lane;
//! * SRRIP-HP / SRRIP-FP — one 2-bit RRPV per lane;
//! * New1 / New2 — one age in `0..=3` per lane;
//! * MRU — one MRU bit per line (plain bit `i`);
//! * PLRU — `assoc − 1` heap-ordered tree bits (plain bit `i` = node `i`);
//! * FIFO — the queue pointer as a bare integer.
//!
//! `step` then becomes shift/mask/compare lane arithmetic instead of
//! `Vec<u8>` loops: "increment every age below the promoted one" is a
//! carry-less SWAR add over a comparison mask, "left-most line with the
//! maximum age" is an XOR, a zero-lane detect, and a `trailing_zeros`.
//! Because lane values never exceed 7 at associativity ≤ 8, bit 3 of each
//! lane is free to serve as the borrow guard for the comparison masks.
//!
//! [`PackedPolicy`] implements [`ReplacementPolicy`] and renders byte-for-byte
//! identical [`state_key`](ReplacementPolicy::state_key) vectors, victims, and
//! names as the `Vec<u8>`-based implementations, which remain in the crate as
//! the reference oracle (see `tests/proptest_packed.rs` for the differential
//! suite). [`PolicyKind::build`](crate::PolicyKind::build) returns the packed
//! form transparently whenever [`PackedPolicy::supports`] holds.

use crate::registry::{PolicyError, PolicyKind};
use crate::{assert_line_in_range, ReplacementPolicy};

/// Largest associativity whose control states fit the packed layout.
///
/// Ages and recency ranks reach `assoc − 1`, so 8 ways keep every lane value
/// in `0..=7` and leave bit 3 of each 4-bit lane free as the SWAR guard bit.
pub const PACKED_MAX_ASSOC: usize = 8;

/// Bit 0 of each 4-bit lane.
const LANE_LSB: u64 = 0x1111_1111_1111_1111;
/// Number of state bits per lane.
const LANE_BITS: u32 = 4;
/// Value mask of a single lane.
const LANE_MASK: u64 = 0xF;
/// Maximum RRPV / age for the SRRIP and New* families (2-bit, "4 ages").
const MAX_AGE: u64 = 3;
/// RRPV / age assigned to freshly inserted blocks.
const INSERT_AGE: u64 = 1;
/// RRPV assigned by SRRIP insertion ("long re-reference interval").
const SRRIP_INSERT_RRPV: u64 = 2;

/// A deterministic replacement policy whose whole control state lives in one
/// `u64` of 4-bit lanes (or plain bits, for the bit-vector policies).
///
/// Behaviourally identical to the corresponding `Vec<u8>`-based policy of
/// this crate — same victims, same hit updates, same
/// [`state_key`](ReplacementPolicy::state_key) renderings — just faster to
/// step, clone, and compare.
///
/// # Example
///
/// ```
/// use policies::{PackedPolicy, PolicyKind, ReplacementPolicy};
///
/// let mut packed = PackedPolicy::new(PolicyKind::Lru, 4).unwrap();
/// let mut reference = policies::Lru::new(4);
/// packed.on_hit(0);
/// reference.on_hit(0);
/// assert_eq!(packed.on_miss(), reference.on_miss());
/// assert_eq!(packed.state_key(), reference.state_key());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedPolicy {
    kind: PolicyKind,
    assoc: u32,
    /// Bit 0 of each used lane; doubles as the "+1 to every lane" addend.
    lanes_lsb: u64,
    state: u64,
}

impl PackedPolicy {
    /// Whether `kind` at `assoc` has a packed representation: deterministic,
    /// an associativity the policy itself supports, and at most
    /// [`PACKED_MAX_ASSOC`] ways.
    pub fn supports(kind: PolicyKind, assoc: usize) -> bool {
        kind.is_deterministic() && kind.supports_associativity(assoc) && assoc <= PACKED_MAX_ASSOC
    }

    /// Creates a packed policy in its canonical initial state.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::UnsupportedAssociativity`] if
    /// [`PackedPolicy::supports`] does not hold (probabilistic BRRIP has no
    /// packed form; it is rejected the same way).
    pub fn new(kind: PolicyKind, assoc: usize) -> Result<Self, PolicyError> {
        if !Self::supports(kind, assoc) {
            return Err(PolicyError::UnsupportedAssociativity { kind, assoc });
        }
        let mut p = PackedPolicy {
            kind,
            assoc: assoc as u32,
            lanes_lsb: LANE_LSB & ((1u64 << (LANE_BITS * assoc as u32)) - 1),
            state: 0,
        };
        p.reset();
        Ok(p)
    }

    /// The raw packed state word (for diagnostics and tests).
    pub fn state_word(&self) -> u64 {
        self.state
    }

    #[inline]
    fn lane(&self, i: usize) -> u64 {
        (self.state >> (LANE_BITS * i as u32)) & LANE_MASK
    }

    #[inline]
    fn set_lane(&mut self, i: usize, v: u64) {
        let shift = LANE_BITS * i as u32;
        self.state = (self.state & !(LANE_MASK << shift)) | (v << shift);
    }

    /// Guard-bit positions (bit 3) of every used lane.
    #[inline]
    fn guards(&self) -> u64 {
        self.lanes_lsb << 3
    }

    /// Guard-bit mask of used lanes whose value is strictly below `v`.
    ///
    /// Setting the guard bit makes every minuend lane ≥ 8 > `v`, so the
    /// subtraction never borrows across a lane boundary; a cleared guard bit
    /// in the difference therefore means exactly "this lane < v".
    #[inline]
    fn lanes_below(&self, v: u64) -> u64 {
        let diff = (self.state | self.guards()) - v * self.lanes_lsb;
        !diff & self.guards()
    }

    /// Guard-bit mask of used lanes whose value is strictly above `v`.
    #[inline]
    fn lanes_above(&self, v: u64) -> u64 {
        let diff = ((v * self.lanes_lsb) | self.guards()) - self.state;
        !diff & self.guards()
    }

    /// Index of the left-most used lane equal to `v`, if any.
    ///
    /// XOR makes matching lanes zero; the classic zero-lane detect
    /// `(x − 1̄) & !x & guards` then flags the least significant zero lane
    /// exactly (borrows only corrupt lanes *above* the first match, and a
    /// word with no zero lane produces no borrows and no false flags).
    #[inline]
    fn leftmost_eq(&self, v: u64) -> Option<usize> {
        let x = self.state ^ (v * self.lanes_lsb);
        let flagged = x.wrapping_sub(self.lanes_lsb) & !x & self.guards();
        if flagged == 0 {
            None
        } else {
            Some((flagged.trailing_zeros() / LANE_BITS) as usize)
        }
    }

    /// LRU promotion: age every line younger than `line`, make `line` MRU.
    #[inline]
    fn lru_promote(&mut self, line: usize) {
        let old = self.lane(line);
        let below = self.lanes_below(old);
        self.state += below >> 3;
        self.set_lane(line, 0);
    }

    /// Left-most lane holding the maximum recency age (the LRU line).
    #[inline]
    fn lru_victim(&self) -> usize {
        self.leftmost_eq(u64::from(self.assoc) - 1)
            .expect("ages form a permutation, so the maximum age is present")
    }

    /// MRU-bit touch with saturation normalization.
    #[inline]
    fn mru_touch(&mut self, line: usize) {
        self.state |= 1 << line;
        let full = (1u64 << self.assoc) - 1;
        if self.state == full {
            self.state = 1 << line;
        }
    }

    /// PLRU path update: flip the root-to-leaf bits away from `line`.
    #[inline]
    fn plru_touch(&mut self, line: usize) {
        let mut node = 0u32;
        let mut lo = 0usize;
        let mut hi = self.assoc as usize;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if line < mid {
                self.state |= 1 << node;
                node = 2 * node + 1;
                hi = mid;
            } else {
                self.state &= !(1 << node);
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }

    /// PLRU victim: follow the tree bits to the cold leaf.
    #[inline]
    fn plru_victim(&self) -> usize {
        let mut node = 0u32;
        let mut lo = 0usize;
        let mut hi = self.assoc as usize;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if (self.state >> node) & 1 == 1 {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }

    /// SRRIP victim selection: age all lines until one reaches RRPV 3, then
    /// take the left-most such line.  Inside the loop every lane is below the
    /// maximum, so the whole-word add never overflows a lane.
    #[inline]
    fn srrip_victim(&mut self) -> usize {
        loop {
            if let Some(i) = self.leftmost_eq(MAX_AGE) {
                return i;
            }
            self.state += self.lanes_lsb;
        }
    }

    /// New1/New2 normalization: age lines (minus an exempt one, for New1)
    /// until some line has the maximum age again.
    #[inline]
    fn normalize(&mut self, exempt: Option<usize>) {
        let addend = match exempt {
            Some(line) => self.lanes_lsb & !(LANE_MASK << (LANE_BITS * line as u32)),
            None => self.lanes_lsb,
        };
        loop {
            if self.leftmost_eq(MAX_AGE).is_some() {
                return;
            }
            if addend == 0 {
                // Degenerate single-line configuration where the only line is
                // exempted; give up rather than loop forever.
                return;
            }
            self.state += addend;
        }
    }

    /// Left-most lane at the maximum age (the SRRIP / New* eviction rule,
    /// without the aging loop).
    #[inline]
    fn aged_victim(&self) -> usize {
        self.leftmost_eq(MAX_AGE)
            .expect("normalization maintains the existence of an age-3 line")
    }
}

impl ReplacementPolicy for PackedPolicy {
    fn associativity(&self) -> usize {
        self.assoc as usize
    }

    fn on_hit(&mut self, line: usize) {
        assert_line_in_range(line, self.assoc as usize);
        match self.kind {
            PolicyKind::Fifo => {}
            PolicyKind::Lru | PolicyKind::Lip => self.lru_promote(line),
            PolicyKind::Plru => self.plru_touch(line),
            PolicyKind::Mru => self.mru_touch(line),
            PolicyKind::SrripHp => self.set_lane(line, 0),
            PolicyKind::SrripFp => {
                let v = self.lane(line);
                self.set_lane(line, v.saturating_sub(1));
            }
            PolicyKind::New1 => {
                self.set_lane(line, 0);
                self.normalize(Some(line));
            }
            PolicyKind::New2 => {
                let v = self.lane(line);
                if v == 1 {
                    self.set_lane(line, 0);
                } else if v > 1 {
                    self.set_lane(line, 1);
                }
                self.normalize(None);
            }
            PolicyKind::Brrip => unreachable!("BRRIP has no packed form"),
        }
    }

    fn victim(&mut self) -> usize {
        match self.kind {
            PolicyKind::Fifo => self.state as usize,
            PolicyKind::Lru | PolicyKind::Lip => self.lru_victim(),
            PolicyKind::Plru => self.plru_victim(),
            PolicyKind::Mru => {
                let clear = !self.state & ((1u64 << self.assoc) - 1);
                debug_assert!(clear != 0, "the all-ones state is normalized away");
                clear.trailing_zeros() as usize
            }
            PolicyKind::SrripHp | PolicyKind::SrripFp => self.srrip_victim(),
            PolicyKind::New1 | PolicyKind::New2 => self.aged_victim(),
            PolicyKind::Brrip => unreachable!("BRRIP has no packed form"),
        }
    }

    fn on_insert(&mut self, line: usize) {
        assert_line_in_range(line, self.assoc as usize);
        match self.kind {
            PolicyKind::Fifo => {
                if line == self.state as usize {
                    self.state = (self.state + 1) % u64::from(self.assoc);
                }
            }
            PolicyKind::Lru => self.lru_promote(line),
            PolicyKind::Lip => {
                // Insertion in the LRU position: demote `line` to the oldest
                // age, closing the rank gap it leaves behind.
                let old = self.lane(line);
                let above = self.lanes_above(old);
                self.state -= above >> 3;
                self.set_lane(line, u64::from(self.assoc) - 1);
            }
            PolicyKind::Plru => self.plru_touch(line),
            PolicyKind::Mru => self.mru_touch(line),
            PolicyKind::SrripHp | PolicyKind::SrripFp => self.set_lane(line, SRRIP_INSERT_RRPV),
            PolicyKind::New1 => {
                self.set_lane(line, INSERT_AGE);
                self.normalize(Some(line));
            }
            PolicyKind::New2 => {
                self.set_lane(line, INSERT_AGE);
                self.normalize(None);
            }
            PolicyKind::Brrip => unreachable!("BRRIP has no packed form"),
        }
    }

    fn reset(&mut self) {
        let assoc = self.assoc as usize;
        self.state = match self.kind {
            PolicyKind::Fifo => 0,
            PolicyKind::Lru | PolicyKind::Lip => {
                // Filled in index order: line i carries age assoc − 1 − i.
                let mut state = 0u64;
                for i in 0..assoc {
                    state |= ((assoc - 1 - i) as u64) << (LANE_BITS * i as u32);
                }
                state
            }
            PolicyKind::Plru => 0,
            PolicyKind::Mru => 1 << (assoc - 1),
            PolicyKind::SrripHp | PolicyKind::SrripFp => MAX_AGE * self.lanes_lsb,
            PolicyKind::New1 => {
                let mut p = MAX_AGE * self.lanes_lsb;
                p &= !(LANE_MASK << (LANE_BITS * (assoc as u32 - 1)));
                p
            }
            PolicyKind::New2 => MAX_AGE * self.lanes_lsb,
            PolicyKind::Brrip => unreachable!("BRRIP has no packed form"),
        };
    }

    fn state_key(&self) -> Vec<u32> {
        let assoc = self.assoc as usize;
        match self.kind {
            PolicyKind::Fifo => vec![self.state as u32],
            PolicyKind::Lru
            | PolicyKind::Lip
            | PolicyKind::SrripHp
            | PolicyKind::SrripFp
            | PolicyKind::New1
            | PolicyKind::New2 => (0..assoc).map(|i| self.lane(i) as u32).collect(),
            PolicyKind::Plru => (0..assoc - 1)
                .map(|i| (self.state >> i) as u32 & 1)
                .collect(),
            PolicyKind::Mru => (0..assoc).map(|i| (self.state >> i) as u32 & 1).collect(),
            PolicyKind::Brrip => unreachable!("BRRIP has no packed form"),
        }
    }

    fn name(&self) -> &'static str {
        self.kind.name()
    }

    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolicyInput;

    fn pair(kind: PolicyKind, assoc: usize) -> (PackedPolicy, Box<dyn ReplacementPolicy>) {
        (
            PackedPolicy::new(kind, assoc).unwrap(),
            kind.build_reference(assoc).unwrap(),
        )
    }

    #[test]
    fn initial_states_match_the_reference() {
        for kind in PolicyKind::ALL_DETERMINISTIC {
            for assoc in 1..=PACKED_MAX_ASSOC {
                if !PackedPolicy::supports(kind, assoc) {
                    continue;
                }
                let (packed, reference) = pair(kind, assoc);
                assert_eq!(
                    packed.state_key(),
                    reference.state_key(),
                    "{kind} at assoc {assoc}"
                );
                assert_eq!(packed.name(), reference.name());
                assert_eq!(packed.associativity(), reference.associativity());
            }
        }
    }

    #[test]
    fn deterministic_walk_matches_the_reference() {
        // A fixed pseudo-random walk over the full policy alphabet; the
        // exhaustive randomized version lives in tests/proptest_packed.rs.
        for kind in PolicyKind::ALL_DETERMINISTIC {
            for assoc in 2..=PACKED_MAX_ASSOC {
                if !PackedPolicy::supports(kind, assoc) {
                    continue;
                }
                let (mut packed, mut reference) = pair(kind, assoc);
                let mut x = 0x2545_f491_4f6c_dd1du64;
                for step in 0..400 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let input = if x.is_multiple_of(3) {
                        PolicyInput::Evct
                    } else {
                        PolicyInput::line((x >> 8) as usize % assoc)
                    };
                    assert_eq!(
                        packed.apply(input),
                        reference.apply(input),
                        "{kind}@{assoc} diverged on step {step} ({input:?})"
                    );
                    assert_eq!(
                        packed.state_key(),
                        reference.state_key(),
                        "{kind}@{assoc} state keys diverged on step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn reset_restores_the_initial_state() {
        for kind in PolicyKind::ALL_DETERMINISTIC {
            let mut p = PackedPolicy::new(kind, 4).unwrap();
            let initial = p.state_key();
            p.on_miss();
            p.on_miss();
            p.reset();
            assert_eq!(p.state_key(), initial, "{kind}");
        }
    }

    #[test]
    fn rejects_unpackable_configurations() {
        assert!(PackedPolicy::new(PolicyKind::Brrip, 4).is_err());
        assert!(PackedPolicy::new(PolicyKind::Lru, 9).is_err());
        assert!(PackedPolicy::new(PolicyKind::Plru, 6).is_err());
        assert!(PackedPolicy::new(PolicyKind::Mru, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_lines() {
        PackedPolicy::new(PolicyKind::Lru, 4).unwrap().on_hit(4);
    }
}
