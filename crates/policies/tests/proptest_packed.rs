//! Differential property suite: [`PackedPolicy`] vs the `Vec<u8>`-based
//! reference implementations.
//!
//! The packed simulators are the hot path of every learning campaign, so
//! their contract is strict byte-identity with the reference oracle: same
//! victims, same hit updates, same `state_key` renderings, for every
//! deterministic [`PolicyKind`] × associativity 2–8 × random access
//! sequences × construction seeds.  Any divergence here would silently
//! corrupt the pinned Table 2 state counts downstream.

use policies::{PackedPolicy, PolicyInput, PolicyKind, ReplacementPolicy, PACKED_MAX_ASSOC};
use proptest::prelude::*;

/// All deterministic policies with a packed form at the given associativity.
fn packable_kinds(assoc: usize) -> Vec<PolicyKind> {
    PolicyKind::ALL_DETERMINISTIC
        .into_iter()
        .filter(|&k| PackedPolicy::supports(k, assoc))
        .collect()
}

/// Strategy producing a packable kind, an associativity in 2..=8, a random
/// word over the full policy alphabet, and a construction seed.
fn packed_case() -> impl Strategy<Value = (PolicyKind, usize, Vec<PolicyInput>, u64)> {
    (2usize..=PACKED_MAX_ASSOC)
        .prop_flat_map(|assoc| {
            (
                proptest::sample::select(packable_kinds(assoc)),
                Just(assoc),
                proptest::collection::vec(0usize..=assoc, 0..120),
                0u64..u64::MAX,
            )
        })
        .prop_map(|(kind, assoc, raw, seed)| {
            let word = raw
                .into_iter()
                .map(|i| {
                    if i == assoc {
                        PolicyInput::Evct
                    } else {
                        PolicyInput::line(i)
                    }
                })
                .collect();
            (kind, assoc, word, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The headline property: a packed policy and its reference twin walk any
    /// input word in lock-step — identical outputs (victims included) and
    /// identical state renderings after every single step.
    #[test]
    fn packed_walks_in_lock_step_with_the_reference(
        (kind, assoc, word, seed) in packed_case()
    ) {
        let mut packed = PackedPolicy::new(kind, assoc).unwrap();
        // Seeds only matter to probabilistic policies (which have no packed
        // form), but the transparent `build_seeded` path must stay
        // seed-insensitive for deterministic kinds — so the reference twin is
        // built through the seeded constructor on purpose.
        let mut reference = kind.build_reference_seeded(assoc, seed).unwrap();
        prop_assert_eq!(packed.state_key(), reference.state_key());
        for (step, &input) in word.iter().enumerate() {
            let p = packed.apply(input);
            let r = reference.apply(input);
            prop_assert_eq!(
                p, r,
                "{}@{}: outputs diverged on step {} ({:?})", kind, assoc, step, input
            );
            prop_assert_eq!(
                packed.state_key(), reference.state_key(),
                "{}@{}: state keys diverged on step {} ({:?})", kind, assoc, step, input
            );
        }
    }

    /// The transparent registry path (`build_seeded`, which prefers the
    /// packed form) equals the explicit reference build on the same walk —
    /// whatever the seed.
    #[test]
    fn transparent_builds_equal_reference_builds(
        (kind, assoc, word, seed) in packed_case()
    ) {
        let mut transparent = kind.build_seeded(assoc, seed).unwrap();
        let mut reference = kind.build_reference_seeded(assoc, seed).unwrap();
        for &input in &word {
            prop_assert_eq!(transparent.apply(input), reference.apply(input));
        }
        prop_assert_eq!(transparent.state_key(), reference.state_key());
    }

    /// Victim selection never mutates observable state differently: probing
    /// `victim()` mid-walk (without inserting) leaves packed and reference in
    /// agreeing states with agreeing victims.
    #[test]
    fn victim_probes_agree_mid_walk((kind, assoc, word, _) in packed_case()) {
        let mut packed = PackedPolicy::new(kind, assoc).unwrap();
        let mut reference = kind.build_reference(assoc).unwrap();
        for &input in &word {
            packed.apply(input);
            reference.apply(input);
            prop_assert_eq!(packed.victim(), reference.victim());
            prop_assert_eq!(packed.state_key(), reference.state_key());
        }
    }

    /// `reset` returns both twins to the same canonical initial state from
    /// any reachable state.
    #[test]
    fn reset_agrees_from_any_reachable_state((kind, assoc, word, _) in packed_case()) {
        let mut packed = PackedPolicy::new(kind, assoc).unwrap();
        let mut reference = kind.build_reference(assoc).unwrap();
        for &input in &word {
            packed.apply(input);
            reference.apply(input);
        }
        packed.reset();
        reference.reset();
        prop_assert_eq!(packed.state_key(), reference.state_key());
    }

    /// Cloning a packed policy mid-walk preserves the exact control state:
    /// the clone and the original (and the reference) stay in lock-step on a
    /// continuation word.
    #[test]
    fn clones_preserve_mid_walk_state(
        (kind, assoc, word, _) in packed_case(),
        (_, _, continuation, _) in packed_case(),
    ) {
        let assoc_cap = assoc;
        let mut packed = PackedPolicy::new(kind, assoc).unwrap();
        let mut reference = kind.build_reference(assoc).unwrap();
        for &input in &word {
            packed.apply(input);
            reference.apply(input);
        }
        let mut cloned = packed.clone_box();
        for &input in &continuation {
            // The continuation was drawn for a possibly different
            // associativity; clamp line indices into range.
            let input = match input {
                PolicyInput::Line(i) => PolicyInput::line(usize::from(i) % assoc_cap),
                PolicyInput::Evct => PolicyInput::Evct,
            };
            let c = cloned.apply(input);
            let r = reference.apply(input);
            prop_assert_eq!(c, r, "{}@{}: clone diverged", kind, assoc);
        }
        prop_assert_eq!(cloned.state_key(), reference.state_key());
    }
}
