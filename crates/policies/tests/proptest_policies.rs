//! Property-based tests for the replacement-policy implementations.

use policies::{PolicyInput, PolicyKind};
use proptest::prelude::*;

/// All deterministic policies that support the given associativity.
fn kinds_for(assoc: usize) -> Vec<PolicyKind> {
    PolicyKind::ALL_DETERMINISTIC
        .into_iter()
        .filter(|k| k.supports_associativity(assoc))
        .collect()
}

/// Strategy producing a policy kind, an associativity, and a random input
/// word over the policy alphabet.
fn policy_and_word() -> impl Strategy<Value = (PolicyKind, usize, Vec<PolicyInput>)> {
    (2usize..=8)
        .prop_flat_map(|assoc| {
            let kinds = kinds_for(assoc);
            (
                proptest::sample::select(kinds),
                Just(assoc),
                proptest::collection::vec(0usize..=assoc, 0..60),
            )
        })
        .prop_map(|(kind, assoc, raw)| {
            let word = raw
                .into_iter()
                .map(|i| {
                    if i == assoc {
                        PolicyInput::Evct
                    } else {
                        PolicyInput::line(i)
                    }
                })
                .collect();
            (kind, assoc, word)
        })
}

proptest! {
    /// Victims are always legal line indices.
    #[test]
    fn victims_are_in_range((kind, assoc, word) in policy_and_word()) {
        let mut policy = kind.build(assoc).unwrap();
        for input in &word {
            match input {
                PolicyInput::Line(i) => policy.on_hit(usize::from(*i)),
                PolicyInput::Evct => {
                    let victim = policy.on_miss();
                    prop_assert!(victim < assoc, "victim {victim} out of range");
                }
            }
        }
    }

    /// Policies are deterministic: replaying the same word from a fresh
    /// instance gives the same state key and the same outputs.
    #[test]
    fn policies_are_deterministic((kind, assoc, word) in policy_and_word()) {
        let run = || {
            let mut policy = kind.build(assoc).unwrap();
            let mut victims = Vec::new();
            for input in &word {
                match input {
                    PolicyInput::Line(i) => policy.on_hit(usize::from(*i)),
                    PolicyInput::Evct => victims.push(policy.on_miss()),
                }
            }
            (victims, policy.state_key())
        };
        prop_assert_eq!(run(), run());
    }

    /// `reset` really restores the initial control state.
    #[test]
    fn reset_restores_the_initial_state((kind, assoc, word) in policy_and_word()) {
        let mut policy = kind.build(assoc).unwrap();
        let initial = policy.state_key();
        for input in &word {
            match input {
                PolicyInput::Line(i) => policy.on_hit(usize::from(*i)),
                PolicyInput::Evct => {
                    policy.on_miss();
                }
            }
        }
        policy.reset();
        prop_assert_eq!(policy.state_key(), initial);
    }

    /// `clone_box` snapshots the control state: driving the clone does not
    /// affect the original.
    #[test]
    fn clones_are_independent((kind, assoc, word) in policy_and_word()) {
        let mut policy = kind.build(assoc).unwrap();
        for input in word.iter().take(10) {
            match input {
                PolicyInput::Line(i) => policy.on_hit(usize::from(*i)),
                PolicyInput::Evct => {
                    policy.on_miss();
                }
            }
        }
        let snapshot = policy.state_key();
        let mut clone = policy.clone_box();
        clone.on_miss();
        clone.on_hit(0);
        prop_assert_eq!(policy.state_key(), snapshot);
    }

    /// The LRU stack property: under LRU, the blocks of the last
    /// `associativity` *distinct* accessed lines are never the victim of the
    /// next eviction if fewer than associativity-many distinct lines were
    /// touched since.
    #[test]
    fn lru_never_evicts_the_most_recently_used_line(
        assoc in 2usize..=8,
        touches in proptest::collection::vec(0usize..8, 1..20),
    ) {
        let mut policy = PolicyKind::Lru.build(assoc).unwrap();
        let mut last = None;
        for &line in touches.iter().filter(|&&l| l < assoc) {
            policy.on_hit(line);
            last = Some(line);
        }
        if let Some(last) = last {
            prop_assert_ne!(policy.victim(), last);
        }
    }
}
