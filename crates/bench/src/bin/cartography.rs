//! Whole-cache policy cartography: map every sampled set of the simulated
//! adaptive LLC and check the result against the planted ground truth.
//!
//! The campaign (Appendix B + §5, end to end) classifies each set with the
//! thrashing experiment, learns + identifies the fixed policy of each leader
//! group through the shared query store, and collects flip-probe evidence
//! for every follower.  The binary then compares the map against the roles
//! the simulator actually planted and **exits non-zero on any mislabeled
//! set** — this is the CI gate for the cartography pipeline.
//!
//! Usage:
//!   cartography [--cpu skylake|kabylake|haswell] [--sets N] [--slice N]
//!               [--cat WAYS] [--seed N] [--probe-rounds N]
//!               [--learn-budget SECS] [--json PATH]

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use automata::minimize;
use bench::{merge_report, Args, TextTable};
use cache::{DuelingRole, LevelId};
use cachequery::{LeaderClass, QueryStore};
use hardware::{CpuModel, SimulatedCpu};
use polca::{map_cache, GroupOutcome, MapConfig, SetVerdict};
use policies::{policy_to_mealy, PolicyKind};
use server::Json;

fn parse_cpu(name: Option<&str>) -> CpuModel {
    match name.map(str::to_ascii_lowercase).as_deref() {
        Some("haswell") => CpuModel::HaswellI7_4790,
        Some("kabylake") | Some("kaby-lake") => CpuModel::KabyLakeI7_8550U,
        _ => CpuModel::SkylakeI5_6500,
    }
}

fn main() -> ExitCode {
    let args = Args::from_env();
    let model = parse_cpu(args.value_of("cpu"));
    let sample = args.value_or("sets", 48usize);
    let slice = args.value_or("slice", 0usize);
    // Default to CAT 2: the planted New2 policy at 2 ways is a 7-state
    // machine that learns in well under a second, while 4 ways is a
    // 175-state machine whose campaign takes tens of minutes (the Table 4
    // regime, with its 30-minute budget).  The gate must stay CI-honest.
    let cat = args.value_or("cat", 2usize);
    let seed = args.value_or("seed", 99u64);
    let probe_rounds = args.value_or("probe-rounds", 3usize);
    let learn_budget = args.value_or("learn-budget", 600u64);
    let json_path = args
        .value_of("json")
        .unwrap_or("BENCH_cartography.json")
        .to_string();

    println!("Whole-cache policy cartography on the simulated {model} L3");
    println!("({sample} sets of slice {slice}, CAT {cat} ways, seed {seed})");
    println!();

    let supports_cat = model.spec().supports_cat;
    let mut config = MapConfig::new(model, seed, (0..sample).collect());
    config.slice = slice;
    config.cat_ways = if supports_cat { Some(cat) } else { None };
    config.probe_rounds = probe_rounds;
    // Bound the per-group campaigns so a surprise (say, an unplanted policy
    // with a huge automaton) fails the gate instead of hanging it.
    config.setup.max_states = 4096;
    config.setup.time_budget = Some(Duration::from_secs(learn_budget));
    // One worker keeps the alternate-group campaign deterministic: the
    // planted thrash-resistant policy draws from a per-set RNG, and a fixed
    // query order pins which draws each query sees.
    config.setup.workers = 1;
    if !supports_cat {
        println!("note: {model} does not support CAT; learning at full associativity");
    }

    let started = Instant::now();
    let store = Arc::new(QueryStore::new());
    let map = map_cache(&config, Arc::clone(&store)).expect("the campaign runs");
    let elapsed = started.elapsed();

    // Ground truth straight from the simulator's dueling controller.
    let truth_cpu = SimulatedCpu::new(model, seed);
    let sets_per_slice = model
        .spec()
        .level(LevelId::L3)
        .expect("the models have an L3")
        .geometry
        .sets_per_slice;
    let assoc = config.cat_ways.unwrap_or(
        model
            .spec()
            .level(LevelId::L3)
            .expect("the models have an L3")
            .geometry
            .associativity,
    );
    // The planted primary-leader policy is New2; its minimized machine is
    // the pin the learned automaton must hit exactly.
    let expected_policy = PolicyKind::New2;
    let expected_states = minimize(&policy_to_mealy(
        expected_policy.build(assoc).expect("New2 builds").as_ref(),
        1 << 20,
    ))
    .num_states();

    let mut table = TextTable::new(&["Set", "Class", "Verdict", "Ground truth", "OK"]);
    let mut mislabeled = 0usize;
    let mut counts = (0usize, 0usize, 0usize); // primary, alternate, follower
    for entry in &map.sets {
        let truth = truth_cpu.l3_role(entry.slice * sets_per_slice + entry.set);
        let (ok, verdict_text) = match (&entry.verdict, truth) {
            (SetVerdict::Fixed { policy, states }, DuelingRole::LeaderPrimary) => {
                counts.0 += 1;
                let ok = entry.class == LeaderClass::ThrashVulnerable
                    && policy.as_deref() == Some(&expected_policy.to_string() as &str)
                    && *states == expected_states as u64;
                (
                    ok,
                    format!(
                        "fixed {} ({} states)",
                        policy.as_deref().unwrap_or("?"),
                        states
                    ),
                )
            }
            (
                SetVerdict::FixedNonDeterministic {
                    disagreement_permille,
                },
                DuelingRole::LeaderAlternate,
            ) => {
                counts.1 += 1;
                // The planted alternate policy (BRRIP-style bimodal insertion)
                // is genuinely randomized; when a vote fails to settle, the
                // correct verdict is a fixed but statistically
                // non-deterministic policy, with evidence.
                let ok = entry.class == LeaderClass::ThrashResistant && *disagreement_permille > 0;
                (
                    ok,
                    format!("fixed, non-deterministic ({disagreement_permille}\u{2030})"),
                )
            }
            (SetVerdict::Fixed { policy, states }, DuelingRole::LeaderAlternate) => {
                counts.1 += 1;
                // The bimodal insertion fires too rarely (1/32 per fill) for
                // every vote to stay unsettled, so the campaign may instead
                // learn the policy's modal *skeleton* — which is still a
                // correct label as long as it matches no deterministic
                // library policy (the primary group, by contrast, must
                // identify exactly).
                let ok = entry.class == LeaderClass::ThrashResistant && policy.is_none();
                (ok, format!("fixed non-library skeleton ({states} states)"))
            }
            (
                SetVerdict::AdaptiveFollower {
                    disagreement_permille,
                },
                DuelingRole::Follower,
            ) => {
                counts.2 += 1;
                let ok = entry.class == LeaderClass::Adaptive && *disagreement_permille > 0;
                (
                    ok,
                    format!("adaptive follower ({disagreement_permille}\u{2030} flip)"),
                )
            }
            (verdict, _) => (false, format!("{verdict:?}")),
        };
        if !ok {
            mislabeled += 1;
        }
        let truth_text = match truth {
            DuelingRole::LeaderPrimary => "leader (primary)",
            DuelingRole::LeaderAlternate => "leader (alternate)",
            DuelingRole::Follower => "follower",
        };
        table.add_row(&[
            entry.set.to_string(),
            format!("{:?}", entry.class),
            verdict_text,
            truth_text.to_string(),
            if ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", table.render());

    for group in &map.groups {
        let outcome = match &group.outcome {
            GroupOutcome::Learned {
                states, identified, ..
            } => format!(
                "learned {} states, identified as {}",
                states,
                identified.as_deref().unwrap_or("(no library match)")
            ),
            GroupOutcome::NotDeterministic { evidence } => {
                format!("aborted as non-deterministic: {evidence}")
            }
            GroupOutcome::Failed { error } => format!("failed: {error}"),
        };
        println!(
            "group {:?}: {} member(s), representative set {}, {}",
            group.class,
            group.members.len(),
            group.representative.0,
            outcome
        );
        println!("  store namespace: {}", group.namespace);
    }
    println!();
    println!(
        "{} primary leader(s), {} alternate leader(s), {} follower(s); \
         {mislabeled} mislabeled; {:.1} s",
        counts.0,
        counts.1,
        counts.2,
        elapsed.as_secs_f64()
    );

    let report = Json::Obj(vec![
        ("model".to_string(), Json::Str(map.model.clone())),
        ("sets".to_string(), Json::Num(map.sets.len() as f64)),
        ("primary_leaders".to_string(), Json::Num(counts.0 as f64)),
        ("alternate_leaders".to_string(), Json::Num(counts.1 as f64)),
        ("followers".to_string(), Json::Num(counts.2 as f64)),
        ("mislabeled".to_string(), Json::Num(mislabeled as f64)),
        (
            "expected_primary_policy".to_string(),
            Json::Str(expected_policy.to_string()),
        ),
        (
            "expected_primary_states".to_string(),
            Json::Num(expected_states as f64),
        ),
        (
            "store_entries".to_string(),
            Json::Num(store.entries() as f64),
        ),
        (
            "elapsed_ms".to_string(),
            Json::Num(elapsed.as_millis() as f64),
        ),
    ]);
    merge_report(&json_path, "cartography", report);

    if mislabeled > 0 {
        println!("FAIL: {mislabeled} set(s) mislabeled");
        return ExitCode::FAILURE;
    }
    println!("PASS: every sampled set labeled correctly");
    ExitCode::SUCCESS
}
