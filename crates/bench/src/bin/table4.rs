//! Table 4: learning replacement policies from (simulated) hardware caches.
//!
//! Every row drives the full pipeline — CacheQuery against the simulated CPU,
//! Polca as the membership oracle, L* with Wp-method conformance testing —
//! and reports the learned automaton's size, the policy it is identified as,
//! and the reset sequence used.
//!
//! Usage:
//!   table4 [--full] [--depth K] [--seed N] [--cat WAYS] [--time-budget SECS]
//!
//! The default (quick) configuration runs the rows that demonstrate the
//! paper's findings within minutes: the Skylake L2 (undocumented policy New1,
//! custom reset sequence), the Skylake L3 leader set under CAT (undocumented
//! policy New2, Flush+Refill reset), the failure of learning the Skylake L2
//! with a plain Flush+Refill reset, and the failure on the Haswell L3 (no
//! CAT).  `--full` adds the L1 caches (128-state PLRU), the Haswell L2 and
//! the Kaby Lake rows.

use std::time::Duration;

use bench::{format_duration, Args, TextTable};
use cache::LevelId;
use cachequery::{ResetSequence, Target};
use hardware::CpuModel;
use polca::{identify_policy, learn_hardware_policy, LearnSetup};
use policies::PolicyKind;

struct Experiment {
    cpu: CpuModel,
    level: LevelId,
    set: usize,
    slice: usize,
    cat_ways: Option<usize>,
    reset: ResetSequence,
    note: &'static str,
}

fn experiments(full: bool, cat: usize) -> Vec<Experiment> {
    let mut rows = vec![
        Experiment {
            cpu: CpuModel::SkylakeI5_6500,
            level: LevelId::L2,
            set: 63,
            slice: 0,
            cat_ways: None,
            reset: ResetSequence::Custom("D C B A @".to_string()),
            note: "custom reset (Table 4)",
        },
        Experiment {
            cpu: CpuModel::SkylakeI5_6500,
            level: LevelId::L2,
            set: 63,
            slice: 0,
            cat_ways: None,
            reset: ResetSequence::FlushRefill,
            note: "expected to fail: F+R is not a reset for this cache",
        },
        Experiment {
            cpu: CpuModel::SkylakeI5_6500,
            level: LevelId::L3,
            set: 33,
            slice: 0,
            cat_ways: Some(cat),
            reset: ResetSequence::FlushRefill,
            note: "leader set, CAT-reduced",
        },
        Experiment {
            cpu: CpuModel::HaswellI7_4790,
            level: LevelId::L3,
            set: 768,
            slice: 0,
            cat_ways: Some(cat),
            reset: ResetSequence::FlushRefill,
            note: "expected to fail: no CAT support, non-deterministic leader",
        },
    ];
    if full {
        rows.extend([
            Experiment {
                cpu: CpuModel::SkylakeI5_6500,
                level: LevelId::L1,
                set: 13,
                slice: 0,
                cat_ways: None,
                reset: ResetSequence::FlushRefill,
                note: "",
            },
            Experiment {
                cpu: CpuModel::HaswellI7_4790,
                level: LevelId::L1,
                set: 13,
                slice: 0,
                cat_ways: None,
                reset: ResetSequence::FlushRefill,
                note: "",
            },
            Experiment {
                cpu: CpuModel::HaswellI7_4790,
                level: LevelId::L2,
                set: 200,
                slice: 0,
                cat_ways: None,
                reset: ResetSequence::FlushRefill,
                note: "",
            },
            Experiment {
                cpu: CpuModel::KabyLakeI7_8550U,
                level: LevelId::L2,
                set: 63,
                slice: 0,
                cat_ways: None,
                reset: ResetSequence::Custom("D C B A @".to_string()),
                note: "custom reset (Table 4)",
            },
            Experiment {
                cpu: CpuModel::KabyLakeI7_8550U,
                level: LevelId::L3,
                set: 33,
                slice: 0,
                cat_ways: Some(cat),
                reset: ResetSequence::FlushRefill,
                note: "leader set, CAT-reduced",
            },
        ]);
    }
    rows
}

fn main() {
    let args = Args::from_env();
    let full = args.has_flag("full");
    let depth = args.value_or("depth", 1usize);
    let seed = args.value_or("seed", 2024u64);
    let cat = args.value_or("cat", 4usize);
    let time_budget = args.value_or("time-budget", 1800u64);

    let setup = LearnSetup {
        conformance_depth: depth,
        max_states: 4096,
        time_budget: Some(Duration::from_secs(time_budget)),
        workers: args.value_or("workers", 0usize),
        ..LearnSetup::default()
    };

    println!("Table 4: learning policies from (simulated) hardware caches");
    println!("(conformance depth k = {depth}, CAT reduction to {cat} ways, seed {seed})");
    println!();

    let mut table = TextTable::new(&[
        "CPU",
        "Level",
        "Assoc.",
        "Set",
        "# States",
        "Policy",
        "Reset seq.",
        "Time",
        "Note",
    ]);

    for experiment in experiments(full, cat) {
        let spec = experiment.cpu.spec();
        let assoc = experiment
            .cat_ways
            .filter(|_| experiment.level == LevelId::L3)
            .unwrap_or_else(|| {
                spec.level(experiment.level)
                    .expect("all modelled CPUs have three levels")
                    .geometry
                    .associativity
            });
        let hardware = polca::HardwareTarget {
            model: experiment.cpu,
            target: Target::new(experiment.level, experiment.set, experiment.slice),
            reset: experiment.reset.clone(),
            cat_ways: experiment.cat_ways,
            seed,
        };
        eprintln!(
            "learning {} {} set {} (reset '{}')...",
            spec.name, experiment.level, experiment.set, experiment.reset
        );
        match learn_hardware_policy(&hardware, &setup) {
            Ok(outcome) => {
                let identified =
                    identify_policy(&outcome.machine, assoc, &PolicyKind::ALL_DETERMINISTIC)
                        .map(|(kind, _)| kind.name().to_string())
                        .unwrap_or_else(|| "unknown".to_string());
                table.add_row(&[
                    spec.name.to_string(),
                    experiment.level.to_string(),
                    format!(
                        "{}{}",
                        assoc,
                        if experiment.cat_ways.is_some() {
                            "*"
                        } else {
                            ""
                        }
                    ),
                    experiment.set.to_string(),
                    outcome.machine.num_states().to_string(),
                    identified,
                    experiment.reset.to_string(),
                    format_duration(outcome.stats.duration),
                    experiment.note.to_string(),
                ]);
            }
            Err(e) => {
                table.add_row(&[
                    spec.name.to_string(),
                    experiment.level.to_string(),
                    assoc.to_string(),
                    experiment.set.to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    experiment.reset.to_string(),
                    "-".to_string(),
                    format!("{} ({e})", experiment.note),
                ]);
            }
        }
    }

    println!("{}", table.render());
    println!("* associativity virtually reduced with Intel CAT, as in the paper.");
    println!("Paper reference (Table 4): L1/Haswell-L2 = 128-state PLRU, Skylake/Kaby Lake L2 =");
    println!("160-state New1 with reset 'D C B A @', Skylake/Kaby Lake L3 leader sets =");
    println!("175-state New2 with F+R, Haswell L3 not learnable.");
}
