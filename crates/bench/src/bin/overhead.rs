//! §7.2 "Cost of learning from hardware": the overhead of the hardware path
//! relative to the software-simulated path, and the per-level cost of a
//! single MBL query.
//!
//! The paper reports (1) a ~1500x overhead of learning PLRU (associativity 8)
//! through CacheQuery with pre-computed (LevelDB-cached) responses compared
//! with learning from the software simulator, dominated by the communication
//! and bookkeeping around each query, and (2) the average execution time of
//! the MBL query `@ M _?` per cache level (~10-20 ms on silicon).  This
//! binary reproduces the *shape* of both measurements on the simulated
//! machine: learning through the full CacheQuery pipeline is orders of
//! magnitude more expensive than the direct simulator path, and the per-level
//! query cost grows with the amount of cache filtering required.
//!
//! Usage:
//!   overhead [--policy NAME] [--assoc N] [--repeats N] [--seed N]

use std::time::Instant;

use bench::{format_duration, Args, TextTable};
use cache::LevelId;
use cachequery::{CacheQuery, ResetSequence, Target};
use hardware::{CpuModel, SimulatedCpu};
use polca::{learn_hardware_policy, learn_simulated_policy, HardwareTarget, LearnSetup};
use policies::PolicyKind;

fn main() {
    let args = Args::from_env();
    let assoc = args.value_or("assoc", 4usize);
    let repeats = args.value_or("repeats", 100usize);
    let seed = args.value_or("seed", 7u64);
    let policy: PolicyKind = args
        .value_of("policy")
        .and_then(|p| p.parse().ok())
        .unwrap_or(PolicyKind::New1);

    println!("§7.2 cost analysis on the simulated hardware");
    println!();

    // Part 1: learning overhead, software simulator vs CacheQuery pipeline.
    // The paper's comparison uses PLRU at associativity 8; the default here is
    // the Skylake L2 policy at its native associativity 4 so the run completes
    // in minutes, and the ratio's order of magnitude is what matters.
    let setup = LearnSetup::default();
    println!(
        "Learning {policy} at associativity {assoc}: software simulator vs CacheQuery pipeline"
    );

    let start = Instant::now();
    let simulated = learn_simulated_policy(policy, assoc, &setup).expect("simulated learning");
    let simulated_time = start.elapsed();
    println!(
        "  simulator path : {} states in {} ({} membership queries, {} cache probes)",
        simulated.machine.num_states(),
        format_duration(simulated_time),
        simulated.stats.membership_queries,
        simulated.cache_probes,
    );

    let hardware = HardwareTarget {
        model: CpuModel::SkylakeI5_6500,
        target: Target::new(LevelId::L2, 63, 0),
        reset: ResetSequence::Custom("D C B A @".to_string()),
        cat_ways: None,
        seed,
    };
    let start = Instant::now();
    match learn_hardware_policy(&hardware, &setup) {
        Ok(outcome) => {
            let hardware_time = start.elapsed();
            let ratio = hardware_time.as_secs_f64() / simulated_time.as_secs_f64().max(1e-9);
            println!(
                "  hardware path  : {} states in {} ({} membership queries, {} cache probes)",
                outcome.machine.num_states(),
                format_duration(hardware_time),
                outcome.stats.membership_queries,
                outcome.cache_probes,
            );
            println!("  overhead       : {ratio:.0}x (paper: ~1500x for PLRU assoc. 8 with cached responses)");
        }
        Err(e) => println!("  hardware path  : failed ({e})"),
    }

    // Part 2: average execution time of the MBL query `@ M _?` per level.
    println!();
    println!("Average execution time of the MBL query '@ M _?' ({repeats} executions per level)");
    let mut table = TextTable::new(&[
        "Level",
        "Wall-clock per query",
        "Simulated loads per query",
        "Simulated cycles per query",
    ]);
    for level in LevelId::ALL {
        let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, seed);
        let mut tool = CacheQuery::new(cpu);
        tool.enable_cache(false);
        tool.set_target(Target::new(level, 5, 0))
            .expect("valid target");
        let loads_before = tool.stats().backend_loads;
        let cycles_before = tool.backend().cpu().rdtsc();
        let start = Instant::now();
        for _ in 0..repeats {
            tool.query("@ M _?").expect("query runs");
        }
        let elapsed = start.elapsed();
        let loads = tool.stats().backend_loads - loads_before;
        let cycles = tool.backend().cpu().rdtsc() - cycles_before;
        table.add_row(&[
            level.to_string(),
            format!("{:.3} ms", elapsed.as_secs_f64() * 1000.0 / repeats as f64),
            (loads / repeats as u64).to_string(),
            (cycles / repeats as u64).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Paper reference (§7.2): 16 ms on L1, 11 ms on L2, 20 ms on L3 per '@ M _?' query;");
    println!("the shape to compare is the relative growth of work with the cache level, driven");
    println!("by the extra eviction loads needed for cache filtering.");
}
