//! Appendix B: detecting leader sets of the adaptive last-level cache with
//! thrashing queries.
//!
//! The harness samples cache sets of the simulated Skylake (or Kaby Lake /
//! Haswell) L3, runs the two-phase thrashing experiment of Appendix B, and
//! compares the sets it classifies as fixed thrash-vulnerable leaders against
//! the selection formula the simulation implements (which is the formula the
//! paper reports: `((set & 0x3e0) >> 5) ^ (set & 0x1f) == 0 && set & 0x2 == 0`).
//!
//! Usage:
//!   leader_sets [--cpu skylake|kabylake|haswell] [--sets N] [--cat WAYS] [--seed N]

use bench::{Args, TextTable};
use cache::{skylake_like_roles, DuelingRole, LevelId};
use cachequery::{detect_leader_sets, CacheQuery, LeaderClass};
use hardware::{CpuModel, SimulatedCpu};

fn parse_cpu(name: Option<&str>) -> CpuModel {
    match name.map(str::to_ascii_lowercase).as_deref() {
        Some("haswell") => CpuModel::HaswellI7_4790,
        Some("kabylake") | Some("kaby-lake") => CpuModel::KabyLakeI7_8550U,
        _ => CpuModel::SkylakeI5_6500,
    }
}

fn main() {
    let args = Args::from_env();
    let model = parse_cpu(args.value_of("cpu"));
    let sample = args.value_or("sets", 48usize);
    let cat = args.value_or("cat", 4usize);
    let seed = args.value_or("seed", 99u64);

    println!("Appendix B: leader-set detection on the simulated {model} L3");
    println!("(thrashing working set = associativity + 1, CAT {cat} ways, {sample} sampled sets)");
    println!();

    let cpu = SimulatedCpu::new(model, seed);
    let mut tool = CacheQuery::new(cpu);
    if model.spec().supports_cat {
        tool.apply_cat(cat).expect("CAT is supported on this model");
    } else {
        println!("note: {model} does not support CAT; thrashing runs at full associativity");
    }

    // Sample the first `sample` set indices of slice 0, which contains the
    // first few leader sets of the published selection formula (0, 33, ...).
    let candidates: Vec<(usize, usize)> = (0..sample).map(|set| (set, 0)).collect();
    let report =
        detect_leader_sets(&mut tool, LevelId::L3, &candidates, 2).expect("detection runs");

    let sets_per_slice = model
        .spec()
        .level(LevelId::L3)
        .unwrap()
        .geometry
        .sets_per_slice;
    let slices = model.spec().level(LevelId::L3).unwrap().geometry.slices;
    let expected_roles = skylake_like_roles(sets_per_slice, slices);

    let mut table = TextTable::new(&[
        "Set",
        "Miss rate (phase 1)",
        "Miss rate (phase 2)",
        "Classified as",
        "Simulator ground truth",
    ]);
    let mut correct_leaders = 0usize;
    let mut reported_leaders = 0usize;
    for info in &report.sets {
        let truth = match expected_roles[info.slice * sets_per_slice + info.set] {
            DuelingRole::LeaderPrimary => "leader (thrash-vulnerable)",
            DuelingRole::LeaderAlternate => "leader (thrash-resistant)",
            DuelingRole::Follower => "follower",
        };
        let classified = match info.class {
            LeaderClass::ThrashVulnerable => {
                reported_leaders += 1;
                if truth.starts_with("leader (thrash-vulnerable") {
                    correct_leaders += 1;
                }
                "thrash-vulnerable"
            }
            LeaderClass::ThrashResistant => "thrash-resistant",
            LeaderClass::Adaptive => "adaptive follower",
        };
        table.add_row(&[
            info.set.to_string(),
            format!("{:.2}", info.miss_rate_initial),
            format!("{:.2}", info.miss_rate_after_duel),
            classified.to_string(),
            truth.to_string(),
        ]);
    }
    println!("{}", table.render());

    println!(
        "thrash-vulnerable leaders reported: {reported_leaders}, of which {correct_leaders} match the \
         selection formula"
    );
    let formula_leaders: Vec<usize> = (0..sample)
        .filter(|&set| expected_roles[set] == DuelingRole::LeaderPrimary)
        .collect();
    println!(
        "selection formula predicts leaders at sets {formula_leaders:?} within the sampled range"
    );
    println!();
    println!("Paper reference (Appendix B / Table 4): leader sets 0, 33, 132, 165, 264, 297, 396,");
    println!("429, 528, 561, 660, 693, 792, 825, 924, 957 per slice on Skylake and Kaby Lake;");
    println!("the remaining sets adapt via set dueling.");
}
