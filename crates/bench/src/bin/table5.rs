//! Table 5 and Figure 5: synthesizing explanations for learned policies.
//!
//! For every policy of §8 (at associativity 4, like the paper) the harness
//! obtains the policy automaton, runs the template-based synthesizer, and
//! reports the number of states, the template flavour that succeeded, and the
//! synthesis time.  PLRU is expected to fail (the template cannot express its
//! tree-shaped global state).  With `--print-programs` the synthesized
//! programs for every policy — in particular the previously undocumented
//! New1 and New2, i.e. Figure 5 — are printed in full.
//!
//! Usage:
//!   table5 [--assoc N] [--policy NAME] [--print-programs] [--time-budget SECS] [--from-learned]
//!
//! By default the ground-truth automata are used as synthesis inputs (they
//! are trace-equivalent to what learning produces, cf. the §6 harness);
//! `--from-learned` runs the Polca learning pipeline first, exactly like the
//! paper's end-to-end flow.

use std::time::Duration;

use automata::check_equivalence;
use bench::{format_duration, Args, TextTable};
use polca::{learn_simulated_policy, LearnSetup};
use policies::{policy_to_mealy, PolicyKind, PolicyMealy};
use synth::{synthesize, ProgramPolicy, SynthesisConfig};

fn automaton_for(kind: PolicyKind, assoc: usize, from_learned: bool) -> Option<PolicyMealy> {
    if from_learned {
        learn_simulated_policy(kind, assoc, &LearnSetup::default())
            .ok()
            .map(|outcome| outcome.machine)
    } else {
        kind.build(assoc)
            .ok()
            .map(|policy| policy_to_mealy(policy.as_ref(), 1 << 20))
    }
}

fn main() {
    let args = Args::from_env();
    let assoc = args.value_or("assoc", 4usize);
    let print_programs = args.has_flag("print-programs");
    let from_learned = args.has_flag("from-learned");
    let time_budget = args.value_or("time-budget", 600u64);
    let only_policy: Option<PolicyKind> = args.value_of("policy").and_then(|p| p.parse().ok());

    let policies = [
        PolicyKind::Fifo,
        PolicyKind::Lru,
        PolicyKind::Plru,
        PolicyKind::Lip,
        PolicyKind::Mru,
        PolicyKind::SrripHp,
        PolicyKind::SrripFp,
        PolicyKind::New1,
        PolicyKind::New2,
    ];

    println!("Table 5: synthesizing explanations for policies (associativity {assoc})");
    println!();
    let mut table = TextTable::new(&["Policy", "States", "Template", "Execution time", "Verified"]);
    let mut programs = Vec::new();

    for kind in policies {
        if let Some(only) = only_policy {
            if only != kind {
                continue;
            }
        }
        if !kind.supports_associativity(assoc) {
            continue;
        }
        let Some(machine) = automaton_for(kind, assoc, from_learned) else {
            table.add_row(&[
                kind.name().to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "automaton unavailable".to_string(),
            ]);
            continue;
        };
        eprintln!("synthesizing {kind} ({} states)...", machine.num_states());
        let config = SynthesisConfig {
            time_budget: Some(Duration::from_secs(time_budget)),
            ..SynthesisConfig::default()
        };
        match synthesize(&machine, assoc, &config) {
            Some(result) => {
                let verified = {
                    let synthesized =
                        policy_to_mealy(&ProgramPolicy::new(result.program.clone()), 1 << 20);
                    check_equivalence(&synthesized, &machine).is_none()
                };
                table.add_row(&[
                    kind.name().to_string(),
                    machine.num_states().to_string(),
                    result.template.to_string(),
                    format_duration(result.stats.duration),
                    if verified { "yes" } else { "NO" }.to_string(),
                ]);
                programs.push((kind, result.program));
            }
            None => {
                table.add_row(&[
                    kind.name().to_string(),
                    machine.num_states().to_string(),
                    "—".to_string(),
                    "—".to_string(),
                    "not expressible in the template (expected for PLRU)".to_string(),
                ]);
            }
        }
    }

    println!("{}", table.render());
    println!("Paper reference (Table 5): FIFO/LRU/LIP Simple; MRU, SRRIP-HP, SRRIP-FP, New1, New2");
    println!(
        "Extended; PLRU not expressible.  Absolute times differ (enumerative search vs Sketch)."
    );

    if print_programs {
        println!();
        println!("Synthesized programs (Figure 5 for New1/New2):");
        for (kind, program) in &programs {
            println!();
            println!("=== {kind} ===");
            println!("{program}");
        }
    }
}
