//! Observability overhead gate: pins the cost of the `obs` layer on the
//! membership-query hot path.
//!
//! Three workloads, each timed as the minimum over `--trials` interleaved
//! runs (interleaving cancels thermal/frequency drift; the minimum is the
//! least-noisy estimator for deterministic work):
//!
//! * **query path (micro)** — raw `PolicySimBackend::execute` calls, run
//!   bare, with a *disabled* span per batch (`maybe_span(None)`, the exact
//!   shape `QueryEngine::run_many` compiles when no recorder is attached),
//!   and with an *enabled* span per batch feeding a `RingSink`.  Gated:
//!   disabled < 2 % over bare.  The enabled variant is reported as the
//!   worst-case per-span cost (the micro work unit is far cheaper than any
//!   real backend query); the on-path gate runs on the engine workload.
//! * **query path (engine)** — `QueryEngine::run_many` over a fresh store,
//!   recorder detached vs. attached: the product query path.  Gated:
//!   attached < 10 % over detached.
//! * **learn (end-to-end)** — `learn_simulated_policy` with and without a
//!   recorder; reported for context, not gated (learning time is dominated
//!   by the conformance search and varies more than the budget).
//!
//! Writes its numbers under the `overhead_obs` key of `--json` (default
//! `BENCH_obs.json`) and exits non-zero when a gated bound is violated, so
//! CI can run it directly.  `--no-gate` keeps the measurements but skips the
//! exit code for local experimentation.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use bench::{merge_report, Args, TextTable};
use cachequery::{QueryBackend, QueryEngine};
use mbl::{block_name, expand_query, BlockId, Query};
use obs::{maybe_span, Recorder, RingSink};
use polca::{learn_simulated_policy, LearnSetup, PolicySimBackend};
use policies::PolicyKind;
use server::Json;

/// Queries per emitted span: `run_many` opens one span per batch, so the
/// micro workload models the same granularity.
const BATCH: usize = 32;

/// Deltas below this are timer noise on an otherwise-identical loop; a
/// workload that finishes within the floor of its baseline passes its gate
/// regardless of the ratio.
const FLOOR_NS: u64 = 100_000;

/// Instrumentation-off budget over the bare loop, in basis points (2 %).
const OFF_BUDGET_BPS: u64 = 200;

/// Instrumentation-on budget over the uninstrumented path, in basis points
/// (10 %).
const ON_BUDGET_BPS: u64 = 1_000;

fn main() {
    let args = Args::from_env();
    let queries: usize = args.value_or("queries", 8_192);
    let trials: usize = args.value_or("trials", 5);
    let assoc: usize = args.value_or("assoc", 4);
    let json_path = args.value_of("json").unwrap_or("BENCH_obs.json");

    let workload = build_workload(queries, assoc);
    println!(
        "obs overhead gate: {} queries @ assoc {}, batch {}, min of {} trials",
        workload.len(),
        assoc,
        BATCH,
        trials
    );

    let micro = measure_micro(&workload, assoc, trials);
    let engine = measure_engine(&workload, assoc, trials);
    let learn = measure_learn(trials.min(3));

    let rows = vec![
        GateRow::gated(
            "query micro",
            "off (span disabled)",
            micro.bare,
            micro.off,
            OFF_BUDGET_BPS,
        ),
        GateRow::reported("query micro", "on (RingSink)", micro.bare, micro.on),
        GateRow::gated(
            "query engine",
            "on (RingSink)",
            engine.bare,
            engine.on,
            ON_BUDGET_BPS,
        ),
        GateRow::reported("learn lru@3", "on (RingSink)", learn.bare, learn.on),
    ];

    let mut table = TextTable::new(&[
        "workload", "variant", "baseline", "timed", "overhead", "budget", "verdict",
    ]);
    for row in &rows {
        table.add_row(&[
            row.workload.to_string(),
            row.variant.to_string(),
            format!("{:.3} ms", row.base_ns as f64 / 1e6),
            format!("{:.3} ms", row.timed_ns as f64 / 1e6),
            format!("{:+.2}%", row.overhead_bps() as f64 / 100.0),
            row.budget_bps
                .map(|b| format!("<{:.0}%", b as f64 / 100.0))
                .unwrap_or_else(|| "-".to_string()),
            row.verdict().to_string(),
        ]);
    }
    println!("{}", table.render());

    let report = Json::obj(vec![
        ("queries", Json::num(workload.len() as u64)),
        ("trials", Json::num(trials as u64)),
        ("batch", Json::num(BATCH as u64)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|row| {
                        Json::obj(vec![
                            ("workload", Json::str(row.workload)),
                            ("variant", Json::str(row.variant)),
                            ("base_ns", Json::num(row.base_ns)),
                            ("timed_ns", Json::num(row.timed_ns)),
                            ("overhead_bps", Json::num(row.overhead_bps())),
                            ("budget_bps", Json::num(row.budget_bps.unwrap_or(0))),
                            ("pass", Json::str(row.verdict())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    merge_report(json_path, "overhead_obs", report);
    println!("report merged into {json_path} under key \"overhead_obs\"");

    let violations: Vec<&GateRow> = rows.iter().filter(|r| r.verdict() == "FAIL").collect();
    if !violations.is_empty() {
        for row in &violations {
            eprintln!(
                "overhead gate violated: {} / {} at {:+.2}% (budget <{:.0}%)",
                row.workload,
                row.variant,
                row.overhead_bps() as f64 / 100.0,
                row.budget_bps.unwrap_or(0) as f64 / 100.0
            );
        }
        if args.has_flag("no-gate") {
            eprintln!("--no-gate: reporting only, exit 0");
        } else {
            std::process::exit(1);
        }
    }
}

/// One gate line: a timed variant against its baseline.
struct GateRow {
    workload: &'static str,
    variant: &'static str,
    base_ns: u64,
    timed_ns: u64,
    budget_bps: Option<u64>,
}

impl GateRow {
    fn gated(
        workload: &'static str,
        variant: &'static str,
        base_ns: u64,
        timed_ns: u64,
        budget_bps: u64,
    ) -> Self {
        GateRow {
            workload,
            variant,
            base_ns,
            timed_ns,
            budget_bps: Some(budget_bps),
        }
    }

    fn reported(
        workload: &'static str,
        variant: &'static str,
        base_ns: u64,
        timed_ns: u64,
    ) -> Self {
        GateRow {
            workload,
            variant,
            base_ns,
            timed_ns,
            budget_bps: None,
        }
    }

    /// Overhead of the timed variant over its baseline, in basis points;
    /// clamped at zero (faster-than-baseline is noise, not a speedup).
    fn overhead_bps(&self) -> u64 {
        if self.timed_ns <= self.base_ns || self.base_ns == 0 {
            return 0;
        }
        (self.timed_ns - self.base_ns) * 10_000 / self.base_ns
    }

    fn verdict(&self) -> &'static str {
        let Some(budget) = self.budget_bps else {
            return "info";
        };
        if self.timed_ns.saturating_sub(self.base_ns) < FLOOR_NS || self.overhead_bps() < budget {
            "ok"
        } else {
            "FAIL"
        }
    }
}

/// Access operations per query — roughly a membership query's reset-prefix
/// plus distinguishing suffix at small associativities.
const DEPTH: usize = 12;

/// Builds `count` distinct concrete queries over `assoc + 4` blocks:
/// [`DEPTH`]-access patterns with a profiled tail, the shape the learner's
/// membership queries take.
fn build_workload(count: usize, assoc: usize) -> Vec<Query> {
    let blocks = assoc + 4;
    let mut out = Vec::with_capacity(count);
    let mut seed = 0usize;
    while out.len() < count {
        let mut expr = String::new();
        let mut n = seed;
        for step in 0..DEPTH {
            if step > 0 {
                expr.push(' ');
            }
            // Low steps cycle fast, high steps slow: distinct, varied traces.
            expr.push_str(&block_name(BlockId(((n + step) % blocks) as u32)));
            if step % 3 == 2 {
                n /= blocks;
            }
        }
        expr.push('?');
        let mut expanded = expand_query(&expr, assoc).expect("workload query expands");
        out.push(expanded.pop().expect("expansion yields a query"));
        seed += 1;
    }
    out
}

struct ThreeWay {
    bare: u64,
    off: u64,
    on: u64,
}

struct TwoWay {
    bare: u64,
    on: u64,
}

fn time_ns(run: impl FnOnce()) -> u64 {
    let begin = Instant::now();
    run();
    begin.elapsed().as_nanos() as u64
}

fn execute_all(backend: &mut PolicySimBackend, queries: &[Query]) -> u64 {
    let mut hits = 0u64;
    for query in queries {
        let (outcomes, _) = backend.execute(query).expect("sim backend is total");
        hits += outcomes
            .iter()
            .filter(|o| **o == cache::HitMiss::Hit)
            .count() as u64;
    }
    hits
}

/// The micro workload: raw backend execution, bare vs. disabled-span vs.
/// enabled-span, one span per [`BATCH`] queries (the `run_many` granularity).
fn measure_micro(workload: &[Query], assoc: usize, trials: usize) -> ThreeWay {
    let recorder = Recorder::new(Arc::new(RingSink::new(8_192)));
    let mut result = ThreeWay {
        bare: u64::MAX,
        off: u64::MAX,
        on: u64::MAX,
    };
    for _ in 0..trials {
        let mut backend = PolicySimBackend::new(PolicyKind::Lru, assoc).expect("lru builds");
        let bare = time_ns(|| {
            for chunk in workload.chunks(BATCH) {
                black_box(execute_all(&mut backend, chunk));
            }
        });

        let mut backend = PolicySimBackend::new(PolicyKind::Lru, assoc).expect("lru builds");
        let off = time_ns(|| {
            for chunk in workload.chunks(BATCH) {
                let none: Option<&Recorder> = None;
                let mut span = maybe_span(none, "bench.batch");
                let hits = black_box(execute_all(&mut backend, chunk));
                if let Some(span) = span.as_mut() {
                    span.set("queries", chunk.len());
                    span.set("hits", hits);
                }
            }
        });

        let mut backend = PolicySimBackend::new(PolicyKind::Lru, assoc).expect("lru builds");
        let on = time_ns(|| {
            for chunk in workload.chunks(BATCH) {
                let mut span = recorder.span("bench.batch");
                let hits = black_box(execute_all(&mut backend, chunk));
                span.set("queries", chunk.len());
                span.set("hits", hits);
            }
        });

        result.bare = result.bare.min(bare);
        result.off = result.off.min(off);
        result.on = result.on.min(on);
    }
    result
}

/// The engine workload: `run_many` over a fresh engine and store per trial,
/// recorder detached vs. attached.
fn measure_engine(workload: &[Query], assoc: usize, trials: usize) -> TwoWay {
    let recorder = Arc::new(Recorder::new(Arc::new(RingSink::new(8_192))));
    let mut result = TwoWay {
        bare: u64::MAX,
        on: u64::MAX,
    };
    for _ in 0..trials {
        let backend = PolicySimBackend::new(PolicyKind::Lru, assoc).expect("lru builds");
        let mut engine = QueryEngine::new(backend);
        let bare = time_ns(|| {
            for chunk in workload.chunks(BATCH) {
                black_box(engine.run_many(chunk).expect("sim queries succeed"));
            }
        });

        let backend = PolicySimBackend::new(PolicyKind::Lru, assoc).expect("lru builds");
        let mut engine = QueryEngine::new(backend);
        engine.set_recorder(Some(Arc::clone(&recorder)));
        let on = time_ns(|| {
            for chunk in workload.chunks(BATCH) {
                black_box(engine.run_many(chunk).expect("sim queries succeed"));
            }
        });

        result.bare = result.bare.min(bare);
        result.on = result.on.min(on);
    }
    result
}

/// The end-to-end workload: a full LRU@3 learning run with and without a
/// recorder attached.  Reported for context only — conformance search time
/// dominates and varies run to run.
fn measure_learn(trials: usize) -> TwoWay {
    let mut result = TwoWay {
        bare: u64::MAX,
        on: u64::MAX,
    };
    for _ in 0..trials.max(1) {
        let setup = LearnSetup {
            workers: 1,
            ..LearnSetup::default()
        };
        let bare = time_ns(|| {
            black_box(learn_simulated_policy(PolicyKind::Lru, 3, &setup).expect("lru@3 learns"));
        });

        let setup = LearnSetup {
            workers: 1,
            recorder: Some(Arc::new(Recorder::new(Arc::new(RingSink::new(8_192))))),
            ..LearnSetup::default()
        };
        let on = time_ns(|| {
            black_box(learn_simulated_policy(PolicyKind::Lru, 3, &setup).expect("lru@3 learns"));
        });

        result.bare = result.bare.min(bare);
        result.on = result.on.min(on);
    }
    result
}
