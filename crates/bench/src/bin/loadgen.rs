//! Load generator for the `cqd` daemon: K concurrent clients × M queries
//! against an in-process server on an ephemeral port.
//!
//! The workload is deliberately *overlapping* — every client draws from the
//! same bounded pool of MBL expressions per target set — so it measures the
//! three things the server subsystem exists for: sustained throughput
//! (queries/s), tail latency under concurrency (p50/p99), and the
//! cross-session hit-rate of the shared query store.
//!
//! Usage:
//!   `loadgen [--mode queries|learn-remote|noisy|trace|map]
//!            [--clients K] [--queries M] [--sets S] [--distinct D]
//!            [--workers W] [--queue-depth Q] [--json PATH]
//!            [--policy POLICY@ASSOC] [--flip RATE]
//!            [--accesses N] [--lines L] [--seed S]
//!            [--model NAME] [--cat WAYS] [--slice I]`
//!
//! `--mode queries` (the default) measures interactive query traffic;
//! `--mode learn-remote` runs the same learning campaign in-process and over
//! a loopback daemon (`polca::learn_policy` through a `RemoteBackend`) and
//! reports the network overhead of distributed learning;
//! `--mode noisy` drives the same overlapping workload against a
//! fault-injecting policy session (`POLICY@ASSOC+noise(flip=…)`) and against
//! its clean twin, reporting the voting overhead and the daemon's
//! vote-margin statistics;
//! `--mode trace` sweeps the daemon's `replay` endpoint — every
//! deterministic policy × every trace generator — and then proves a whole
//! learn-then-replay round trip: a `learn` campaign, `wait` for the machine,
//! and a differential replay of the learned machine against its source
//! simulator, entirely server-side;
//! `--mode map` runs a whole-cache cartography campaign through the daemon's
//! `map` endpoint (leader detection, one learning campaign per leader group,
//! a per-set policy map) and then remaps the same CPU to measure how far the
//! shared store amortizes a repeat sweep.
//!
//! Results are printed as a table and written as JSON (default
//! `BENCH_server.json`) for regression tracking; the learn-remote record is
//! merged into an existing report instead of clobbering it.

use std::time::Instant;

use bench::{merge_report, Args, TextTable};
use cachequery::QueryEngine;
use polca::{learn_policy, learn_simulated_policy, CacheQueryOracle, LearnSetup};
use policies::PolicyKind;
use server::{spawn, Client, CqdConfig, Json, RemoteBackend, SessionSpec};

/// Deterministic per-client generator (xorshift64*): the workload must not
/// depend on thread scheduling.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// The `i`-th expression of the shared pool: a three-block fill followed by
/// a profiled re-access (each expands to exactly one concrete query, so one
/// request equals one backend-or-store answer).
fn expression(i: u64) -> String {
    let name = |n: u64| mbl::block_name(mbl::BlockId((n % 6) as u32));
    let (a, b, c) = (i % 6, (i / 6) % 6, (i / 36) % 6);
    format!("{} {} {} {}?", name(a), name(b), name(c), name(a))
}

/// Times one request and records its latency (in nanoseconds) into the
/// shared histogram.  Every mode funnels its per-request latencies through
/// here, so the p50/p99 columns below mean the same thing everywhere.
fn timed<T>(latency: &obs::Histogram, run: impl FnOnce() -> T) -> T {
    let begin = Instant::now();
    let out = run();
    latency.record(begin.elapsed().as_nanos() as u64);
    out
}

/// The shared latency summary: (p50, p99) in microseconds, straight from the
/// log-linear histogram — no sorted vector of every sample needed.
fn latency_us(latency: &obs::Histogram) -> (f64, f64) {
    let snapshot = latency.snapshot();
    (snapshot.p50 as f64 / 1000.0, snapshot.p99 as f64 / 1000.0)
}

/// The learn-remote mode: the same campaign in-process and over loopback.
fn run_learn_remote(args: &Args) {
    let policy = args.value_of("policy").unwrap_or("LRU@4");
    let json_path = args.value_of("json").unwrap_or("BENCH_server.json");
    let (name, assoc) = policy.split_once('@').expect("policy spec is POLICY@ASSOC");
    let kind: PolicyKind = name.parse().expect("known policy");
    let assoc: usize = assoc.parse().expect("numeric associativity");
    let setup = LearnSetup {
        workers: 1,
        ..LearnSetup::default()
    };

    println!("loadgen: mode learn-remote, campaign {kind}@{assoc}");
    let started = Instant::now();
    let local = learn_simulated_policy(kind, assoc, &setup).expect("in-process learning succeeds");
    let local_elapsed = started.elapsed();

    let daemon = spawn(CqdConfig::default()).expect("ephemeral port is bindable");
    let spec = SessionSpec {
        policy: Some(policy.to_string()),
        ..SessionSpec::default()
    };
    let started = Instant::now();
    let backend = RemoteBackend::connect(daemon.addr(), &spec).expect("daemon accepts the spec");
    let engine = QueryEngine::new(backend);
    let client_store = std::sync::Arc::clone(engine.store());
    let oracle = CacheQueryOracle::from_engine(engine).expect("remote target configured");
    let remote = learn_policy(oracle, &setup).expect("remote learning succeeds");
    let remote_elapsed = started.elapsed();
    daemon.shutdown();

    assert_eq!(
        remote.machine.num_states(),
        local.machine.num_states(),
        "remote learning must reproduce the in-process automaton"
    );
    let overhead = remote_elapsed.as_secs_f64() / local_elapsed.as_secs_f64().max(1e-9);
    let mut table = TextTable::new(&[
        "campaign",
        "states",
        "memb. queries",
        "in-process",
        "over server",
        "overhead",
        "client store hit-rate",
    ]);
    table.add_row(&[
        format!("{kind}@{assoc}"),
        remote.machine.num_states().to_string(),
        remote.stats.membership_queries.to_string(),
        format!("{:.3} s", local_elapsed.as_secs_f64()),
        format!("{:.3} s", remote_elapsed.as_secs_f64()),
        format!("{overhead:.1}x"),
        format!(
            "{:.1}%",
            100.0 * client_store.hits() as f64
                / (client_store.hits() + client_store.misses()).max(1) as f64
        ),
    ]);
    print!("{}", table.render());

    let report = Json::obj(vec![
        ("campaign", Json::str(policy)),
        ("states", Json::num(remote.machine.num_states() as u64)),
        (
            "membership_queries",
            Json::num(remote.stats.membership_queries),
        ),
        ("in_process_s", Json::Num(local_elapsed.as_secs_f64())),
        ("over_server_s", Json::Num(remote_elapsed.as_secs_f64())),
        ("overhead", Json::Num(overhead)),
        ("client_store_hits", Json::num(client_store.hits())),
        ("client_store_misses", Json::num(client_store.misses())),
    ]);
    merge_report(json_path, "learn_remote", report);
}

/// Drives `clients × queries` of the shared expression pool through one
/// daemon session spec and returns the elapsed seconds.
fn drive_clients(
    addr: std::net::SocketAddr,
    spec: &SessionSpec,
    clients: usize,
    queries: usize,
) -> f64 {
    let started = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client_index| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("daemon accepts connections");
                    client.target(spec).expect("valid target");
                    let mut rng = Rng(0x9e37_79b9_7f4a_7c15 ^ (client_index as u64 + 1));
                    for _ in 0..queries {
                        let expr = expression(rng.next() % 64);
                        let results = client.query(&expr).expect("well-formed MBL");
                        assert_eq!(results.len(), 1, "pool expressions expand to one query");
                    }
                    client.quit().expect("clean disconnect");
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread");
        }
    });
    started.elapsed().as_secs_f64()
}

/// The noisy mode: the overlapping workload against a fault-injecting
/// policy session and its clean twin, plus the daemon's vote statistics.
fn run_noisy(args: &Args) {
    let clients: usize = args.value_or("clients", 4);
    let queries: usize = args.value_or("queries", 200);
    let policy = args.value_of("policy").unwrap_or("LRU@4");
    let flip = args.value_of("flip").unwrap_or("0.05");
    let json_path = args.value_of("json").unwrap_or("BENCH_server.json");
    let noisy_policy = format!("{policy}+noise(flip={flip},seed=1)");

    println!(
        "loadgen: mode noisy, {clients} clients x {queries} queries, \
         {noisy_policy} vs clean {policy}"
    );
    let daemon = spawn(CqdConfig::default()).expect("ephemeral port is bindable");
    let addr = daemon.addr();

    let clean_spec = SessionSpec {
        policy: Some(policy.to_string()),
        ..SessionSpec::default()
    };
    let clean_s = drive_clients(addr, &clean_spec, clients, queries);

    let noisy_spec = SessionSpec {
        policy: Some(noisy_policy.clone()),
        ..SessionSpec::default()
    };
    let noisy_s = drive_clients(addr, &noisy_spec, clients, queries);
    let mut probe = Client::connect(addr).expect("daemon accepts connections");
    let stats = probe.stats().expect("stats are served");
    probe.quit().expect("clean disconnect");
    daemon.shutdown();

    let total = (clients * queries) as f64;
    let overhead = noisy_s / clean_s.max(1e-9);
    let global = stats.global;
    // The store amortizes voting out of the wall-clock (every repeated
    // request is a hit), so the honest cost metric is executions per voted
    // query — the effective repetition count of the novel traffic.  Only
    // noisy queries vote (the clean policy runs at reps = 1), so the
    // store-wide vote tally is exactly the noisy workload's.
    let reps_per_vote = global.vote_executions as f64 / (global.votes.max(1)) as f64;
    let mut table = TextTable::new(&[
        "workload",
        "queries",
        "elapsed",
        "queries/s",
        "votes",
        "escalated",
        "unsettled",
        "min margin",
        "reps/vote",
        "store hit-rate",
    ]);
    table.add_row(&[
        policy.to_string(),
        format!("{}", clients * queries),
        format!("{clean_s:.3} s"),
        format!("{:.0}", total / clean_s),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    table.add_row(&[
        noisy_policy.clone(),
        format!("{}", clients * queries),
        format!("{noisy_s:.3} s"),
        format!("{:.0}", total / noisy_s),
        global.votes.to_string(),
        global.vote_escalations.to_string(),
        global.vote_unsettled.to_string(),
        format!("{:.1}%", global.vote_min_margin_permille as f64 / 10.0),
        format!("{reps_per_vote:.1}"),
        format!("{:.1}%", 100.0 * global.hit_rate()),
    ]);
    print!("{}", table.render());
    println!(
        "voting overhead: {reps_per_vote:.1} executions per voted query; \
         wall-clock {overhead:.2}x vs clean (store-amortized)"
    );

    let report = Json::obj(vec![
        ("policy", Json::str(&noisy_policy)),
        ("clients", Json::num(clients as u64)),
        ("queries_per_client", Json::num(queries as u64)),
        ("clean_s", Json::Num(clean_s)),
        ("noisy_s", Json::Num(noisy_s)),
        ("wall_clock_overhead", Json::Num(overhead)),
        ("executions_per_vote", Json::Num(reps_per_vote)),
        ("votes", Json::num(global.votes)),
        ("vote_escalations", Json::num(global.vote_escalations)),
        ("vote_unsettled", Json::num(global.vote_unsettled)),
        (
            "vote_min_margin_permille",
            Json::num(global.vote_min_margin_permille),
        ),
        ("store_hit_rate", Json::Num(global.hit_rate())),
    ]);
    merge_report(json_path, "noisy", report);
}

/// The trace mode: the daemon's `replay` endpoint across every deterministic
/// policy × generator, plus a full learn → wait → differential-replay round
/// trip against the learned machine.
fn run_trace(args: &Args) {
    let accesses: u64 = args.value_or("accesses", 50_000);
    let lines: u64 = args.value_or("lines", 256);
    let seed: u64 = args.value_or("seed", 1);
    let policy = args.value_of("policy").unwrap_or("LRU@2");
    let json_path = args.value_of("json").unwrap_or("BENCH_trace.json");
    let generators = ["sequential", "strided", "zipfian", "pointer-chase"];

    println!("loadgen: mode trace, {accesses} accesses x {lines} lines per replay, seed {seed}");
    let daemon = spawn(CqdConfig::default()).expect("ephemeral port is bindable");
    let mut client = Client::connect(daemon.addr()).expect("daemon accepts connections");

    let mut table = TextTable::new(&[
        "policy",
        "sequential",
        "strided",
        "zipfian",
        "pointer-chase",
    ]);
    let mut rows = Vec::new();
    let latency = obs::Histogram::new();
    let started = Instant::now();
    let mut replayed = 0u64;
    for kind in PolicyKind::ALL_DETERMINISTIC {
        let spec = format!("{kind}@2");
        let mut cells = vec![spec.clone()];
        let mut rates = Vec::new();
        for generator in generators {
            let reply = timed(&latency, || {
                client.replay(&spec, generator, accesses, lines, seed, None)
            })
            .expect("replay request succeeds");
            assert_eq!(reply.sim_hits + reply.sim_misses, reply.accesses);
            replayed += reply.accesses;
            let rate = reply.sim_hits as f64 / reply.accesses as f64;
            cells.push(format!("{:.1}%", 100.0 * rate));
            rates.push((generator, rate));
        }
        table.add_row(&cells);
        rows.push((spec, rates));
    }
    let sweep_s = started.elapsed().as_secs_f64();
    let (p50_us, p99_us) = latency_us(&latency);
    print!("{}", table.render());
    println!(
        "swept {} replays ({replayed} accesses) in {sweep_s:.3} s \
         (per-request p50 {p50_us:.1} us, p99 {p99_us:.1} us)",
        rows.len() * generators.len()
    );

    // The round trip the endpoint exists for: learn server-side, then replay
    // the *learned machine* against its source simulator without the model
    // ever leaving the daemon.
    let job = client.learn(policy).expect("learn starts");
    let status = client.wait(job).expect("campaign finishes");
    assert_eq!(status.state, "done", "campaign failed: {}", status.detail);
    let reply = client
        .replay(policy, "zipfian", accesses, lines, seed, Some(job))
        .expect("machine replay succeeds");
    assert!(
        !reply.diverged,
        "learned {policy} diverged from its simulator: {}",
        reply.divergence
    );
    assert_eq!(reply.sim_hits, reply.machine_hits);
    println!(
        "learned {policy} ({} states) replayed {} accesses with zero divergences",
        reply.machine_states, reply.accesses
    );

    let report_rows: Vec<(String, Json)> = rows
        .iter()
        .map(|(spec, rates)| {
            let pairs = rates
                .iter()
                .map(|(generator, rate)| (generator.to_string(), Json::Num(*rate)))
                .collect();
            (spec.clone(), Json::Obj(pairs))
        })
        .collect();
    let report = Json::obj(vec![
        ("accesses", Json::num(accesses)),
        ("lines", Json::num(lines)),
        ("seed", Json::num(seed)),
        ("sweep_s", Json::Num(sweep_s)),
        ("p50_us", Json::Num(p50_us)),
        ("p99_us", Json::Num(p99_us)),
        ("hit_rates", Json::Obj(report_rows)),
        ("machine_campaign", Json::str(policy)),
        ("machine_states", Json::num(reply.machine_states)),
        ("machine_diverged", Json::Bool(reply.diverged)),
    ]);
    merge_report(json_path, "server_replay", report);

    client.quit().expect("clean disconnect");
    daemon.shutdown();
}

/// The map mode: one whole-cache cartography sweep through the daemon, then
/// a remap of the same CPU to measure the store's amortization of repeats.
fn run_map(args: &Args) {
    let model = args.value_of("model").unwrap_or("skylake");
    let seed: u64 = args.value_or("seed", 99);
    let cat: u64 = args.value_or("cat", 2);
    let slice: u64 = args.value_or("slice", 0);
    let sets: u64 = args.value_or("sets", 40);
    let json_path = args.value_of("json").unwrap_or("BENCH_server.json");

    println!("loadgen: mode map, {model} seed {seed} cat {cat}, slice {slice}, {sets} sets");
    let daemon = spawn(CqdConfig::default()).expect("ephemeral port is bindable");
    let mut client = Client::connect(daemon.addr()).expect("daemon accepts connections");

    let latency = obs::Histogram::new();
    let started = Instant::now();
    let map = timed(&latency, || client.map(model, seed, Some(cat), slice, sets))
        .expect("map campaign succeeds");
    let sweep_s = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let again = timed(&latency, || client.map(model, seed, Some(cat), slice, sets))
        .expect("remap succeeds");
    let remap_s = started.elapsed().as_secs_f64();
    assert_eq!(again, map, "remapping the same CPU must be deterministic");
    let (p50_us, p99_us) = latency_us(&latency);

    let mut table = TextTable::new(&[
        "group",
        "members",
        "representative",
        "outcome",
        "states",
        "queries",
        "identified",
    ]);
    for group in &map.groups {
        table.add_row(&[
            group.class.clone(),
            group.members.to_string(),
            format!(
                "set {}/{}",
                group.representative_set, group.representative_slice
            ),
            group.outcome.clone(),
            group.states.to_string(),
            group.queries.to_string(),
            if group.identified.is_empty() {
                "-".into()
            } else {
                group.identified.clone()
            },
        ]);
    }
    print!("{}", table.render());
    let fixed = map.sets.iter().filter(|s| s.verdict == "fixed").count();
    let adaptive = map.sets.iter().filter(|s| s.verdict == "adaptive").count();
    let other = map.sets.len() - fixed - adaptive;
    // A remap re-runs leader detection (live duel probes are never cached)
    // but serves both learning campaigns from the shared store.
    println!(
        "mapped {} sets ({fixed} fixed, {adaptive} adaptive followers, {other} other) \
         in {sweep_s:.3} s; remap with store-served campaigns {remap_s:.3} s ({:.2}x); \
         per-request p50 {p50_us:.1} us, p99 {p99_us:.1} us",
        map.sets.len(),
        sweep_s / remap_s.max(1e-9)
    );

    client.quit().expect("clean disconnect");
    daemon.shutdown();

    let report = Json::obj(vec![
        ("model", Json::str(model)),
        ("seed", Json::num(seed)),
        ("cat", Json::num(cat)),
        ("slice", Json::num(slice)),
        ("sets", Json::num(map.sets.len() as u64)),
        ("groups", Json::num(map.groups.len() as u64)),
        ("fixed_sets", Json::num(fixed as u64)),
        ("adaptive_sets", Json::num(adaptive as u64)),
        ("sweep_s", Json::Num(sweep_s)),
        ("remap_s", Json::Num(remap_s)),
        ("p50_us", Json::Num(p50_us)),
        ("p99_us", Json::Num(p99_us)),
    ]);
    merge_report(json_path, "map", report);
}

fn main() {
    let args = Args::from_env();
    if args.value_of("mode") == Some("learn-remote") {
        run_learn_remote(&args);
        return;
    }
    if args.value_of("mode") == Some("noisy") {
        run_noisy(&args);
        return;
    }
    if args.value_of("mode") == Some("trace") {
        run_trace(&args);
        return;
    }
    if args.value_of("mode") == Some("map") {
        run_map(&args);
        return;
    }
    let clients: usize = args.value_or("clients", 8);
    let queries: usize = args.value_or("queries", 2000);
    let sets: u64 = args.value_or("sets", 2);
    let distinct: u64 = args.value_or("distinct", 128);
    let workers: usize = args.value_or("workers", 4);
    let queue_depth: usize = args.value_or("queue-depth", 64);
    let json_path = args.value_of("json").unwrap_or("BENCH_server.json");

    let daemon = spawn(CqdConfig {
        workers,
        queue_depth,
        ..CqdConfig::default()
    })
    .expect("ephemeral port is bindable");
    let addr = daemon.addr();
    println!(
        "loadgen: {clients} clients x {queries} queries, {sets} target sets, \
         {distinct} distinct expressions per set, {workers} workers"
    );

    // One lock-free histogram shared by every client thread: quantiles come
    // out without ever materializing (or sorting) the per-sample vector.
    let latency = obs::Histogram::new();
    let started = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client_index| {
                let latency = &latency;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("daemon accepts connections");
                    let set = (client_index as u64) % sets;
                    client
                        .target(&SessionSpec {
                            set,
                            ..SessionSpec::default()
                        })
                        .expect("valid target");
                    let mut rng = Rng(0x9e37_79b9_7f4a_7c15 ^ (client_index as u64 + 1));
                    for _ in 0..queries {
                        let expr = expression(rng.next() % distinct);
                        let results =
                            timed(latency, || client.query(&expr)).expect("well-formed MBL");
                        assert_eq!(results.len(), 1, "pool expressions expand to one query");
                    }
                    client.quit().expect("clean disconnect");
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread");
        }
    });
    let elapsed = started.elapsed();

    let total = latency.count() as usize;
    let throughput = total as f64 / elapsed.as_secs_f64();
    let (p50_us, p99_us) = latency_us(&latency);
    let hit_rate = daemon.store_hit_rate();

    let mut table = TextTable::new(&[
        "clients",
        "queries",
        "elapsed",
        "queries/s",
        "p50",
        "p99",
        "store hit-rate",
    ]);
    table.add_row(&[
        clients.to_string(),
        total.to_string(),
        format!("{:.3} s", elapsed.as_secs_f64()),
        format!("{throughput:.0}"),
        format!("{p50_us:.1} us"),
        format!("{p99_us:.1} us"),
        format!("{:.1}%", 100.0 * hit_rate),
    ]);
    print!("{}", table.render());

    let report = Json::obj(vec![
        ("clients", Json::num(clients as u64)),
        ("queries_per_client", Json::num(queries as u64)),
        ("total_queries", Json::num(total as u64)),
        ("target_sets", Json::num(sets)),
        ("distinct_expressions", Json::num(distinct)),
        ("workers", Json::num(workers as u64)),
        ("elapsed_s", Json::Num(elapsed.as_secs_f64())),
        ("throughput_qps", Json::Num(throughput)),
        ("p50_us", Json::Num(p50_us)),
        ("p99_us", Json::Num(p99_us)),
        ("store_hit_rate", Json::Num(hit_rate)),
    ]);
    merge_report(json_path, "queries", report);

    daemon.shutdown();
}
