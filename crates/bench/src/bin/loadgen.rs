//! Load generator for the `cqd` daemon: K concurrent clients × M queries
//! against an in-process server on an ephemeral port.
//!
//! The workload is deliberately *overlapping* — every client draws from the
//! same bounded pool of MBL expressions per target set — so it measures the
//! three things the server subsystem exists for: sustained throughput
//! (queries/s), tail latency under concurrency (p50/p99), and the
//! cross-session hit-rate of the shared query store.
//!
//! Usage:
//!   loadgen [--clients K] [--queries M] [--sets S] [--distinct D]
//!           [--workers W] [--queue-depth Q] [--json PATH]
//!
//! Results are printed as a table and written as JSON (default
//! `BENCH_server.json`) for regression tracking.

use std::time::Instant;

use bench::{Args, TextTable};
use server::{spawn, Client, CqdConfig, Json, SessionSpec};

/// Deterministic per-client generator (xorshift64*): the workload must not
/// depend on thread scheduling.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// The `i`-th expression of the shared pool: a three-block fill followed by
/// a profiled re-access (each expands to exactly one concrete query, so one
/// request equals one backend-or-store answer).
fn expression(i: u64) -> String {
    let name = |n: u64| mbl::block_name(mbl::BlockId((n % 6) as u32));
    let (a, b, c) = (i % 6, (i / 6) % 6, (i / 36) % 6);
    format!("{} {} {} {}?", name(a), name(b), name(c), name(a))
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() * pct / 100).min(sorted.len() - 1)]
}

fn main() {
    let args = Args::from_env();
    let clients: usize = args.value_or("clients", 8);
    let queries: usize = args.value_or("queries", 2000);
    let sets: u64 = args.value_or("sets", 2);
    let distinct: u64 = args.value_or("distinct", 128);
    let workers: usize = args.value_or("workers", 4);
    let queue_depth: usize = args.value_or("queue-depth", 64);
    let json_path = args.value_of("json").unwrap_or("BENCH_server.json");

    let daemon = spawn(CqdConfig {
        workers,
        queue_depth,
        ..CqdConfig::default()
    })
    .expect("ephemeral port is bindable");
    let addr = daemon.addr();
    println!(
        "loadgen: {clients} clients x {queries} queries, {sets} target sets, \
         {distinct} distinct expressions per set, {workers} workers"
    );

    let started = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client_index| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("daemon accepts connections");
                    let set = (client_index as u64) % sets;
                    client
                        .target(&SessionSpec {
                            set,
                            ..SessionSpec::default()
                        })
                        .expect("valid target");
                    let mut rng = Rng(0x9e37_79b9_7f4a_7c15 ^ (client_index as u64 + 1));
                    let mut latencies = Vec::with_capacity(queries);
                    for _ in 0..queries {
                        let expr = expression(rng.next() % distinct);
                        let begin = Instant::now();
                        let results = client.query(&expr).expect("well-formed MBL");
                        latencies.push(begin.elapsed().as_nanos() as u64);
                        assert_eq!(results.len(), 1, "pool expressions expand to one query");
                    }
                    client.quit().expect("clean disconnect");
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();

    let total = latencies.len();
    latencies.sort_unstable();
    let throughput = total as f64 / elapsed.as_secs_f64();
    let p50_us = percentile(&latencies, 50) as f64 / 1000.0;
    let p99_us = percentile(&latencies, 99) as f64 / 1000.0;
    let hit_rate = daemon.store_hit_rate();

    let mut table = TextTable::new(&[
        "clients",
        "queries",
        "elapsed",
        "queries/s",
        "p50",
        "p99",
        "store hit-rate",
    ]);
    table.add_row(&[
        clients.to_string(),
        total.to_string(),
        format!("{:.3} s", elapsed.as_secs_f64()),
        format!("{throughput:.0}"),
        format!("{p50_us:.1} us"),
        format!("{p99_us:.1} us"),
        format!("{:.1}%", 100.0 * hit_rate),
    ]);
    print!("{}", table.render());

    let report = Json::obj(vec![
        ("clients", Json::num(clients as u64)),
        ("queries_per_client", Json::num(queries as u64)),
        ("total_queries", Json::num(total as u64)),
        ("target_sets", Json::num(sets)),
        ("distinct_expressions", Json::num(distinct)),
        ("workers", Json::num(workers as u64)),
        ("elapsed_s", Json::Num(elapsed.as_secs_f64())),
        ("throughput_qps", Json::Num(throughput)),
        ("p50_us", Json::Num(p50_us)),
        ("p99_us", Json::Num(p99_us)),
        ("store_hit_rate", Json::Num(hit_rate)),
    ]);
    std::fs::write(json_path, report.render() + "\n").expect("benchmark report is writable");
    println!("wrote {json_path}");

    daemon.shutdown();
}
