//! Trace-replay harness: the per-policy hit-rate sweep and the headline
//! learned-machine guarantee.
//!
//! Usage:
//!   `replay [--accesses N] [--lines L] [--seed S] [--max-assoc W]
//!           [--json PATH] [--sweep-only]`
//!
//! Two experiments, both written into `BENCH_trace.json`:
//!
//! 1. **Sweep** — every deterministic policy at ways 2 and 4 × every trace
//!    generator, replayed in-process through the ground-truth simulator:
//!    the per-policy hit-rate table plus a replay-throughput baseline
//!    (accesses/s).
//! 2. **Conformance replay** — every learned automaton of the conformance
//!    set (the same 26 cases the `conformance` bin walks) replayed
//!    *differentially* against its source simulator on all four generators.
//!    Any hit/miss or victim-line disagreement prints the offending access
//!    and sets exit code 1; CI pins the zero-divergence verdict on
//!    100k-access traces.

use std::time::Instant;

use bench::{merge_report, Args, TextTable};
use cache::CacheGeometry;
use polca::{conformance_cases, exact_learn_setup, learn_simulated_policy};
use policies::PolicyKind;
use server::Json;
use trace::{differential_replay, generate, replay_policy, GeneratorKind, TraceSpec};

/// Canonical replay geometry: 64 sets of `assoc` ways with 64-byte lines —
/// the shape of a slice-less L1.
fn geometry(assoc: usize) -> CacheGeometry {
    CacheGeometry::new(assoc, 64, 1, 64)
}

fn trace_spec(generator: GeneratorKind, accesses: usize, lines: usize, seed: u64) -> TraceSpec {
    TraceSpec {
        generator,
        accesses,
        lines,
        seed,
        ..TraceSpec::default()
    }
}

/// Experiment 1: policy × generator hit rates through the simulator, with
/// an accesses/s throughput baseline.  Returns the JSON record.
fn run_sweep(accesses: usize, lines: usize, seed: u64) -> Json {
    let mut table = TextTable::new(&[
        "policy",
        "ways",
        "sequential",
        "strided",
        "zipfian",
        "pointer-chase",
    ]);
    let mut rows: Vec<(String, Json)> = Vec::new();
    let mut replayed = 0u64;
    let started = Instant::now();
    for assoc in [2usize, 4] {
        for kind in PolicyKind::ALL_DETERMINISTIC {
            if !kind.supports_associativity(assoc) {
                continue;
            }
            let mut cells = vec![kind.to_string(), assoc.to_string()];
            let mut rates: Vec<(String, Json)> = Vec::new();
            for generator in GeneratorKind::ALL {
                let trace = generate(&trace_spec(generator, accesses, lines, seed));
                let counts =
                    replay_policy(&trace, kind, geometry(assoc)).expect("supported associativity");
                assert_eq!(counts.hits + counts.misses, counts.accesses);
                replayed += counts.accesses;
                cells.push(format!("{:.1}%", 100.0 * counts.hit_rate()));
                rates.push((generator.name().to_string(), Json::Num(counts.hit_rate())));
            }
            table.add_row(&cells);
            rows.push((format!("{kind}@{assoc}"), Json::Obj(rates)));
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let throughput = replayed as f64 / elapsed;
    print!("{}", table.render());
    println!(
        "sweep: replayed {replayed} accesses in {elapsed:.3} s \
         ({throughput:.0} accesses/s, generation included)"
    );
    Json::obj(vec![
        ("accesses", Json::num(accesses as u64)),
        ("lines", Json::num(lines as u64)),
        ("seed", Json::num(seed)),
        ("replayed_accesses", Json::num(replayed)),
        ("elapsed_s", Json::Num(elapsed)),
        ("throughput_accesses_per_s", Json::Num(throughput)),
        ("hit_rates", Json::Obj(rows)),
    ])
}

/// Experiment 2: learn the whole conformance set and replay every learned
/// machine differentially against its simulator on every generator.
/// Returns the JSON record and the number of diverged cases.
fn run_conformance_replay(
    accesses: usize,
    lines: usize,
    seed: u64,
    max_assoc: usize,
) -> (Json, usize) {
    let mut table = TextTable::new(&[
        "policy", "ways", "states", "replayed", "hit-rate", "verdict",
    ]);
    let mut divergences = 0usize;
    let mut cases = 0usize;
    let mut replayed = 0u64;
    let started = Instant::now();
    for (kind, assoc) in conformance_cases(max_assoc) {
        cases += 1;
        let outcome = match learn_simulated_policy(kind, assoc, &exact_learn_setup(assoc)) {
            Ok(outcome) => outcome,
            Err(e) => {
                println!("learning {kind}@{assoc} failed: {e}");
                divergences += 1;
                continue;
            }
        };
        let mut case_replayed = 0u64;
        let mut hits = 0u64;
        let mut verdict = "ok".to_string();
        for generator in GeneratorKind::ALL {
            let trace = generate(&trace_spec(generator, accesses, lines, seed));
            let report = differential_replay(&trace, kind, geometry(assoc), &outcome.machine)
                .expect("the learned machine matches the geometry");
            case_replayed += report.simulator.accesses;
            hits += report.simulator.hits;
            if let Some(divergence) = report.divergence {
                verdict = format!("DIVERGED ({generator}): {divergence}");
                divergences += 1;
                break;
            }
        }
        replayed += case_replayed;
        table.add_row(&[
            kind.to_string(),
            assoc.to_string(),
            outcome.machine.num_states().to_string(),
            case_replayed.to_string(),
            format!("{:.1}%", 100.0 * hits as f64 / case_replayed.max(1) as f64),
            verdict,
        ]);
    }
    let elapsed = started.elapsed().as_secs_f64();
    print!("{}", table.render());
    println!(
        "conformance replay: {cases} learned machines x {} generators, \
         {replayed} accesses in {elapsed:.1} s, {divergences} divergence(s)",
        GeneratorKind::ALL.len()
    );
    let record = Json::obj(vec![
        ("accesses_per_trace", Json::num(accesses as u64)),
        ("lines", Json::num(lines as u64)),
        ("seed", Json::num(seed)),
        ("cases", Json::num(cases as u64)),
        ("replayed_accesses", Json::num(replayed)),
        ("elapsed_s", Json::Num(elapsed)),
        ("divergences", Json::num(divergences as u64)),
    ]);
    (record, divergences)
}

fn main() {
    let args = Args::from_env();
    let accesses: usize = args.value_or("accesses", 100_000);
    let lines: usize = args.value_or("lines", 256);
    let seed: u64 = args.value_or("seed", 1);
    let max_assoc: usize = args.value_or("max-assoc", 4);
    let json_path = args.value_of("json").unwrap_or("BENCH_trace.json");

    println!("replay: {accesses} accesses x {lines}-line working set per trace, seed {seed}");
    let sweep = run_sweep(accesses, lines, seed);
    merge_report(json_path, "replay", sweep);

    if args.has_flag("sweep-only") {
        return;
    }
    let (record, divergences) = run_conformance_replay(accesses, lines, seed, max_assoc);
    merge_report(json_path, "conformance_replay", record);
    if divergences > 0 {
        println!("replay: {divergences} case(s) diverged");
        std::process::exit(1);
    }
    println!("replay: every learned machine agrees with its simulator under traffic");
}
