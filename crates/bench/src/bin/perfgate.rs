//! The CI perf-regression gate: re-runs the pinned learning workloads and
//! fails when performance or — worse — exactness drifts.
//!
//! Four workloads cover the learning hot path end to end: the two
//! previously-undocumented Intel policies (`New1/4`, `New2/4`), the
//! worst-case Table 2 row at the default associativity cap (`SRRIP-FP/4`),
//! and the whole `table2 --max-assoc 4` sweep.  For every learned unit the
//! gate records the state count, the membership-query count, and the wall
//! time, writes the report under the `learn` key of `BENCH_learn.json`, and
//! compares against the committed baseline:
//!
//! * a **membership-query or state count drifting by even one** fails the
//!   gate unconditionally — those numbers are byte-pinned reproduction
//!   artifacts, and "faster but different" means the optimization changed
//!   the algorithm;
//! * a workload **slower than baseline by more than `--time-tolerance`**
//!   (default 40%) fails the gate as a performance regression.  Timing
//!   compares workload totals, not per-unit times, so sub-millisecond units
//!   do not produce noise failures.  The default tolerance is wide because
//!   per-workload wall time on a busy single-core box swings ±25% run to
//!   run; the regressions the gate exists to catch were 2–3×.
//!
//! Usage:
//!   perfgate [--baseline PATH] [--json PATH] [--time-tolerance PCT]
//!            [--store-dir DIR] [--workloads LIST] [--write-baseline]
//!
//! `--write-baseline` re-measures and overwrites the baseline file instead of
//! gating — run it (on the reference machine) whenever a deliberate
//! performance or pinned-count change lands.
//!
//! `--store-dir DIR` routes every campaign through a durable [`QueryStore`]
//! rooted at `DIR` instead of the memory-only simulated oracle.  The counts
//! are gated against the same baseline — persistence must be invisible to
//! the learner, byte for byte — but the *time* gate is skipped: the engine
//! path trades the packed-simulator fast path for memoization and disk, so
//! the baseline times do not apply to it.
//!
//! `--workloads LIST` (comma-separated names) restricts the run to a subset
//! of the pinned workloads — CI uses it to keep the store-mode count pin
//! fast.

use std::sync::Arc;
use std::time::Instant;

use bench::{merge_report, Args, TextTable};
use cachequery::{QueryEngine, QueryStore};
use polca::{learn_policy, learn_simulated_policy, CacheQueryOracle, LearnSetup, PolicySimBackend};
use policies::PolicyKind;
use server::Json;

/// Default location of the committed baseline, relative to the repo root
/// (where CI and the documented invocations run).
const DEFAULT_BASELINE: &str = "crates/bench/baselines/BENCH_learn.json";

/// One learning workload: a named set of `(policy, associativity)` units
/// whose aggregate wall time is gated.
struct Workload {
    name: &'static str,
    units: Vec<(PolicyKind, usize)>,
}

/// The pinned workloads.  `table2_max_assoc_4` mirrors the default rows of
/// the `table2` binary clamped to associativity 4; the three headline units
/// are also gated on their own so a regression there is named directly.
fn workloads() -> Vec<Workload> {
    let table2: Vec<(PolicyKind, usize)> = [
        (PolicyKind::Fifo, vec![2, 4]),
        (PolicyKind::Lru, vec![2, 4]),
        (PolicyKind::Plru, vec![2, 4]),
        (PolicyKind::Mru, vec![2, 4]),
        (PolicyKind::Lip, vec![2, 4]),
        (PolicyKind::SrripHp, vec![2, 4]),
        (PolicyKind::SrripFp, vec![2, 4]),
    ]
    .into_iter()
    .flat_map(|(kind, assocs)| assocs.into_iter().map(move |a| (kind, a)))
    .collect();
    vec![
        Workload {
            name: "new1_4",
            units: vec![(PolicyKind::New1, 4)],
        },
        Workload {
            name: "new2_4",
            units: vec![(PolicyKind::New2, 4)],
        },
        Workload {
            name: "srrip_fp_4",
            units: vec![(PolicyKind::SrripFp, 4)],
        },
        Workload {
            name: "table2_max_assoc_4",
            units: table2,
        },
    ]
}

/// Measured result of one learned unit.
struct Unit {
    policy: String,
    assoc: usize,
    states: u64,
    queries: u64,
    time_ms: f64,
}

/// Measured result of one workload.
struct Measured {
    name: &'static str,
    time_ms: f64,
    units: Vec<Unit>,
}

fn measure(workload: &Workload, store: Option<&Arc<QueryStore>>) -> Measured {
    // One worker pins the membership-query count (parallel workers split
    // conformance chunks non-deterministically); everything else is the
    // default learning configuration the pinned numbers were taken with.
    let setup = LearnSetup {
        workers: 1,
        ..LearnSetup::default()
    };
    let mut units = Vec::new();
    let started = Instant::now();
    for &(kind, assoc) in &workload.units {
        let unit_start = Instant::now();
        let outcome = match store {
            None => learn_simulated_policy(kind, assoc, &setup),
            // The durable path: the same campaign through a persisting,
            // memoizing engine.  The query counts must not notice.
            Some(store) => {
                let backend = PolicySimBackend::new(kind, assoc)
                    .unwrap_or_else(|e| panic!("building {kind}@{assoc} failed: {e}"));
                let engine = QueryEngine::with_store(backend, Arc::clone(store));
                let oracle =
                    CacheQueryOracle::from_engine(engine).expect("simulated backend is configured");
                learn_policy(oracle, &setup)
            }
        };
        let outcome = outcome.unwrap_or_else(|e| panic!("learning {kind}@{assoc} failed: {e}"));
        units.push(Unit {
            policy: kind.to_string(),
            assoc,
            states: outcome.machine.num_states() as u64,
            queries: outcome.stats.membership_queries,
            time_ms: unit_start.elapsed().as_secs_f64() * 1000.0,
        });
    }
    Measured {
        name: workload.name,
        time_ms: started.elapsed().as_secs_f64() * 1000.0,
        units,
    }
}

fn report_json(measured: &[Measured]) -> Json {
    Json::obj(vec![(
        "workloads",
        Json::Arr(
            measured
                .iter()
                .map(|w| {
                    Json::obj(vec![
                        ("name", Json::str(w.name)),
                        ("time_ms", Json::Num(w.time_ms)),
                        (
                            "units",
                            Json::Arr(
                                w.units
                                    .iter()
                                    .map(|u| {
                                        Json::obj(vec![
                                            ("policy", Json::str(u.policy.clone())),
                                            ("assoc", Json::num(u.assoc as u64)),
                                            ("states", Json::num(u.states)),
                                            ("queries", Json::num(u.queries)),
                                            ("time_ms", Json::Num(u.time_ms)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        ),
    )])
}

/// A baseline workload entry, as parsed back from the committed JSON.
struct BaselineWorkload {
    time_ms: f64,
    /// `(policy, assoc) -> (states, queries)`.
    units: Vec<(String, u64, u64, u64)>,
}

fn parse_baseline(text: &str) -> Result<Vec<(String, BaselineWorkload)>, String> {
    let root = Json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let workloads = root
        .get("learn")
        .and_then(|l| l.get("workloads"))
        .and_then(Json::as_arr)
        .ok_or("baseline has no learn.workloads array")?;
    let mut out = Vec::new();
    for w in workloads {
        let name = w
            .get("name")
            .and_then(Json::as_str)
            .ok_or("workload without a name")?
            .to_string();
        let time_ms = w
            .get("time_ms")
            .and_then(Json::as_f64)
            .ok_or("workload without time_ms")?;
        let mut units = Vec::new();
        for u in w.get("units").and_then(Json::as_arr).unwrap_or(&[]) {
            units.push((
                u.get("policy")
                    .and_then(Json::as_str)
                    .ok_or("unit without a policy")?
                    .to_string(),
                u.get("assoc").and_then(Json::as_u64).ok_or("unit assoc")?,
                u.get("states")
                    .and_then(Json::as_u64)
                    .ok_or("unit states")?,
                u.get("queries")
                    .and_then(Json::as_u64)
                    .ok_or("unit queries")?,
            ));
        }
        out.push((name, BaselineWorkload { time_ms, units }));
    }
    Ok(out)
}

fn main() {
    let args = Args::from_env();
    let baseline_path = args.value_of("baseline").unwrap_or(DEFAULT_BASELINE);
    let json_path = args.value_of("json").unwrap_or("BENCH_learn.json");
    let tolerance_pct = args.value_or("time-tolerance", 40.0f64);
    let write_baseline = args.has_flag("write-baseline");
    let store = args.value_of("store-dir").map(|dir| {
        let store = QueryStore::open(dir).unwrap_or_else(|e| panic!("opening store {dir}: {e}"));
        println!("perfgate: campaigns run through a durable store at {dir}");
        Arc::new(store)
    });

    let selected: Vec<Workload> = match args.value_of("workloads") {
        None => workloads(),
        Some(list) => {
            let wanted: Vec<&str> = list.split(',').map(str::trim).collect();
            let selected: Vec<Workload> = workloads()
                .into_iter()
                .filter(|w| wanted.contains(&w.name))
                .collect();
            for name in &wanted {
                assert!(
                    selected.iter().any(|w| w.name == *name),
                    "unknown workload '{name}' (known: new1_4, new2_4, srrip_fp_4, table2_max_assoc_4)"
                );
            }
            selected
        }
    };

    println!("perfgate: pinned learning workloads (tolerance {tolerance_pct}%)");
    println!();

    let measured: Vec<Measured> = selected
        .iter()
        .map(|w| measure(w, store.as_ref()))
        .collect();
    if let Some(store) = &store {
        store.flush();
    }

    let mut table = TextTable::new(&[
        "Workload", "Policy", "Assoc.", "# States", "Queries", "Time",
    ]);
    for w in &measured {
        for u in &w.units {
            table.add_row(&[
                w.name.to_string(),
                u.policy.clone(),
                u.assoc.to_string(),
                u.states.to_string(),
                u.queries.to_string(),
                format!("{:.1} ms", u.time_ms),
            ]);
        }
        table.add_row(&[
            w.name.to_string(),
            "(total)".to_string(),
            String::new(),
            String::new(),
            String::new(),
            format!("{:.1} ms", w.time_ms),
        ]);
    }
    print!("{}", table.render());
    println!();

    let report = report_json(&measured);
    if write_baseline {
        if let Some(dir) = std::path::Path::new(baseline_path).parent() {
            std::fs::create_dir_all(dir).expect("baseline directory is creatable");
        }
        merge_report(baseline_path, "learn", report);
        println!("baseline rewritten: {baseline_path}");
        return;
    }
    merge_report(json_path, "learn", report);

    let baseline_text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("perfgate: cannot read baseline {baseline_path}: {e}");
            eprintln!("perfgate: run with --write-baseline to create it");
            std::process::exit(1);
        }
    };
    let baseline = match parse_baseline(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perfgate: {e}");
            std::process::exit(1);
        }
    };

    let mut violations: Vec<String> = Vec::new();
    for w in &measured {
        let Some((_, base)) = baseline.iter().find(|(name, _)| name == w.name) else {
            violations.push(format!("workload {} has no baseline entry", w.name));
            continue;
        };
        // Exactness first: every learned unit must match the baseline counts
        // bit for bit.
        for u in &w.units {
            let Some((_, _, base_states, base_queries)) = base
                .units
                .iter()
                .find(|(p, a, _, _)| *p == u.policy && *a == u.assoc as u64)
            else {
                violations.push(format!(
                    "{}: {}@{} is not in the baseline",
                    w.name, u.policy, u.assoc
                ));
                continue;
            };
            if u.states != *base_states {
                violations.push(format!(
                    "{}: {}@{} learned {} states (baseline {})",
                    w.name, u.policy, u.assoc, u.states, base_states
                ));
            }
            if u.queries != *base_queries {
                violations.push(format!(
                    "{}: {}@{} issued {} membership queries (baseline {})",
                    w.name, u.policy, u.assoc, u.queries, base_queries
                ));
            }
        }
        if store.is_some() {
            // The store-backed engine path is a different machine than the
            // memory-only oracle the baseline timed; only counts are gated.
            println!(
                "ok: {} counts pinned ({:.1} ms through the store, untimed)",
                w.name, w.time_ms
            );
            continue;
        }
        let limit = base.time_ms * (1.0 + tolerance_pct / 100.0);
        if w.time_ms > limit {
            violations.push(format!(
                "{}: {:.1} ms exceeds baseline {:.1} ms by more than {}%",
                w.name, w.time_ms, base.time_ms, tolerance_pct
            ));
        } else {
            println!(
                "ok: {} {:.1} ms (baseline {:.1} ms, limit {:.1} ms)",
                w.name, w.time_ms, base.time_ms, limit
            );
        }
    }

    if !violations.is_empty() {
        println!();
        for v in &violations {
            eprintln!("REGRESSION: {v}");
        }
        std::process::exit(1);
    }
    println!();
    println!("perfgate: all workloads within bounds, all counts pinned");
}
