//! Table 3: specifications of the (simulated) processors.
//!
//! Prints the cache geometries of the three simulated CPU models, together
//! with the per-level replacement policy configuration the simulation uses
//! (the paper's Table 3 lists only the geometry; the policy column is this
//! reproduction's configured ground truth, i.e. what Table 4 re-discovers).

use bench::TextTable;
use cache::LevelId;
use hardware::{CpuModel, LevelPolicy};

fn main() {
    println!("Table 3: processors' specifications (simulated models)");
    println!();
    let mut table = TextTable::new(&[
        "CPU",
        "Cache level",
        "Assoc.",
        "Slices",
        "Sets per slice",
        "Line size",
        "Inclusive",
        "Configured policy",
        "CAT",
    ]);
    for model in CpuModel::ALL {
        let spec = model.spec();
        for level in LevelId::ALL {
            let Some(level_spec) = spec.level(level) else {
                continue;
            };
            let geometry = level_spec.geometry;
            let policy = match &level_spec.policy {
                LevelPolicy::Fixed(kind) => kind.name().to_string(),
                LevelPolicy::Adaptive { roles } => {
                    let leaders = roles
                        .iter()
                        .filter(|r| **r != cache::DuelingRole::Follower)
                        .count();
                    format!("adaptive (set dueling, {leaders} leader sets)")
                }
            };
            table.add_row(&[
                spec.name.to_string(),
                level.to_string(),
                geometry.associativity.to_string(),
                geometry.slices.to_string(),
                geometry.sets_per_slice.to_string(),
                format!("{} B", geometry.line_size),
                if level_spec.inclusive { "yes" } else { "no" }.to_string(),
                policy,
                if level == LevelId::L3 {
                    if spec.supports_cat { "yes" } else { "no" }.to_string()
                } else {
                    "-".to_string()
                },
            ]);
        }
    }
    println!("{}", table.render());
    println!("Capacities: L1 32 KiB, Haswell L2 256 KiB / Skylake & Kaby Lake L2 256 KiB,");
    println!("L3 8 MiB (Haswell, 4 slices x 2048 sets x 16 ways) / 6-8 MiB (Skylake, Kaby Lake).");
}
