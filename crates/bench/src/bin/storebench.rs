//! Store-eviction benchmark: replays real query-store traffic under each
//! registered eviction policy and reports hit-rate degradation curves.
//!
//! Three phases:
//!
//! 1. **Capture** — learning campaigns for a set of policy simulators run
//!    through one shared [`QueryStore`] carrying a [`StoreTap`]; every
//!    lookup and record the campaigns issue is captured as an event.  A
//!    revisit pass then re-looks-up a sample of each namespace's recorded
//!    queries round-robin, modelling the cross-campaign reuse a long-lived
//!    daemon sees.
//! 2. **Replay** — the captured event stream is replayed into fresh
//!    bounded stores at shrinking entry caps (fractions of the uncapped
//!    peak), once per eviction policy.  The store-lookup hit rate at each
//!    cap, relative to the uncapped baseline, is the degradation curve.
//! 3. **Durability pin** — an LRU campaign is learned cold through a
//!    durable store, then again warm after a reopen: the state and
//!    membership-query counts must be byte-identical to the in-memory
//!    baseline (`BENCH_learn.json`), and the warm run must never fall
//!    through to the backend.  This is the proof that persistence does not
//!    perturb the paper's pinned Table 2 numbers.
//!
//! The report lands under the `store` key of `BENCH_store.json`.
//!
//! Usage:
//!   storebench [--assoc N] [--ways N] [--json PATH] [--baseline PATH]
//!              [--smoke]
//!
//! `--smoke` shrinks the run for CI: associativity 2, two capture
//! policies, three curve points.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use bench::{merge_report, Args, TextTable};
use cache::HitMiss;
use cachequery::{PolicyEvictor, QueryEngine, QueryStore, StoreOptions, StoreTap};
use mbl::{expand_query, render_query, Query};
use polca::{learn_policy, CacheQueryOracle, LearnSetup, PolicySimBackend};
use policies::PolicyKind;
use server::Json;

/// Default location of the committed learning baseline whose LRU entry the
/// durability pin compares against.
const DEFAULT_BASELINE: &str = "crates/bench/baselines/BENCH_learn.json";

/// One captured store event, namespaces interned.
enum Event {
    Lookup {
        ns: u32,
        query: Query,
    },
    Record {
        ns: u32,
        query: Query,
        outcomes: Vec<HitMiss>,
    },
}

/// One raw captured event: interned namespace, rendered query, and the
/// recorded outcomes (`None` for a lookup).
type RawEvent = (u32, String, Option<Vec<HitMiss>>);

/// Tap that captures the full store traffic of the capture campaigns.
#[derive(Debug, Default)]
struct CaptureTap {
    names: Mutex<HashMap<String, u32>>,
    events: Mutex<Vec<RawEvent>>,
}

impl CaptureTap {
    fn intern(&self, namespace: &str) -> u32 {
        let mut names = self.names.lock().unwrap();
        let next = names.len() as u32;
        *names.entry(namespace.to_string()).or_insert(next)
    }
}

impl StoreTap for CaptureTap {
    fn on_lookup(&self, namespace: &str, query: &Query, _hit: bool) {
        let ns = self.intern(namespace);
        self.events
            .lock()
            .unwrap()
            .push((ns, render_query(query), None));
    }

    fn on_record(&self, namespace: &str, query: &Query, outcomes: &[HitMiss]) {
        let ns = self.intern(namespace);
        self.events
            .lock()
            .unwrap()
            .push((ns, render_query(query), Some(outcomes.to_vec())));
    }
}

/// Runs the capture campaigns and returns the parsed event stream, the
/// namespace table and the uncapped peak entry count.
fn capture(kinds: &[PolicyKind], assoc: usize) -> (Vec<Event>, Vec<String>, u64) {
    let tap = Arc::new(CaptureTap::default());
    let store = Arc::new(
        QueryStore::with_options(StoreOptions {
            tap: Some(Arc::clone(&tap) as Arc<dyn StoreTap>),
            ..StoreOptions::default()
        })
        .expect("a memory-only store performs no I/O"),
    );
    let setup = LearnSetup {
        workers: 1,
        ..LearnSetup::default()
    };
    for &kind in kinds {
        let backend =
            PolicySimBackend::new(kind, assoc).unwrap_or_else(|e| panic!("{kind}@{assoc}: {e}"));
        let engine = QueryEngine::with_store(backend, Arc::clone(&store));
        let oracle = CacheQueryOracle::from_engine(engine).expect("configured backend");
        learn_policy(oracle, &setup).unwrap_or_else(|e| panic!("learning {kind}@{assoc}: {e}"));
    }

    // Revisit pass: walk the namespaces round-robin, re-looking-up every
    // 16th recorded query.  A long-lived daemon sees exactly this shape —
    // old campaigns queried again while new ones run — and it is what a
    // bad eviction policy gets wrong.
    let recorded: Vec<(String, Query)> = {
        let names = tap.names.lock().unwrap();
        let mut by_id: Vec<&String> = names.keys().collect();
        by_id.sort_by_key(|name| names[*name]);
        let events = tap.events.lock().unwrap();
        events
            .iter()
            .filter(|(_, _, outcomes)| outcomes.is_some())
            .step_by(16)
            .map(|(ns, mbl, _)| {
                let query = expand_query(mbl, assoc).unwrap().pop().unwrap();
                (by_id[*ns as usize].clone(), query)
            })
            .collect()
    };
    for (namespace, query) in &recorded {
        store.lookup(namespace, query);
    }

    let peak = store.entries();
    let names = std::mem::take(&mut *tap.names.lock().unwrap());
    let mut table = vec![String::new(); names.len()];
    for (name, id) in names {
        table[id as usize] = name;
    }
    let events = std::mem::take(&mut *tap.events.lock().unwrap())
        .into_iter()
        .map(|(ns, mbl, outcomes)| {
            let query = expand_query(&mbl, assoc).unwrap().pop().unwrap();
            match outcomes {
                None => Event::Lookup { ns, query },
                Some(outcomes) => Event::Record {
                    ns,
                    query,
                    outcomes,
                },
            }
        })
        .collect();
    (events, table, peak)
}

/// Interleaves the capture stream across namespaces in deterministic,
/// unevenly-sized bursts.  Capture runs the campaigns back to back; a live
/// daemon runs them concurrently, with some campaigns bursting while
/// others idle — and that skewed interleaving is what separates good
/// eviction policies from bad ones at a tight cap.  A fixed LCG drives the
/// schedule so every replay sees the identical stream.
fn interleave(events: Vec<Event>, namespaces: usize) -> Vec<Event> {
    let mut queues: Vec<std::collections::VecDeque<Event>> = (0..namespaces)
        .map(|_| std::collections::VecDeque::new())
        .collect();
    for event in events {
        let ns = match &event {
            Event::Lookup { ns, .. } | Event::Record { ns, .. } => *ns as usize,
        };
        queues[ns].push_back(event);
    }
    let mut out = Vec::with_capacity(queues.iter().map(|q| q.len()).sum());
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut lcg = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    while queues.iter().any(|q| !q.is_empty()) {
        let pick = lcg() as usize % queues.len();
        let burst = 16 + lcg() as usize % 241;
        for _ in 0..burst {
            let Some(event) = queues[pick].pop_front() else {
                break;
            };
            out.push(event);
        }
    }
    out
}

/// One point of a degradation curve.
struct Point {
    cap: u64,
    cap_permille: u32,
    hits: u64,
    misses: u64,
    evictions: u64,
    time_ms: f64,
}

impl Point {
    fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Replays the captured stream into a fresh store capped at `cap` entries
/// under `evictor`; `None` replays uncapped (the baseline).
fn replay(
    events: &[Event],
    names: &[String],
    cap: Option<u64>,
    evictor: Option<PolicyEvictor>,
    cap_permille: u32,
) -> Point {
    let store = QueryStore::with_options(StoreOptions {
        max_entries: cap,
        evictor: evictor.map(|e| Box::new(e) as _),
        ..StoreOptions::default()
    })
    .expect("a memory-only store performs no I/O");
    let started = Instant::now();
    for event in events {
        match event {
            Event::Lookup { ns, query } => {
                store.lookup(&names[*ns as usize], query);
            }
            Event::Record {
                ns,
                query,
                outcomes,
            } => {
                store.record(&names[*ns as usize], query, outcomes, true);
            }
        }
    }
    let (hits, misses) = store.counts();
    Point {
        cap: cap.unwrap_or(0),
        cap_permille,
        hits,
        misses,
        evictions: store.evictions(),
        time_ms: started.elapsed().as_secs_f64() * 1000.0,
    }
}

/// Result of the durability pin: the same campaign cold (fresh durable
/// store), then warm (after a reopen of the same directory).
struct DurablePin {
    states: u64,
    queries: u64,
    warm_states: u64,
    warm_queries: u64,
    replayed: u64,
    warm_misses: u64,
}

/// Learns LRU at `assoc` through a durable store twice — cold, then warm
/// over a reopened directory — so persistence itself is on the query path
/// of a pinned workload.
fn durable_pin(assoc: usize) -> DurablePin {
    let dir = std::env::temp_dir().join(format!("cq_storebench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let setup = LearnSetup {
        workers: 1,
        ..LearnSetup::default()
    };
    let campaign = |store: &Arc<QueryStore>| {
        let backend = PolicySimBackend::new(PolicyKind::Lru, assoc).expect("LRU supports assoc");
        let engine = QueryEngine::with_store(backend, Arc::clone(store));
        let oracle = CacheQueryOracle::from_engine(engine).expect("configured backend");
        let outcome = learn_policy(oracle, &setup).expect("LRU campaign");
        (
            outcome.machine.num_states() as u64,
            outcome.stats.membership_queries,
        )
    };

    let store = Arc::new(QueryStore::open(&dir).expect("creatable store dir"));
    let (states, queries) = campaign(&store);
    // Graceful shutdown = snapshot, exactly like the daemon: a campaign
    // bursts records faster than the writer drains its bounded channel, and
    // the compacted snapshot is what heals any dropped appends.
    store.snapshot();
    drop(store);

    let store = Arc::new(QueryStore::open(&dir).expect("reopenable store dir"));
    let replayed = store.persist_stats().replayed;
    let (warm_states, warm_queries) = campaign(&store);
    let (_, warm_misses) = store.counts();
    store.flush();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    DurablePin {
        states,
        queries,
        warm_states,
        warm_queries,
        replayed,
        warm_misses,
    }
}

/// Reads the pinned `(states, queries)` of `LRU@assoc` from the committed
/// learning baseline, `None` when the baseline is missing or lacks the row.
fn baseline_lru(path: &str, assoc: usize) -> Option<(u64, u64)> {
    let root = Json::parse(&std::fs::read_to_string(path).ok()?).ok()?;
    let workloads = root.get("learn")?.get("workloads")?.as_arr()?;
    for w in workloads {
        for u in w.get("units").and_then(Json::as_arr).unwrap_or(&[]) {
            if u.get("policy").and_then(Json::as_str) == Some("LRU")
                && u.get("assoc").and_then(Json::as_u64) == Some(assoc as u64)
            {
                return Some((
                    u.get("states").and_then(Json::as_u64)?,
                    u.get("queries").and_then(Json::as_u64)?,
                ));
            }
        }
    }
    None
}

fn main() {
    let args = Args::from_env();
    let smoke = args.has_flag("smoke");
    let assoc = args.value_or("assoc", if smoke { 2usize } else { 4 });
    // 0 = auto: as many ways as captured namespaces.  The paper's policy
    // machines model *full* sets — with empty ways the victim scan
    // degenerates and every policy picks the same nearest-resident way, so
    // a meaningful comparison needs full occupancy.
    let ways = args.value_or("ways", 0usize);
    let json_path = args.value_of("json").unwrap_or("BENCH_store.json");
    let baseline_path = args.value_of("baseline").unwrap_or(DEFAULT_BASELINE);

    let kinds: Vec<PolicyKind> = if smoke {
        vec![PolicyKind::Fifo, PolicyKind::Lru]
    } else {
        vec![
            PolicyKind::Fifo,
            PolicyKind::Lru,
            PolicyKind::Plru,
            PolicyKind::Mru,
            PolicyKind::Lip,
        ]
    };
    let caps_permille: &[u32] = if smoke {
        &[1000, 500, 250]
    } else {
        &[1000, 750, 500, 250, 125]
    };
    let evictors = [
        PolicyKind::Lru,
        PolicyKind::SrripHp,
        PolicyKind::Lip,
        PolicyKind::Fifo,
    ];

    println!(
        "storebench: capturing {} campaigns at associativity {assoc}",
        kinds.len()
    );
    let capture_start = Instant::now();
    let (events, names, peak) = capture(&kinds, assoc);
    let events = interleave(events, names.len());
    let ways = if ways == 0 { names.len() } else { ways };
    let lookups = events
        .iter()
        .filter(|e| matches!(e, Event::Lookup { .. }))
        .count() as u64;
    let records = events.len() as u64 - lookups;
    println!(
        "captured {} events ({} lookups, {} records) across {} namespaces, \
         peak {} entries, {:.1} ms",
        events.len(),
        lookups,
        records,
        names.len(),
        peak,
        capture_start.elapsed().as_secs_f64() * 1000.0
    );
    println!();

    let baseline_point = replay(&events, &names, None, None, 1000);
    let baseline_rate = baseline_point.hit_rate();

    let mut table = TextTable::new(&[
        "Evictor",
        "Cap",
        "Cap %",
        "Hit rate",
        "Degradation",
        "Evictions",
    ]);
    let mut curves: Vec<(String, Vec<Point>)> = Vec::new();
    for kind in evictors {
        let mut points = Vec::new();
        for &permille in caps_permille {
            let cap = (peak * u64::from(permille) / 1000).max(1);
            let evictor = PolicyEvictor::of_kind(kind, ways)
                .unwrap_or_else(|e| panic!("evictor {kind}@{ways}: {e}"));
            let point = replay(&events, &names, Some(cap), Some(evictor), permille);
            table.add_row(&[
                format!("{kind}@{ways}"),
                cap.to_string(),
                format!("{:.1}", f64::from(permille) / 10.0),
                format!("{:.4}", point.hit_rate()),
                format!("{:+.2}%", (point.hit_rate() - baseline_rate) * 100.0),
                point.evictions.to_string(),
            ]);
            points.push(point);
        }
        curves.push((format!("{kind}@{ways}"), points));
    }
    print!("{}", table.render());
    println!();

    println!("durability pin: LRU@{assoc} cold vs. warm over a reopened store");
    let pin = durable_pin(assoc);
    println!(
        "cold {} states / {} queries; warm {} states / {} queries \
         ({} records replayed, {} warm store misses)",
        pin.states, pin.queries, pin.warm_states, pin.warm_queries, pin.replayed, pin.warm_misses
    );

    let mut violations = Vec::new();
    if (pin.states, pin.queries) != (pin.warm_states, pin.warm_queries) {
        violations.push(format!(
            "warm campaign drifted: {}/{} vs. cold {}/{}",
            pin.warm_states, pin.warm_queries, pin.states, pin.queries
        ));
    }
    if pin.replayed == 0 {
        violations.push("reopen replayed zero records".to_string());
    }
    if pin.warm_misses > 0 {
        violations.push(format!(
            "warm campaign fell through to the backend {} times (recovery must be exact)",
            pin.warm_misses
        ));
    }
    match baseline_lru(baseline_path, assoc) {
        Some((states, queries)) => {
            if (pin.states, pin.queries) != (states, queries) {
                violations.push(format!(
                    "persistence perturbed the pinned counts: {}/{} vs. baseline {}/{}",
                    pin.states, pin.queries, states, queries
                ));
            } else {
                println!(
                    "pinned counts hold with persistence on: {states} states / {queries} queries"
                );
            }
        }
        None => println!("note: no LRU@{assoc} row in {baseline_path}; pin not compared"),
    }

    let report = Json::obj(vec![
        (
            "capture",
            Json::obj(vec![
                (
                    "policies",
                    Json::Arr(kinds.iter().map(|k| Json::str(k.to_string())).collect()),
                ),
                ("assoc", Json::num(assoc as u64)),
                ("namespaces", Json::num(names.len() as u64)),
                ("lookups", Json::num(lookups)),
                ("records", Json::num(records)),
                ("peak_entries", Json::num(peak)),
                ("baseline_hit_rate", Json::Num(baseline_rate)),
            ]),
        ),
        (
            "curves",
            Json::Arr(
                curves
                    .iter()
                    .map(|(evictor, points)| {
                        Json::obj(vec![
                            ("evictor", Json::str(evictor.clone())),
                            (
                                "points",
                                Json::Arr(
                                    points
                                        .iter()
                                        .map(|p| {
                                            Json::obj(vec![
                                                ("cap", Json::num(p.cap)),
                                                (
                                                    "cap_permille",
                                                    Json::num(u64::from(p.cap_permille)),
                                                ),
                                                ("hits", Json::num(p.hits)),
                                                ("misses", Json::num(p.misses)),
                                                ("hit_rate", Json::Num(p.hit_rate())),
                                                ("evictions", Json::num(p.evictions)),
                                                ("time_ms", Json::Num(p.time_ms)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "durable",
            Json::obj(vec![
                ("policy", Json::str("LRU")),
                ("assoc", Json::num(assoc as u64)),
                ("states", Json::num(pin.states)),
                ("queries", Json::num(pin.queries)),
                ("warm_states", Json::num(pin.warm_states)),
                ("warm_queries", Json::num(pin.warm_queries)),
                ("replayed", Json::num(pin.replayed)),
                ("warm_misses", Json::num(pin.warm_misses)),
            ]),
        ),
    ]);
    merge_report(json_path, "store", report);
    println!("report written: {json_path}");

    if !violations.is_empty() {
        println!();
        for v in &violations {
            eprintln!("FAILURE: {v}");
        }
        std::process::exit(1);
    }
}
