//! Table 2: learning replacement policies from software-simulated caches.
//!
//! For every policy and associativity the harness runs the full Polca + L* +
//! Wp-method pipeline against a noiseless simulated cache, reports the number
//! of states of the learned automaton and the learning time, and checks the
//! learned machine against the executable ground-truth policy.
//!
//! Usage:
//!   table2 [--full] [--max-assoc N] [--depth K] [--policy NAME] [--time-budget SECS]
//!          [--workers N]
//!
//! The default configuration covers the associativities where every policy
//! learns within seconds to a few minutes; `--full` selects the paper's full
//! ranges (which for PLRU at associativity 16 means tens of hours, exactly as
//! in the paper).

use std::time::Duration;

use automata::check_equivalence;
use bench::{format_duration, Args, TextTable};
use polca::{learn_simulated_policy, LearnSetup};
use policies::{policy_to_mealy, PolicyKind};

struct Row {
    policy: PolicyKind,
    associativities: Vec<usize>,
}

fn default_rows(max_assoc: usize, full: bool) -> Vec<Row> {
    let clamp = |v: Vec<usize>| -> Vec<usize> {
        v.into_iter().filter(|&a| full || a <= max_assoc).collect()
    };
    vec![
        Row {
            policy: PolicyKind::Fifo,
            associativities: clamp(vec![2, 4, 8, 12, 16]),
        },
        Row {
            policy: PolicyKind::Lru,
            associativities: clamp(if full { vec![2, 4, 6] } else { vec![2, 4] }),
        },
        Row {
            policy: PolicyKind::Plru,
            associativities: clamp(if full {
                vec![2, 4, 8, 16]
            } else {
                vec![2, 4, 8]
            }),
        },
        Row {
            policy: PolicyKind::Mru,
            associativities: clamp(if full {
                vec![2, 4, 6, 8, 10, 12]
            } else {
                vec![2, 4, 6]
            }),
        },
        Row {
            policy: PolicyKind::Lip,
            associativities: clamp(if full { vec![2, 4, 6] } else { vec![2, 4] }),
        },
        Row {
            policy: PolicyKind::SrripHp,
            associativities: clamp(if full { vec![2, 4, 6] } else { vec![2, 4] }),
        },
        Row {
            policy: PolicyKind::SrripFp,
            associativities: clamp(if full { vec![2, 4, 6] } else { vec![2, 4] }),
        },
    ]
}

fn main() {
    let args = Args::from_env();
    let full = args.has_flag("full");
    let max_assoc = args.value_or("max-assoc", 8usize);
    let depth = args.value_or("depth", 1usize);
    let time_budget = args.value_or("time-budget", 0u64);
    let only_policy: Option<PolicyKind> = args.value_of("policy").and_then(|p| p.parse().ok());

    let setup = LearnSetup {
        conformance_depth: depth,
        max_states: 1 << 17,
        time_budget: (time_budget > 0).then(|| Duration::from_secs(time_budget)),
        workers: args.value_or("workers", 0usize),
        ..LearnSetup::default()
    };

    println!("Table 2: learning policies from software-simulated caches");
    println!(
        "(conformance depth k = {depth}; {} configuration)",
        if full { "full paper" } else { "default" }
    );
    println!();

    let mut table = TextTable::new(&[
        "Policy",
        "Assoc.",
        "# States",
        "Time",
        "Memb. queries",
        "Hit-rate",
        "Cache probes",
        "Matches ground truth",
    ]);

    for row in default_rows(max_assoc, full) {
        if let Some(only) = only_policy {
            if only != row.policy {
                continue;
            }
        }
        for assoc in row.associativities {
            if !row.policy.supports_associativity(assoc) {
                continue;
            }
            match learn_simulated_policy(row.policy, assoc, &setup) {
                Ok(outcome) => {
                    let reference =
                        policy_to_mealy(row.policy.build(assoc).unwrap().as_ref(), 1 << 20);
                    let matches = check_equivalence(&outcome.machine, &reference).is_none();
                    table.add_row(&[
                        row.policy.name().to_string(),
                        assoc.to_string(),
                        outcome.machine.num_states().to_string(),
                        format_duration(outcome.stats.duration),
                        outcome.stats.membership_queries.to_string(),
                        format!("{:.1}%", outcome.stats.cache_hit_rate() * 100.0),
                        outcome.cache_probes.to_string(),
                        if matches { "yes" } else { "NO" }.to_string(),
                    ]);
                    eprintln!(
                        "learned {} at associativity {assoc}: {} states in {}",
                        row.policy,
                        outcome.machine.num_states(),
                        format_duration(outcome.stats.duration)
                    );
                }
                Err(e) => {
                    table.add_row(&[
                        row.policy.name().to_string(),
                        assoc.to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        format!("failed: {e}"),
                    ]);
                }
            }
        }
    }

    println!("{}", table.render());
    println!("Paper reference (Table 2): FIFO n states; LRU/LIP n!; PLRU 2^(n-1); MRU 2^n - 2;");
    println!("SRRIP-HP 12/178/2762 and SRRIP-FP 16/256/4096 states at associativities 2/4/6.");
}
