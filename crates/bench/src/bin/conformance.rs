//! Differential conformance harness: learn every deterministic policy and
//! random-walk the learned automaton against the ground-truth policy
//! simulator, reporting the first divergence (or the clean bill of health
//! CI pins).
//!
//! Usage:
//!   `conformance [--steps N] [--max-assoc W] [--seed S] [--walks K]`
//!
//! For every policy of the paper's §6 case study at ways `2..=W` (skipping
//! unsupported associativities), the harness runs the standard learning
//! pipeline and then `K` independent `N`-step random walks (seeds `S`,
//! `S+1`, …).  Exit code 0 means every walk agreed with the simulator on
//! every step; any divergence prints its input word and sets exit code 1.

use std::time::Instant;

use bench::{Args, TextTable};
use polca::{conformance_cases, conformance_walk, exact_learn_setup, learn_simulated_policy};

fn main() {
    let args = Args::from_env();
    let steps: usize = args.value_or("steps", 1000);
    let max_assoc: usize = args.value_or("max-assoc", 4);
    let seed: u64 = args.value_or("seed", 1);
    let walks: u64 = args.value_or("walks", 3);

    println!(
        "conformance: {walks} x {steps}-step random walks per policy, ways 2..={max_assoc}, \
         base seed {seed}"
    );

    let mut table = TextTable::new(&[
        "policy",
        "ways",
        "states",
        "memb. queries",
        "learn time",
        "walk steps",
        "verdict",
    ]);
    let mut divergences = 0usize;
    for (kind, assoc) in conformance_cases(max_assoc) {
        let started = Instant::now();
        let outcome = match learn_simulated_policy(kind, assoc, &exact_learn_setup(assoc)) {
            Ok(outcome) => outcome,
            Err(e) => {
                println!("learning {kind}@{assoc} failed: {e}");
                divergences += 1;
                continue;
            }
        };
        let learn_time = started.elapsed();
        let mut verdict = "ok".to_string();
        for walk in 0..walks {
            let report = conformance_walk(&outcome.machine, kind, assoc, steps, seed + walk)
                .expect("the learned associativity is supported");
            if let Some(divergence) = report.divergence {
                verdict = format!("DIVERGED at step {}: {divergence}", divergence.step);
                divergences += 1;
                break;
            }
        }
        table.add_row(&[
            kind.to_string(),
            assoc.to_string(),
            outcome.machine.num_states().to_string(),
            outcome.stats.membership_queries.to_string(),
            format!("{:.3} s", learn_time.as_secs_f64()),
            (steps as u64 * walks).to_string(),
            verdict,
        ]);
    }
    print!("{}", table.render());

    if divergences > 0 {
        println!("conformance: {divergences} case(s) diverged");
        std::process::exit(1);
    }
    println!("conformance: all learned automata agree with their simulators");
}
