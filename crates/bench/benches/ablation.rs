//! Ablation benches for the design choices called out in DESIGN.md §7:
//! Wp-method vs W-method conformance suites, conformance depth, and the
//! membership-query cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use learning::{
    learn_mealy, CachedOracle, LearnOptions, MealyOracle, WMethodOracle, WpMethodOracle,
};
use polca::{PolcaOracle, SimulatedCacheOracle};
use policies::{policy_alphabet, policy_to_mealy, PolicyKind};

/// Wp vs W method on the same target (MRU at associativity 4, 14 states).
fn bench_conformance_method(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_conformance");
    group.sample_size(10);
    let target = policy_to_mealy(PolicyKind::Mru.build(4).unwrap().as_ref(), 1 << 16);
    group.bench_function("wp_method", |b| {
        b.iter(|| {
            let mut teacher = MealyOracle::new(target.clone());
            let mut eq = WpMethodOracle::new(1);
            learn_mealy(
                target.inputs().to_vec(),
                &mut teacher,
                &mut eq,
                LearnOptions::default(),
            )
            .expect("learns")
            .1
            .membership_queries
        })
    });
    group.bench_function("w_method", |b| {
        b.iter(|| {
            let mut teacher = MealyOracle::new(target.clone());
            let mut eq = WMethodOracle::new(1);
            learn_mealy(
                target.inputs().to_vec(),
                &mut teacher,
                &mut eq,
                LearnOptions::default(),
            )
            .expect("learns")
            .1
            .membership_queries
        })
    });
    group.finish();
}

/// Learning with and without the membership-query cache in front of Polca.
fn bench_query_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_query_cache");
    group.sample_size(10);
    for cached in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("polca_lru4", if cached { "cached" } else { "uncached" }),
            &cached,
            |b, &cached| {
                b.iter(|| {
                    let oracle = SimulatedCacheOracle::new(PolicyKind::Lru, 4).unwrap();
                    let mut eq = WpMethodOracle::new(1);
                    let alphabet = policy_alphabet(4);
                    if cached {
                        let mut membership = CachedOracle::new(PolcaOracle::new(oracle));
                        learn_mealy(alphabet, &mut membership, &mut eq, LearnOptions::default())
                            .expect("learns")
                            .0
                            .num_states()
                    } else {
                        let mut membership = PolcaOracle::new(oracle);
                        learn_mealy(alphabet, &mut membership, &mut eq, LearnOptions::default())
                            .expect("learns")
                            .0
                            .num_states()
                    }
                })
            },
        );
    }
    group.finish();
}

/// Conformance depth k: cost of the stronger completeness guarantee.
fn bench_conformance_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_depth");
    group.sample_size(10);
    let target = policy_to_mealy(PolicyKind::Plru.build(4).unwrap().as_ref(), 1 << 16);
    for depth in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("plru4", depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut teacher = MealyOracle::new(target.clone());
                let mut eq = WpMethodOracle::new(depth);
                learn_mealy(
                    target.inputs().to_vec(),
                    &mut teacher,
                    &mut eq,
                    LearnOptions::default(),
                )
                .expect("learns")
                .1
                .membership_queries
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_conformance_method,
    bench_query_cache,
    bench_conformance_depth
);
criterion_main!(benches);
