//! Ablation benches for the design choices called out in ARCHITECTURE.md's
//! query-efficiency section:
//! Wp-method vs W-method conformance suites, conformance depth, the
//! membership-query cache, and the conformance worker count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use learning::{learn_mealy, LearnOptions, MealyOracle, WMethodOracle, WpMethodOracle};
use polca::{PolcaOracle, SimulatedCacheOracle};
use policies::{policy_alphabet, policy_to_mealy, PolicyKind};

/// Wp vs W method on the same target (MRU at associativity 4, 14 states).
fn bench_conformance_method(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_conformance");
    group.sample_size(10);
    let target = policy_to_mealy(PolicyKind::Mru.build(4).unwrap().as_ref(), 1 << 16);
    let teacher = target.clone();
    let factory = move || MealyOracle::new(teacher.clone());
    group.bench_function("wp_method", |b| {
        b.iter(|| {
            let mut eq = WpMethodOracle::new(1);
            learn_mealy(
                target.inputs().to_vec(),
                &factory,
                &mut eq,
                LearnOptions::default(),
            )
            .expect("learns")
            .1
            .membership_queries
        })
    });
    group.bench_function("w_method", |b| {
        b.iter(|| {
            let mut eq = WMethodOracle::new(1);
            learn_mealy(
                target.inputs().to_vec(),
                &factory,
                &mut eq,
                LearnOptions::default(),
            )
            .expect("learns")
            .1
            .membership_queries
        })
    });
    group.finish();
}

/// Learning with and without the prefix-trie membership-query cache in front
/// of Polca.
fn bench_query_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_query_cache");
    group.sample_size(10);
    for memoize in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("polca_lru4", if memoize { "cached" } else { "uncached" }),
            &memoize,
            |b, &memoize| {
                b.iter(|| {
                    let oracle = SimulatedCacheOracle::new(PolicyKind::Lru, 4).unwrap();
                    let factory = move || PolcaOracle::new(oracle.clone());
                    let mut eq = WpMethodOracle::new(1);
                    let options = LearnOptions {
                        memoize,
                        ..LearnOptions::default()
                    };
                    learn_mealy(policy_alphabet(4), &factory, &mut eq, options)
                        .expect("learns")
                        .0
                        .num_states()
                })
            },
        );
    }
    group.finish();
}

/// Conformance depth k: cost of the stronger completeness guarantee.
fn bench_conformance_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_depth");
    group.sample_size(10);
    let target = policy_to_mealy(PolicyKind::Plru.build(4).unwrap().as_ref(), 1 << 16);
    let teacher = target.clone();
    let factory = move || MealyOracle::new(teacher.clone());
    for depth in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("plru4", depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut eq = WpMethodOracle::new(depth);
                learn_mealy(
                    target.inputs().to_vec(),
                    &factory,
                    &mut eq,
                    LearnOptions::default(),
                )
                .expect("learns")
                .1
                .membership_queries
            })
        });
    }
    group.finish();
}

/// Worker-pool sharding of the conformance suite (1 = sequential).  On a
/// single-core host the counts coincide; on multicore the suite of the final
/// equivalence query dominates and shards near-linearly.
fn bench_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_workers");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("polca_mru4", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let oracle = SimulatedCacheOracle::new(PolicyKind::Mru, 4).unwrap();
                    let factory = move || PolcaOracle::new(oracle.clone());
                    let mut eq = WpMethodOracle::new(1);
                    let options = LearnOptions {
                        workers,
                        ..LearnOptions::default()
                    };
                    learn_mealy(policy_alphabet(4), &factory, &mut eq, options)
                        .expect("learns")
                        .0
                        .num_states()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_conformance_method,
    bench_query_cache,
    bench_conformance_depth,
    bench_workers
);
criterion_main!(benches);
