//! Criterion bench backing the §7.2 per-level MBL query measurement: the cost
//! of executing `@ M _?` against each cache level of the simulated Skylake.

use cache::LevelId;
use cachequery::{CacheQuery, Target};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hardware::{CpuModel, SimulatedCpu};

fn bench_mbl_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("mbl_query");
    group.sample_size(20);
    for level in LevelId::ALL {
        let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 1);
        let mut tool = CacheQuery::new(cpu);
        tool.enable_cache(false);
        tool.set_target(Target::new(level, 5, 0))
            .expect("valid target");
        group.bench_with_input(
            BenchmarkId::new("at_m_wildcard", level.to_string()),
            &level,
            |b, _| b.iter(|| tool.query("@ M _?").expect("query runs").len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mbl_query);
criterion_main!(benches);
