//! Criterion bench backing Table 5: synthesis time for the policies whose
//! explanations fit the Simple template (the Extended searches at
//! associativity 4 take minutes and are run by the `table5` binary instead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use policies::{policy_to_mealy, PolicyKind};
use synth::{synthesize, SynthesisConfig};

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    let cases = [
        (PolicyKind::Fifo, 4usize, 3u8),
        (PolicyKind::Lru, 4, 3),
        (PolicyKind::Lip, 4, 3),
        (PolicyKind::Mru, 2, 1),
    ];
    for (kind, assoc, max_age) in cases {
        let machine = policy_to_mealy(kind.build(assoc).unwrap().as_ref(), 1 << 20);
        group.bench_with_input(
            BenchmarkId::new(kind.name(), assoc),
            &machine,
            |b, machine| {
                b.iter(|| {
                    let config = SynthesisConfig {
                        max_age,
                        ..SynthesisConfig::default()
                    };
                    synthesize(machine, assoc, &config)
                        .expect("synthesizable")
                        .template
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
