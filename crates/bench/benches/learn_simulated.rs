//! Criterion bench backing Table 2: end-to-end learning time from
//! software-simulated caches for a representative sample of policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polca::{learn_simulated_policy, LearnSetup};
use policies::PolicyKind;

fn bench_learning(c: &mut Criterion) {
    let mut group = c.benchmark_group("learn_simulated");
    group.sample_size(10);
    let cases = [
        (PolicyKind::Fifo, 8usize),
        (PolicyKind::Lru, 4),
        (PolicyKind::Plru, 4),
        (PolicyKind::Mru, 4),
        (PolicyKind::Lip, 4),
        (PolicyKind::SrripHp, 2),
        (PolicyKind::SrripFp, 2),
        (PolicyKind::New1, 4),
        (PolicyKind::New2, 4),
    ];
    for (kind, assoc) in cases {
        group.bench_with_input(
            BenchmarkId::new(kind.name(), assoc),
            &(kind, assoc),
            |b, &(kind, assoc)| {
                b.iter(|| {
                    learn_simulated_policy(kind, assoc, &LearnSetup::default())
                        .expect("learning succeeds")
                        .machine
                        .num_states()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_learning);
criterion_main!(benches);
