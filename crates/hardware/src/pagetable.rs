//! Virtual-to-physical address translation of the simulated machine.
//!
//! One of the problems CacheQuery solves on real hardware is that cache-set
//! congruence is determined by *physical* addresses, while software deals in
//! virtual addresses (§4.3 "Set Mapping").  To make that problem exist — and
//! therefore make the address-selection logic of the backend meaningful — the
//! simulated CPU maps virtual pages to pseudo-randomly chosen physical page
//! frames, exactly like a buddy allocator handing out scattered frames would.

use std::collections::HashMap;

use cache::PhysAddr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size of a page in bytes (4 KiB, as on the modelled machines).
pub const PAGE_SIZE: u64 = 4096;

/// Number of physical page frames the simulated machine exposes (1 GiB of
/// physical memory).
const PHYSICAL_FRAMES: u64 = (1 << 30) / PAGE_SIZE;

/// A demand-populated page table with a pseudo-random frame allocator.
#[derive(Debug, Clone)]
pub struct PageTable {
    mapping: HashMap<u64, u64>,
    used_frames: HashMap<u64, u64>,
    rng: StdRng,
}

impl PageTable {
    /// Creates a page table whose frame allocator is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        PageTable {
            mapping: HashMap::new(),
            used_frames: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Translates a virtual address, allocating a physical frame for its page
    /// on first touch.
    pub fn translate(&mut self, virt: u64) -> PhysAddr {
        let vpn = virt / PAGE_SIZE;
        let offset = virt % PAGE_SIZE;
        let frame = match self.mapping.get(&vpn) {
            Some(&f) => f,
            None => {
                let f = self.allocate_frame(vpn);
                self.mapping.insert(vpn, f);
                f
            }
        };
        PhysAddr(frame * PAGE_SIZE + offset)
    }

    /// Translates without allocating; returns `None` for unmapped pages.
    pub fn translate_existing(&self, virt: u64) -> Option<PhysAddr> {
        let vpn = virt / PAGE_SIZE;
        let offset = virt % PAGE_SIZE;
        self.mapping
            .get(&vpn)
            .map(|&frame| PhysAddr(frame * PAGE_SIZE + offset))
    }

    /// Number of pages currently mapped.
    pub fn mapped_pages(&self) -> usize {
        self.mapping.len()
    }

    fn allocate_frame(&mut self, vpn: u64) -> u64 {
        // Pick a random unused frame; physical memory is much larger than any
        // pool the backend allocates, so a few retries always succeed.
        loop {
            let frame = self.rng.gen_range(0..PHYSICAL_FRAMES);
            if let std::collections::hash_map::Entry::Vacant(e) = self.used_frames.entry(frame) {
                e.insert(vpn);
                return frame;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_is_stable() {
        let mut pt = PageTable::new(1);
        let a = pt.translate(0x1234_5678);
        let b = pt.translate(0x1234_5678);
        assert_eq!(a, b);
    }

    #[test]
    fn offsets_within_a_page_are_preserved() {
        let mut pt = PageTable::new(1);
        let base = pt.translate(0x4000);
        let off = pt.translate(0x4000 + 123);
        assert_eq!(off.0 - base.0, 123);
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut pt = PageTable::new(7);
        let mut frames = std::collections::HashSet::new();
        for page in 0..512u64 {
            let pa = pt.translate(page * PAGE_SIZE);
            assert!(frames.insert(pa.0 / PAGE_SIZE), "frame reused");
        }
    }

    #[test]
    fn mapping_is_not_identity() {
        // The whole point of the page table is that virtual contiguity does
        // not imply physical contiguity.
        let mut pt = PageTable::new(3);
        let contiguous = (0..64u64)
            .map(|p| pt.translate(p * PAGE_SIZE).0)
            .collect::<Vec<_>>();
        let sorted_and_contiguous = contiguous.windows(2).all(|w| w[1] == w[0] + PAGE_SIZE);
        assert!(!sorted_and_contiguous);
    }

    #[test]
    fn same_seed_same_mapping() {
        let mut a = PageTable::new(9);
        let mut b = PageTable::new(9);
        for page in 0..32u64 {
            assert_eq!(a.translate(page * PAGE_SIZE), b.translate(page * PAGE_SIZE));
        }
    }

    #[test]
    fn translate_existing_does_not_allocate() {
        let pt = PageTable::new(1);
        assert_eq!(pt.translate_existing(0x9999), None);
        assert_eq!(pt.mapped_pages(), 0);
    }
}
