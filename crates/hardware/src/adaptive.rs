//! The adaptive (set-dueling) replacement policy of the simulated last-level
//! caches.

use cache::{DuelingRole, SetDueling};
use policies::ReplacementPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MAX_AGE: u8 = 3;

/// An RRIP-style aged policy whose insertion behaviour depends on its role in
/// the set-dueling scheme (Appendix B of the paper):
///
/// * **primary leader** sets behave exactly like the deterministic [`policies::New2`]
///   policy (thrash-vulnerable — a scanning workload evicts everything), and
///   report their misses to the shared PSEL counter;
/// * **alternate leader** sets insert with a *distant* prediction most of the
///   time (BRRIP-like, thrash-resistant) and also report their misses;
/// * **follower** sets pick the insertion behaviour of whichever leader group
///   currently wins the duel.
///
/// Only the primary leaders are deterministic, which is precisely why the
/// paper learns the L3 policy from leader sets only; follower and alternate
/// sets make the learning pipeline observe non-determinism, and the
/// reproduction preserves that property.
#[derive(Debug, Clone)]
pub struct AdaptiveRrip {
    ages: Vec<u8>,
    role: DuelingRole,
    dueling: SetDueling,
    rng: StdRng,
    seed: u64,
}

impl AdaptiveRrip {
    /// Probability that a thrash-resistant insertion still uses the "long"
    /// prediction (as in BRRIP's 1/32 bimodal throttle).
    const BIMODAL_LONG_PROBABILITY: f64 = 1.0 / 32.0;

    /// Creates the policy for one set.
    ///
    /// # Panics
    ///
    /// Panics if `assoc == 0`.
    pub fn new(assoc: usize, role: DuelingRole, dueling: SetDueling, seed: u64) -> Self {
        assert!(assoc >= 1, "associativity must be at least 1");
        AdaptiveRrip {
            ages: vec![MAX_AGE; assoc],
            role,
            dueling,
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The set-dueling role of this set.
    pub fn role(&self) -> DuelingRole {
        self.role
    }

    fn thrash_resistant_insertion(&mut self) -> bool {
        match self.role {
            DuelingRole::LeaderPrimary => false,
            DuelingRole::LeaderAlternate => true,
            DuelingRole::Follower => self.dueling.followers_use_alternate(),
        }
    }

    fn normalize(&mut self) {
        while !self.ages.contains(&MAX_AGE) {
            self.ages.iter_mut().for_each(|a| *a += 1);
        }
    }
}

impl ReplacementPolicy for AdaptiveRrip {
    fn associativity(&self) -> usize {
        self.ages.len()
    }

    fn on_hit(&mut self, line: usize) {
        assert!(line < self.ages.len(), "line index out of range");
        // New2 promotion: age 1 → 0, ages ≥ 2 → 1, age 0 stays.
        let age = self.ages[line];
        if age == 1 {
            self.ages[line] = 0;
        } else if age > 1 {
            self.ages[line] = 1;
        }
        self.normalize();
    }

    fn victim(&mut self) -> usize {
        self.ages
            .iter()
            .position(|&a| a == MAX_AGE)
            .expect("normalization keeps an age-3 line")
    }

    fn on_insert(&mut self, line: usize) {
        assert!(line < self.ages.len(), "line index out of range");
        self.dueling.record_miss(self.role);
        let resistant = self.thrash_resistant_insertion();
        let age = if resistant {
            if self.rng.gen::<f64>() < Self::BIMODAL_LONG_PROBABILITY {
                1
            } else {
                MAX_AGE
            }
        } else {
            1
        };
        self.ages[line] = age;
        self.normalize();
    }

    fn reset(&mut self) {
        self.ages.iter_mut().for_each(|a| *a = MAX_AGE);
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn on_invalidate(&mut self, line: usize) {
        // The modelled last-level cache clears the line's re-reference
        // prediction when the line is invalidated; this is what makes
        // Flush+Refill a valid reset sequence for the L3 leader sets
        // (Table 4) even though it is not one for the L2.
        self.ages[line] = MAX_AGE;
    }

    fn state_key(&self) -> Vec<u32> {
        self.ages.iter().map(|&a| a as u32).collect()
    }

    fn name(&self) -> &'static str {
        match self.role {
            DuelingRole::LeaderPrimary => "Adaptive(New2-leader)",
            DuelingRole::LeaderAlternate => "Adaptive(BRRIP-leader)",
            DuelingRole::Follower => "Adaptive(follower)",
        }
    }

    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::check_equivalence;
    use cache::SetDueling;
    use policies::{policy_to_mealy, New2};

    fn dueling() -> SetDueling {
        SetDueling::all_followers(4)
    }

    #[test]
    fn primary_leader_is_trace_equivalent_to_new2() {
        let leader = AdaptiveRrip::new(4, DuelingRole::LeaderPrimary, dueling(), 0);
        let learned = policy_to_mealy(&leader, 1 << 16);
        let reference = policy_to_mealy(&New2::new(4), 1 << 16);
        assert!(check_equivalence(&learned, &reference).is_none());
    }

    #[test]
    fn alternate_leader_resists_thrashing() {
        // Under a thrashing access pattern (insert, never hit), the alternate
        // leader mostly predicts "distant" so a re-accessed block stays longer.
        let mut p = AdaptiveRrip::new(4, DuelingRole::LeaderAlternate, dueling(), 1);
        let mut distant = 0;
        for _ in 0..200 {
            let v = p.on_miss();
            if p.state_key()[v] == MAX_AGE as u32 {
                distant += 1;
            }
        }
        assert!(distant > 150, "only {distant}/200 distant insertions");
    }

    #[test]
    fn followers_switch_with_the_duel() {
        let shared = SetDueling::all_followers(4);
        let mut follower = AdaptiveRrip::new(4, DuelingRole::Follower, shared.clone(), 2);
        // PSEL at zero: follower behaves like the primary policy
        // (deterministic insertion age 1).
        let v = follower.on_miss();
        assert_eq!(follower.state_key()[v], 1);
        // Push the duel towards the alternate policy and observe distant
        // insertions.
        for _ in 0..16 {
            shared.record_miss(DuelingRole::LeaderPrimary);
        }
        let mut distant = 0;
        for _ in 0..100 {
            let v = follower.on_miss();
            if follower.state_key()[v] == MAX_AGE as u32 {
                distant += 1;
            }
        }
        assert!(distant > 60, "follower did not adopt the alternate policy");
    }

    #[test]
    fn leader_misses_update_psel() {
        let shared = SetDueling::all_followers(4);
        let mut leader = AdaptiveRrip::new(4, DuelingRole::LeaderPrimary, shared.clone(), 3);
        for _ in 0..8 {
            leader.on_miss();
        }
        assert!(shared.psel() > 0);
    }
}
