//! Latency model of the simulated CPUs.

use cache::LevelId;
use rand::Rng;

/// Configuration of the measurement noise added on top of the base latencies.
///
/// CacheQuery mitigates noise by disabling hardware features and repeating
/// measurements (§4.3); the simulated CPU reproduces the sources so that the
/// same mitigations are exercised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// Standard deviation (in cycles) of the per-measurement jitter.
    pub jitter_stddev: f64,
    /// Probability of a large outlier (e.g. an interrupt firing during the
    /// measurement).
    pub outlier_probability: f64,
    /// Magnitude (in cycles) added by an outlier.
    pub outlier_cycles: u64,
}

impl NoiseConfig {
    /// Noise profile of a quiesced machine (interrupts are rare but cannot be
    /// ruled out entirely, matching the repeated-measurement design of the
    /// CacheQuery backend).
    pub fn quiet() -> Self {
        NoiseConfig {
            jitter_stddev: 1.5,
            outlier_probability: 0.0005,
            outlier_cycles: 400,
        }
    }

    /// Noise profile of an unquiesced machine (frequency scaling and
    /// background activity add substantial jitter).
    pub fn noisy() -> Self {
        NoiseConfig {
            jitter_stddev: 8.0,
            outlier_probability: 0.01,
            outlier_cycles: 600,
        }
    }

    /// A completely noiseless profile, useful for unit tests.
    pub fn none() -> Self {
        NoiseConfig {
            jitter_stddev: 0.0,
            outlier_probability: 0.0,
            outlier_cycles: 0,
        }
    }
}

/// Per-level base latencies of the simulated CPUs, in core cycles.
///
/// The values are representative of the modelled microarchitectures (L1 ≈ 4
/// cycles, L2 ≈ 12, L3 ≈ 40, DRAM ≈ 200) — the absolute numbers are not
/// important, only that the hit and miss distributions of the *profiled*
/// level are well separated, which is what CacheQuery's threshold calibration
/// relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingModel {
    /// L1 hit latency.
    pub l1_hit: u64,
    /// L2 hit latency.
    pub l2_hit: u64,
    /// L3 hit latency.
    pub l3_hit: u64,
    /// Main-memory access latency.
    pub memory: u64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            l1_hit: 4,
            l2_hit: 12,
            l3_hit: 40,
            memory: 200,
        }
    }
}

impl TimingModel {
    /// Base latency of an access served by `level` (`None` = main memory).
    pub fn base_latency(&self, level: Option<LevelId>) -> u64 {
        match level {
            Some(LevelId::L1) => self.l1_hit,
            Some(LevelId::L2) => self.l2_hit,
            Some(LevelId::L3) => self.l3_hit,
            None => self.memory,
        }
    }

    /// Samples a measured latency for an access served by `level`, adding the
    /// configured noise.
    pub fn sample(&self, level: Option<LevelId>, noise: &NoiseConfig, rng: &mut impl Rng) -> u64 {
        let base = self.base_latency(level) as f64;
        let jitter = if noise.jitter_stddev > 0.0 {
            // Sum of uniforms approximates a Gaussian well enough here and
            // avoids pulling in a distributions crate.
            let u: f64 = (0..4).map(|_| rng.gen::<f64>() - 0.5).sum();
            u * noise.jitter_stddev
        } else {
            0.0
        };
        let outlier =
            if noise.outlier_probability > 0.0 && rng.gen::<f64>() < noise.outlier_probability {
                noise.outlier_cycles
            } else {
                0
            };
        (base + jitter).max(1.0).round() as u64 + outlier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn base_latencies_are_ordered() {
        let t = TimingModel::default();
        assert!(t.l1_hit < t.l2_hit);
        assert!(t.l2_hit < t.l3_hit);
        assert!(t.l3_hit < t.memory);
    }

    #[test]
    fn noiseless_sampling_returns_the_base() {
        let t = TimingModel::default();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            t.sample(Some(LevelId::L1), &NoiseConfig::none(), &mut rng),
            4
        );
        assert_eq!(t.sample(None, &NoiseConfig::none(), &mut rng), 200);
    }

    #[test]
    fn quiet_noise_keeps_hit_and_miss_separable_at_l1() {
        let t = TimingModel::default();
        let noise = NoiseConfig::quiet();
        let mut rng = StdRng::seed_from_u64(1);
        let mut max_hit = 0;
        let mut min_miss = u64::MAX;
        for _ in 0..1000 {
            let hit = t.sample(Some(LevelId::L1), &noise, &mut rng);
            let miss = t.sample(Some(LevelId::L2), &noise, &mut rng);
            // Ignore outliers: the backend's repetition logic removes them.
            if hit < 100 {
                max_hit = max_hit.max(hit);
            }
            if miss < 100 {
                min_miss = min_miss.min(miss);
            }
        }
        assert!(max_hit < min_miss, "hit {max_hit} overlaps miss {min_miss}");
    }

    #[test]
    fn outliers_occur_with_noisy_profile() {
        let t = TimingModel::default();
        let noise = NoiseConfig::noisy();
        let mut rng = StdRng::seed_from_u64(2);
        let outliers = (0..10_000)
            .filter(|_| t.sample(Some(LevelId::L1), &noise, &mut rng) > 300)
            .count();
        assert!(outliers > 10, "expected some outliers, got {outliers}");
    }
}
