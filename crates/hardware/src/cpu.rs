//! The simulated CPU: memory loads with latencies, flushes, CAT, and noise.

use std::fmt;

use cache::{
    CacheGeometry, CacheLevel, DuelingRole, Hierarchy, HierarchyConfig, LevelConfig, LevelId,
    PhysAddr, SetDueling, SetDuelingConfig,
};
use policies::ReplacementPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::adaptive::AdaptiveRrip;
use crate::models::{CpuModel, CpuSpec, LevelPolicy, LevelSpec};
use crate::pagetable::PageTable;
use crate::timing::{NoiseConfig, TimingModel};

/// A virtual address in the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Adds a byte offset.
    pub fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v0x{:x}", self.0)
    }
}

/// Error returned by [`SimulatedCpu::apply_cat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatError {
    /// The CPU model does not support CAT (the Haswell i7-4790, cf. §7.1).
    Unsupported,
    /// CAT can only restrict the last-level cache.
    NotLastLevel(LevelId),
    /// The requested number of ways is zero or exceeds the level's
    /// associativity.
    InvalidWays {
        /// Requested ways.
        requested: usize,
        /// Available ways.
        available: usize,
    },
}

impl fmt::Display for CatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatError::Unsupported => write!(f, "this CPU model does not support CAT"),
            CatError::NotLastLevel(l) => write!(f, "CAT cannot be applied to {l}"),
            CatError::InvalidWays {
                requested,
                available,
            } => write!(
                f,
                "cannot restrict to {requested} ways (level has {available})"
            ),
        }
    }
}

impl std::error::Error for CatError {}

/// The simulated silicon CPU.
///
/// This is the substitute for the machines of Table 3: it owns a cache
/// [`Hierarchy`] configured per the CPU model, a [`PageTable`] providing a
/// scattered virtual-to-physical mapping, a [`TimingModel`] with configurable
/// noise, and the interference sources (adjacent-line prefetcher, other-core
/// pollution) that CacheQuery has to disable on real hardware.
///
/// The CPU is `Clone`: a clone is an independent, bit-identical machine,
/// which is what lets the parallel learner hand every worker its own copy of
/// the (deterministic) simulated hardware.
#[derive(Debug, Clone)]
pub struct SimulatedCpu {
    model: CpuModel,
    spec: CpuSpec,
    hierarchy: Hierarchy,
    dueling: Option<SetDueling>,
    page_table: PageTable,
    timing: TimingModel,
    noise: NoiseConfig,
    quiesced: bool,
    cat_ways: Option<usize>,
    rng: StdRng,
    tsc: u64,
    next_pool_base: u64,
    loads: u64,
    seed: u64,
}

impl SimulatedCpu {
    /// Creates a simulated CPU of the given model; all pseudo-random aspects
    /// (page-frame allocation, noise, bimodal insertions) derive from `seed`.
    pub fn new(model: CpuModel, seed: u64) -> Self {
        Self::with_spec(model, model.spec(), seed)
    }

    /// Creates a simulated CPU from an explicit specification instead of the
    /// model's canonical one.
    ///
    /// `model` is kept only as the machine's nameplate (display, wire
    /// protocol, memoization namespaces); geometry and policies come from
    /// `spec`.  This is the experimenter's knob: leader-set detection and
    /// cartography tests plant small adaptive levels with known role layouts
    /// and verify the planted layout is recovered.
    pub fn with_spec(model: CpuModel, spec: CpuSpec, seed: u64) -> Self {
        let (hierarchy, dueling) = build_hierarchy(&spec, None, seed);
        SimulatedCpu {
            model,
            spec,
            hierarchy,
            dueling,
            page_table: PageTable::new(seed.wrapping_add(0x9e37)),
            timing: TimingModel::default(),
            noise: NoiseConfig::noisy(),
            quiesced: false,
            cat_ways: None,
            rng: StdRng::seed_from_u64(seed.wrapping_add(0x51ce)),
            tsc: 0,
            next_pool_base: 0x1000_0000,
            loads: 0,
            seed,
        }
    }

    /// The CPU model being simulated.
    pub fn model(&self) -> CpuModel {
        self.model
    }

    /// The seed every source of simulated nondeterminism derives from.  Two
    /// machines with the same model and seed behave identically, which is
    /// what makes the seed part of a query's memoization namespace.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The static specification (Table 3 geometry, Table 4 policies).
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// Whether the model supports Intel CAT.
    pub fn supports_cat(&self) -> bool {
        self.spec.supports_cat
    }

    /// Puts the machine in (or out of) the low-noise measurement state:
    /// hardware prefetchers, frequency scaling and the other cores are
    /// disabled, exactly what the CacheQuery backend does before profiling
    /// (§4.3 "Interferences").
    pub fn quiesce(&mut self, on: bool) {
        self.quiesced = on;
        self.noise = if on {
            NoiseConfig::quiet()
        } else {
            NoiseConfig::noisy()
        };
    }

    /// Whether the machine is currently quiesced.
    pub fn is_quiesced(&self) -> bool {
        self.quiesced
    }

    /// Overrides the timing model (useful in tests).
    pub fn set_timing(&mut self, timing: TimingModel) {
        self.timing = timing;
    }

    /// Reserves a fresh virtual memory pool of `bytes` bytes and returns its
    /// base address.  Pages are mapped to physical frames on first access.
    pub fn allocate_pool(&mut self, bytes: u64) -> VirtAddr {
        let base = self.next_pool_base;
        // Keep pools page-aligned and separated by a guard page.
        let pages = bytes.div_ceil(crate::pagetable::PAGE_SIZE) + 1;
        self.next_pool_base += pages * crate::pagetable::PAGE_SIZE;
        VirtAddr(base)
    }

    /// Translates a virtual address (allocating the page on first use), like
    /// the kernel-module backend does to learn physical addresses.
    pub fn translate(&mut self, addr: VirtAddr) -> PhysAddr {
        self.page_table.translate(addr.0)
    }

    /// Performs a memory load and returns its measured latency in cycles.
    pub fn load(&mut self, addr: VirtAddr) -> u64 {
        let phys = self.page_table.translate(addr.0);
        let outcome = self.hierarchy.access(phys);
        let served = outcome.served_by();
        let latency = self.timing.sample(served, &self.noise, &mut self.rng);
        self.loads += 1;

        if !self.quiesced {
            self.interfere(phys);
        }

        self.tsc += latency + 10; // fixed instruction overhead
        latency
    }

    /// Flushes the line containing `addr` from the whole hierarchy
    /// (`clflush`).
    pub fn clflush(&mut self, addr: VirtAddr) {
        let phys = self.page_table.translate(addr.0);
        self.hierarchy.flush(phys);
        self.tsc += 100;
    }

    /// Invalidates all caches (`wbinvd`).
    pub fn wbinvd(&mut self) {
        self.hierarchy.flush_all();
        self.tsc += 20_000;
    }

    /// Current value of the time-stamp counter.
    pub fn rdtsc(&self) -> u64 {
        self.tsc
    }

    /// Total number of loads executed (a stand-in for a performance counter).
    pub fn load_count(&self) -> u64 {
        self.loads
    }

    /// Effective geometry of `level`, taking a CAT restriction into account.
    ///
    /// # Panics
    ///
    /// Panics if the model does not have `level`.
    pub fn geometry(&self, level: LevelId) -> CacheGeometry {
        self.hierarchy.level(level).geometry()
    }

    /// Restricts the last-level cache to `ways` ways using CAT, flushing it in
    /// the process (the paper uses this to reduce the L3 associativity to 4 on
    /// Skylake and Kaby Lake, §7.1).
    ///
    /// # Errors
    ///
    /// Returns [`CatError`] if the model lacks CAT support, `level` is not the
    /// last-level cache, or `ways` is out of range.
    pub fn apply_cat(&mut self, level: LevelId, ways: usize) -> Result<(), CatError> {
        if !self.spec.supports_cat {
            return Err(CatError::Unsupported);
        }
        if level != LevelId::L3 {
            return Err(CatError::NotLastLevel(level));
        }
        let full = self
            .spec
            .level(LevelId::L3)
            .expect("every modelled CPU has an L3")
            .geometry
            .associativity;
        if ways == 0 || ways > full {
            return Err(CatError::InvalidWays {
                requested: ways,
                available: full,
            });
        }
        self.cat_ways = Some(ways);
        let (hierarchy, dueling) = build_hierarchy(&self.spec, Some(ways), self.seed);
        self.hierarchy = hierarchy;
        self.dueling = dueling;
        Ok(())
    }

    /// The CAT restriction currently applied to the last-level cache, if any.
    pub fn cat_ways(&self) -> Option<usize> {
        self.cat_ways
    }

    /// The set-dueling role of the L3 set with the given flat index.
    ///
    /// # Panics
    ///
    /// Panics if the flat index is out of range.
    pub fn l3_role(&self, flat_set: usize) -> DuelingRole {
        match &self.dueling {
            Some(d) => d.role(flat_set),
            None => DuelingRole::Follower,
        }
    }

    /// A handle on the L3 set-dueling controller, if the model's L3 is
    /// adaptive.  The handle shares the live PSEL counter (cloning a
    /// [`SetDueling`] shares its `Arc`), so experiments can observe — or,
    /// via [`SetDueling::force_psel`], plant — the duel state of the running
    /// machine.
    ///
    /// Note that [`SimulatedCpu::apply_cat`] rebuilds the hierarchy and with
    /// it the controller: handles taken before a CAT change go stale.
    pub fn l3_dueling(&self) -> Option<SetDueling> {
        self.dueling.clone()
    }

    /// Read-only view of the cache hierarchy (used by white-box tests).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The replacement-policy name of the set that `addr` maps to in `level`
    /// (diagnostics).
    pub fn policy_name_for(&mut self, level: LevelId, addr: VirtAddr) -> &'static str {
        let phys = self.page_table.translate(addr.0);
        let geometry = self.hierarchy.level(level).geometry();
        let flat = geometry.flat_index(phys);
        self.hierarchy.level(level).set(flat).policy_name()
    }

    /// Background interference from the rest of the (un-quiesced) machine: the
    /// adjacent-line prefetcher pulls in the buddy line, and other cores
    /// occasionally touch random lines.
    fn interfere(&mut self, just_loaded: PhysAddr) {
        // Adjacent-line prefetcher: fetch the buddy of the accessed line.
        if self.rng.gen::<f64>() < 0.5 {
            let buddy = PhysAddr(just_loaded.0 ^ 64);
            self.hierarchy.access(buddy);
        }
        // Other cores: sporadic accesses to arbitrary physical lines.
        if self.rng.gen::<f64>() < 0.2 {
            let addr = PhysAddr(self.rng.gen_range(0..(1u64 << 30)) & !63);
            self.hierarchy.access(addr);
        }
    }
}

/// Builds the cache hierarchy (and the L3 set-dueling controller, if the
/// model's L3 is adaptive) for `spec`, optionally restricting the L3
/// associativity to `cat_ways`.
fn build_hierarchy(
    spec: &CpuSpec,
    cat_ways: Option<usize>,
    seed: u64,
) -> (Hierarchy, Option<SetDueling>) {
    let mut levels = Vec::new();
    let mut dueling_out = None;
    for level_spec in &spec.levels {
        let (level, dueling) = build_level(level_spec, cat_ways, seed);
        if level_spec.level == LevelId::L3 {
            dueling_out = dueling;
        }
        levels.push(level);
    }
    (Hierarchy::new(HierarchyConfig { levels }), dueling_out)
}

fn build_level(
    spec: &LevelSpec,
    cat_ways: Option<usize>,
    seed: u64,
) -> (CacheLevel, Option<SetDueling>) {
    let mut geometry = spec.geometry;
    if spec.level == LevelId::L3 {
        if let Some(ways) = cat_ways {
            geometry = CacheGeometry::new(
                ways,
                geometry.sets_per_slice,
                geometry.slices,
                geometry.line_size,
            );
        }
    }
    let config = LevelConfig {
        name: spec.level.to_string(),
        geometry,
        inclusive: spec.inclusive,
    };
    match &spec.policy {
        LevelPolicy::Fixed(kind) => {
            let level = CacheLevel::new(config, |flat| {
                kind.build_seeded(geometry.associativity, seed ^ flat as u64)
                    .expect("the model specs only use supported associativities")
            });
            (level, None)
        }
        LevelPolicy::Adaptive { roles } => {
            let dueling = SetDueling::new(SetDuelingConfig {
                roles: roles.clone(),
                psel_bits: 10,
            });
            let dueling_for_sets = dueling.clone();
            let level = CacheLevel::new(config, |flat| {
                let role = dueling_for_sets.role(flat);
                Box::new(AdaptiveRrip::new(
                    geometry.associativity,
                    role,
                    dueling_for_sets.clone(),
                    seed ^ (flat as u64).wrapping_mul(0x9e3779b97f4a7c15),
                )) as Box<dyn ReplacementPolicy>
            });
            (level, Some(dueling))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_cpu(model: CpuModel) -> SimulatedCpu {
        let mut cpu = SimulatedCpu::new(model, 1234);
        cpu.quiesce(true);
        cpu
    }

    #[test]
    fn repeated_loads_hit_l1() {
        let mut cpu = quiet_cpu(CpuModel::SkylakeI5_6500);
        let pool = cpu.allocate_pool(1 << 16);
        cpu.load(pool);
        // Subsequent loads are L1 hits: close to the 4-cycle base latency.
        let mut total = 0;
        for _ in 0..50 {
            total += cpu.load(pool).min(100);
        }
        assert!(
            total / 50 < 10,
            "average {} too high for L1 hits",
            total / 50
        );
    }

    #[test]
    fn clflush_makes_the_next_load_slow() {
        let mut cpu = quiet_cpu(CpuModel::SkylakeI5_6500);
        let pool = cpu.allocate_pool(1 << 16);
        cpu.load(pool);
        cpu.clflush(pool);
        let latency = cpu.load(pool);
        assert!(
            latency > 100,
            "latency {latency} too small for a DRAM access"
        );
    }

    #[test]
    fn distinct_pools_do_not_overlap() {
        let mut cpu = quiet_cpu(CpuModel::SkylakeI5_6500);
        let a = cpu.allocate_pool(1 << 20);
        let b = cpu.allocate_pool(1 << 20);
        assert!(b.0 >= a.0 + (1 << 20));
    }

    #[test]
    fn cat_reduces_l3_associativity() {
        let mut cpu = quiet_cpu(CpuModel::SkylakeI5_6500);
        assert_eq!(cpu.geometry(LevelId::L3).associativity, 12);
        cpu.apply_cat(LevelId::L3, 4).unwrap();
        assert_eq!(cpu.geometry(LevelId::L3).associativity, 4);
        assert_eq!(cpu.cat_ways(), Some(4));
        // L1/L2 are unaffected.
        assert_eq!(cpu.geometry(LevelId::L2).associativity, 4);
    }

    #[test]
    fn haswell_rejects_cat() {
        let mut cpu = quiet_cpu(CpuModel::HaswellI7_4790);
        assert_eq!(cpu.apply_cat(LevelId::L3, 4), Err(CatError::Unsupported));
    }

    #[test]
    fn cat_rejects_invalid_requests() {
        let mut cpu = quiet_cpu(CpuModel::SkylakeI5_6500);
        assert!(matches!(
            cpu.apply_cat(LevelId::L2, 2),
            Err(CatError::NotLastLevel(LevelId::L2))
        ));
        assert!(matches!(
            cpu.apply_cat(LevelId::L3, 0),
            Err(CatError::InvalidWays { .. })
        ));
        assert!(matches!(
            cpu.apply_cat(LevelId::L3, 13),
            Err(CatError::InvalidWays { .. })
        ));
    }

    #[test]
    fn l2_policy_matches_the_model() {
        let mut sky = quiet_cpu(CpuModel::SkylakeI5_6500);
        let pool = sky.allocate_pool(1 << 12);
        assert_eq!(sky.policy_name_for(LevelId::L2, pool), "New1");
        let mut hw = quiet_cpu(CpuModel::HaswellI7_4790);
        let pool = hw.allocate_pool(1 << 12);
        assert_eq!(hw.policy_name_for(LevelId::L2, pool), "PLRU");
    }

    #[test]
    fn l3_leader_roles_follow_the_skylake_pattern() {
        let cpu = quiet_cpu(CpuModel::SkylakeI5_6500);
        assert_eq!(cpu.l3_role(0), DuelingRole::LeaderPrimary);
        assert_eq!(cpu.l3_role(33), DuelingRole::LeaderPrimary);
        assert_eq!(cpu.l3_role(1), DuelingRole::Follower);
    }

    #[test]
    fn unquiesced_machine_is_noisier() {
        let mut cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 7);
        let pool = cpu.allocate_pool(1 << 16);
        cpu.load(pool);
        // Noisy mode: L1-hit latencies fluctuate a lot more.
        let noisy: Vec<u64> = (0..200).map(|_| cpu.load(pool)).collect();
        cpu.quiesce(true);
        let quiet: Vec<u64> = (0..200).map(|_| cpu.load(pool)).collect();
        let spread = |v: &[u64]| {
            let lo = *v.iter().min().unwrap() as i64;
            let hi = *v.iter().filter(|&&x| x < 300).max().unwrap() as i64;
            hi - lo
        };
        assert!(spread(&noisy) > spread(&quiet));
    }

    #[test]
    fn rdtsc_increases_monotonically() {
        let mut cpu = quiet_cpu(CpuModel::KabyLakeI7_8550U);
        let pool = cpu.allocate_pool(4096);
        let t0 = cpu.rdtsc();
        cpu.load(pool);
        let t1 = cpu.rdtsc();
        assert!(t1 > t0);
    }
}
