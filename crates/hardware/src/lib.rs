//! Simulated silicon CPUs.
//!
//! The paper runs CacheQuery against three Intel machines (i7-4790 Haswell,
//! i5-6500 Skylake, i7-8550U Kaby Lake).  This reproduction has no silicon to
//! measure, so this crate provides the *substitute substrate*: a deterministic
//! (seeded) simulation of those machines exposing exactly the interface the
//! CacheQuery backend needs — virtual memory loads with cycle latencies,
//! `clflush`/`wbinvd`, virtual-to-physical translation, Intel CAT way
//! restriction, and toggleable interference sources (adjacent-line prefetcher,
//! other cores, frequency scaling, stray interrupts).
//!
//! The cache geometries follow Table 3 of the paper and the per-level
//! replacement policies follow Table 4 / Appendix B:
//!
//! | CPU | L1 | L2 | L3 leader sets | L3 followers |
//! |-----|----|----|----------------|--------------|
//! | Haswell i7-4790 | PLRU | PLRU | New2-style / noisy alternate (slice 0 only) | adaptive |
//! | Skylake i5-6500 | PLRU | New1 | New2 / BRRIP-like | adaptive |
//! | Kaby Lake i7-8550U | PLRU | New1 | New2 / BRRIP-like | adaptive |
//!
//! The simulation is *behaviourally* faithful where it matters to the
//! learning pipeline: hit/miss sequences per cache set are produced by the
//! exact policies above, timing separates hit and miss distributions per
//! level, and every interference source can be silenced the same way
//! CacheQuery silences it on real hardware.
//!
//! # Example
//!
//! ```
//! use hardware::{CpuModel, SimulatedCpu};
//!
//! let mut cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 42);
//! cpu.quiesce(true); // what CacheQuery does before measuring
//! let pool = cpu.allocate_pool(1 << 20);
//! let first = cpu.load(pool);   // cold: misses every level
//! let second = cpu.load(pool);  // hot: L1 hit
//! assert!(second < first);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod cpu;
mod models;
mod pagetable;
mod timing;

pub use adaptive::AdaptiveRrip;
pub use cpu::{CatError, SimulatedCpu, VirtAddr};
pub use models::{CpuModel, CpuSpec, LevelPolicy, LevelSpec};
pub use pagetable::PageTable;
pub use timing::{NoiseConfig, TimingModel};
