//! The three CPU models evaluated in the paper (Table 3 / Table 4).

use std::fmt;

use cache::{haswell_like_roles, skylake_like_roles, CacheGeometry, DuelingRole, LevelId};
use policies::PolicyKind;

/// How the replacement policy of a level is configured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LevelPolicy {
    /// Every set runs the same fixed deterministic policy.
    Fixed(PolicyKind),
    /// The level is adaptive: leader sets (selected by the role table) run
    /// fixed policies and follower sets duel between them.
    Adaptive {
        /// Role of each flat set index.
        roles: Vec<DuelingRole>,
    },
}

/// Specification of one cache level of a CPU model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSpec {
    /// Which level this is.
    pub level: LevelId,
    /// Geometry (Table 3).
    pub geometry: CacheGeometry,
    /// Replacement policy configuration (Table 4 / Appendix B).
    pub policy: LevelPolicy,
    /// Whether the level is inclusive of the levels above it.
    pub inclusive: bool,
}

/// Specification of a complete CPU model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuSpec {
    /// Marketing name, e.g. `"i5-6500 (Skylake)"`.
    pub name: &'static str,
    /// Level specifications, ordered L1 outward.
    pub levels: Vec<LevelSpec>,
    /// Whether the part supports Intel CAT (cache allocation technology);
    /// Table 4 notes that the Haswell i7-4790 does not.
    pub supports_cat: bool,
}

impl CpuSpec {
    /// The specification of `level`, if the model has it.
    pub fn level(&self, level: LevelId) -> Option<&LevelSpec> {
        self.levels.iter().find(|l| l.level == level)
    }
}

/// The three processors analysed in §7 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuModel {
    /// Intel Core i7-4790 (Haswell).
    HaswellI7_4790,
    /// Intel Core i5-6500 (Skylake).
    SkylakeI5_6500,
    /// Intel Core i7-8550U (Kaby Lake).
    KabyLakeI7_8550U,
}

impl fmt::Display for CpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().name)
    }
}

impl CpuModel {
    /// All three modelled CPUs, in the order of Table 3.
    pub const ALL: [CpuModel; 3] = [
        CpuModel::HaswellI7_4790,
        CpuModel::SkylakeI5_6500,
        CpuModel::KabyLakeI7_8550U,
    ];

    /// The short microarchitecture name (`haswell`, `skylake`, `kabylake`):
    /// the token used by the `cqd` wire protocol and by query-store
    /// namespace strings.
    pub fn short_name(self) -> &'static str {
        match self {
            CpuModel::HaswellI7_4790 => "haswell",
            CpuModel::SkylakeI5_6500 => "skylake",
            CpuModel::KabyLakeI7_8550U => "kabylake",
        }
    }

    /// The full specification (geometries of Table 3, policies of Table 4).
    pub fn spec(self) -> CpuSpec {
        const LINE: u64 = 64;
        match self {
            CpuModel::HaswellI7_4790 => CpuSpec {
                name: "i7-4790 (Haswell)",
                supports_cat: false,
                levels: vec![
                    LevelSpec {
                        level: LevelId::L1,
                        geometry: CacheGeometry::new(8, 64, 1, LINE),
                        policy: LevelPolicy::Fixed(PolicyKind::Plru),
                        inclusive: false,
                    },
                    LevelSpec {
                        level: LevelId::L2,
                        geometry: CacheGeometry::new(8, 512, 1, LINE),
                        policy: LevelPolicy::Fixed(PolicyKind::Plru),
                        inclusive: false,
                    },
                    LevelSpec {
                        level: LevelId::L3,
                        geometry: CacheGeometry::new(16, 2048, 4, LINE),
                        policy: LevelPolicy::Adaptive {
                            roles: haswell_like_roles(2048, 4),
                        },
                        inclusive: true,
                    },
                ],
            },
            CpuModel::SkylakeI5_6500 => CpuSpec {
                name: "i5-6500 (Skylake)",
                supports_cat: true,
                levels: vec![
                    LevelSpec {
                        level: LevelId::L1,
                        geometry: CacheGeometry::new(8, 64, 1, LINE),
                        policy: LevelPolicy::Fixed(PolicyKind::Plru),
                        inclusive: false,
                    },
                    LevelSpec {
                        level: LevelId::L2,
                        geometry: CacheGeometry::new(4, 1024, 1, LINE),
                        policy: LevelPolicy::Fixed(PolicyKind::New1),
                        inclusive: false,
                    },
                    LevelSpec {
                        level: LevelId::L3,
                        geometry: CacheGeometry::new(12, 1024, 8, LINE),
                        policy: LevelPolicy::Adaptive {
                            roles: skylake_like_roles(1024, 8),
                        },
                        inclusive: true,
                    },
                ],
            },
            CpuModel::KabyLakeI7_8550U => CpuSpec {
                name: "i7-8550U (Kaby Lake)",
                supports_cat: true,
                levels: vec![
                    LevelSpec {
                        level: LevelId::L1,
                        geometry: CacheGeometry::new(8, 64, 1, LINE),
                        policy: LevelPolicy::Fixed(PolicyKind::Plru),
                        inclusive: false,
                    },
                    LevelSpec {
                        level: LevelId::L2,
                        geometry: CacheGeometry::new(4, 1024, 1, LINE),
                        policy: LevelPolicy::Fixed(PolicyKind::New1),
                        inclusive: false,
                    },
                    LevelSpec {
                        level: LevelId::L3,
                        geometry: CacheGeometry::new(16, 1024, 8, LINE),
                        policy: LevelPolicy::Adaptive {
                            roles: skylake_like_roles(1024, 8),
                        },
                        inclusive: true,
                    },
                ],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometries_match_table_3() {
        let hw = CpuModel::HaswellI7_4790.spec();
        assert_eq!(hw.level(LevelId::L1).unwrap().geometry.associativity, 8);
        assert_eq!(hw.level(LevelId::L2).unwrap().geometry.sets_per_slice, 512);
        assert_eq!(hw.level(LevelId::L3).unwrap().geometry.slices, 4);
        assert_eq!(hw.level(LevelId::L3).unwrap().geometry.associativity, 16);

        let sky = CpuModel::SkylakeI5_6500.spec();
        assert_eq!(sky.level(LevelId::L2).unwrap().geometry.associativity, 4);
        assert_eq!(sky.level(LevelId::L3).unwrap().geometry.associativity, 12);
        assert_eq!(sky.level(LevelId::L3).unwrap().geometry.slices, 8);

        let kbl = CpuModel::KabyLakeI7_8550U.spec();
        assert_eq!(kbl.level(LevelId::L3).unwrap().geometry.associativity, 16);
        assert_eq!(
            kbl.level(LevelId::L2).unwrap().geometry.sets_per_slice,
            1024
        );
    }

    #[test]
    fn policies_match_table_4() {
        for model in CpuModel::ALL {
            let spec = model.spec();
            assert_eq!(
                spec.level(LevelId::L1).unwrap().policy,
                LevelPolicy::Fixed(PolicyKind::Plru)
            );
        }
        assert_eq!(
            CpuModel::HaswellI7_4790
                .spec()
                .level(LevelId::L2)
                .unwrap()
                .policy,
            LevelPolicy::Fixed(PolicyKind::Plru)
        );
        assert_eq!(
            CpuModel::SkylakeI5_6500
                .spec()
                .level(LevelId::L2)
                .unwrap()
                .policy,
            LevelPolicy::Fixed(PolicyKind::New1)
        );
        assert_eq!(
            CpuModel::KabyLakeI7_8550U
                .spec()
                .level(LevelId::L2)
                .unwrap()
                .policy,
            LevelPolicy::Fixed(PolicyKind::New1)
        );
    }

    #[test]
    fn only_haswell_lacks_cat() {
        assert!(!CpuModel::HaswellI7_4790.spec().supports_cat);
        assert!(CpuModel::SkylakeI5_6500.spec().supports_cat);
        assert!(CpuModel::KabyLakeI7_8550U.spec().supports_cat);
    }

    #[test]
    fn l3_caches_are_inclusive_and_adaptive() {
        for model in CpuModel::ALL {
            let spec = model.spec();
            let l3 = spec.level(LevelId::L3).unwrap();
            assert!(l3.inclusive);
            assert!(matches!(l3.policy, LevelPolicy::Adaptive { .. }));
        }
    }
}
