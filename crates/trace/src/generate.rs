//! Seeded synthetic trace generators.
//!
//! Every generator is a pure function of `(seed, params)`: the same
//! [`TraceSpec`] always yields the byte-identical trace, on every platform,
//! because the only randomness source is the vendored deterministic
//! `StdRng`.  That property is what makes replay results — hit-rate tables,
//! divergence reports, CI pins — reproducible from a 5-field spec instead
//! of a gigabyte file.
//!
//! The four shapes cover the classic cache-evaluation corners (the same
//! quartet the trace-driven ML-caching evaluations in PAPERS.md sweep):
//!
//! * **sequential** — a streaming scan over the working set; pure capacity
//!   pressure, the thrashing workload set-dueling exists to survive.
//! * **strided** — a constant line stride, the access pattern of column
//!   walks and strided numerical kernels.
//! * **zipfian** — line popularity follows a Zipf law (few hot lines, a
//!   long cold tail), the standard model of key-value and CDN traffic.
//! * **pointer-chase** — a seeded random Hamiltonian cycle over the working
//!   set, the dependent-load pattern of linked-list traversals (and of
//!   eviction-set probes).

use std::fmt;
use std::str::FromStr;

use cache::PhysAddr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::format::Trace;

/// The four synthetic workload shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GeneratorKind {
    /// Streaming scan: line `i mod lines`.
    Sequential,
    /// Constant stride: line `(i * stride) mod lines`.
    Strided,
    /// Zipf-distributed line popularity over a seeded line permutation.
    Zipfian,
    /// A seeded single-cycle random permutation walked like a linked list.
    PointerChase,
}

impl GeneratorKind {
    /// All generators, in sweep order.
    pub const ALL: [GeneratorKind; 4] = [
        GeneratorKind::Sequential,
        GeneratorKind::Strided,
        GeneratorKind::Zipfian,
        GeneratorKind::PointerChase,
    ];

    /// Canonical lowercase name (`sequential`, `strided`, `zipfian`,
    /// `pointer-chase`).
    pub fn name(self) -> &'static str {
        match self {
            GeneratorKind::Sequential => "sequential",
            GeneratorKind::Strided => "strided",
            GeneratorKind::Zipfian => "zipfian",
            GeneratorKind::PointerChase => "pointer-chase",
        }
    }
}

impl fmt::Display for GeneratorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for an unknown generator name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownGenerator(pub String);

impl fmt::Display for UnknownGenerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown trace generator '{}'", self.0)
    }
}

impl std::error::Error for UnknownGenerator {}

impl FromStr for GeneratorKind {
    type Err = UnknownGenerator;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "sequential" | "seq" => Ok(GeneratorKind::Sequential),
            "strided" | "stride" => Ok(GeneratorKind::Strided),
            "zipfian" | "zipf" => Ok(GeneratorKind::Zipfian),
            "pointer-chase" | "chase" => Ok(GeneratorKind::PointerChase),
            _ => Err(UnknownGenerator(s.to_string())),
        }
    }
}

/// Complete parameterization of one synthetic trace.
///
/// Two equal specs generate byte-identical traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpec {
    /// Which workload shape to generate.
    pub generator: GeneratorKind,
    /// Number of accesses.
    pub accesses: usize,
    /// Working-set size in distinct cache lines (must be positive).
    pub lines: usize,
    /// Line stride of the strided generator (ignored by the others).
    pub stride: usize,
    /// Zipf exponent `s` in permille (800 = the classic 0.8; ignored by the
    /// non-Zipfian generators).
    pub zipf_s_permille: u32,
    /// RNG seed for the stochastic generators (ignored by sequential and
    /// strided, which are deterministic even without it).
    pub seed: u64,
    /// Line size in bytes; consecutive working-set lines are `line_size`
    /// apart, so they spread across consecutive cache sets.
    pub line_size: u64,
    /// Base physical address of working-set line 0.
    pub base: u64,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            generator: GeneratorKind::Sequential,
            accesses: 10_000,
            lines: 256,
            stride: 3,
            zipf_s_permille: 800,
            seed: 1,
            line_size: 64,
            base: 0,
        }
    }
}

/// Generates the trace described by `spec`.
///
/// # Panics
///
/// Panics if `lines` is zero, if `line_size` is not a power of two, or if
/// the working set would wrap the 2^63 address boundary (the replay engine
/// reserves addresses with the top bit set for its priming blocks).
pub fn generate(spec: &TraceSpec) -> Trace {
    assert!(spec.lines > 0, "working set must have at least one line");
    assert!(
        spec.line_size.is_power_of_two(),
        "line size must be a power of two"
    );
    let span = (spec.lines as u64).saturating_mul(spec.line_size);
    assert!(
        spec.base.saturating_add(span) < (1u64 << 63),
        "working set must stay below the 2^63 priming-address boundary"
    );
    let addr = |line: usize| PhysAddr(spec.base + line as u64 * spec.line_size);
    let accesses = match spec.generator {
        GeneratorKind::Sequential => (0..spec.accesses).map(|i| addr(i % spec.lines)).collect(),
        GeneratorKind::Strided => {
            let stride = spec.stride.max(1);
            (0..spec.accesses)
                .map(|i| addr((i.wrapping_mul(stride)) % spec.lines))
                .collect()
        }
        GeneratorKind::Zipfian => zipfian(spec, addr),
        GeneratorKind::PointerChase => pointer_chase(spec, addr),
    };
    Trace::new(accesses)
}

/// Seeded Fisher–Yates permutation of `0..n`.
fn permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// Zipf sampling by inversion of the precomputed CDF: rank `r` has weight
/// `1 / (r+1)^s`.  Ranks are mapped onto lines through a seeded permutation
/// so the hot lines scatter across cache sets instead of clustering at the
/// bottom of the working set.
fn zipfian(spec: &TraceSpec, addr: impl Fn(usize) -> PhysAddr) -> Vec<PhysAddr> {
    let s = spec.zipf_s_permille as f64 / 1000.0;
    let mut cdf = Vec::with_capacity(spec.lines);
    let mut total = 0.0f64;
    for rank in 0..spec.lines {
        total += 1.0 / ((rank + 1) as f64).powf(s);
        cdf.push(total);
    }
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5a1f_5a1f_5a1f_5a1f);
    let perm = permutation(spec.lines, &mut rng);
    (0..spec.accesses)
        .map(|_| {
            let u: f64 = rng.gen::<f64>() * total;
            let rank = cdf.partition_point(|&c| c < u).min(spec.lines - 1);
            addr(perm[rank])
        })
        .collect()
}

/// Sattolo's algorithm: a uniform random *single-cycle* permutation, so the
/// chase visits every working-set line before repeating — the worst case
/// for any recency-based policy once the set overflows the cache.
fn pointer_chase(spec: &TraceSpec, addr: impl Fn(usize) -> PhysAddr) -> Vec<PhysAddr> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xc4a5_ec4a_5ec4_a5ec);
    let mut next: Vec<usize> = (0..spec.lines).collect();
    for i in (1..spec.lines).rev() {
        let j = rng.gen_range(0..i);
        next.swap(i, j);
    }
    let mut cursor = 0usize;
    (0..spec.accesses)
        .map(|_| {
            let here = cursor;
            cursor = next[cursor];
            addr(here)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn spec(generator: GeneratorKind) -> TraceSpec {
        TraceSpec {
            generator,
            accesses: 4096,
            lines: 64,
            ..TraceSpec::default()
        }
    }

    #[test]
    fn generators_are_pure_functions_of_the_spec() {
        for kind in GeneratorKind::ALL {
            let a = generate(&spec(kind));
            let b = generate(&spec(kind));
            assert_eq!(a, b, "{kind} is not deterministic");
            let other_seed = generate(&TraceSpec {
                seed: 2,
                ..spec(kind)
            });
            if matches!(kind, GeneratorKind::Zipfian | GeneratorKind::PointerChase) {
                assert_ne!(a, other_seed, "{kind} ignores its seed");
            }
        }
    }

    #[test]
    fn sequential_scans_the_working_set() {
        let trace = generate(&TraceSpec {
            accesses: 6,
            lines: 3,
            ..TraceSpec::default()
        });
        let lines: Vec<u64> = trace.accesses().iter().map(|a| a.0 / 64).collect();
        assert_eq!(lines, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn strided_wraps_modulo_the_working_set() {
        let trace = generate(&TraceSpec {
            generator: GeneratorKind::Strided,
            accesses: 5,
            lines: 4,
            stride: 3,
            ..TraceSpec::default()
        });
        let lines: Vec<u64> = trace.accesses().iter().map(|a| a.0 / 64).collect();
        assert_eq!(lines, vec![0, 3, 2, 1, 0]);
    }

    #[test]
    fn zipfian_is_skewed_but_covers_the_set() {
        let trace = generate(&spec(GeneratorKind::Zipfian));
        let mut counts = vec![0usize; 64];
        for a in trace.accesses() {
            counts[(a.0 / 64) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        // The hottest line dominates the mean by a wide margin under s=0.8.
        assert!(max > 3 * trace.len() / 64, "no skew: max={max}");
        assert!(counts.iter().filter(|&&c| c > 0).count() > 32);
    }

    #[test]
    fn pointer_chase_is_a_single_cycle() {
        let lines = 64;
        let trace = generate(&TraceSpec {
            generator: GeneratorKind::PointerChase,
            accesses: lines,
            lines,
            ..TraceSpec::default()
        });
        // One full lap visits every line exactly once.
        let distinct: HashSet<u64> = trace.accesses().iter().map(|a| a.0).collect();
        assert_eq!(distinct.len(), lines);
    }

    #[test]
    fn names_round_trip() {
        for kind in GeneratorKind::ALL {
            assert_eq!(kind.name().parse::<GeneratorKind>().unwrap(), kind);
        }
        assert_eq!(
            "ZIPF".parse::<GeneratorKind>().unwrap(),
            GeneratorKind::Zipfian
        );
        assert!("fractal".parse::<GeneratorKind>().is_err());
    }

    #[test]
    #[should_panic(expected = "priming-address boundary")]
    fn working_sets_cannot_reach_the_priming_range() {
        generate(&TraceSpec {
            base: u64::MAX / 2,
            ..TraceSpec::default()
        });
    }
}
