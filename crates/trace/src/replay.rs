//! The replay engine: drive a trace through policy simulators, learned
//! Mealy machines, and whole hierarchies, counting hits and reporting the
//! first divergence access-for-access.
//!
//! Two single-level replayers share one contract:
//!
//! * [`SimReplayer`] executes the *ground-truth* policy code
//!   ([`policies`] + [`cache::CacheSet`]) — what the hardware model does;
//! * [`MachineReplayer`] executes a *learned* automaton
//!   (a [`PolicyMealy`]) and tracks cache content externally — what a
//!   policy-evaluation service built on learned models would do.
//!
//! Both start every touched set **full**, pre-filled with per-set priming
//! blocks, because learned machines are learned from the canonical full
//! initial state `cc0` with identity line naming (see
//! `polca::conformance_walk`): starting empty would exercise the
//! fill-invalid-lines path the machine has no input symbol for, and the two
//! sides would disagree on the very first miss.  Priming blocks live at
//! `2^63` and above, where [`crate::generate()`] refuses to place a working
//! set, so they can never alias trace lines.
//!
//! [`differential_replay`] runs both sides access-for-access and reports
//! the *first* divergence with its position, address and set — not just a
//! final aggregate — which is what makes a failure actionable.

use std::collections::HashMap;
use std::fmt;

use automata::StateId;
use cache::{AccessResult, Block, CacheGeometry, CacheSet, Hierarchy, HitMiss, LevelId, PhysAddr};
use policies::{PolicyError, PolicyInput, PolicyKind, PolicyMealy, PolicyOutput};

use crate::format::Trace;

/// Base of the priming-block address range (the top bit of the address
/// space).  [`crate::generate()`] asserts working sets stay below it.
pub const PRIME_BASE: u64 = 1 << 63;

/// The `(flat set, tag)` coordinates of an address under a geometry: the
/// mapping every replayer uses to route accesses to per-set state.
pub fn set_and_tag(geometry: &CacheGeometry, addr: PhysAddr) -> (usize, u64) {
    let tag = addr.0 >> (geometry.offset_bits() + geometry.set_bits());
    (geometry.flat_index(addr), tag)
}

/// Priming block for `way` of flat set `flat`: distinct per (set, way),
/// disjoint from every generatable trace address.
fn priming_block(geometry: &CacheGeometry, flat: usize, way: usize) -> Block {
    Block::new(PRIME_BASE | (flat as u64 * geometry.associativity as u64 + way as u64))
}

/// What one replayed access did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayEvent {
    /// Hit or miss.
    pub outcome: HitMiss,
    /// Line whose block was evicted, on a miss (always `Some` for the
    /// single-level replayers, which keep their sets full).
    pub evicted_line: Option<usize>,
}

/// Aggregate counters of one replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayCounts {
    /// Accesses replayed.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Evictions (misses that displaced a valid block).
    pub evictions: u64,
}

impl ReplayCounts {
    /// Hit rate in `[0, 1]` (0 for an empty replay).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    fn record(&mut self, event: ReplayEvent) {
        self.accesses += 1;
        match event.outcome {
            HitMiss::Hit => self.hits += 1,
            HitMiss::Miss => {
                self.misses += 1;
                if event.evicted_line.is_some() {
                    self.evictions += 1;
                }
            }
        }
    }
}

/// Anything that can replay one access of a trace.
pub trait Replayer {
    /// Replays one access and reports what happened.
    fn access(&mut self, addr: PhysAddr) -> ReplayEvent;
}

/// Replays a whole trace through `replayer`.
pub fn replay(trace: &Trace, replayer: &mut impl Replayer) -> ReplayCounts {
    replay_traced(trace, replayer, None)
}

/// [`replay`], wrapped in a `trace.replay` span when a recorder is given:
/// the span carries the access count and the resulting hit/miss totals.
pub fn replay_traced(
    trace: &Trace,
    replayer: &mut impl Replayer,
    recorder: Option<&obs::Recorder>,
) -> ReplayCounts {
    let mut span = obs::maybe_span(recorder, "trace.replay");
    let mut counts = ReplayCounts::default();
    for &addr in trace.accesses() {
        counts.record(replayer.access(addr));
    }
    if let Some(span) = span.as_mut() {
        span.set("accesses", counts.accesses);
        span.set("hits", counts.hits);
        span.set("misses", counts.misses);
    }
    counts
}

/// A single-level cache of executable policy sets, created lazily per
/// touched set and primed full (see the module docs for why).
#[derive(Debug)]
pub struct SimReplayer {
    kind: PolicyKind,
    geometry: CacheGeometry,
    sets: HashMap<usize, CacheSet>,
}

impl SimReplayer {
    /// Creates a replayer simulating `kind` at `geometry`'s associativity.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] if the policy does not support the
    /// geometry's associativity.
    pub fn new(kind: PolicyKind, geometry: CacheGeometry) -> Result<Self, PolicyError> {
        // Fail construction, not the first access, on a bad associativity.
        kind.build(geometry.associativity)?;
        Ok(SimReplayer {
            kind,
            geometry,
            sets: HashMap::new(),
        })
    }

    /// The geometry accesses are mapped through.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Number of distinct sets the replay has touched.
    pub fn touched_sets(&self) -> usize {
        self.sets.len()
    }
}

impl Replayer for SimReplayer {
    fn access(&mut self, addr: PhysAddr) -> ReplayEvent {
        assert!(addr.0 < PRIME_BASE, "trace addresses must stay below 2^63");
        let (flat, _) = set_and_tag(&self.geometry, addr);
        let geometry = self.geometry;
        let kind = self.kind;
        let set = self.sets.entry(flat).or_insert_with(|| {
            CacheSet::filled(
                kind.build(geometry.associativity)
                    .expect("associativity was validated at construction"),
                (0..geometry.associativity).map(|way| priming_block(&geometry, flat, way)),
            )
        });
        let block = Block::new(addr.line_base(geometry.line_size).0);
        match set.access(block) {
            AccessResult::Hit { .. } => ReplayEvent {
                outcome: HitMiss::Hit,
                evicted_line: None,
            },
            AccessResult::Miss { line, .. } => ReplayEvent {
                outcome: HitMiss::Miss,
                evicted_line: Some(line),
            },
        }
    }
}

/// Why a machine-backed replayer cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The policy rejected the associativity.
    Policy(PolicyError),
    /// The machine's input alphabet does not match
    /// `policy_alphabet(associativity)`.
    AlphabetMismatch {
        /// Inputs the machine actually has.
        machine_inputs: usize,
        /// Inputs `Ln(0..n-1), Evct` requires.
        expected: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Policy(e) => write!(f, "{e}"),
            ReplayError::AlphabetMismatch {
                machine_inputs,
                expected,
            } => write!(
                f,
                "machine alphabet has {machine_inputs} inputs, the geometry requires {expected}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<PolicyError> for ReplayError {
    fn from(e: PolicyError) -> Self {
        ReplayError::Policy(e)
    }
}

/// Per-set state of the machine-backed replayer: the automaton's control
/// state plus the externally tracked content.
#[derive(Debug, Clone)]
struct MachineSet {
    state: StateId,
    content: Vec<Block>,
}

/// A single-level cache whose replacement decisions come from a *learned*
/// Mealy machine instead of executable policy code.
///
/// Content is tracked outside the machine (the machine only knows lines):
/// a hit on line `i` feeds `Ln(i)`, a miss feeds `Evct` and installs the
/// block into the line the machine's `Evicted(v)` output names.  If the
/// machine ever answers `Evct` with `⊥` — which no correctly learned policy
/// does — the content is left unchanged and the miss counts no eviction;
/// [`differential_replay`] then reports the divergence instead of
/// panicking.
#[derive(Debug)]
pub struct MachineReplayer<'m> {
    machine: &'m PolicyMealy,
    geometry: CacheGeometry,
    /// Alphabet positions of `Ln(0..n-1)`, then `Evct`.
    line_inputs: Vec<usize>,
    evct_input: usize,
    sets: HashMap<usize, MachineSet>,
}

impl<'m> MachineReplayer<'m> {
    /// Creates a replayer that drives `machine` (learned at the geometry's
    /// associativity) over `geometry`.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::AlphabetMismatch`] if the machine's alphabet
    /// is not exactly `Ln(0..n-1), Evct` for the geometry's associativity.
    pub fn new(machine: &'m PolicyMealy, geometry: CacheGeometry) -> Result<Self, ReplayError> {
        let assoc = geometry.associativity;
        let expected = assoc + 1;
        let mismatch = || ReplayError::AlphabetMismatch {
            machine_inputs: machine.inputs().len(),
            expected,
        };
        if machine.inputs().len() != expected {
            return Err(mismatch());
        }
        let line_inputs = (0..assoc)
            .map(|i| {
                machine
                    .input_position(&PolicyInput::line(i))
                    .ok_or_else(mismatch)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let evct_input = machine
            .input_position(&PolicyInput::Evct)
            .ok_or_else(mismatch)?;
        Ok(MachineReplayer {
            machine,
            geometry,
            line_inputs,
            evct_input,
            sets: HashMap::new(),
        })
    }

    /// The geometry accesses are mapped through.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Number of distinct sets the replay has touched.
    pub fn touched_sets(&self) -> usize {
        self.sets.len()
    }
}

impl Replayer for MachineReplayer<'_> {
    fn access(&mut self, addr: PhysAddr) -> ReplayEvent {
        assert!(addr.0 < PRIME_BASE, "trace addresses must stay below 2^63");
        let (flat, _) = set_and_tag(&self.geometry, addr);
        let geometry = self.geometry;
        let initial = self.machine.initial();
        let set = self.sets.entry(flat).or_insert_with(|| MachineSet {
            state: initial,
            content: (0..geometry.associativity)
                .map(|way| priming_block(&geometry, flat, way))
                .collect(),
        });
        let block = Block::new(addr.line_base(geometry.line_size).0);
        match set.content.iter().position(|&b| b == block) {
            Some(line) => {
                let (next, _) = self
                    .machine
                    .step_by_index(set.state, self.line_inputs[line]);
                set.state = next;
                ReplayEvent {
                    outcome: HitMiss::Hit,
                    evicted_line: None,
                }
            }
            None => {
                let (next, output) = self.machine.step_by_index(set.state, self.evct_input);
                set.state = next;
                let evicted_line = match *output {
                    PolicyOutput::Evicted(v) if usize::from(v) < set.content.len() => {
                        set.content[usize::from(v)] = block;
                        Some(usize::from(v))
                    }
                    _ => None,
                };
                ReplayEvent {
                    outcome: HitMiss::Miss,
                    evicted_line,
                }
            }
        }
    }
}

/// The first access on which simulator and machine disagreed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayDivergence {
    /// Position in the trace (0-based).
    pub index: usize,
    /// The address being accessed.
    pub addr: PhysAddr,
    /// Flat set the address maps to.
    pub flat_set: usize,
    /// What the ground-truth simulator did.
    pub expected: ReplayEvent,
    /// What the learned machine did.
    pub actual: ReplayEvent,
}

impl fmt::Display for ReplayDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "access {} ({} in set {}): simulator {:?}, machine {:?}",
            self.index, self.addr, self.flat_set, self.expected, self.actual
        )
    }
}

/// Outcome of a differential replay: both sides' counters plus the first
/// divergence, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DifferentialReport {
    /// Counters of the ground-truth simulator side.
    pub simulator: ReplayCounts,
    /// Counters of the learned-machine side (equal to `simulator` when the
    /// replay passed).
    pub machine: ReplayCounts,
    /// First disagreement; `None` is the pass verdict.
    pub divergence: Option<ReplayDivergence>,
}

impl DifferentialReport {
    /// Whether the whole trace replayed without a divergence.
    pub fn passed(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Replays `trace` access-for-access through a fresh ground-truth simulator
/// of `kind` *and* through `machine`, stopping at the first access on which
/// the two disagree (hit/miss outcome or victim line).
///
/// # Errors
///
/// Returns a [`ReplayError`] if the policy does not support the geometry's
/// associativity or the machine's alphabet does not match it.
pub fn differential_replay(
    trace: &Trace,
    kind: PolicyKind,
    geometry: CacheGeometry,
    machine: &PolicyMealy,
) -> Result<DifferentialReport, ReplayError> {
    let mut sim = SimReplayer::new(kind, geometry)?;
    let mut learned = MachineReplayer::new(machine, geometry)?;
    let mut sim_counts = ReplayCounts::default();
    let mut machine_counts = ReplayCounts::default();
    let mut divergence = None;
    for (index, &addr) in trace.accesses().iter().enumerate() {
        let expected = sim.access(addr);
        let actual = learned.access(addr);
        sim_counts.record(expected);
        machine_counts.record(actual);
        if expected != actual {
            divergence = Some(ReplayDivergence {
                index,
                addr,
                flat_set: set_and_tag(&geometry, addr).0,
                expected,
                actual,
            });
            break;
        }
    }
    Ok(DifferentialReport {
        simulator: sim_counts,
        machine: machine_counts,
        divergence,
    })
}

/// Replays `trace` through a ground-truth simulator of `kind` and returns
/// the counters — the one-call form of the policy × generator sweep.
///
/// # Errors
///
/// Returns a [`PolicyError`] if the policy does not support the geometry's
/// associativity.
pub fn replay_policy(
    trace: &Trace,
    kind: PolicyKind,
    geometry: CacheGeometry,
) -> Result<ReplayCounts, PolicyError> {
    let mut sim = SimReplayer::new(kind, geometry)?;
    Ok(replay(trace, &mut sim))
}

/// Per-level counters of a hierarchy replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelCounts {
    /// The level.
    pub level: LevelId,
    /// Hits served by this level.
    pub hits: u64,
    /// Lookups that missed this level.
    pub misses: u64,
}

/// Aggregate result of replaying a trace through a [`Hierarchy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyReport {
    /// Accesses replayed.
    pub accesses: u64,
    /// Counters per level, L1 outward.  A level's `hits + misses` can be
    /// smaller than `accesses`: levels behind a hit are never consulted.
    pub per_level: Vec<LevelCounts>,
    /// Accesses no level served (cold misses to memory).
    pub memory_accesses: u64,
}

impl HierarchyReport {
    /// Total hits across all levels (accesses that did not go to memory).
    pub fn total_hits(&self) -> u64 {
        self.accesses - self.memory_accesses
    }

    /// Counters of one level, if the hierarchy has it.
    pub fn level(&self, level: LevelId) -> Option<LevelCounts> {
        self.per_level.iter().copied().find(|c| c.level == level)
    }
}

/// Replays `trace` through `hierarchy` (which keeps whatever content it
/// already has — pass a fresh hierarchy for a cold-start replay).
pub fn replay_hierarchy(trace: &Trace, hierarchy: &mut Hierarchy) -> HierarchyReport {
    let mut per_level: Vec<LevelCounts> = Vec::new();
    let mut memory_accesses = 0u64;
    for &addr in trace.accesses() {
        let outcome = hierarchy.access(addr);
        if outcome.served_by().is_none() {
            memory_accesses += 1;
        }
        for &(level, hit_miss) in &outcome.per_level {
            let counts = match per_level.iter_mut().find(|c| c.level == level) {
                Some(counts) => counts,
                None => {
                    per_level.push(LevelCounts {
                        level,
                        hits: 0,
                        misses: 0,
                    });
                    per_level.last_mut().expect("just pushed")
                }
            };
            match hit_miss {
                HitMiss::Hit => counts.hits += 1,
                HitMiss::Miss => counts.misses += 1,
            }
        }
    }
    per_level.sort_by_key(|c| c.level);
    HierarchyReport {
        accesses: trace.len() as u64,
        per_level,
        memory_accesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorKind, TraceSpec};
    use policies::policy_to_mealy;

    fn small_geometry(assoc: usize) -> CacheGeometry {
        CacheGeometry::new(assoc, 16, 1, 64)
    }

    #[test]
    fn a_fitting_working_set_only_misses_cold() {
        // 16 sets x 2 ways = 32 lines; a 32-line sequential scan fits
        // exactly, so after the first lap everything hits.
        let trace = generate(&TraceSpec {
            accesses: 320,
            lines: 32,
            ..TraceSpec::default()
        });
        let counts = replay_policy(&trace, PolicyKind::Lru, small_geometry(2)).unwrap();
        assert_eq!(counts.misses, 32);
        assert_eq!(counts.hits, 320 - 32);
        // Full-start replay: every miss evicts (a priming block, at first).
        assert_eq!(counts.evictions, counts.misses);
    }

    #[test]
    fn an_overflowing_scan_thrashes_lru() {
        // 3 congruent lines in every 2-way set, accessed cyclically: LRU
        // evicts exactly the line about to be used (the Figure 1 pathology).
        let trace = generate(&TraceSpec {
            accesses: 3 * 16 * 20,
            lines: 3 * 16,
            ..TraceSpec::default()
        });
        let counts = replay_policy(&trace, PolicyKind::Lru, small_geometry(2)).unwrap();
        assert_eq!(counts.hits, 0, "sequential overflow must thrash LRU");
    }

    #[test]
    fn ground_truth_machines_replay_without_divergence() {
        let geometry = small_geometry(2);
        for kind in PolicyKind::ALL_DETERMINISTIC {
            let machine = policy_to_mealy(kind.build(2).unwrap().as_ref(), 1 << 16);
            for generator in GeneratorKind::ALL {
                let trace = generate(&TraceSpec {
                    generator,
                    accesses: 2000,
                    lines: 48,
                    ..TraceSpec::default()
                });
                let report = differential_replay(&trace, kind, geometry, &machine).unwrap();
                assert!(
                    report.passed(),
                    "{kind}/{generator} diverged: {:?}",
                    report.divergence
                );
                assert_eq!(report.simulator, report.machine);
            }
        }
    }

    #[test]
    fn a_wrong_machine_is_pinpointed() {
        // Replay the FIFO machine against the LRU simulator: contents
        // diverge as soon as a hit reorders LRU but not FIFO, and the
        // report names the first disagreeing access.
        let machine = policy_to_mealy(PolicyKind::Fifo.build(2).unwrap().as_ref(), 1 << 16);
        let trace = generate(&TraceSpec {
            generator: GeneratorKind::Zipfian,
            accesses: 5000,
            lines: 48,
            ..TraceSpec::default()
        });
        let report =
            differential_replay(&trace, PolicyKind::Lru, small_geometry(2), &machine).unwrap();
        let divergence = report.divergence.expect("FIFO cannot emulate LRU");
        assert_ne!(divergence.expected, divergence.actual);
        assert!(!divergence.to_string().is_empty());
        // Counters stop at the divergence.
        assert_eq!(report.simulator.accesses as usize, divergence.index + 1);
    }

    #[test]
    fn alphabet_mismatches_are_rejected() {
        let machine = policy_to_mealy(PolicyKind::Lru.build(2).unwrap().as_ref(), 1 << 16);
        assert!(matches!(
            MachineReplayer::new(&machine, small_geometry(4)),
            Err(ReplayError::AlphabetMismatch {
                machine_inputs: 3,
                expected: 5
            })
        ));
    }

    #[test]
    fn set_and_tag_split_the_address() {
        let geometry = small_geometry(2);
        // 16 sets x 64 B lines: set bits are addr[9:6], the tag sits above.
        let (flat, tag) = set_and_tag(&geometry, PhysAddr(0x2_0040));
        assert_eq!(flat, 1);
        assert_eq!(tag, 0x2_0040 >> 10);
    }
}
