//! The trace container and its binary/text serializations.
//!
//! A [`Trace`] is an ordered sequence of physical addresses — one memory
//! load per entry, no timestamps, no read/write distinction.  That is
//! exactly the information a replacement policy ever sees (the
//! data-independence symmetry of §5), so anything richer would be dead
//! weight for replay.
//!
//! Two serializations are provided:
//!
//! * **binary** (`.ctr`): a 16-byte header (`b"CQTR"`, format version,
//!   record count) followed by fixed-width 8-byte little-endian addresses.
//!   Fixed-width records make the format *seekable*: access `i` lives at
//!   byte `16 + 8 * i`, which [`TraceReader::get`] exploits to read
//!   arbitrary positions of a multi-gigabyte trace without loading it.
//! * **text** (`.trace`): one lowercase hex address per line, `#` comments
//!   and blank lines ignored — the format golden fixtures are checked in as,
//!   because a reviewer can read and edit it.

use std::fmt;
use std::io::{self, Read, Seek, SeekFrom, Write};

use cache::PhysAddr;

/// Magic bytes opening every binary trace.
pub const TRACE_MAGIC: [u8; 4] = *b"CQTR";

/// Binary format version written by this crate.
pub const TRACE_VERSION: u8 = 1;

/// Size of the binary header in bytes (magic, version, padding, count).
pub const TRACE_HEADER_LEN: usize = 16;

/// A malformed trace (binary or text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The binary header is missing or does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The binary header announces an unsupported format version.
    BadVersion(u8),
    /// The payload is shorter than the header's record count promises.
    Truncated {
        /// Records promised by the header.
        expected: u64,
        /// Records actually present.
        found: u64,
    },
    /// A text line is not a hex address.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// An I/O error from the underlying reader or writer.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a trace: missing CQTR magic"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace format version {v}"),
            TraceError::Truncated { expected, found } => {
                write!(
                    f,
                    "truncated trace: header promises {expected} records, found {found}"
                )
            }
            TraceError::BadLine { line, content } => {
                write!(f, "line {line}: '{content}' is not a hex address")
            }
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e.to_string())
    }
}

/// An in-memory access trace: the ordered physical addresses of a workload.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    accesses: Vec<PhysAddr>,
}

impl Trace {
    /// Creates a trace from a sequence of addresses.
    pub fn new(accesses: Vec<PhysAddr>) -> Self {
        Trace { accesses }
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// The accesses, in order.
    pub fn accesses(&self) -> &[PhysAddr] {
        &self.accesses
    }

    /// Appends one access.
    pub fn push(&mut self, addr: PhysAddr) {
        self.accesses.push(addr);
    }

    /// Serializes the trace into the binary format.
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(TRACE_HEADER_LEN + 8 * self.accesses.len());
        out.extend_from_slice(&TRACE_MAGIC);
        out.push(TRACE_VERSION);
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&(self.accesses.len() as u64).to_le_bytes());
        for addr in &self.accesses {
            out.extend_from_slice(&addr.0.to_le_bytes());
        }
        out
    }

    /// Parses a binary trace.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] for a bad magic, unsupported version or a
    /// payload shorter than the header's record count.
    pub fn from_binary(bytes: &[u8]) -> Result<Trace, TraceError> {
        let (count, payload) = parse_header(bytes)?;
        let found = (payload.len() / 8) as u64;
        if found < count {
            return Err(TraceError::Truncated {
                expected: count,
                found,
            });
        }
        let accesses = payload[..(count as usize) * 8]
            .chunks_exact(8)
            .map(|chunk| PhysAddr(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))))
            .collect();
        Ok(Trace { accesses })
    }

    /// Serializes the trace into the text format (one hex address per line).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.accesses.len() * 8);
        for addr in &self.accesses {
            out.push_str(&format!("{:x}\n", addr.0));
        }
        out
    }

    /// Parses a text trace: one hex address per line (an optional `0x`
    /// prefix is accepted), `#` comments and blank lines ignored.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadLine`] for a line that is not a hex address.
    pub fn from_text(text: &str) -> Result<Trace, TraceError> {
        let mut accesses = Vec::new();
        for (index, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let digits = line.strip_prefix("0x").unwrap_or(line);
            let value = u64::from_str_radix(digits, 16).map_err(|_| TraceError::BadLine {
                line: index + 1,
                content: raw.to_string(),
            })?;
            accesses.push(PhysAddr(value));
        }
        Ok(Trace { accesses })
    }
}

fn parse_header(bytes: &[u8]) -> Result<(u64, &[u8]), TraceError> {
    if bytes.len() < TRACE_HEADER_LEN || bytes[..4] != TRACE_MAGIC {
        return Err(TraceError::BadMagic);
    }
    if bytes[4] != TRACE_VERSION {
        return Err(TraceError::BadVersion(bytes[4]));
    }
    let count = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte count"));
    Ok((count, &bytes[TRACE_HEADER_LEN..]))
}

/// A streaming binary-trace writer.
///
/// The header's record count is back-patched by [`TraceWriter::finish`], so
/// the writer needs [`Seek`] but never buffers the whole trace — a generator
/// can stream hundreds of millions of accesses straight to disk.
#[derive(Debug)]
pub struct TraceWriter<W: Write + Seek> {
    inner: W,
    written: u64,
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Starts a binary trace on `inner`, writing a header with a zero count.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn new(mut inner: W) -> Result<Self, TraceError> {
        inner.write_all(&TRACE_MAGIC)?;
        inner.write_all(&[TRACE_VERSION, 0, 0, 0])?;
        inner.write_all(&0u64.to_le_bytes())?;
        Ok(TraceWriter { inner, written: 0 })
    }

    /// Appends one access.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn push(&mut self, addr: PhysAddr) -> Result<(), TraceError> {
        self.inner.write_all(&addr.0.to_le_bytes())?;
        self.written += 1;
        Ok(())
    }

    /// Number of accesses written so far.
    pub fn len(&self) -> u64 {
        self.written
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }

    /// Back-patches the record count and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.inner.seek(SeekFrom::Start(8))?;
        self.inner.write_all(&self.written.to_le_bytes())?;
        self.inner.seek(SeekFrom::End(0))?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// A seekable binary-trace reader: random access to any record without
/// loading the trace.
#[derive(Debug)]
pub struct TraceReader<R: Read + Seek> {
    inner: R,
    count: u64,
}

impl<R: Read + Seek> TraceReader<R> {
    /// Opens a binary trace, validating the header.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] for I/O failures, a bad magic or an
    /// unsupported version.
    pub fn new(mut inner: R) -> Result<Self, TraceError> {
        let mut header = [0u8; TRACE_HEADER_LEN];
        inner.seek(SeekFrom::Start(0))?;
        inner
            .read_exact(&mut header)
            .map_err(|_| TraceError::BadMagic)?;
        let (count, _) = parse_header(&header)?;
        Ok(TraceReader { inner, count })
    }

    /// Number of accesses in the trace.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Reads the access at position `index` (this is the seek: record `i`
    /// lives at byte `16 + 8i`).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Truncated`] past the end and propagates I/O
    /// errors.
    pub fn get(&mut self, index: u64) -> Result<PhysAddr, TraceError> {
        if index >= self.count {
            return Err(TraceError::Truncated {
                expected: self.count,
                found: index,
            });
        }
        self.inner
            .seek(SeekFrom::Start(TRACE_HEADER_LEN as u64 + 8 * index))?;
        let mut record = [0u8; 8];
        self.inner.read_exact(&mut record)?;
        Ok(PhysAddr(u64::from_le_bytes(record)))
    }

    /// Reads the whole trace into memory.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Truncated`] if the payload is shorter than the
    /// header promised, and propagates I/O errors.
    pub fn read_all(&mut self) -> Result<Trace, TraceError> {
        self.inner.seek(SeekFrom::Start(TRACE_HEADER_LEN as u64))?;
        let mut accesses = Vec::with_capacity(self.count as usize);
        let mut record = [0u8; 8];
        for found in 0..self.count {
            self.inner
                .read_exact(&mut record)
                .map_err(|_| TraceError::Truncated {
                    expected: self.count,
                    found,
                })?;
            accesses.push(PhysAddr(u64::from_le_bytes(record)));
        }
        Ok(Trace { accesses })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Trace {
        Trace::new(vec![
            PhysAddr(0),
            PhysAddr(0x40),
            PhysAddr(0xdead_beef),
            PhysAddr(u64::MAX),
        ])
    }

    #[test]
    fn binary_round_trips() {
        let trace = sample();
        let bytes = trace.to_binary();
        assert_eq!(&bytes[..4], b"CQTR");
        assert_eq!(Trace::from_binary(&bytes).unwrap(), trace);
    }

    #[test]
    fn text_round_trips_and_accepts_comments() {
        let trace = sample();
        assert_eq!(Trace::from_text(&trace.to_text()).unwrap(), trace);
        let annotated = "# golden trace\n0x40 # first line\n\nff\n";
        let parsed = Trace::from_text(annotated).unwrap();
        assert_eq!(parsed.accesses(), &[PhysAddr(0x40), PhysAddr(0xff)]);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(matches!(
            Trace::from_text("0x40\nnot-hex\n"),
            Err(TraceError::BadLine { line: 2, .. })
        ));
    }

    #[test]
    fn binary_rejects_bad_magic_version_and_truncation() {
        assert_eq!(
            Trace::from_binary(b"nope").unwrap_err(),
            TraceError::BadMagic
        );
        let mut bytes = sample().to_binary();
        bytes[4] = 9;
        assert_eq!(
            Trace::from_binary(&bytes).unwrap_err(),
            TraceError::BadVersion(9)
        );
        let bytes = sample().to_binary();
        assert!(matches!(
            Trace::from_binary(&bytes[..bytes.len() - 1]),
            Err(TraceError::Truncated {
                expected: 4,
                found: 3
            })
        ));
    }

    #[test]
    fn writer_streams_and_backpatches_the_count() {
        let trace = sample();
        let mut writer = TraceWriter::new(Cursor::new(Vec::new())).unwrap();
        for &addr in trace.accesses() {
            writer.push(addr).unwrap();
        }
        assert_eq!(writer.len(), 4);
        let bytes = writer.finish().unwrap().into_inner();
        assert_eq!(bytes, trace.to_binary());
    }

    #[test]
    fn reader_seeks_to_arbitrary_records() {
        let trace = sample();
        let mut reader = TraceReader::new(Cursor::new(trace.to_binary())).unwrap();
        assert_eq!(reader.len(), 4);
        assert_eq!(reader.get(2).unwrap(), PhysAddr(0xdead_beef));
        assert_eq!(reader.get(0).unwrap(), PhysAddr(0));
        assert!(reader.get(4).is_err());
        assert_eq!(reader.read_all().unwrap(), trace);
    }
}
