//! Trace-driven workload replay: the scenario engine that proves learned
//! policies on realistic traffic.
//!
//! The learning pipeline (`polca`) validates learned automata with
//! membership and equivalence queries; this crate validates them the way
//! the trace-driven caching literature does — by **replaying memory
//! traffic** through both the learned machine and its source policy and
//! demanding access-for-access agreement.  Three layers:
//!
//! * [`mod@format`] — a compact, seekable binary trace container (`CQTR`,
//!   one fixed-width record per access) plus a line-oriented text form for
//!   fixtures and hand-written traces;
//! * [`mod@generate`] — seeded synthetic generators (sequential, strided,
//!   zipfian, pointer-chase), each a pure function of its [`TraceSpec`];
//! * [`mod@replay`] — the engines: a ground-truth policy simulator
//!   ([`SimReplayer`]), a learned-machine executor ([`MachineReplayer`]),
//!   the differential harness ([`differential_replay`]) and a hierarchy
//!   replayer ([`replay_hierarchy`]).
//!
//! # Example
//!
//! ```
//! use cache::CacheGeometry;
//! use policies::{policy_to_mealy, PolicyKind};
//! use trace::{differential_replay, generate, GeneratorKind, TraceSpec};
//!
//! let trace = generate(&TraceSpec {
//!     generator: GeneratorKind::Zipfian,
//!     accesses: 5_000,
//!     lines: 128,
//!     ..TraceSpec::default()
//! });
//! let geometry = CacheGeometry::new(2, 16, 1, 64);
//! let machine = policy_to_mealy(PolicyKind::Lru.build(2).unwrap().as_ref(), 1 << 16);
//! let report = differential_replay(&trace, PolicyKind::Lru, geometry, &machine).unwrap();
//! assert!(report.passed());
//! assert_eq!(report.simulator, report.machine);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod format;
pub mod generate;
pub mod replay;

pub use format::{Trace, TraceError, TraceReader, TraceWriter, TRACE_MAGIC, TRACE_VERSION};
pub use generate::{generate, GeneratorKind, TraceSpec, UnknownGenerator};
pub use replay::{
    differential_replay, replay, replay_hierarchy, replay_policy, replay_traced, set_and_tag,
    DifferentialReport, HierarchyReport, LevelCounts, MachineReplayer, ReplayCounts,
    ReplayDivergence, ReplayError, ReplayEvent, Replayer, SimReplayer, PRIME_BASE,
};
