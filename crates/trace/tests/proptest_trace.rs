//! Property-based tests of the trace layer: generator determinism for
//! arbitrary specs, lossless binary and text round-trips for arbitrary
//! traces, and set-index validity of every generated access under every
//! cache geometry.

use proptest::prelude::*;

use cache::CacheGeometry;
use trace::{generate, set_and_tag, GeneratorKind, Trace, TraceSpec};

fn generator_kind() -> impl Strategy<Value = GeneratorKind> {
    prop_oneof![
        Just(GeneratorKind::Sequential),
        Just(GeneratorKind::Strided),
        Just(GeneratorKind::Zipfian),
        Just(GeneratorKind::PointerChase),
    ]
}

/// Arbitrary-but-bounded specs: enough spread to exercise every code path
/// (tiny and large working sets, all strides, extreme skews, varied bases)
/// while keeping each generated trace small.
fn trace_spec() -> impl Strategy<Value = TraceSpec> {
    (
        generator_kind(),
        (0usize..600, 1usize..300),
        (0usize..10, 0u32..3000),
        (
            0u64..u64::MAX,
            prop_oneof![Just(64u64), Just(128), Just(32)],
        ),
        0u64..(1u64 << 40),
    )
        .prop_map(
            |(generator, (accesses, lines), (stride, zipf_s_permille), (seed, line_size), base)| {
                TraceSpec {
                    generator,
                    accesses,
                    lines,
                    stride,
                    zipf_s_permille,
                    seed,
                    line_size,
                    base,
                }
            },
        )
}

/// Arbitrary traces (not necessarily generator-shaped) for round-trips.
fn arbitrary_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(0u64..u64::MAX, 0..200)
        .prop_map(|addresses| Trace::new(addresses.into_iter().map(cache::PhysAddr).collect()))
}

/// The geometries the repo actually models: L1-like through sliced-L3-like.
fn geometry() -> impl Strategy<Value = CacheGeometry> {
    (
        prop_oneof![Just(2usize), Just(3), Just(4), Just(8), Just(12)],
        prop_oneof![Just(16usize), Just(64), Just(1024)],
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        prop_oneof![Just(64u64), Just(128)],
    )
        .prop_map(|(assoc, sets, slices, line)| CacheGeometry::new(assoc, sets, slices, line))
}

proptest! {
    /// Byte-identical regeneration: the whole reproducibility story rests
    /// on a spec being a complete description of its trace.
    #[test]
    fn generators_are_deterministic(spec in trace_spec()) {
        prop_assert_eq!(generate(&spec), generate(&spec));
    }

    /// Every generated access stays inside the declared working set and
    /// below the priming-address boundary.
    #[test]
    fn generated_accesses_stay_in_the_working_set(spec in trace_spec()) {
        let trace = generate(&spec);
        prop_assert_eq!(trace.len(), spec.accesses);
        let top = spec.base + spec.lines as u64 * spec.line_size;
        for &addr in trace.accesses() {
            prop_assert!(addr.0 >= spec.base && addr.0 < top);
            prop_assert!(addr.0 < 1 << 63);
            prop_assert_eq!((addr.0 - spec.base) % spec.line_size, 0);
        }
    }

    /// Binary encode → decode is lossless for arbitrary traces.
    #[test]
    fn binary_round_trips(trace in arbitrary_trace()) {
        let bytes = trace.to_binary();
        prop_assert_eq!(Trace::from_binary(&bytes).unwrap(), trace);
    }

    /// Text encode → decode is lossless for arbitrary traces.
    #[test]
    fn text_round_trips(trace in arbitrary_trace()) {
        let text = trace.to_text();
        prop_assert_eq!(Trace::from_text(&text).unwrap(), trace);
    }

    /// Every access of a zipfian trace (arbitrary skew) maps to a valid
    /// flat set index under every modelled geometry — the contract the
    /// replayers' per-set routing relies on.
    #[test]
    fn zipfian_set_indices_are_valid_for_every_geometry(
        geometry in geometry(),
        lines in 1usize..2000,
        zipf_s_permille in 0u32..4000,
        seed in 0u64..1000,
    ) {
        let spec = TraceSpec {
            generator: GeneratorKind::Zipfian,
            accesses: 200,
            lines,
            zipf_s_permille,
            seed,
            line_size: geometry.line_size,
            ..TraceSpec::default()
        };
        for &addr in generate(&spec).accesses() {
            let (flat, _) = set_and_tag(&geometry, addr);
            prop_assert!(flat < geometry.total_sets());
        }
    }
}
