//! Property-based tests for the Mealy-machine toolbox.

use automata::{check_equivalence, equivalent, explore, minimize, ExploreLimit, Mealy};
use proptest::prelude::*;

/// Builds a random complete Mealy machine over a small alphabet by exploring
/// a random transition table.
fn random_machine(states: usize, seed_rows: Vec<Vec<(usize, u8)>>) -> Mealy<&'static str, u8> {
    const INPUTS: [&str; 3] = ["a", "b", "c"];
    explore(
        0usize,
        INPUTS.to_vec(),
        move |s, input| {
            let ii = INPUTS.iter().position(|i| i == input).expect("known input");
            let (next, out) = seed_rows[*s % states][ii];
            (next % states, out)
        },
        ExploreLimit::default(),
    )
    .expect("bounded exploration")
}

fn machine_strategy() -> impl Strategy<Value = Mealy<&'static str, u8>> {
    (2usize..6)
        .prop_flat_map(|states| {
            let rows = proptest::collection::vec(
                proptest::collection::vec((0..states, 0u8..3), 3..=3),
                states..=states,
            );
            (Just(states), rows)
        })
        .prop_map(|(states, rows)| random_machine(states, rows))
}

proptest! {
    /// Trace equivalence is reflexive, and minimization preserves it.
    #[test]
    fn minimization_preserves_equivalence(machine in machine_strategy()) {
        prop_assert!(equivalent(&machine, &machine));
        let minimized = minimize(&machine);
        prop_assert!(equivalent(&machine, &minimized));
        prop_assert!(minimized.num_states() <= machine.num_states());
        // Minimization is idempotent.
        prop_assert_eq!(minimize(&minimized).num_states(), minimized.num_states());
    }

    /// A returned counterexample is a real counterexample: replaying it on
    /// both machines yields different last outputs.
    #[test]
    fn counterexamples_are_genuine(a in machine_strategy(), b in machine_strategy()) {
        match check_equivalence(&a, &b) {
            None => {
                // Equivalence must be symmetric.
                prop_assert!(check_equivalence(&b, &a).is_none());
            }
            Some(cex) => {
                let oa = a.output_word(cex.word.iter()).pop();
                let ob = b.output_word(cex.word.iter()).pop();
                prop_assert_ne!(oa.clone(), ob.clone());
                prop_assert_eq!(oa, Some(cex.left_output));
                prop_assert_eq!(ob, Some(cex.right_output));
            }
        }
    }

    /// Output words have exactly one output per input symbol and running a
    /// prefix yields a prefix of the outputs.
    #[test]
    fn output_words_are_prefix_consistent(
        machine in machine_strategy(),
        word in proptest::collection::vec(prop_oneof![Just("a"), Just("b"), Just("c")], 0..20),
        cut in 0usize..20,
    ) {
        let outputs = machine.output_word(word.iter());
        prop_assert_eq!(outputs.len(), word.len());
        let cut = cut.min(word.len());
        let prefix_outputs = machine.output_word(word[..cut].iter());
        prop_assert_eq!(&outputs[..cut], &prefix_outputs[..]);
    }

    /// The text serialization round-trips.
    #[test]
    fn text_format_round_trips(machine in machine_strategy()) {
        let mapped = machine.map_alphabets(|i| i.to_string(), |o| *o);
        let text = automata::render_mealy(&mapped);
        let parsed: Mealy<String, u8> = automata::parse_mealy(&text).expect("parses");
        prop_assert!(equivalent(&mapped, &parsed));
    }
}
