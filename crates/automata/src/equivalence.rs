//! Trace-equivalence checking of Mealy machines.
//!
//! Two deterministic complete Mealy machines over the same input alphabet are
//! trace-equivalent iff no input word distinguishes them; because both are
//! deterministic this can be decided by a breadth-first search of the product
//! machine (at most `|A| * |B|` pairs).
//!
//! For policies learned from hardware the numbering of cache lines is an
//! artifact of the reset sequence (the i-th line is "the line that holds the
//! i-th block of the initial content"), so we also provide equivalence *up to
//! a permutation of the alphabets* ([`equivalent_up_to_relabelling`]).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;

use crate::mealy::{Mealy, StateId};

/// A distinguishing input word together with the two conflicting outputs it
/// produces on the last symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample<I, O> {
    /// The distinguishing input word.
    pub word: Vec<I>,
    /// Output of the left machine on the last symbol of `word`.
    pub left_output: O,
    /// Output of the right machine on the last symbol of `word`.
    pub right_output: O,
}

/// A relabelling (bijection described as two maps) of inputs and outputs under
/// which two machines were found equivalent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relabelling<I, O> {
    /// Pairs `(left_input, right_input)` identifying which input of the left
    /// machine corresponds to which input of the right machine.
    pub input_map: Vec<(I, I)>,
    /// Pairs `(left_output, right_output)` for outputs.
    pub output_map: Vec<(O, O)>,
}

/// Checks trace equivalence and returns a counterexample if the machines
/// differ.
///
/// Both machines must be over the same input alphabet (same set of symbols;
/// order may differ).  Inputs present in only one machine make the machines
/// trivially incomparable and are reported as a counterexample with an empty
/// word is not possible, so this function panics instead.
///
/// # Panics
///
/// Panics if the alphabets differ as sets.
pub fn check_equivalence<I, O>(a: &Mealy<I, O>, b: &Mealy<I, O>) -> Option<Counterexample<I, O>>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    let inputs = a.inputs();
    assert_eq!(
        {
            let mut x: Vec<_> = inputs.iter().map(|i| format!("{i:?}")).collect();
            x.sort();
            x
        },
        {
            let mut x: Vec<_> = b.inputs().iter().map(|i| format!("{i:?}")).collect();
            x.sort();
            x
        },
        "machines must share the same input alphabet"
    );

    // BFS over the product, remembering the predecessor to reconstruct a
    // shortest distinguishing word: product state -> (predecessor, input index)
    // or None for the start state.
    type ProductState = (StateId, StateId);
    type Predecessor = Option<(ProductState, usize)>;
    let mut visited: HashMap<ProductState, Predecessor> = HashMap::new();
    let start = (a.initial(), b.initial());
    visited.insert(start, None);
    let mut queue = VecDeque::new();
    queue.push_back(start);

    while let Some((sa, sb)) = queue.pop_front() {
        for (ia, input) in inputs.iter().enumerate() {
            let (na, oa) = a.step_by_index(sa, ia);
            let ib = b
                .input_position(input)
                .expect("alphabet mismatch checked above");
            let (nb, ob) = b.step_by_index(sb, ib);
            if oa != ob {
                // Reconstruct the path to (sa, sb), then append `input`.
                let mut word = vec![input.clone()];
                let mut cur = (sa, sb);
                while let Some(Some((prev, pi))) = visited.get(&cur) {
                    word.push(inputs[*pi].clone());
                    cur = *prev;
                }
                word.reverse();
                return Some(Counterexample {
                    word,
                    left_output: oa.clone(),
                    right_output: ob.clone(),
                });
            }
            let next = (na, nb);
            if let std::collections::hash_map::Entry::Vacant(e) = visited.entry(next) {
                e.insert(Some(((sa, sb), ia)));
                queue.push_back(next);
            }
        }
    }
    None
}

/// Returns `true` iff the two machines are trace-equivalent.
///
/// # Panics
///
/// Panics if the alphabets differ as sets (see [`check_equivalence`]).
pub fn equivalent<I, O>(a: &Mealy<I, O>, b: &Mealy<I, O>) -> bool
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    check_equivalence(a, b).is_none()
}

/// Checks equivalence of `a` and `b` up to a simultaneous relabelling of
/// inputs and outputs.
///
/// `candidates` enumerates the relabellings to try: each candidate is a pair
/// of functions mapping the left machine's inputs/outputs into the right
/// machine's alphabets.  The first relabelling under which the machines are
/// trace-equivalent is returned.
///
/// For replacement policies the natural candidate set is "all permutations of
/// cache-line indices applied consistently to `Ln(i)` inputs and to line
/// outputs"; that enumeration lives in the `polca` crate, which knows the
/// policy alphabet.
pub fn equivalent_up_to_relabelling<I, O, FI, FO>(
    a: &Mealy<I, O>,
    b: &Mealy<I, O>,
    candidates: impl IntoIterator<Item = (FI, FO)>,
) -> Option<Relabelling<I, O>>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + Hash + fmt::Debug,
    FI: Fn(&I) -> I,
    FO: Fn(&O) -> O,
{
    for (fi, fo) in candidates {
        let relabelled = a.map_alphabets(|i| fi(i), |o| fo(o));
        if equivalent(&relabelled, b) {
            let input_map = a
                .inputs()
                .iter()
                .map(|i| (i.clone(), fi(i)))
                .collect::<Vec<_>>();
            let mut outs: Vec<O> = Vec::new();
            for s in a.states() {
                for (_, o) in a.row(s) {
                    if !outs.contains(o) {
                        outs.push(o.clone());
                    }
                }
            }
            let output_map = outs.into_iter().map(|o| (o.clone(), fo(&o))).collect();
            return Some(Relabelling {
                input_map,
                output_map,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mealy::MealyBuilder;

    fn machine(outputs: [&'static str; 2]) -> Mealy<&'static str, &'static str> {
        // One-state machine mapping input k to outputs[k].
        let mut b = MealyBuilder::new(vec!["a", "b"]);
        let s = b.add_state();
        b.add_transition(s, "a", s, outputs[0]);
        b.add_transition(s, "b", s, outputs[1]);
        b.build(s).unwrap()
    }

    fn lru2() -> Mealy<&'static str, &'static str> {
        let mut b = MealyBuilder::new(vec!["Ln(0)", "Ln(1)", "Evct"]);
        let cs0 = b.add_state();
        let cs1 = b.add_state();
        b.add_transition(cs0, "Ln(0)", cs1, "⊥");
        b.add_transition(cs0, "Ln(1)", cs0, "⊥");
        b.add_transition(cs0, "Evct", cs1, "0");
        b.add_transition(cs1, "Ln(0)", cs1, "⊥");
        b.add_transition(cs1, "Ln(1)", cs0, "⊥");
        b.add_transition(cs1, "Evct", cs0, "1");
        b.build(cs0).unwrap()
    }

    /// FIFO with 2 lines has the same alphabet but different traces than LRU:
    /// a hit does not refresh the line.
    fn fifo2() -> Mealy<&'static str, &'static str> {
        let mut b = MealyBuilder::new(vec!["Ln(0)", "Ln(1)", "Evct"]);
        let cs0 = b.add_state();
        let cs1 = b.add_state();
        b.add_transition(cs0, "Ln(0)", cs0, "⊥");
        b.add_transition(cs0, "Ln(1)", cs0, "⊥");
        b.add_transition(cs0, "Evct", cs1, "0");
        b.add_transition(cs1, "Ln(0)", cs1, "⊥");
        b.add_transition(cs1, "Ln(1)", cs1, "⊥");
        b.add_transition(cs1, "Evct", cs0, "1");
        b.build(cs0).unwrap()
    }

    #[test]
    fn identical_machines_are_equivalent() {
        assert!(equivalent(&lru2(), &lru2()));
        assert!(check_equivalence(&lru2(), &lru2()).is_none());
    }

    #[test]
    fn lru_and_fifo_differ_and_counterexample_is_replayable() {
        let lru = lru2();
        let fifo = fifo2();
        let cex = check_equivalence(&lru, &fifo).expect("must differ");
        let lo = lru.last_output(cex.word.iter()).unwrap();
        let fo = fifo.last_output(cex.word.iter()).unwrap();
        assert_ne!(lo, fo);
        assert_eq!(lo, cex.left_output);
        assert_eq!(fo, cex.right_output);
    }

    #[test]
    fn counterexample_is_shortest() {
        // LRU vs FIFO at associativity 2 first differ after a hit on line 0
        // followed by an eviction: LRU evicts line 1, FIFO evicts line 0.
        let cex = check_equivalence(&lru2(), &fifo2()).unwrap();
        assert_eq!(cex.word.len(), 2);
    }

    #[test]
    fn equivalence_up_to_relabelling_finds_a_swap() {
        let a = machine(["x", "y"]);
        let b = machine(["y", "x"]);
        assert!(!equivalent(&a, &b));
        // Swap the two inputs (outputs unchanged).
        let swap_in = |i: &&'static str| if *i == "a" { "b" } else { "a" };
        let id_out = |o: &&'static str| *o;
        let found = equivalent_up_to_relabelling(&a, &b, vec![(swap_in, id_out)]);
        assert!(found.is_some());
    }

    #[test]
    #[should_panic(expected = "same input alphabet")]
    fn different_alphabets_panic() {
        let a = machine(["x", "y"]);
        let mut b = MealyBuilder::new(vec!["a"]);
        let s = b.add_state();
        b.add_transition(s, "a", s, "x");
        let b = b.build(s).unwrap();
        check_equivalence(&a, &b);
    }
}
