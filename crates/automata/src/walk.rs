//! Random-walk differential checking: drive a [`Mealy`] machine and an
//! arbitrary reference implementation with the same input stream and report
//! the first output divergence.
//!
//! Exhaustive trace equivalence ([`crate::check_equivalence`]) needs the
//! reference as a second machine; the walk only needs a *step function*, so
//! it can compare a learned automaton directly against an executable
//! simulator (the ground-truth policy of the conformance harness) without
//! materializing the simulator's state space first.

use std::fmt;

use crate::mealy::Mealy;

/// The first point where a walked machine and its reference disagreed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkDivergence<I, O> {
    /// Zero-based index of the diverging step.
    pub step: usize,
    /// The inputs fed so far, the diverging one last.
    pub inputs: Vec<I>,
    /// What the reference produced.
    pub expected: O,
    /// What the machine produced.
    pub actual: O,
}

impl<I: fmt::Debug, O: fmt::Debug> fmt::Display for WalkDivergence<I, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {}: expected {:?}, got {:?} after {:?}",
            self.step, self.expected, self.actual, self.inputs
        )
    }
}

/// Walks `machine` for `steps` random steps against a reference step
/// function and returns the first divergence, or `None` if every output
/// agreed.
///
/// * `reference` — the ground truth: consumes one input, returns its output
///   (stateful; starts in the state corresponding to the machine's initial
///   state);
/// * `choose` — the input selector: given the alphabet size, returns the
///   index of the next input.  Passing a seeded generator's `gen_range`
///   makes the walk reproducible; the crate stays RNG-agnostic.
///
/// # Example
///
/// ```
/// use automata::{explore, random_walk_check, ExploreLimit};
///
/// let m = explore(0u8, vec!["t"], |s, _| ((s + 1) % 3, (s + 1) % 3), ExploreLimit::default())
///     .unwrap();
/// let mut counter = 0u8;
/// let reference = |_: &&str| {
///     counter = (counter + 1) % 3;
///     counter
/// };
/// assert!(random_walk_check(&m, reference, 100, |_| 0).is_none());
/// ```
pub fn random_walk_check<I, O>(
    machine: &Mealy<I, O>,
    mut reference: impl FnMut(&I) -> O,
    steps: usize,
    mut choose: impl FnMut(usize) -> usize,
) -> Option<WalkDivergence<I, O>>
where
    I: Clone + Eq + std::hash::Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    let inputs = machine.inputs();
    let mut state = machine.initial();
    let mut history = Vec::new();
    for step in 0..steps {
        let input = &inputs[choose(inputs.len()) % inputs.len()];
        history.push(input.clone());
        let (next, actual) = machine.step(state, input);
        let expected = reference(input);
        if actual != expected {
            return Some(WalkDivergence {
                step,
                inputs: history,
                expected,
                actual,
            });
        }
        state = next;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreLimit};

    fn counter_machine(modulus: u8) -> Mealy<&'static str, u8> {
        explore(
            0u8,
            vec!["tick"],
            |s, _| ((s + 1) % modulus, (s + 1) % modulus),
            ExploreLimit::default(),
        )
        .unwrap()
    }

    #[test]
    fn agreeing_walks_return_none() {
        let m = counter_machine(5);
        let mut counter = 0u8;
        let result = random_walk_check(
            &m,
            |_| {
                counter = (counter + 1) % 5;
                counter
            },
            1000,
            |n| 7 % n,
        );
        assert_eq!(result, None);
    }

    #[test]
    fn the_first_divergence_is_reported_exactly() {
        // The reference wraps at 4 instead of 5: the machines agree for the
        // first three ticks and diverge on the fourth (reference yields 0,
        // machine yields 4).
        let m = counter_machine(5);
        let mut counter = 0u8;
        let divergence = random_walk_check(
            &m,
            |_| {
                counter = (counter + 1) % 4;
                counter
            },
            1000,
            |n| 3 % n,
        )
        .expect("modulus 4 and 5 counters must diverge");
        assert_eq!(divergence.step, 3);
        assert_eq!(divergence.inputs.len(), 4);
        assert_eq!(divergence.expected, 0);
        assert_eq!(divergence.actual, 4);
        assert!(divergence.to_string().contains("step 3"));
    }

    #[test]
    fn out_of_range_choices_are_wrapped() {
        let m = counter_machine(2);
        let mut counter = 0u8;
        assert!(random_walk_check(
            &m,
            |_| {
                counter = (counter + 1) % 2;
                counter
            },
            10,
            |_| usize::MAX,
        )
        .is_none());
    }
}
