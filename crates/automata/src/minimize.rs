//! Mealy machine minimization by partition refinement.
//!
//! Learned hypotheses produced by L* are minimal by construction, but
//! ground-truth machines obtained by [`crate::explore`] from executable
//! policies may contain distinct control states with identical behaviour
//! (e.g. ages that never influence future evictions).  The state counts in
//! Table 2 of the paper refer to the minimal machines, so the benchmark
//! harness minimizes explored automata before reporting.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use crate::mealy::{Mealy, StateId};

/// Returns the minimal Mealy machine trace-equivalent to `m`.
///
/// Unreachable states are discarded (machines built by [`crate::explore`] or
/// the learner never contain any) and behaviourally equivalent states are
/// merged.  The initial state of the result corresponds to the block of `m`'s
/// initial state.
pub fn minimize<I, O>(m: &Mealy<I, O>) -> Mealy<I, O>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + Hash + fmt::Debug,
{
    let n = m.num_states();
    let arity = m.inputs().len();

    // Restrict to reachable states first.
    let mut reachable = vec![false; n];
    let mut stack = vec![m.initial()];
    reachable[m.initial().index()] = true;
    while let Some(s) = stack.pop() {
        for ii in 0..arity {
            let (t, _) = m.step_by_index(s, ii);
            if !reachable[t.index()] {
                reachable[t.index()] = true;
                stack.push(t);
            }
        }
    }

    // Initial partition: states are grouped by their output row.
    let mut block_of: Vec<usize> = vec![usize::MAX; n];
    {
        let mut signature_to_block: HashMap<Vec<&O>, usize> = HashMap::new();
        for s in 0..n {
            if !reachable[s] {
                continue;
            }
            let sig: Vec<&O> = (0..arity)
                .map(|ii| m.step_by_index(StateId(s), ii).1)
                .collect();
            let next = signature_to_block.len();
            let b = *signature_to_block.entry(sig).or_insert(next);
            block_of[s] = b;
        }
    }

    // Refine until stable: two states stay together iff for every input their
    // successors are in the same block.
    loop {
        let mut signature_to_block: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
        let mut new_block_of = vec![usize::MAX; n];
        for s in 0..n {
            if !reachable[s] {
                continue;
            }
            let succ_sig: Vec<usize> = (0..arity)
                .map(|ii| block_of[m.step_by_index(StateId(s), ii).0.index()])
                .collect();
            let key = (block_of[s], succ_sig);
            let next = signature_to_block.len();
            let b = *signature_to_block.entry(key).or_insert(next);
            new_block_of[s] = b;
        }
        if new_block_of == block_of {
            break;
        }
        block_of = new_block_of;
    }

    let num_blocks = block_of
        .iter()
        .filter(|&&b| b != usize::MAX)
        .max()
        .map_or(0, |&b| b + 1);

    // Pick a representative per block and build the quotient machine.
    let mut representative: Vec<Option<usize>> = vec![None; num_blocks];
    for s in 0..n {
        if reachable[s] && representative[block_of[s]].is_none() {
            representative[block_of[s]] = Some(s);
        }
    }
    let transitions: Vec<Vec<(StateId, O)>> = (0..num_blocks)
        .map(|b| {
            let rep = representative[b].expect("every block has a representative");
            (0..arity)
                .map(|ii| {
                    let (t, o) = m.step_by_index(StateId(rep), ii);
                    (StateId(block_of[t.index()]), o.clone())
                })
                .collect()
        })
        .collect();

    Mealy::from_tables(
        m.inputs().to_vec(),
        transitions,
        StateId(block_of[m.initial().index()]),
    )
    .expect("quotient machine is complete by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::equivalent;
    use crate::mealy::MealyBuilder;

    #[test]
    fn merges_equivalent_states() {
        // Two states with identical behaviour plus one genuinely different.
        let mut b = MealyBuilder::new(vec!["a", "b"]);
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        for s in [s0, s1] {
            b.add_transition(s, "a", s2, "go");
            b.add_transition(s, "b", s, "stay");
        }
        b.add_transition(s2, "a", s0, "back");
        b.add_transition(s2, "b", s2, "stay");
        let m = b.build(s0).unwrap();
        let min = minimize(&m);
        assert_eq!(min.num_states(), 2);
        assert!(equivalent(&m, &min));
    }

    #[test]
    fn drops_unreachable_states() {
        let mut b = MealyBuilder::new(vec!["a"]);
        let s0 = b.add_state();
        let s1 = b.add_state(); // unreachable, different behaviour
        b.add_transition(s0, "a", s0, "x");
        b.add_transition(s1, "a", s1, "y");
        let m = b.build(s0).unwrap();
        let min = minimize(&m);
        assert_eq!(min.num_states(), 1);
        assert!(equivalent(&m, &min));
    }

    #[test]
    fn minimal_machine_is_unchanged_in_size() {
        let mut b = MealyBuilder::new(vec!["a"]);
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.add_transition(s0, "a", s1, "x");
        b.add_transition(s1, "a", s0, "y");
        let m = b.build(s0).unwrap();
        assert_eq!(minimize(&m).num_states(), 2);
    }
}
