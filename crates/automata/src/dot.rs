//! Graphviz (DOT) export of Mealy machines.
//!
//! The original CacheQuery artifact publishes the learned policies as
//! LearnLib DOT files; this module provides the equivalent export for learned
//! and reference models of this reproduction.

use std::fmt;
use std::fmt::Write as _;
use std::hash::Hash;

use crate::mealy::Mealy;

/// Renders `m` in Graphviz DOT syntax.
///
/// Input and output symbols are rendered with their `Display` implementation;
/// transition labels follow the `input / output` convention used by LearnLib.
///
/// # Example
///
/// ```
/// use automata::{MealyBuilder, to_dot};
///
/// let mut b = MealyBuilder::new(vec!["a"]);
/// let s = b.add_state();
/// b.add_transition(s, "a", s, "x");
/// let m = b.build(s).unwrap();
/// let dot = to_dot(&m, "loop");
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("a / x"));
/// ```
pub fn to_dot<I, O>(m: &Mealy<I, O>, name: &str) -> String
where
    I: Clone + Eq + Hash + fmt::Debug + fmt::Display,
    O: Clone + Eq + fmt::Debug + fmt::Display,
{
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    let _ = writeln!(out, "  __start [shape=none, label=\"\"];");
    let _ = writeln!(out, "  __start -> q{};", m.initial().index());
    for s in m.states() {
        let _ = writeln!(out, "  q{} [label=\"q{}\"];", s.index(), s.index());
    }
    for s in m.states() {
        for (ii, input) in m.inputs().iter().enumerate() {
            let (t, o) = m.step_by_index(s, ii);
            let _ = writeln!(
                out,
                "  q{} -> q{} [label=\"{} / {}\"];",
                s.index(),
                t.index(),
                escape(&input.to_string()),
                escape(&o.to_string())
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mealy::MealyBuilder;

    #[test]
    fn dot_output_contains_all_transitions() {
        let mut b = MealyBuilder::new(vec!["a", "b"]);
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.add_transition(s0, "a", s1, "x");
        b.add_transition(s0, "b", s0, "y");
        b.add_transition(s1, "a", s0, "z");
        b.add_transition(s1, "b", s1, "w");
        let m = b.build(s0).unwrap();
        let dot = to_dot(&m, "test");
        for label in ["a / x", "b / y", "a / z", "b / w"] {
            assert!(dot.contains(label), "missing label {label}: {dot}");
        }
        assert!(dot.contains("__start -> q0"));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut b = MealyBuilder::new(vec!["\"quoted\""]);
        let s = b.add_state();
        b.add_transition(s, "\"quoted\"", s, "o");
        let m = b.build(s).unwrap();
        let dot = to_dot(&m, "q\"uote");
        assert!(dot.contains("\\\"quoted\\\""));
    }
}
