//! Plain-text serialization of Mealy machines.
//!
//! The original artifact stores learned models on disk (and the CacheQuery
//! frontend caches query responses in LevelDB).  To keep this reproduction
//! dependency-free we use a small line-based format instead:
//!
//! ```text
//! mealy v1
//! inputs <i0> <i1> ...
//! states <n>
//! initial <k>
//! trans <state> <input-index> <next-state> <output>
//! ...
//! ```
//!
//! Symbols are rendered with `Display` and parsed with `FromStr`; symbols must
//! therefore not contain whitespace (the policy alphabet `Ln(i)` / `Evct` and
//! line-index outputs satisfy this).

use std::fmt;
use std::hash::Hash;
use std::str::FromStr;

use crate::mealy::{Mealy, StateId};

/// Error raised when parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextFormatError {
    /// Line number (1-based) where parsing failed.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for TextFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TextFormatError {}

fn err(line: usize, message: impl Into<String>) -> TextFormatError {
    TextFormatError {
        line,
        message: message.into(),
    }
}

/// Renders `m` in the plain-text model format.
pub fn render_mealy<I, O>(m: &Mealy<I, O>) -> String
where
    I: Clone + Eq + Hash + fmt::Debug + fmt::Display,
    O: Clone + Eq + fmt::Debug + fmt::Display,
{
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "mealy v1");
    let _ = write!(out, "inputs");
    for i in m.inputs() {
        let _ = write!(out, " {i}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "states {}", m.num_states());
    let _ = writeln!(out, "initial {}", m.initial().index());
    for s in m.states() {
        for (ii, _) in m.inputs().iter().enumerate() {
            let (t, o) = m.step_by_index(s, ii);
            let _ = writeln!(out, "trans {} {} {} {}", s.index(), ii, t.index(), o);
        }
    }
    out
}

/// Parses a machine previously rendered by [`render_mealy`].
///
/// # Errors
///
/// Returns a [`TextFormatError`] describing the first malformed line, an
/// incomplete transition table, or symbols that fail to parse.
pub fn parse_mealy<I, O>(text: &str) -> Result<Mealy<I, O>, TextFormatError>
where
    I: Clone + Eq + Hash + fmt::Debug + FromStr,
    O: Clone + Eq + fmt::Debug + FromStr,
{
    let mut inputs: Option<Vec<I>> = None;
    let mut num_states: Option<usize> = None;
    let mut initial: Option<usize> = None;
    let mut cells: Vec<(usize, usize, usize, O)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("mealy") => {
                if parts.next() != Some("v1") {
                    return Err(err(lineno, "unsupported format version"));
                }
            }
            Some("inputs") => {
                let parsed: Result<Vec<I>, _> = parts.map(|p| p.parse::<I>()).collect();
                inputs = Some(parsed.map_err(|_| err(lineno, "failed to parse input symbol"))?);
            }
            Some("states") => {
                num_states = Some(
                    parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| err(lineno, "malformed states line"))?,
                );
            }
            Some("initial") => {
                initial = Some(
                    parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| err(lineno, "malformed initial line"))?,
                );
            }
            Some("trans") => {
                let s: usize = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| err(lineno, "malformed state in trans"))?;
                let ii: usize = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| err(lineno, "malformed input index in trans"))?;
                let t: usize = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| err(lineno, "malformed target in trans"))?;
                let o: O = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| err(lineno, "malformed output in trans"))?;
                cells.push((s, ii, t, o));
            }
            Some(other) => return Err(err(lineno, format!("unknown directive '{other}'"))),
            None => unreachable!("empty lines are skipped"),
        }
    }

    let inputs = inputs.ok_or_else(|| err(0, "missing 'inputs' line"))?;
    let num_states = num_states.ok_or_else(|| err(0, "missing 'states' line"))?;
    let initial = initial.ok_or_else(|| err(0, "missing 'initial' line"))?;
    if num_states == 0 {
        return Err(err(0, "machine must have at least one state"));
    }
    if initial >= num_states {
        return Err(err(0, "initial state out of range"));
    }

    let mut table: Vec<Vec<Option<(StateId, O)>>> = vec![vec![None; inputs.len()]; num_states];
    for (s, ii, t, o) in cells {
        if s >= num_states || t >= num_states || ii >= inputs.len() {
            return Err(err(0, "transition indices out of range"));
        }
        table[s][ii] = Some((StateId(t), o));
    }
    let mut transitions = Vec::with_capacity(num_states);
    for (s, row) in table.into_iter().enumerate() {
        let mut complete = Vec::with_capacity(inputs.len());
        for (ii, cell) in row.into_iter().enumerate() {
            complete.push(cell.ok_or_else(|| {
                err(
                    0,
                    format!("missing transition for state {s}, input index {ii}"),
                )
            })?);
        }
        transitions.push(complete);
    }
    Mealy::from_tables(inputs, transitions, StateId(initial))
        .map_err(|e| err(0, format!("invalid machine: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::equivalent;
    use crate::mealy::MealyBuilder;

    fn sample() -> Mealy<String, String> {
        let mut b = MealyBuilder::new(vec!["Ln(0)".to_string(), "Evct".to_string()]);
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.add_transition(s0, "Ln(0)".into(), s0, "none".into());
        b.add_transition(s0, "Evct".into(), s1, "0".into());
        b.add_transition(s1, "Ln(0)".into(), s0, "none".into());
        b.add_transition(s1, "Evct".into(), s1, "0".into());
        b.build(s0).unwrap()
    }

    #[test]
    fn round_trips() {
        let m = sample();
        let text = render_mealy(&m);
        let back: Mealy<String, String> = parse_mealy(&text).unwrap();
        assert_eq!(back.num_states(), m.num_states());
        assert!(equivalent(&m, &back));
    }

    #[test]
    fn rejects_missing_transitions() {
        let text = "mealy v1\ninputs a\nstates 1\ninitial 0\n";
        let e = parse_mealy::<String, String>(text).unwrap_err();
        assert!(e.message.contains("missing transition"));
    }

    #[test]
    fn rejects_unknown_directive() {
        let text = "mealy v1\nbogus\n";
        assert!(parse_mealy::<String, String>(text).is_err());
    }

    #[test]
    fn rejects_out_of_range_initial() {
        let text = "mealy v1\ninputs a\nstates 1\ninitial 3\ntrans 0 0 0 x\n";
        assert!(parse_mealy::<String, String>(text).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let m = sample();
        let mut text = String::from("# header comment\n\n");
        text.push_str(&render_mealy(&m));
        let back: Mealy<String, String> = parse_mealy(&text).unwrap();
        assert!(equivalent(&m, &back));
    }
}
