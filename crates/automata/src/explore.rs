//! Reachability construction: turn a deterministic step function into a
//! [`Mealy`] machine by breadth-first exploration.
//!
//! This is how ground-truth automata are obtained from executable replacement
//! policies (used for the state counts of Table 2) and how synthesized
//! explanation programs are converted back into automata for the equivalence
//! check of §5.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use crate::mealy::{Mealy, MealyBuildError, StateId};

/// Bound on the exploration to guard against non-terminating or unexpectedly
/// large state spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreLimit {
    /// Maximum number of distinct states to enumerate.
    pub max_states: usize,
}

impl Default for ExploreLimit {
    fn default() -> Self {
        // PLRU at associativity 16 has 32768 states (Table 2); default to a
        // bound comfortably above that.
        ExploreLimit {
            max_states: 1 << 20,
        }
    }
}

/// Error raised by [`explore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The exploration exceeded [`ExploreLimit::max_states`].
    StateLimitExceeded(usize),
    /// The resulting machine could not be built (should not happen for a
    /// deterministic step function; kept for completeness).
    Build(MealyBuildError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::StateLimitExceeded(n) => {
                write!(f, "reachable state space exceeds the limit of {n} states")
            }
            ExploreError::Build(e) => write!(f, "failed to build explored machine: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<MealyBuildError> for ExploreError {
    fn from(e: MealyBuildError) -> Self {
        ExploreError::Build(e)
    }
}

/// Enumerates the reachable state space of a deterministic transition system
/// and returns it as a [`Mealy`] machine.
///
/// * `initial` — the initial semantic state;
/// * `inputs` — the input alphabet (canonical order preserved);
/// * `step` — the deterministic step function `(state, input) -> (state', output)`.
///
/// Semantic states are deduplicated by equality/hash, so `S` must encode the
/// *complete* control state (two states comparing equal must behave
/// identically forever).
///
/// # Errors
///
/// Returns [`ExploreError::StateLimitExceeded`] if more than
/// `limit.max_states` distinct states are reachable.
///
/// # Example
///
/// ```
/// use automata::{explore, ExploreLimit};
///
/// // A modulo-3 counter that outputs whether the counter wrapped.
/// let m = explore(
///     0u8,
///     vec!["tick"],
///     |s, _| ((s + 1) % 3, (s + 1) % 3 == 0),
///     ExploreLimit::default(),
/// )
/// .unwrap();
/// assert_eq!(m.num_states(), 3);
/// assert_eq!(m.output_word(["tick", "tick", "tick"].iter()), vec![false, false, true]);
/// ```
pub fn explore<S, I, O>(
    initial: S,
    inputs: Vec<I>,
    mut step: impl FnMut(&S, &I) -> (S, O),
    limit: ExploreLimit,
) -> Result<Mealy<I, O>, ExploreError>
where
    S: Clone + Eq + Hash,
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    let mut ids: HashMap<S, StateId> = HashMap::new();
    let mut worklist: Vec<S> = Vec::new();
    let mut transitions: Vec<Vec<(StateId, O)>> = Vec::new();

    ids.insert(initial.clone(), StateId(0));
    worklist.push(initial);
    let mut next_unprocessed = 0usize;

    while next_unprocessed < worklist.len() {
        let state = worklist[next_unprocessed].clone();
        next_unprocessed += 1;
        let mut row = Vec::with_capacity(inputs.len());
        for input in &inputs {
            let (succ, out) = step(&state, input);
            let next_id = match ids.get(&succ) {
                Some(&id) => id,
                None => {
                    let id = StateId(ids.len());
                    if ids.len() >= limit.max_states {
                        return Err(ExploreError::StateLimitExceeded(limit.max_states));
                    }
                    ids.insert(succ.clone(), id);
                    worklist.push(succ);
                    id
                }
            };
            row.push((next_id, out));
        }
        transitions.push(row);
    }

    Ok(Mealy::from_tables(inputs, transitions, StateId(0))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explores_a_counter() {
        let m = explore(
            0u32,
            vec![1u32, 2u32],
            |s, i| ((s + i) % 4, (s + i) % 4),
            ExploreLimit::default(),
        )
        .unwrap();
        assert_eq!(m.num_states(), 4);
        assert_eq!(m.output_word([&1, &1, &2].into_iter()), vec![1, 2, 0]);
    }

    #[test]
    fn respects_state_limit() {
        let err = explore(
            0u64,
            vec![()],
            |s, _| (s + 1, ()),
            ExploreLimit { max_states: 10 },
        )
        .unwrap_err();
        assert_eq!(err, ExploreError::StateLimitExceeded(10));
    }

    #[test]
    fn single_state_machine() {
        let m = explore(
            0u8,
            vec!["a", "b"],
            |_, i| (0, i.len()),
            ExploreLimit::default(),
        )
        .unwrap();
        assert_eq!(m.num_states(), 1);
        assert_eq!(m.output_word(["a", "b"].iter()), vec![1, 1]);
    }
}
