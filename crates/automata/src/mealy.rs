//! Table-based deterministic Mealy machines.

use std::fmt;
use std::hash::Hash;

use crate::fxhash::FxHashMap;

/// Alphabets at or below this size resolve input positions by scanning the
/// input vector instead of hashing.  Policy alphabets are tiny (`assoc + 1`
/// symbols), and a handful of equality checks beats a hash computation for
/// every symbol of every membership query.
const SCAN_ALPHABET_MAX: usize = 16;

/// Identifier of a control state inside a [`Mealy`] machine.
///
/// State identifiers are dense indices assigned in insertion order; the
/// initial state is whatever state was passed to [`MealyBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) usize);

impl StateId {
    /// Creates a state identifier from a dense index.
    ///
    /// This is only useful together with [`Mealy::from_tables`], where states
    /// are numbered consecutively from zero.
    pub fn new(index: usize) -> Self {
        StateId(index)
    }

    /// Returns the dense index of this state.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Error raised when a [`MealyBuilder`] cannot produce a complete machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MealyBuildError {
    /// A state is missing the transition for the named input (formatted with
    /// `Debug`).
    MissingTransition {
        /// State missing the transition.
        state: StateId,
        /// Debug rendering of the input symbol.
        input: String,
    },
    /// The same (state, input) pair was defined twice with conflicting
    /// successor or output.
    ConflictingTransition {
        /// State with the conflict.
        state: StateId,
        /// Debug rendering of the input symbol.
        input: String,
    },
    /// The machine has no states.
    Empty,
    /// An input symbol used in a transition is not part of the alphabet.
    UnknownInput(String),
}

impl fmt::Display for MealyBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MealyBuildError::MissingTransition { state, input } => {
                write!(f, "state {state} has no transition for input {input}")
            }
            MealyBuildError::ConflictingTransition { state, input } => {
                write!(
                    f,
                    "state {state} has conflicting transitions for input {input}"
                )
            }
            MealyBuildError::Empty => write!(f, "machine has no states"),
            MealyBuildError::UnknownInput(i) => write!(f, "input {i} is not in the alphabet"),
        }
    }
}

impl std::error::Error for MealyBuildError {}

/// Incremental constructor for [`Mealy`] machines.
///
/// The builder is total-checked: [`MealyBuilder::build`] fails unless every
/// state defines a transition for every input symbol, which matches the
/// requirement that replacement policies are complete deterministic machines.
#[derive(Debug, Clone)]
pub struct MealyBuilder<I, O> {
    inputs: Vec<I>,
    input_index: FxHashMap<I, usize>,
    /// transitions[state][input] = (successor, output)
    transitions: Vec<Vec<Option<(StateId, O)>>>,
}

impl<I, O> MealyBuilder<I, O>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    /// Creates a builder over the given input alphabet.
    ///
    /// The order of `inputs` is preserved and becomes the canonical input
    /// ordering of the built machine.
    pub fn new(inputs: Vec<I>) -> Self {
        let input_index = inputs
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, s)| (s, i))
            .collect();
        MealyBuilder {
            inputs,
            input_index,
            transitions: Vec::new(),
        }
    }

    /// Adds a fresh control state and returns its identifier.
    pub fn add_state(&mut self) -> StateId {
        self.transitions.push(vec![None; self.inputs.len()]);
        StateId(self.transitions.len() - 1)
    }

    /// Number of states added so far.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Defines the transition `from --input/output--> to`.
    ///
    /// Re-defining the same transition with identical target and output is a
    /// no-op; conflicting redefinitions are reported by [`MealyBuilder::build`].
    pub fn add_transition(&mut self, from: StateId, input: I, to: StateId, output: O) {
        let Some(&ii) = self.input_index.get(&input) else {
            // Defer the error to `build`, where we have a uniform error type.
            self.transitions[from.0].push(None);
            return;
        };
        let slot = &mut self.transitions[from.0][ii];
        match slot {
            None => *slot = Some((to, output)),
            Some((t, o)) if *t == to && *o == output => {}
            Some(_) => {
                // Mark the conflict by widening the row; detected in `build`.
                self.transitions[from.0].push(None);
            }
        }
    }

    /// Finalizes the machine with `initial` as initial state.
    ///
    /// # Errors
    ///
    /// Returns an error if the machine is empty, if any transition is missing,
    /// or if conflicting transitions were recorded.
    pub fn build(self, initial: StateId) -> Result<Mealy<I, O>, MealyBuildError> {
        if self.transitions.is_empty() {
            return Err(MealyBuildError::Empty);
        }
        let arity = self.inputs.len();
        let mut transitions = Vec::with_capacity(self.transitions.len());
        for (si, row) in self.transitions.into_iter().enumerate() {
            if row.len() != arity {
                return Err(MealyBuildError::ConflictingTransition {
                    state: StateId(si),
                    input: "<redefined>".to_string(),
                });
            }
            let mut complete = Vec::with_capacity(arity);
            for (ii, cell) in row.into_iter().enumerate() {
                match cell {
                    Some(t) => complete.push(t),
                    None => {
                        return Err(MealyBuildError::MissingTransition {
                            state: StateId(si),
                            input: format!("{:?}", self.inputs[ii]),
                        })
                    }
                }
            }
            transitions.push(complete);
        }
        Ok(Mealy {
            inputs: self.inputs,
            input_index: self.input_index,
            transitions,
            initial,
        })
    }
}

/// A complete deterministic Mealy machine over input alphabet `I` and output
/// alphabet `O`.
///
/// This is the representation of Definition 2.1 in the paper: a finite set of
/// control states, an initial state, and total transition/output functions.
#[derive(Debug, Clone)]
pub struct Mealy<I, O> {
    inputs: Vec<I>,
    input_index: FxHashMap<I, usize>,
    /// `transitions[state][input] = (successor, output)`.
    transitions: Vec<Vec<(StateId, O)>>,
    initial: StateId,
}

impl<I, O> Mealy<I, O>
where
    I: Clone + Eq + Hash + fmt::Debug,
    O: Clone + Eq + fmt::Debug,
{
    /// The input alphabet, in canonical order.
    pub fn inputs(&self) -> &[I] {
        &self.inputs
    }

    /// The initial control state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Number of control states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Iterates over all state identifiers.
    pub fn states(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.transitions.len()).map(StateId)
    }

    /// Index of `input` in the canonical alphabet ordering, if present.
    pub fn input_position(&self, input: &I) -> Option<usize> {
        if self.inputs.len() <= SCAN_ALPHABET_MAX {
            return self.inputs.iter().position(|i| i == input);
        }
        self.input_index.get(input).copied()
    }

    /// Executes a single step from `state` on `input`.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not part of the alphabet.
    pub fn step(&self, state: StateId, input: &I) -> (StateId, O) {
        let ii = self
            .input_position(input)
            .unwrap_or_else(|| panic!("input {input:?} is not in the alphabet"));
        self.transitions[state.0][ii].clone()
    }

    /// Executes a single step identified by alphabet position.
    pub fn step_by_index(&self, state: StateId, input_index: usize) -> (StateId, &O) {
        let (s, o) = &self.transitions[state.0][input_index];
        (*s, o)
    }

    /// Runs the machine on `word` from the initial state and returns the final
    /// state together with the produced output word.
    pub fn run<'a>(&self, word: impl IntoIterator<Item = &'a I>) -> (StateId, Vec<O>)
    where
        I: 'a,
    {
        let mut out = Vec::new();
        let state = self.run_into(word, &mut out);
        (state, out)
    }

    /// Runs the machine on `word` from the initial state, writing the output
    /// word into `out` (cleared first) and returning the final state.
    ///
    /// This is the allocation-reusing form of [`Mealy::run`]: conformance
    /// testing predicts an output word for millions of test words per
    /// campaign, and reusing one scratch buffer keeps that loop off the
    /// allocator.
    ///
    /// # Panics
    ///
    /// Panics if `word` contains a symbol outside the alphabet.
    pub fn run_into<'a>(&self, word: impl IntoIterator<Item = &'a I>, out: &mut Vec<O>) -> StateId
    where
        I: 'a,
    {
        out.clear();
        let mut state = self.initial;
        for i in word {
            let ii = self
                .input_position(i)
                .unwrap_or_else(|| panic!("input {i:?} is not in the alphabet"));
            let (next, o) = &self.transitions[state.0][ii];
            out.push(o.clone());
            state = *next;
        }
        state
    }

    /// Output word produced by running `word` from the initial state.
    pub fn output_word<'a>(&self, word: impl IntoIterator<Item = &'a I>) -> Vec<O>
    where
        I: 'a,
    {
        self.run(word).1
    }

    /// Output of the *last* symbol of `word` when run from the initial state,
    /// or `None` for the empty word.
    pub fn last_output<'a>(&self, word: impl IntoIterator<Item = &'a I>) -> Option<O>
    where
        I: 'a,
    {
        self.output_word(word).pop()
    }

    /// The state reached by running `word` from `from`.
    pub fn delta<'a>(&self, from: StateId, word: impl IntoIterator<Item = &'a I>) -> StateId
    where
        I: 'a,
    {
        let mut state = from;
        for i in word {
            state = self.step(state, i).0;
        }
        state
    }

    /// Maps input and output alphabets, preserving the transition structure.
    ///
    /// This is used, e.g., to relabel cache-line indices when comparing a
    /// machine learned from hardware against a reference policy.
    pub fn map_alphabets<I2, O2>(
        &self,
        mut map_in: impl FnMut(&I) -> I2,
        mut map_out: impl FnMut(&O) -> O2,
    ) -> Mealy<I2, O2>
    where
        I2: Clone + Eq + Hash + fmt::Debug,
        O2: Clone + Eq + fmt::Debug,
    {
        let inputs: Vec<I2> = self.inputs.iter().map(&mut map_in).collect();
        let input_index = inputs
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, s)| (s, i))
            .collect();
        let transitions = self
            .transitions
            .iter()
            .map(|row| row.iter().map(|(s, o)| (*s, map_out(o))).collect())
            .collect();
        Mealy {
            inputs,
            input_index,
            transitions,
            initial: self.initial,
        }
    }

    /// Constructs a machine directly from dense tables.
    ///
    /// `transitions[state][input]` must contain the successor/output pair for
    /// every state and every input, in the order of `inputs`.
    ///
    /// # Errors
    ///
    /// Returns an error if the table is empty or ragged.
    pub fn from_tables(
        inputs: Vec<I>,
        transitions: Vec<Vec<(StateId, O)>>,
        initial: StateId,
    ) -> Result<Self, MealyBuildError> {
        if transitions.is_empty() {
            return Err(MealyBuildError::Empty);
        }
        for (si, row) in transitions.iter().enumerate() {
            if row.len() != inputs.len() {
                return Err(MealyBuildError::MissingTransition {
                    state: StateId(si),
                    input: format!("<arity {} != {}>", row.len(), inputs.len()),
                });
            }
        }
        let input_index = inputs
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, s)| (s, i))
            .collect();
        Ok(Mealy {
            inputs,
            input_index,
            transitions,
            initial,
        })
    }

    /// Returns the transition table row of `state` (successor/output per input
    /// position).
    pub fn row(&self, state: StateId) -> &[(StateId, O)] {
        &self.transitions[state.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru2() -> Mealy<&'static str, &'static str> {
        let mut b = MealyBuilder::new(vec!["Ln(0)", "Ln(1)", "Evct"]);
        let cs0 = b.add_state();
        let cs1 = b.add_state();
        b.add_transition(cs0, "Ln(0)", cs1, "⊥");
        b.add_transition(cs0, "Ln(1)", cs0, "⊥");
        b.add_transition(cs0, "Evct", cs1, "0");
        b.add_transition(cs1, "Ln(0)", cs1, "⊥");
        b.add_transition(cs1, "Ln(1)", cs0, "⊥");
        b.add_transition(cs1, "Evct", cs0, "1");
        b.build(cs0).unwrap()
    }

    #[test]
    fn builds_and_runs_lru2() {
        let m = lru2();
        assert_eq!(m.num_states(), 2);
        assert_eq!(m.output_word(["Evct"].iter()), vec!["0"]);
        assert_eq!(
            m.output_word(["Ln(0)", "Evct", "Evct"].iter()),
            vec!["⊥", "1", "0"]
        );
    }

    #[test]
    fn run_returns_final_state() {
        let m = lru2();
        let (s, out) = m.run(["Ln(0)", "Ln(1)"].iter());
        assert_eq!(out, vec!["⊥", "⊥"]);
        assert_eq!(s, m.initial());
    }

    #[test]
    fn missing_transition_is_rejected() {
        let mut b: MealyBuilder<&str, &str> = MealyBuilder::new(vec!["a", "b"]);
        let s = b.add_state();
        b.add_transition(s, "a", s, "x");
        let err = b.build(s).unwrap_err();
        assert!(matches!(err, MealyBuildError::MissingTransition { .. }));
    }

    #[test]
    fn conflicting_transition_is_rejected() {
        let mut b: MealyBuilder<&str, &str> = MealyBuilder::new(vec!["a"]);
        let s = b.add_state();
        b.add_transition(s, "a", s, "x");
        b.add_transition(s, "a", s, "y");
        assert!(b.build(s).is_err());
    }

    #[test]
    fn idempotent_redefinition_is_accepted() {
        let mut b: MealyBuilder<&str, &str> = MealyBuilder::new(vec!["a"]);
        let s = b.add_state();
        b.add_transition(s, "a", s, "x");
        b.add_transition(s, "a", s, "x");
        assert!(b.build(s).is_ok());
    }

    #[test]
    fn empty_machine_is_rejected() {
        let b: MealyBuilder<&str, &str> = MealyBuilder::new(vec!["a"]);
        assert_eq!(b.build(StateId(0)).unwrap_err(), MealyBuildError::Empty);
    }

    #[test]
    fn map_alphabets_preserves_structure() {
        let m = lru2();
        let mapped = m.map_alphabets(|i| i.to_uppercase(), |o| o.to_string());
        assert_eq!(mapped.num_states(), 2);
        assert_eq!(
            mapped.output_word([&"LN(0)".to_string(), &"EVCT".to_string()].into_iter()),
            vec!["⊥".to_string(), "1".to_string()]
        );
    }

    #[test]
    fn last_output_of_empty_word_is_none() {
        let m = lru2();
        assert_eq!(m.last_output(std::iter::empty()), None);
    }

    #[test]
    #[should_panic(expected = "not in the alphabet")]
    fn step_panics_on_unknown_input() {
        let m = lru2();
        m.step(m.initial(), &"nope");
    }
}
