//! A fast, non-cryptographic hasher for the learning hot path.
//!
//! The learner hashes millions of short input words per campaign — test-suite
//! deduplication, observation-table rows, batch-level duplicate suppression —
//! and the standard library's DoS-resistant SipHash dominates those loops.
//! None of the containers involved are exposed to untrusted keys (every key is
//! derived from the machine's own alphabet), so the multiply-rotate scheme
//! used by the Rust compiler itself (the "Fx" hash) is a safe drop-in that is
//! an order of magnitude cheaper per word.
//!
//! Correctness note: swapping the hasher may change *iteration order* of a
//! hash container.  Every container the learner builds on this hasher is
//! either never iterated (membership sets, dedup maps) or iterated only for
//! order-independent folds, so query counts and learned machines are
//! byte-identical to the SipHash build.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash scheme (the golden-ratio based constant used by
/// rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-rotate hasher: fast, deterministic, not DoS-resistant.
///
/// Use only for containers whose keys the program itself constructs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (stateless, so the default works).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_hash_equal() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"Ln(0) Evct"), hash(b"Ln(0) Evct"));
        assert_ne!(hash(b"Ln(0)"), hash(b"Ln(1)"));
        // Tail bytes are length-tagged, so a short key is not a truncated
        // alias of a longer zero-padded one.
        assert_ne!(hash(&[0, 0, 0]), hash(&[0, 0, 0, 0]));
    }

    #[test]
    fn containers_behave_like_std() {
        let mut set: FxHashSet<Vec<u32>> = FxHashSet::default();
        assert!(set.insert(vec![1, 2, 3]));
        assert!(!set.insert(vec![1, 2, 3]));
        assert!(set.contains(&vec![1, 2, 3]));

        let mut map: FxHashMap<&str, usize> = FxHashMap::default();
        map.insert("Evct", 4);
        assert_eq!(map.get("Evct"), Some(&4));
    }

    #[test]
    fn mixed_width_writes_do_not_collide_trivially() {
        let mut a = FxHasher::default();
        a.write_u64(7);
        let mut b = FxHasher::default();
        b.write_u32(7);
        b.write_u32(0);
        assert_ne!(a.finish(), b.finish());
    }
}
