//! Deterministic Mealy machines and the automata-theoretic toolbox used by the
//! CacheQuery/Polca reproduction.
//!
//! The paper models replacement policies as deterministic, finite-state Mealy
//! machines (Definition 2.1) and caches as the labelled transition systems they
//! induce (Definition 2.3).  Everything the learning pipeline produces or
//! consumes — hypotheses, ground-truth policy automata, synthesized programs —
//! is ultimately compared at the level of Mealy-machine trace semantics, so
//! this crate provides:
//!
//! * [`Mealy`] — a compact, table-based deterministic Mealy machine over
//!   arbitrary input/output alphabets;
//! * [`explore`] — reachability construction that turns any deterministic
//!   step function into a [`Mealy`] (used to derive ground-truth automata from
//!   executable policies and from synthesized programs);
//! * [`equivalent`] — product-based trace-equivalence checking, including
//!   equivalence up to a relabelling of the input/output alphabets (needed to
//!   compare policies learned from hardware, whose cache-line numbering is an
//!   artifact of the reset sequence, against reference policies);
//! * [`minimize`] — partition-refinement minimization;
//! * [`to_dot`] — Graphviz export of learned and reference models.
//!
//! # Example
//!
//! ```
//! use automata::MealyBuilder;
//!
//! // The 2-way LRU policy of Example 2.2 in the paper.
//! let mut b = MealyBuilder::new(vec!["Ln(0)", "Ln(1)", "Evct"]);
//! let cs0 = b.add_state();
//! let cs1 = b.add_state();
//! b.add_transition(cs0, "Ln(0)", cs1, "⊥");
//! b.add_transition(cs0, "Ln(1)", cs0, "⊥");
//! b.add_transition(cs0, "Evct", cs1, "0");
//! b.add_transition(cs1, "Ln(0)", cs1, "⊥");
//! b.add_transition(cs1, "Ln(1)", cs0, "⊥");
//! b.add_transition(cs1, "Evct", cs0, "1");
//! let lru = b.build(cs0).unwrap();
//! assert_eq!(lru.num_states(), 2);
//! assert_eq!(
//!     lru.output_word(["Ln(1)", "Evct", "Evct"].iter()),
//!     vec!["⊥", "0", "1"]
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dot;
mod equivalence;
mod explore;
pub mod fxhash;
mod mealy;
mod minimize;
mod text;
mod walk;

pub use dot::to_dot;
pub use equivalence::{
    check_equivalence, equivalent, equivalent_up_to_relabelling, Counterexample, Relabelling,
};
pub use explore::{explore, ExploreError, ExploreLimit};
pub use mealy::{Mealy, MealyBuildError, MealyBuilder, StateId};
pub use minimize::minimize;
pub use text::{parse_mealy, render_mealy, TextFormatError};
pub use walk::{random_walk_check, WalkDivergence};
