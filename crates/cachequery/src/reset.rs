//! Reset sequences: bringing a cache set into a fixed initial state before
//! every query.
//!
//! Polca's membership oracle assumes that every trace starts from the same
//! cache state (§7.1).  On most of the modelled caches *Flush+Refill* — flush
//! the set's content and access associativity-many fresh blocks — does the
//! job; the paper had to identify a custom access sequence for the Skylake /
//! Kaby Lake L2 (`D C B A @` in Table 4), which is also supported here.

use std::fmt;

use mbl::{expand_query, ExpandError, Query};

/// How the target cache set is brought into its fixed initial state before a
/// query is executed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ResetSequence {
    /// Flush the set's known content (`clflush`) and refill it with the `@`
    /// macro (associativity-many blocks in order).  Written "F+R" in Table 4.
    #[default]
    FlushRefill,
    /// A custom MBL expression executed after the flush instead of the plain
    /// `@` refill, e.g. `"D C B A @"` for the Skylake L2.
    Custom(String),
}

impl ResetSequence {
    /// The access pattern (an expanded MBL query) that performs the refill
    /// part of the reset for the given associativity.
    ///
    /// # Errors
    ///
    /// Returns an error if a custom sequence fails to parse or expands to
    /// anything other than exactly one query.
    pub fn refill_query(&self, associativity: usize) -> Result<Query, ExpandError> {
        let text = match self {
            ResetSequence::FlushRefill => "@",
            ResetSequence::Custom(s) => s.as_str(),
        };
        let mut queries = expand_query(text, associativity)?;
        if queries.len() != 1 {
            return Err(ExpandError::TooManyQueries { limit: 1 });
        }
        Ok(queries.pop().expect("length checked above"))
    }
}

impl fmt::Display for ResetSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResetSequence::FlushRefill => write!(f, "F+R"),
            ResetSequence::Custom(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbl::render_query;

    #[test]
    fn flush_refill_uses_the_expansion_macro() {
        let q = ResetSequence::FlushRefill.refill_query(4).unwrap();
        assert_eq!(render_query(&q), "A B C D");
    }

    #[test]
    fn skylake_l2_reset_matches_table_4() {
        let q = ResetSequence::Custom("D C B A @".to_string())
            .refill_query(4)
            .unwrap();
        assert_eq!(render_query(&q), "D C B A A B C D");
    }

    #[test]
    fn ambiguous_custom_sequences_are_rejected() {
        let r = ResetSequence::Custom("_".to_string());
        assert!(r.refill_query(4).is_err());
    }

    #[test]
    fn display_matches_table_4_notation() {
        assert_eq!(ResetSequence::FlushRefill.to_string(), "F+R");
        assert_eq!(
            ResetSequence::Custom("D C B A @".into()).to_string(),
            "D C B A @"
        );
    }
}
