//! The CacheQuery frontend: a thin MBL shell over the unified
//! [`QueryEngine`] — expansion, batching and statistics.
//!
//! Since the engine refactor this type holds **no cache of its own**: the
//! single memoization layer is the engine's [`QueryStore`], which can be
//! private to one tool instance ([`CacheQuery::new`]) or shared with other
//! engines — other tools, the `cqd` daemon's worker pool, learning jobs —
//! through [`CacheQuery::with_store`].

use std::sync::Arc;

use hardware::SimulatedCpu;
use mbl::Query;

use crate::backend::{Backend, BackendError, Target};
use crate::engine::{QueryEngine, QueryOutcome};
use crate::reset::ResetSequence;
use crate::store::QueryStore;

/// Counters describing the work done by a [`CacheQuery`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Queries answered (including store-served ones).
    pub queries: u64,
    /// Queries answered from the query store.
    pub cache_hits: u64,
    /// Memory loads issued by the backend on behalf of queries.
    pub backend_loads: u64,
    /// Queries the backend actually answered (each counted once, however
    /// many repetitions the engine's majority vote needed).
    pub backend_queries: u64,
    /// Raw backend executions, voting repetitions included.
    pub backend_executions: u64,
}

/// The user-facing CacheQuery tool: target selection, MBL queries, and
/// statistics, all routed through one [`QueryEngine`] over the simulated
/// hardware [`Backend`].
///
/// See the [crate-level documentation](crate) for an example.
///
/// `Clone` duplicates the simulated machine but **shares the query store**:
/// clones answer identically and benefit from each other's memoized answers
/// (they are the per-worker instances of a parallel learning run).
#[derive(Debug, Clone)]
pub struct CacheQuery {
    engine: QueryEngine<Backend>,
}

impl CacheQuery {
    /// Creates the tool on top of a simulated CPU, with a private store.
    pub fn new(cpu: SimulatedCpu) -> Self {
        CacheQuery {
            engine: QueryEngine::new(Backend::new(cpu)),
        }
    }

    /// Creates the tool over a shared [`QueryStore`]: every engine holding a
    /// clone of the same `Arc` serves (and fills) the same memoized answers.
    pub fn with_store(cpu: SimulatedCpu, store: Arc<QueryStore>) -> Self {
        CacheQuery {
            engine: QueryEngine::with_store(Backend::new(cpu), store),
        }
    }

    /// Wraps an existing engine (the inverse of [`CacheQuery::into_engine`]).
    pub fn from_engine(engine: QueryEngine<Backend>) -> Self {
        CacheQuery { engine }
    }

    /// Read-only access to the underlying engine.
    pub fn engine(&self) -> &QueryEngine<Backend> {
        &self.engine
    }

    /// Consumes the tool and returns the underlying engine (e.g. to hand it
    /// to `polca::CacheQueryOracle`).
    pub fn into_engine(self) -> QueryEngine<Backend> {
        self.engine
    }

    /// The query store behind this tool.
    pub fn store(&self) -> &Arc<QueryStore> {
        self.engine.store()
    }

    /// Read-only access to the backend.
    pub fn backend(&self) -> &Backend {
        self.engine.backend()
    }

    /// Mutable access to the backend (for advanced configuration).
    pub fn backend_mut(&mut self) -> &mut Backend {
        self.engine.backend_mut()
    }

    /// Selects the target cache set.
    ///
    /// # Errors
    ///
    /// Propagates backend validation and address-selection errors.
    pub fn set_target(&mut self, target: Target) -> Result<(), BackendError> {
        self.engine.backend_mut().select_target(target)
    }

    /// The currently selected target.
    pub fn target(&self) -> Option<Target> {
        self.engine.backend().target()
    }

    /// Associativity of the target level (after CAT).
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::NoTarget`] if no target is selected.
    pub fn associativity(&self) -> Result<usize, BackendError> {
        self.engine.backend().associativity()
    }

    /// Sets the reset sequence used before every query.
    pub fn set_reset_sequence(&mut self, reset: ResetSequence) {
        self.engine.backend_mut().set_reset_sequence(reset);
    }

    /// Sets the number of repetitions per query (the engine executes each
    /// novel query this many times and majority-votes; see
    /// [`VoteConfig`](crate::VoteConfig)).
    pub fn set_repetitions(&mut self, repetitions: usize) {
        self.engine.backend_mut().set_repetitions(repetitions);
    }

    /// Replaces the engine's repetition/majority-vote configuration.
    pub fn set_vote_config(&mut self, voting: crate::VoteConfig) {
        self.engine.set_vote_config(voting);
    }

    /// Applies Intel CAT to the last-level cache.  No cache invalidation is
    /// needed: the CAT restriction is part of the memoization namespace, so
    /// the engine switches namespaces automatically.
    ///
    /// # Errors
    ///
    /// Propagates [`BackendError::Cat`] and re-selection failures.
    pub fn apply_cat(&mut self, ways: usize) -> Result<(), BackendError> {
        self.engine.backend_mut().apply_cat(ways)
    }

    /// Enables or disables memoization through the query store (the LevelDB
    /// role of §4.2).  A disabled tool neither consults nor fills the store.
    pub fn enable_cache(&mut self, enabled: bool) {
        self.engine.set_memoize(enabled);
    }

    /// Work counters.
    pub fn stats(&self) -> QueryStats {
        let engine = self.engine.stats();
        QueryStats {
            queries: engine.queries,
            cache_hits: engine.store_hits,
            backend_loads: self.engine.backend().query_loads(),
            backend_queries: engine.backend_queries,
            backend_executions: engine.backend_executions,
        }
    }

    /// Expands an MBL expression for the target's associativity and runs
    /// every resulting query (as one engine batch).
    ///
    /// # Errors
    ///
    /// Returns parse/expansion errors and backend errors.
    pub fn query(&mut self, mbl: &str) -> Result<Vec<QueryOutcome>, BackendError> {
        self.engine.query_mbl(mbl)
    }

    /// Runs a single already-expanded query through the engine.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn run_query(&mut self, query: &Query) -> Result<QueryOutcome, BackendError> {
        self.engine.run(query)
    }

    /// Runs a batch of MBL expressions (the batch mode of §4.2) and returns
    /// the outcomes grouped per expression.
    ///
    /// # Errors
    ///
    /// Stops at the first failing expression and returns its error.
    pub fn run_batch(
        &mut self,
        expressions: &[&str],
    ) -> Result<Vec<Vec<QueryOutcome>>, BackendError> {
        expressions.iter().map(|e| self.query(e)).collect()
    }

    /// Serializes the query store to a plain-text format (one line per
    /// maximal recorded query); see [`QueryStore::export`].
    pub fn export_cache(&self) -> String {
        self.engine.store().export()
    }

    /// Restores store entries exported by [`CacheQuery::export_cache`].
    /// Malformed lines are ignored.
    pub fn import_cache(&mut self, text: &str) {
        self.engine.store().import(text);
    }

    /// Number of cached access prefixes (trie nodes) across all of the
    /// store's namespaces.
    pub fn cache_len(&self) -> usize {
        self.engine.store().entries() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache::{HitMiss, LevelId};
    use hardware::CpuModel;

    fn tool() -> CacheQuery {
        let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 5);
        let mut cq = CacheQuery::new(cpu);
        cq.set_target(Target::new(LevelId::L1, 4, 0)).unwrap();
        cq
    }

    #[test]
    fn figure_1c_style_query() {
        let mut cq = tool();
        // Figure 1c: the frontend maps abstract blocks to concrete loads and
        // classifies latencies; A B C fill, then re-accessing A hits.
        let results = cq.query("A B C A?").unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].outcomes, vec![HitMiss::Hit]);
    }

    #[test]
    fn wildcard_queries_fan_out() {
        let mut cq = tool();
        let results = cq.query("@ X _?").unwrap();
        assert_eq!(results.len(), 8);
        let misses = results
            .iter()
            .filter(|r| r.outcomes[0] == HitMiss::Miss)
            .count();
        assert_eq!(misses, 1);
    }

    #[test]
    fn responses_are_memoized_by_the_engine() {
        let mut cq = tool();
        let first = cq.query("@ X A?").unwrap();
        assert!(!first[0].from_cache);
        let second = cq.query("@ X A?").unwrap();
        assert!(second[0].from_cache);
        assert_eq!(first[0].outcomes, second[0].outcomes);
        let stats = cq.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.backend_queries, 1);
    }

    #[test]
    fn store_namespaces_include_the_target() {
        let mut cq = tool();
        cq.query("@ X A?").unwrap();
        assert_eq!(cq.store().namespaces(), 1);
        cq.set_target(Target::new(LevelId::L1, 5, 0)).unwrap();
        let second = cq.query("@ X A?").unwrap();
        assert!(!second[0].from_cache, "a new target is a new namespace");
        assert_eq!(cq.store().namespaces(), 2);
    }

    #[test]
    fn memoization_can_be_disabled() {
        let mut cq = tool();
        cq.enable_cache(false);
        cq.query("A?").unwrap();
        cq.query("A?").unwrap();
        assert_eq!(cq.stats().cache_hits, 0);
        assert_eq!(cq.cache_len(), 0);
        assert_eq!(cq.stats().backend_queries, 2);
    }

    #[test]
    fn store_export_import_round_trips() {
        let mut cq = tool();
        cq.query("@ X A?").unwrap();
        cq.query("@ X B?").unwrap();
        let exported = cq.export_cache();

        let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 5);
        let mut fresh = CacheQuery::new(cpu);
        fresh.set_target(Target::new(LevelId::L1, 4, 0)).unwrap();
        fresh.import_cache(&exported);
        assert_eq!(fresh.cache_len(), cq.cache_len());
        let res = fresh.query("@ X A?").unwrap();
        assert!(res[0].from_cache);
    }

    #[test]
    fn tools_can_share_one_store() {
        let store = Arc::new(QueryStore::new());
        let mut a = CacheQuery::with_store(
            SimulatedCpu::new(CpuModel::SkylakeI5_6500, 5),
            Arc::clone(&store),
        );
        let mut b = CacheQuery::with_store(
            SimulatedCpu::new(CpuModel::SkylakeI5_6500, 5),
            Arc::clone(&store),
        );
        a.set_target(Target::new(LevelId::L1, 4, 0)).unwrap();
        b.set_target(Target::new(LevelId::L1, 4, 0)).unwrap();
        assert!(!a.query("@ X A?").unwrap()[0].from_cache);
        // Same model, seed and target: b is served from a's answer.
        assert!(b.query("@ X A?").unwrap()[0].from_cache);
        assert_eq!(b.stats().backend_queries, 0);
    }

    #[test]
    fn batch_mode_groups_results_per_expression() {
        let mut cq = tool();
        let batches = cq.run_batch(&["A?", "@ X _?"]).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len(), 1);
        assert_eq!(batches[1].len(), 8);
    }

    #[test]
    fn queries_without_a_target_fail() {
        let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 5);
        let mut cq = CacheQuery::new(cpu);
        assert!(matches!(cq.query("A?"), Err(BackendError::NoTarget)));
    }
}
