//! The CacheQuery frontend: MBL expansion, batching, and the query-response
//! cache.

use std::collections::HashMap;

use cache::{HitMiss, LevelId};
use hardware::SimulatedCpu;
use mbl::{expand_query, render_query, Query};

use crate::backend::{Backend, BackendError, Target};
use crate::reset::ResetSequence;

/// Result of running one concrete query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The query that was executed (after MBL expansion).
    pub rendered: String,
    /// Hit/miss classification of each profiled access, in order.
    pub outcomes: Vec<HitMiss>,
    /// Whether all repetitions of the query agreed on every profiled access.
    pub consistent: bool,
    /// Whether the result was served from the response cache.
    pub from_cache: bool,
}

/// Counters describing the work done by a [`CacheQuery`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Queries answered (including cached ones).
    pub queries: u64,
    /// Queries answered from the response cache.
    pub cache_hits: u64,
    /// Memory loads issued by the backend on behalf of queries.
    pub backend_loads: u64,
    /// Queries the backend actually executed.
    pub backend_queries: u64,
}

/// Key of one cached response: the target (level, set, cpu-visible slice)
/// plus the rendered concrete query.
type ResponseKey = (LevelId, usize, usize, String);

/// Cached value: the profiled outcomes and whether the run was degraded.
type CachedResponse = (Vec<HitMiss>, bool);

/// The user-facing CacheQuery tool: target selection, MBL queries, response
/// caching and statistics.
///
/// See the [crate-level documentation](crate) for an example.
///
/// `Clone` duplicates the tool together with its simulated machine and
/// response cache; clones answer identically but do not share state.
#[derive(Debug, Clone)]
pub struct CacheQuery {
    backend: Backend,
    cache: HashMap<ResponseKey, CachedResponse>,
    caching_enabled: bool,
    stats: QueryStats,
}

impl CacheQuery {
    /// Creates the tool on top of a simulated CPU.
    pub fn new(cpu: SimulatedCpu) -> Self {
        CacheQuery {
            backend: Backend::new(cpu),
            cache: HashMap::new(),
            caching_enabled: true,
            stats: QueryStats::default(),
        }
    }

    /// Read-only access to the backend.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Mutable access to the backend (for advanced configuration).
    pub fn backend_mut(&mut self) -> &mut Backend {
        &mut self.backend
    }

    /// Selects the target cache set.
    ///
    /// # Errors
    ///
    /// Propagates backend validation and address-selection errors.
    pub fn set_target(&mut self, target: Target) -> Result<(), BackendError> {
        self.backend.select_target(target)
    }

    /// The currently selected target.
    pub fn target(&self) -> Option<Target> {
        self.backend.target()
    }

    /// Associativity of the target level (after CAT).
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::NoTarget`] if no target is selected.
    pub fn associativity(&self) -> Result<usize, BackendError> {
        self.backend.associativity()
    }

    /// Sets the reset sequence used before every query.
    pub fn set_reset_sequence(&mut self, reset: ResetSequence) {
        self.backend.set_reset_sequence(reset);
    }

    /// Sets the number of repetitions per query.
    pub fn set_repetitions(&mut self, repetitions: usize) {
        self.backend.set_repetitions(repetitions);
    }

    /// Applies Intel CAT to the last-level cache.
    ///
    /// # Errors
    ///
    /// Propagates [`BackendError::Cat`] and re-selection failures.
    pub fn apply_cat(&mut self, ways: usize) -> Result<(), BackendError> {
        self.cache.clear();
        self.backend.apply_cat(ways)
    }

    /// Enables or disables the query-response cache (the LevelDB replacement
    /// of §4.2).  Disabling it also clears it.
    pub fn enable_cache(&mut self, enabled: bool) {
        self.caching_enabled = enabled;
        if !enabled {
            self.cache.clear();
        }
    }

    /// Work counters.
    pub fn stats(&self) -> QueryStats {
        let mut stats = self.stats;
        stats.backend_loads = self.backend.query_loads();
        stats.backend_queries = self.backend.queries_run();
        stats
    }

    /// Expands an MBL expression for the target's associativity and runs every
    /// resulting query.
    ///
    /// # Errors
    ///
    /// Returns parse/expansion errors and backend errors.
    pub fn query(&mut self, mbl: &str) -> Result<Vec<QueryOutcome>, BackendError> {
        let assoc = self.associativity()?;
        let queries = expand_query(mbl, assoc)?;
        queries.iter().map(|q| self.run_query(q)).collect()
    }

    /// Runs a single already-expanded query, consulting the response cache.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn run_query(&mut self, query: &Query) -> Result<QueryOutcome, BackendError> {
        let target = self.backend.target().ok_or(BackendError::NoTarget)?;
        let rendered = render_query(query);
        let key = (target.level, target.set, target.slice, rendered.clone());
        self.stats.queries += 1;

        if self.caching_enabled {
            if let Some((outcomes, consistent)) = self.cache.get(&key) {
                self.stats.cache_hits += 1;
                return Ok(QueryOutcome {
                    rendered,
                    outcomes: outcomes.clone(),
                    consistent: *consistent,
                    from_cache: true,
                });
            }
        }

        let (outcomes, consistent) = self.backend.run(query)?;
        if self.caching_enabled {
            self.cache.insert(key, (outcomes.clone(), consistent));
        }
        Ok(QueryOutcome {
            rendered,
            outcomes,
            consistent,
            from_cache: false,
        })
    }

    /// Runs a batch of MBL expressions (the batch mode of §4.2) and returns
    /// the outcomes grouped per expression.
    ///
    /// # Errors
    ///
    /// Stops at the first failing expression and returns its error.
    pub fn run_batch(
        &mut self,
        expressions: &[&str],
    ) -> Result<Vec<Vec<QueryOutcome>>, BackendError> {
        expressions.iter().map(|e| self.query(e)).collect()
    }

    /// Serializes the response cache to a plain-text format (one line per
    /// entry).
    pub fn export_cache(&self) -> String {
        let mut lines: Vec<String> = self
            .cache
            .iter()
            .map(|((level, set, slice, query), (outcomes, consistent))| {
                let pattern: String = outcomes
                    .iter()
                    .map(|o| if *o == HitMiss::Hit { 'H' } else { 'M' })
                    .collect();
                format!("{level}|{set}|{slice}|{consistent}|{pattern}|{query}")
            })
            .collect();
        lines.sort();
        lines.join("\n")
    }

    /// Restores a response cache exported by [`CacheQuery::export_cache`].
    /// Malformed lines are ignored.
    pub fn import_cache(&mut self, text: &str) {
        for line in text.lines() {
            let parts: Vec<&str> = line.splitn(6, '|').collect();
            if parts.len() != 6 {
                continue;
            }
            let Some(level) = LevelId::parse(parts[0]) else {
                continue;
            };
            let (Ok(set), Ok(slice)) = (parts[1].parse(), parts[2].parse()) else {
                continue;
            };
            let Ok(consistent) = parts[3].parse::<bool>() else {
                continue;
            };
            let outcomes: Vec<HitMiss> = parts[4]
                .chars()
                .map(|c| {
                    if c == 'H' {
                        HitMiss::Hit
                    } else {
                        HitMiss::Miss
                    }
                })
                .collect();
            self.cache.insert(
                (level, set, slice, parts[5].to_string()),
                (outcomes, consistent),
            );
        }
    }

    /// Number of cached query responses.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardware::CpuModel;

    fn tool() -> CacheQuery {
        let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 5);
        let mut cq = CacheQuery::new(cpu);
        cq.set_target(Target::new(LevelId::L1, 4, 0)).unwrap();
        cq
    }

    #[test]
    fn figure_1c_style_query() {
        let mut cq = tool();
        // Figure 1c: the frontend maps abstract blocks to concrete loads and
        // classifies latencies; A B C fill, then re-accessing A hits.
        let results = cq.query("A B C A?").unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].outcomes, vec![HitMiss::Hit]);
    }

    #[test]
    fn wildcard_queries_fan_out() {
        let mut cq = tool();
        let results = cq.query("@ X _?").unwrap();
        assert_eq!(results.len(), 8);
        let misses = results
            .iter()
            .filter(|r| r.outcomes[0] == HitMiss::Miss)
            .count();
        assert_eq!(misses, 1);
    }

    #[test]
    fn responses_are_cached() {
        let mut cq = tool();
        let first = cq.query("@ X A?").unwrap();
        assert!(!first[0].from_cache);
        let second = cq.query("@ X A?").unwrap();
        assert!(second[0].from_cache);
        assert_eq!(first[0].outcomes, second[0].outcomes);
        let stats = cq.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn cache_keys_include_the_target() {
        let mut cq = tool();
        cq.query("@ X A?").unwrap();
        assert_eq!(cq.cache_len(), 1);
        cq.set_target(Target::new(LevelId::L1, 5, 0)).unwrap();
        let second = cq.query("@ X A?").unwrap();
        assert!(!second[0].from_cache);
        assert_eq!(cq.cache_len(), 2);
    }

    #[test]
    fn cache_can_be_disabled() {
        let mut cq = tool();
        cq.enable_cache(false);
        cq.query("A?").unwrap();
        cq.query("A?").unwrap();
        assert_eq!(cq.stats().cache_hits, 0);
        assert_eq!(cq.cache_len(), 0);
    }

    #[test]
    fn cache_export_import_round_trips() {
        let mut cq = tool();
        cq.query("@ X A?").unwrap();
        cq.query("@ X B?").unwrap();
        let exported = cq.export_cache();

        let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 5);
        let mut fresh = CacheQuery::new(cpu);
        fresh.set_target(Target::new(LevelId::L1, 4, 0)).unwrap();
        fresh.import_cache(&exported);
        assert_eq!(fresh.cache_len(), 2);
        let res = fresh.query("@ X A?").unwrap();
        assert!(res[0].from_cache);
    }

    #[test]
    fn batch_mode_groups_results_per_expression() {
        let mut cq = tool();
        let batches = cq.run_batch(&["A?", "@ X _?"]).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len(), 1);
        assert_eq!(batches[1].len(), 8);
    }

    #[test]
    fn queries_without_a_target_fail() {
        let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 5);
        let mut cq = CacheQuery::new(cpu);
        assert!(matches!(cq.query("A?"), Err(BackendError::NoTarget)));
    }
}
