//! Deterministic fault injection: a [`NoisyBackend`] that corrupts the
//! answers of any [`QueryBackend`] at configurable, seeded rates.
//!
//! The paper's hardware frontend only works because noisy timing
//! measurements are repeated and majority-voted before they ever reach the
//! learner (§5).  This module *manufactures* that noise reproducibly, so the
//! voting layer of `QueryEngine` can be exercised, tested and benchmarked
//! without real silicon:
//!
//! * **per-access classification flips** — a stray outlier turning a hit
//!   into a miss (or vice versa);
//! * **whole-query drops** — a measurement disturbed end to end (an
//!   interrupt, a context switch): every profiled outcome is replaced by a
//!   coin flip;
//! * **spurious-eviction interference** — another core touching the set:
//!   one genuinely-hitting access is demoted to a miss.
//!
//! Faults are drawn from a generator seeded by `(noise seed, query content,
//! execution index)`: repeated executions of the *same* query see
//! *different* faults (which is what makes majority voting effective), while
//! the whole fault sequence is a pure function of the [`NoiseSpec`] — every
//! run is reproducible.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cache::HitMiss;
use mbl::Query;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::backend::BackendError;
use crate::engine::{QueryBackend, QueryConfig};

/// Default repetition count of a [`NoisyBackend`]: high enough that a wrong
/// majority at the fault rates this module targets (≤ 10%) is vanishingly
/// rare once the engine's escalation kicks in.
pub const DEFAULT_NOISY_REPS: usize = 7;

/// Fault rates and seed of a [`NoisyBackend`], in permille (so the spec is
/// exact, hashable, and renders byte-identically everywhere it appears —
/// including store namespaces and the `cqd` session grammar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NoiseSpec {
    /// Per-access probability of flipping the classification, in permille.
    pub flip_permille: u32,
    /// Per-query probability of a whole-query drop (every profiled outcome
    /// replaced by a coin flip), in permille.
    pub drop_permille: u32,
    /// Per-query probability of a spurious eviction (one hitting access
    /// demoted to a miss), in permille.
    pub evict_permille: u32,
    /// Seed of the fault stream.
    pub seed: u64,
}

impl NoiseSpec {
    /// A spec that only flips classifications, at `flip_permille`/1000 per
    /// access.
    pub fn flips(flip_permille: u32, seed: u64) -> Self {
        NoiseSpec {
            flip_permille,
            drop_permille: 0,
            evict_permille: 0,
            seed,
        }
    }
}

impl std::fmt::Display for NoiseSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "flip={},drop={},evict={},seed={}",
            self.flip_permille, self.drop_permille, self.evict_permille, self.seed
        )
    }
}

/// Counts of the faults a [`NoisyBackend`] actually injected (shared across
/// clones, so per-worker backends of a parallel run report whole-run
/// totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoiseStats {
    /// Raw query executions.
    pub executions: u64,
    /// Per-access classification flips injected.
    pub flips: u64,
    /// Whole-query drops injected.
    pub drops: u64,
    /// Spurious evictions injected.
    pub evictions: u64,
}

#[derive(Debug, Default)]
struct NoiseCounters {
    executions: AtomicU64,
    flips: AtomicU64,
    drops: AtomicU64,
    evictions: AtomicU64,
}

/// A [`QueryBackend`] decorator injecting seeded, reproducible faults into
/// the answers of any inner backend.
///
/// The decorated backend reports the inner backend's configuration with the
/// noise spec folded into the backend identity (so noisy answers can never
/// pollute a clean namespace) and with [`QueryConfig::reps`] raised to the
/// decorator's repetition count — which is how the engine knows to
/// majority-vote its answers.
///
/// `Clone` clones the inner backend and shares the fault counters; the fault
/// *stream* of a clone is the same pure function of `(seed, query, execution
/// index)`, so single-worker runs are byte-reproducible.
#[derive(Debug, Clone)]
pub struct NoisyBackend<B> {
    inner: B,
    spec: NoiseSpec,
    reps: usize,
    /// Executions of each query so far, keyed by the query's content hash:
    /// a query's fault stream depends only on its own execution count, never
    /// on what other queries ran in between.  (The map stays small — the
    /// engine memoizes, so a query is executed at most a vote's worth of
    /// times.)
    executions: std::collections::HashMap<u64, u64>,
    counters: Arc<NoiseCounters>,
}

impl<B> NoisyBackend<B> {
    /// Decorates `inner` with fault injection per `spec`, at the default
    /// repetition count ([`DEFAULT_NOISY_REPS`]).
    pub fn new(inner: B, spec: NoiseSpec) -> Self {
        NoisyBackend {
            inner,
            spec,
            reps: DEFAULT_NOISY_REPS,
            executions: std::collections::HashMap::new(),
            counters: Arc::new(NoiseCounters::default()),
        }
    }

    /// Overrides the repetition count the engine votes with.
    pub fn with_repetitions(mut self, reps: usize) -> Self {
        self.reps = reps.max(1);
        self
    }

    /// The fault specification.
    pub fn spec(&self) -> NoiseSpec {
        self.spec
    }

    /// The inner (fault-free) backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Faults injected so far (across all clones).
    pub fn fault_stats(&self) -> NoiseStats {
        NoiseStats {
            executions: self.counters.executions.load(Ordering::Relaxed),
            flips: self.counters.flips.load(Ordering::Relaxed),
            drops: self.counters.drops.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
        }
    }

    /// The configuration a noisy decoration of a backend with config
    /// `inner` reports — exposed so servers can compute a session's store
    /// namespace without building the backend.
    pub fn config_for(inner: QueryConfig, spec: &NoiseSpec, reps: usize) -> QueryConfig {
        QueryConfig {
            backend: format!("noisy[{spec}] {}", inner.backend),
            reps,
            ..inner
        }
    }

    /// The fault generator for the next execution of `query`: seeded from
    /// `(noise seed, query content, per-query execution index)`, so the
    /// stream is a pure function of the spec and each query's own history.
    fn fault_rng(&mut self, query: &Query) -> StdRng {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        query.hash(&mut hasher);
        let query_hash = hasher.finish();
        let nth = self.executions.entry(query_hash).or_insert(0);
        *nth += 1;
        let mixed = self
            .spec
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
            ^ query_hash
            ^ nth.wrapping_mul(0xD134_2543_DE82_EF95);
        StdRng::seed_from_u64(mixed)
    }
}

fn roll(rng: &mut StdRng, permille: u32) -> bool {
    permille > 0 && rng.next_u64() % 1000 < u64::from(permille)
}

impl<B> NoisyBackend<B> {
    /// Applies one execution's worth of faults to `outcomes`, advancing the
    /// query's per-execution fault index.  Shared by the single-query and
    /// batch paths, so batching never changes which faults a query sees.
    fn inject_faults(&mut self, query: &Query, outcomes: &mut [HitMiss]) {
        self.counters.executions.fetch_add(1, Ordering::Relaxed);
        let mut rng = self.fault_rng(query);

        if roll(&mut rng, self.spec.drop_permille) {
            // The whole measurement was disturbed: every profiled outcome is
            // replaced by a coin flip.
            for outcome in outcomes.iter_mut() {
                *outcome = if rng.next_u64().is_multiple_of(2) {
                    HitMiss::Hit
                } else {
                    HitMiss::Miss
                };
            }
            self.counters.drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if roll(&mut rng, self.spec.evict_permille) {
            // Spurious eviction: an interfering access pushed a block out, so
            // one access that really hit is measured as a miss.
            let hits: Vec<usize> = outcomes
                .iter()
                .enumerate()
                .filter(|(_, o)| **o == HitMiss::Hit)
                .map(|(i, _)| i)
                .collect();
            if !hits.is_empty() {
                let victim = hits[rng.gen_range(0..hits.len())];
                outcomes[victim] = HitMiss::Miss;
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        for outcome in outcomes.iter_mut() {
            if roll(&mut rng, self.spec.flip_permille) {
                *outcome = match *outcome {
                    HitMiss::Hit => HitMiss::Miss,
                    HitMiss::Miss => HitMiss::Hit,
                };
                self.counters.flips.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl<B: QueryBackend> QueryBackend for NoisyBackend<B> {
    fn execute(&mut self, query: &Query) -> Result<(Vec<HitMiss>, bool), BackendError> {
        let (mut outcomes, consistent) = self.inner.execute(query)?;
        self.inject_faults(query, &mut outcomes);
        Ok((outcomes, consistent))
    }

    fn execute_batch(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<(Vec<HitMiss>, bool)>, BackendError> {
        // One bulk call into the inner backend, then faults applied per query
        // in batch order.  The fault stream is a pure function of
        // `(seed, query content, per-query execution index)`, so the answers
        // are byte-identical to looping [`QueryBackend::execute`] — a query
        // appearing twice in one batch draws its 1st and 2nd fault sets.
        let mut results = self.inner.execute_batch(queries)?;
        for (query, (outcomes, _)) in queries.iter().zip(&mut results) {
            self.inject_faults(query, outcomes);
        }
        Ok(results)
    }

    fn config(&self) -> Result<QueryConfig, BackendError> {
        Ok(Self::config_for(
            self.inner.config()?,
            &self.spec,
            self.reps,
        ))
    }

    fn associativity(&self) -> Result<usize, BackendError> {
        self.inner.associativity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryEngine;
    use crate::Target;
    use cache::LevelId;
    use mbl::{expand_query, Tag};

    /// A deterministic inner backend: even blocks hit, odd blocks miss.
    #[derive(Debug, Clone)]
    struct ParityBackend;

    impl QueryBackend for ParityBackend {
        fn execute(&mut self, query: &Query) -> Result<(Vec<HitMiss>, bool), BackendError> {
            Ok((
                query
                    .iter()
                    .filter(|op| op.tag == Some(Tag::Profile))
                    .map(|op| {
                        if op.block.0 % 2 == 0 {
                            HitMiss::Hit
                        } else {
                            HitMiss::Miss
                        }
                    })
                    .collect(),
                true,
            ))
        }

        fn config(&self) -> Result<QueryConfig, BackendError> {
            Ok(QueryConfig {
                backend: "parity".to_string(),
                reset: "none".to_string(),
                reps: 1,
                target: Target::new(LevelId::L1, 0, 0),
            })
        }

        fn associativity(&self) -> Result<usize, BackendError> {
            Ok(4)
        }
    }

    fn concrete(mbl: &str) -> Query {
        expand_query(mbl, 4).unwrap().pop().unwrap()
    }

    #[test]
    fn the_fault_stream_is_reproducible() {
        let run = || {
            let mut backend = NoisyBackend::new(ParityBackend, NoiseSpec::flips(300, 7));
            let q = concrete("A? B? C? D?");
            (0..20)
                .map(|_| backend.execute(&q).unwrap().0)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        // And faults actually occur at a 30% flip rate over 80 accesses.
        let mut backend = NoisyBackend::new(ParityBackend, NoiseSpec::flips(300, 7));
        let q = concrete("A? B? C? D?");
        for _ in 0..20 {
            backend.execute(&q).unwrap();
        }
        let stats = backend.fault_stats();
        assert_eq!(stats.executions, 20);
        assert!(stats.flips > 0, "a 30% flip rate never fired in 80 draws");
    }

    #[test]
    fn fault_streams_are_independent_of_query_order() {
        // The nth execution of a query draws the same faults whether or not
        // other queries ran in between: the stream is a pure function of
        // (seed, query content, per-query execution index).
        let spec = NoiseSpec::flips(300, 13);
        let q = concrete("A? B? C?");
        let alone: Vec<_> = {
            let mut backend = NoisyBackend::new(ParityBackend, spec);
            (0..5).map(|_| backend.execute(&q).unwrap().0).collect()
        };
        let interleaved: Vec<_> = {
            let mut backend = NoisyBackend::new(ParityBackend, spec);
            let other = concrete("D? E?");
            (0..5)
                .map(|_| {
                    backend.execute(&other).unwrap();
                    backend.execute(&q).unwrap().0
                })
                .collect()
        };
        assert_eq!(alone, interleaved);
    }

    #[test]
    fn repeated_executions_see_different_faults() {
        let mut backend = NoisyBackend::new(ParityBackend, NoiseSpec::flips(500, 3));
        let q = concrete("A? B? C? D?");
        let answers: Vec<_> = (0..8).map(|_| backend.execute(&q).unwrap().0).collect();
        assert!(
            answers.iter().any(|a| a != &answers[0]),
            "eight 50%-flipped executions all agreed — the fault stream is stuck"
        );
    }

    #[test]
    fn a_zero_rate_spec_is_transparent() {
        let mut clean = ParityBackend;
        let mut noisy = NoisyBackend::new(ParityBackend, NoiseSpec::flips(0, 9));
        let q = concrete("A? B? C?");
        assert_eq!(noisy.execute(&q).unwrap(), clean.execute(&q).unwrap());
        assert_eq!(noisy.fault_stats().flips, 0);
    }

    #[test]
    fn drops_randomize_and_evictions_only_demote() {
        let mut backend = NoisyBackend::new(
            ParityBackend,
            NoiseSpec {
                flip_permille: 0,
                drop_permille: 0,
                evict_permille: 1000,
                seed: 1,
            },
        );
        // Every execution suffers a spurious eviction: exactly one of the
        // two true hits (A, C) is demoted; the true miss (B) never becomes
        // a hit.
        let q = concrete("A? B? C?");
        for _ in 0..10 {
            let (outcomes, _) = backend.execute(&q).unwrap();
            assert_eq!(outcomes[1], HitMiss::Miss);
            let demoted =
                (outcomes[0] == HitMiss::Miss) as u32 + (outcomes[2] == HitMiss::Miss) as u32;
            assert_eq!(demoted, 1, "exactly one hit is demoted per eviction");
        }
        assert_eq!(backend.fault_stats().evictions, 10);
    }

    #[test]
    fn the_namespace_embeds_the_noise_spec() {
        let spec = NoiseSpec {
            flip_permille: 50,
            drop_permille: 10,
            evict_permille: 5,
            seed: 42,
        };
        let backend = NoisyBackend::new(ParityBackend, spec).with_repetitions(9);
        let config = backend.config().unwrap();
        assert_eq!(
            config.backend,
            "noisy[flip=50,drop=10,evict=5,seed=42] parity"
        );
        assert_eq!(config.reps, 9);
        assert_eq!(
            config,
            NoisyBackend::<ParityBackend>::config_for(
                QueryBackend::config(&ParityBackend).unwrap(),
                &spec,
                9
            )
        );
    }

    #[test]
    fn the_voted_engine_recovers_the_clean_answer() {
        let mut clean_engine = QueryEngine::new(ParityBackend);
        let mut noisy_engine =
            QueryEngine::new(NoisyBackend::new(ParityBackend, NoiseSpec::flips(100, 11)));
        for mblq in ["A? B?", "@ X _?", "C! D? A?"] {
            let clean = clean_engine.query_mbl(mblq).unwrap();
            let noisy = noisy_engine.query_mbl(mblq).unwrap();
            for (c, n) in clean.iter().zip(&noisy) {
                assert!(n.consistent, "vote did not settle for {}", n.rendered);
                assert_eq!(n.outcomes, c.outcomes, "voting failed on {}", n.rendered);
            }
        }
        let stats = noisy_engine.stats();
        assert!(
            stats.backend_executions >= stats.backend_queries * DEFAULT_NOISY_REPS as u64,
            "the engine did not repeat noisy queries"
        );
        let votes = noisy_engine.store().vote_stats();
        assert_eq!(votes.voted, stats.backend_queries);
        assert_eq!(votes.unsettled, 0);
        assert!(votes.min_margin_permille <= 1000);
    }

    #[test]
    fn disabling_voting_lets_faults_through() {
        let mut engine =
            QueryEngine::new(NoisyBackend::new(ParityBackend, NoiseSpec::flips(500, 23)));
        engine.set_vote_config(crate::VoteConfig::disabled());
        engine.set_memoize(false);
        let q = concrete("A? B? C? D?");
        let answers: Vec<_> = (0..10).map(|_| engine.run(&q).unwrap().outcomes).collect();
        assert!(
            answers.iter().any(|a| a != &answers[0]),
            "without voting, a 50% flip rate must be visible to the caller"
        );
        assert_eq!(engine.stats().backend_executions, 10, "one execution each");
    }
}
