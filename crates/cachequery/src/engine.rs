//! The unified query path: a [`QueryBackend`] abstraction over everything
//! that can execute a concrete query, and the [`QueryEngine`] that puts the
//! *single* memoization layer of this reproduction in front of it.
//!
//! The paper's tool is one pipeline — MBL frontend → memoized query store →
//! scarce backend (§4, §4.2).  Every consumer in this repo follows the same
//! shape through this module:
//!
//! ```text
//!   MBL / Polca probes ──► QueryEngine ──► QueryStore (prefix trie)
//!                               │               ▲
//!                               ▼ (miss)        │ (record)
//!                          QueryBackend  ───────┘
//! ```
//!
//! Implementations of [`QueryBackend`]:
//!
//! * [`Backend`](crate::Backend) — the simulated-hardware kernel-module
//!   replacement of this crate;
//! * `polca::PolicySimBackend` — a bare software-simulated cache set running
//!   a named replacement policy;
//! * `server::RemoteBackend` — a `cqd` session over TCP, so the same engine
//!   (and the same learning pipeline) runs against a remote machine.
//!
//! Engines that should share answers share one [`QueryStore`] behind an
//! [`Arc`]: the `cqd` daemon gives its sessions, worker pool *and* learning
//! jobs one store, so a multi-second learning campaign fills the same trie
//! that interactive sessions are served from.

use std::sync::Arc;

use cache::HitMiss;
use mbl::{expand_query, render_query, Query};

use crate::backend::{BackendError, Target};
use crate::store::{QueryStore, StoreSpace};

/// The memoization namespace of a configured backend: everything that
/// determines a query's answer.  Two backends whose configs render equally
/// answer identically and may share store entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryConfig {
    /// Rendered backend identity — e.g. `skylake seed=7 cat=-` for a
    /// simulated machine or `policy:LRU@4` for a bare simulated policy.
    pub backend: String,
    /// Rendered reset sequence establishing the initial state.
    pub reset: String,
    /// Repetitions of the majority vote.
    pub reps: usize,
    /// The target cache set.
    pub target: Target,
}

impl std::fmt::Display for QueryConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} reset={} reps={} {} set={} slice={}",
            self.backend,
            self.reset,
            self.reps,
            self.target.level,
            self.target.set,
            self.target.slice
        )
    }
}

/// Anything that can execute concrete queries against a configured target:
/// the "scarce oracle" side of the query path.
///
/// Implementations report their current configuration through
/// [`QueryBackend::config`]; the engine uses it (rendered) as the store
/// namespace, so reconfiguring a backend automatically re-namespaces its
/// answers — no cache invalidation protocol is needed.
pub trait QueryBackend: Send {
    /// Executes one concrete query and returns the classified outcome of
    /// every profiled access plus whether all repetitions agreed.  This is
    /// the raw path: implementations must not memoize (the engine does).
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if the backend is unconfigured or
    /// execution fails.
    fn execute(&mut self, query: &Query) -> Result<(Vec<HitMiss>, bool), BackendError>;

    /// Executes a batch of concrete queries, in order.  The default
    /// implementation loops over [`QueryBackend::execute`]; backends with a
    /// cheaper bulk path (one network round trip for a remote backend)
    /// override it.
    ///
    /// # Errors
    ///
    /// Stops at the first failing query and returns its error.
    fn execute_many(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<(Vec<HitMiss>, bool)>, BackendError> {
        queries.iter().map(|q| self.execute(q)).collect()
    }

    /// The current configuration (memoization namespace) of the backend.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if no target is configured yet.
    fn config(&self) -> Result<QueryConfig, BackendError>;

    /// Effective associativity of the configured target (after CAT), used by
    /// the MBL expansion macros.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if no target is configured yet.
    fn associativity(&self) -> Result<usize, BackendError>;
}

impl<B: QueryBackend + ?Sized> QueryBackend for Box<B> {
    fn execute(&mut self, query: &Query) -> Result<(Vec<HitMiss>, bool), BackendError> {
        (**self).execute(query)
    }

    fn execute_many(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<(Vec<HitMiss>, bool)>, BackendError> {
        (**self).execute_many(queries)
    }

    fn config(&self) -> Result<QueryConfig, BackendError> {
        (**self).config()
    }

    fn associativity(&self) -> Result<usize, BackendError> {
        (**self).associativity()
    }
}

/// Result of running one concrete query through an engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The query that was executed (after MBL expansion).
    pub rendered: String,
    /// Hit/miss classification of each profiled access, in order.
    pub outcomes: Vec<HitMiss>,
    /// Whether all repetitions of the query agreed on every profiled access.
    pub consistent: bool,
    /// Whether the result was served from the query store.
    pub from_cache: bool,
}

/// Work counters of one engine instance (not shared between clones — the
/// underlying [`QueryStore`] keeps the shared truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Concrete queries answered (store hits included).
    pub queries: u64,
    /// Concrete queries answered from the store.
    pub store_hits: u64,
    /// Concrete queries the backend actually executed.
    pub backend_queries: u64,
}

/// The single query path: exactly one [`QueryStore`] in front of one
/// [`QueryBackend`].
///
/// `Clone` (for cloneable backends) duplicates the backend but **shares the
/// store**: clones are the per-worker instances of a parallel run and must
/// benefit from each other's answers.  Local [`EngineStats`] counters start
/// at zero in the clone.
#[derive(Debug)]
pub struct QueryEngine<B> {
    backend: B,
    store: Arc<QueryStore>,
    /// Cached `(config, namespace handle)` of the backend's last-seen
    /// configuration, so the hot path does not re-render and re-hash the
    /// namespace string per query.
    space: Option<(QueryConfig, StoreSpace)>,
    memoize: bool,
    stats: EngineStats,
}

impl<B: Clone> Clone for QueryEngine<B> {
    fn clone(&self) -> Self {
        QueryEngine {
            backend: self.backend.clone(),
            store: Arc::clone(&self.store),
            space: self.space.clone(),
            memoize: self.memoize,
            stats: EngineStats::default(),
        }
    }
}

impl<B: QueryBackend> QueryEngine<B> {
    /// Creates an engine with a private, empty store.
    pub fn new(backend: B) -> Self {
        Self::with_store(backend, Arc::new(QueryStore::new()))
    }

    /// Creates an engine over a shared store: every engine holding a clone of
    /// the same `Arc` serves (and fills) the same memoized answers.
    pub fn with_store(backend: B, store: Arc<QueryStore>) -> Self {
        QueryEngine {
            backend,
            store,
            space: None,
            memoize: true,
            stats: EngineStats::default(),
        }
    }

    /// Read-only access to the backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the backend (for reconfiguration; the engine picks
    /// up the new namespace automatically on the next query).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Consumes the engine and returns the backend.
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// The shared store behind this engine.
    pub fn store(&self) -> &Arc<QueryStore> {
        &self.store
    }

    /// The namespace handle of the backend's *current* configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if the backend is unconfigured.
    pub fn current_space(&mut self) -> Result<StoreSpace, BackendError> {
        self.refresh_space().map(|(_, space)| space.clone())
    }

    /// Enables or disables store consultation/recording for this engine
    /// (disabled engines always execute on the backend).
    pub fn set_memoize(&mut self, memoize: bool) {
        self.memoize = memoize;
    }

    /// Whether the engine consults and fills the store.
    pub fn memoize(&self) -> bool {
        self.memoize
    }

    /// This engine's local work counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    fn refresh_space(&mut self) -> Result<&(QueryConfig, StoreSpace), BackendError> {
        let config = self.backend.config()?;
        let stale = match &self.space {
            Some((cached, _)) => *cached != config,
            None => true,
        };
        if stale {
            let space = self.store.space(&config.to_string());
            self.space = Some((config, space));
        }
        Ok(self.space.as_ref().expect("space was just refreshed"))
    }

    /// Runs a single concrete query: store lookup, backend execution on a
    /// miss, recording of consistent answers.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn run(&mut self, query: &Query) -> Result<QueryOutcome, BackendError> {
        self.run_many(std::slice::from_ref(query))
            .map(|mut outcomes| outcomes.pop().expect("one query yields one outcome"))
    }

    /// Runs a batch of concrete queries: everything the store knows is served
    /// from memory, the rest goes to the backend in **one**
    /// [`QueryBackend::execute_many`] call (a single round trip for remote
    /// backends).
    ///
    /// # Errors
    ///
    /// Propagates backend errors; no partial results are returned.
    pub fn run_many(&mut self, queries: &[Query]) -> Result<Vec<QueryOutcome>, BackendError> {
        let memoize = self.memoize;
        let space = if memoize {
            Some(self.refresh_space()?.1.clone())
        } else {
            None
        };
        self.stats.queries += queries.len() as u64;

        let mut results: Vec<Option<QueryOutcome>> = Vec::with_capacity(queries.len());
        let mut missing: Vec<usize> = Vec::new();
        for (index, query) in queries.iter().enumerate() {
            let cached = space.as_ref().and_then(|s| s.lookup(query));
            match cached {
                Some(outcomes) => {
                    self.stats.store_hits += 1;
                    results.push(Some(QueryOutcome {
                        rendered: render_query(query),
                        outcomes,
                        consistent: true,
                        from_cache: true,
                    }));
                }
                None => {
                    results.push(None);
                    missing.push(index);
                }
            }
        }

        if !missing.is_empty() {
            let to_run: Vec<Query> = missing.iter().map(|&i| queries[i].clone()).collect();
            let executed = self.backend.execute_many(&to_run)?;
            self.stats.backend_queries += executed.len() as u64;
            for (&index, (outcomes, consistent)) in missing.iter().zip(executed) {
                if let Some(space) = &space {
                    space.record(&queries[index], &outcomes, consistent);
                }
                results[index] = Some(QueryOutcome {
                    rendered: render_query(&queries[index]),
                    outcomes,
                    consistent,
                    from_cache: false,
                });
            }
        }

        Ok(results
            .into_iter()
            .map(|r| r.expect("every query is answered"))
            .collect())
    }

    /// Expands an MBL expression for the backend's associativity and runs
    /// every resulting concrete query (as one batch).
    ///
    /// # Errors
    ///
    /// Returns parse/expansion errors and backend errors.
    pub fn query_mbl(&mut self, mbl: &str) -> Result<Vec<QueryOutcome>, BackendError> {
        let assoc = self.backend.associativity()?;
        let queries = expand_query(mbl, assoc)?;
        self.run_many(&queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache::LevelId;

    /// A deterministic toy backend: every access to an even block hits, odd
    /// blocks miss; execution count is observable.
    #[derive(Debug, Clone)]
    struct ParityBackend {
        executed: u64,
        consistent: bool,
    }

    impl ParityBackend {
        fn new() -> Self {
            ParityBackend {
                executed: 0,
                consistent: true,
            }
        }
    }

    impl QueryBackend for ParityBackend {
        fn execute(&mut self, query: &Query) -> Result<(Vec<HitMiss>, bool), BackendError> {
            self.executed += 1;
            let outcomes = query
                .iter()
                .filter(|op| op.tag == Some(mbl::Tag::Profile))
                .map(|op| {
                    if op.block.0 % 2 == 0 {
                        HitMiss::Hit
                    } else {
                        HitMiss::Miss
                    }
                })
                .collect();
            Ok((outcomes, self.consistent))
        }

        fn config(&self) -> Result<QueryConfig, BackendError> {
            Ok(QueryConfig {
                backend: "parity".to_string(),
                reset: "none".to_string(),
                reps: 1,
                target: Target::new(LevelId::L1, 0, 0),
            })
        }

        fn associativity(&self) -> Result<usize, BackendError> {
            Ok(4)
        }
    }

    fn concrete(mbl: &str) -> Query {
        expand_query(mbl, 4).unwrap().pop().unwrap()
    }

    #[test]
    fn second_run_is_served_from_the_store() {
        let mut engine = QueryEngine::new(ParityBackend::new());
        let q = concrete("A? B?");
        let first = engine.run(&q).unwrap();
        assert!(!first.from_cache);
        assert_eq!(first.outcomes, vec![HitMiss::Hit, HitMiss::Miss]);
        let second = engine.run(&q).unwrap();
        assert!(second.from_cache);
        assert_eq!(second.outcomes, first.outcomes);
        assert_eq!(engine.backend().executed, 1);
        let stats = engine.stats();
        assert_eq!(
            (stats.queries, stats.store_hits, stats.backend_queries),
            (2, 1, 1)
        );
    }

    #[test]
    fn engines_sharing_a_store_share_answers() {
        let store = Arc::new(QueryStore::new());
        let mut a = QueryEngine::with_store(ParityBackend::new(), Arc::clone(&store));
        let mut b = QueryEngine::with_store(ParityBackend::new(), Arc::clone(&store));
        let q = concrete("A?");
        assert!(!a.run(&q).unwrap().from_cache);
        assert!(b.run(&q).unwrap().from_cache);
        assert_eq!(b.backend().executed, 0);
    }

    #[test]
    fn clones_share_the_store_but_not_the_counters() {
        let mut original = QueryEngine::new(ParityBackend::new());
        original.run(&concrete("A?")).unwrap();
        let mut clone = original.clone();
        assert_eq!(clone.stats(), EngineStats::default());
        assert!(clone.run(&concrete("A?")).unwrap().from_cache);
    }

    #[test]
    fn inconsistent_answers_are_not_memoized() {
        let mut engine = QueryEngine::new(ParityBackend::new());
        engine.backend_mut().consistent = false;
        let q = concrete("A?");
        assert!(!engine.run(&q).unwrap().consistent);
        // The degraded answer was not stored: the next run re-executes.
        assert!(!engine.run(&q).unwrap().from_cache);
        assert_eq!(engine.backend().executed, 2);
    }

    #[test]
    fn disabling_memoization_bypasses_the_store() {
        let mut engine = QueryEngine::new(ParityBackend::new());
        engine.set_memoize(false);
        assert!(!engine.memoize());
        let q = concrete("A?");
        engine.run(&q).unwrap();
        assert!(!engine.run(&q).unwrap().from_cache);
        assert_eq!(engine.backend().executed, 2);
        assert_eq!(engine.store().entries(), 0);
    }

    #[test]
    fn mbl_expansion_goes_through_one_batch() {
        let mut engine = QueryEngine::new(ParityBackend::new());
        let results = engine.query_mbl("@ X _?").unwrap();
        assert_eq!(results.len(), 4);
        // One batch call per expansion set is the contract run_many provides;
        // the toy backend still counts one execution per query.
        assert_eq!(engine.backend().executed, 4);
        // Prefix sharing: "@ X" is a shared prefix of all four expansions.
        assert!(engine.store().entries() > 0);
    }

    #[test]
    fn reconfiguring_the_backend_renames_the_namespace() {
        #[derive(Debug, Clone)]
        struct Switchable(ParityBackend, usize);
        impl QueryBackend for Switchable {
            fn execute(&mut self, q: &Query) -> Result<(Vec<HitMiss>, bool), BackendError> {
                self.0.execute(q)
            }
            fn config(&self) -> Result<QueryConfig, BackendError> {
                let mut config = self.0.config()?;
                config.target.set = self.1;
                Ok(config)
            }
            fn associativity(&self) -> Result<usize, BackendError> {
                self.0.associativity()
            }
        }
        let mut engine = QueryEngine::new(Switchable(ParityBackend::new(), 0));
        let q = concrete("A?");
        engine.run(&q).unwrap();
        engine.backend_mut().1 = 1;
        assert!(!engine.run(&q).unwrap().from_cache, "new namespace, no hit");
        assert_eq!(engine.store().namespaces(), 2);
    }
}
