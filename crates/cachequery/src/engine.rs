//! The unified query path: a [`QueryBackend`] abstraction over everything
//! that can execute a concrete query, and the [`QueryEngine`] that puts the
//! *single* memoization layer of this reproduction in front of it.
//!
//! The paper's tool is one pipeline — MBL frontend → memoized query store →
//! scarce backend (§4, §4.2).  Every consumer in this repo follows the same
//! shape through this module:
//!
//! ```text
//!   MBL / Polca probes ──► QueryEngine ──► QueryStore (prefix trie)
//!                               │               ▲
//!                               ▼ (miss)        │ (record)
//!                          QueryBackend  ───────┘
//! ```
//!
//! Implementations of [`QueryBackend`]:
//!
//! * [`Backend`](crate::Backend) — the simulated-hardware kernel-module
//!   replacement of this crate;
//! * `polca::PolicySimBackend` — a bare software-simulated cache set running
//!   a named replacement policy;
//! * `server::RemoteBackend` — a `cqd` session over TCP, so the same engine
//!   (and the same learning pipeline) runs against a remote machine.
//!
//! Engines that should share answers share one [`QueryStore`] behind an
//! [`Arc`]: the `cqd` daemon gives its sessions, worker pool *and* learning
//! jobs one store, so a multi-second learning campaign fills the same trie
//! that interactive sessions are served from.

use std::sync::Arc;

use cache::HitMiss;
use mbl::{expand_query, render_query, Query};
use obs::{FieldValue, Recorder};

use crate::backend::{BackendError, Target};
use crate::store::{QueryStore, StoreSpace};

/// The memoization namespace of a configured backend: everything that
/// determines a query's answer.  Two backends whose configs render equally
/// answer identically and may share store entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryConfig {
    /// Rendered backend identity — e.g. `skylake seed=7 cat=-` for a
    /// simulated machine or `policy:LRU@4` for a bare simulated policy.
    pub backend: String,
    /// Rendered reset sequence establishing the initial state.
    pub reset: String,
    /// Repetitions of the majority vote.
    pub reps: usize,
    /// The target cache set.
    pub target: Target,
}

impl std::fmt::Display for QueryConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} reset={} reps={} {} set={} slice={}",
            self.backend,
            self.reset,
            self.reps,
            self.target.level,
            self.target.set,
            self.target.slice
        )
    }
}

/// Anything that can execute concrete queries against a configured target:
/// the "scarce oracle" side of the query path.
///
/// Implementations report their current configuration through
/// [`QueryBackend::config`]; the engine uses it (rendered) as the store
/// namespace, so reconfiguring a backend automatically re-namespaces its
/// answers — no cache invalidation protocol is needed.
pub trait QueryBackend: Send {
    /// Executes one concrete query and returns the classified outcome of
    /// every profiled access plus whether all repetitions agreed.  This is
    /// the raw path: implementations must not memoize (the engine does).
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if the backend is unconfigured or
    /// execution fails.
    fn execute(&mut self, query: &Query) -> Result<(Vec<HitMiss>, bool), BackendError>;

    /// Executes a batch of concrete queries, in order.  The default
    /// implementation loops over [`QueryBackend::execute`]; backends with a
    /// cheaper bulk path override it — one monomorphized simulation loop for
    /// the software backends, a single network round trip for a remote one.
    /// Native implementations must be observationally identical to the
    /// default loop: same answers, same per-query ordering of any internal
    /// state (e.g. a noisy backend's per-query fault indices).
    ///
    /// # Errors
    ///
    /// Stops at the first failing query and returns its error.
    fn execute_batch(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<(Vec<HitMiss>, bool)>, BackendError> {
        queries.iter().map(|q| self.execute(q)).collect()
    }

    /// The current configuration (memoization namespace) of the backend.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if no target is configured yet.
    fn config(&self) -> Result<QueryConfig, BackendError>;

    /// Effective associativity of the configured target (after CAT), used by
    /// the MBL expansion macros.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if no target is configured yet.
    fn associativity(&self) -> Result<usize, BackendError>;

    /// Whether [`QueryBackend::execute`] already accounts for repetition and
    /// majority voting itself, so the engine must **not** repeat queries on
    /// top of it.
    ///
    /// The default is `false`: `execute` is one raw measurement and the
    /// engine performs the [`QueryConfig::reps`] majority vote.  A backend
    /// that delegates to another engine — e.g. a remote `cqd` session whose
    /// server-side engine votes — returns `true`, and the local engine
    /// executes each query once and trusts the reported consistency flag.
    fn handles_repetitions(&self) -> bool {
        false
    }
}

impl<B: QueryBackend + ?Sized> QueryBackend for Box<B> {
    fn execute(&mut self, query: &Query) -> Result<(Vec<HitMiss>, bool), BackendError> {
        (**self).execute(query)
    }

    fn execute_batch(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<(Vec<HitMiss>, bool)>, BackendError> {
        (**self).execute_batch(queries)
    }

    fn config(&self) -> Result<QueryConfig, BackendError> {
        (**self).config()
    }

    fn associativity(&self) -> Result<usize, BackendError> {
        (**self).associativity()
    }

    fn handles_repetitions(&self) -> bool {
        (**self).handles_repetitions()
    }
}

/// Configuration of the engine's repetition/majority-vote layer (§4.3's
/// noise handling, moved to the one place every backend shares).
///
/// For every concrete query the engine executes the backend
/// [`QueryConfig::reps`] times and majority-votes each profiled access.  The
/// *vote margin* of an access is `(winner − loser) / total` (1.0 for a
/// unanimous vote, 0.0 for a tie); the query's margin is the minimum over
/// its accesses.  While the margin stays below [`VoteConfig::margin_permille`] the
/// engine *escalates*: it doubles the number of repetitions, up to
/// [`VoteConfig::max_rounds`] rounds.  A query that never reaches the margin
/// is reported with `consistent == false` — returned to the caller but never
/// committed to the [`QueryStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteConfig {
    /// Whether the engine votes at all.  Disabled, every query is executed
    /// exactly once regardless of `reps` — the configuration the
    /// noise-robustness tests use to prove that voting is load-bearing.
    pub enabled: bool,
    /// Minimum acceptable vote margin, in permille of the repetition count
    /// (the default 500 accepts a winner with ≥ 75% of the votes, matching
    /// the paper's "small minority of dissenting repetitions" rule).
    pub margin_permille: u32,
    /// Maximum number of voting rounds.  Round 1 executes `reps`
    /// repetitions; every further round doubles the total, so a query is
    /// executed at most `reps · 2^(max_rounds − 1)` times.  `0` is treated
    /// as `1` (a vote always executes at least the base repetitions).
    pub max_rounds: u32,
}

impl Default for VoteConfig {
    fn default() -> Self {
        VoteConfig {
            enabled: true,
            margin_permille: 500,
            max_rounds: 5,
        }
    }
}

impl VoteConfig {
    /// A configuration with voting switched off: one execution per query,
    /// the backend's own consistency flag passed through.
    pub fn disabled() -> Self {
        VoteConfig {
            enabled: false,
            ..VoteConfig::default()
        }
    }
}

/// Result of running one concrete query through an engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The query that was executed (after MBL expansion).
    pub rendered: String,
    /// Hit/miss classification of each profiled access, in order.
    pub outcomes: Vec<HitMiss>,
    /// Whether all repetitions of the query agreed on every profiled access.
    pub consistent: bool,
    /// Whether the result was served from the query store.
    pub from_cache: bool,
}

/// Accumulated statistical evidence from one engine's voting layer: how many
/// queries were voted on, how many never settled, and the worst (closest)
/// vote observed.
///
/// This is the raw material of the non-determinism detector: a consumer that
/// sees an inconsistent outcome asks its engine for the evidence and decides
/// whether the target is genuinely non-deterministic (many unsettled votes —
/// an adaptive follower set, a wrong reset sequence) or merely noisy.  Like
/// [`EngineStats`], evidence is engine-local and starts fresh in clones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteEvidence {
    /// Concrete queries the voting layer fully voted on.
    pub voted: u64,
    /// Voted queries whose majority never reached the configured margin.
    pub unsettled: u64,
    /// The minimum vote margin observed across all voted queries, in
    /// permille (1000 until a vote happens).
    pub worst_margin_permille: u64,
    /// Rendered text of the query with the worst margin (empty until a vote
    /// happens).
    pub worst_query: String,
}

impl Default for VoteEvidence {
    fn default() -> Self {
        VoteEvidence {
            voted: 0,
            unsettled: 0,
            worst_margin_permille: 1000,
            worst_query: String::new(),
        }
    }
}

impl VoteEvidence {
    /// Fraction of voted queries that never settled, in permille (0 when
    /// nothing was voted on).
    pub fn disagreement_permille(&self) -> u64 {
        (self.unsettled * 1000).checked_div(self.voted).unwrap_or(0)
    }
}

/// Work counters of one engine instance (not shared between clones — the
/// underlying [`QueryStore`] keeps the shared truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Concrete queries answered (store hits included).
    pub queries: u64,
    /// Concrete queries answered from the store.
    pub store_hits: u64,
    /// Concrete queries the backend answered (each counted once, however
    /// many repetitions the vote needed).
    pub backend_queries: u64,
    /// Raw backend executions, repetitions included — `backend_executions /
    /// backend_queries` is the effective repetition count and the direct
    /// measure of the voting overhead.
    pub backend_executions: u64,
}

/// The single query path: exactly one [`QueryStore`] in front of one
/// [`QueryBackend`].
///
/// `Clone` (for cloneable backends) duplicates the backend but **shares the
/// store**: clones are the per-worker instances of a parallel run and must
/// benefit from each other's answers.  Local [`EngineStats`] counters start
/// at zero in the clone.
#[derive(Debug)]
pub struct QueryEngine<B> {
    backend: B,
    store: Arc<QueryStore>,
    /// Cached `(config, namespace handle)` of the backend's last-seen
    /// configuration, so the hot path does not re-render and re-hash the
    /// namespace string per query.
    space: Option<(QueryConfig, StoreSpace)>,
    memoize: bool,
    voting: VoteConfig,
    stats: EngineStats,
    evidence: VoteEvidence,
    /// Optional span recorder (see [`QueryEngine::set_recorder`]).  Shared by
    /// clones, like the store: a per-worker engine traces into the same
    /// timeline as its siblings.
    recorder: Option<Arc<Recorder>>,
}

impl<B: Clone> Clone for QueryEngine<B> {
    fn clone(&self) -> Self {
        QueryEngine {
            backend: self.backend.clone(),
            store: Arc::clone(&self.store),
            space: self.space.clone(),
            memoize: self.memoize,
            voting: self.voting,
            stats: EngineStats::default(),
            evidence: VoteEvidence::default(),
            recorder: self.recorder.clone(),
        }
    }
}

impl<B: QueryBackend> QueryEngine<B> {
    /// Creates an engine with a private, empty store.
    pub fn new(backend: B) -> Self {
        Self::with_store(backend, Arc::new(QueryStore::new()))
    }

    /// Creates an engine over a shared store: every engine holding a clone of
    /// the same `Arc` serves (and fills) the same memoized answers.
    pub fn with_store(backend: B, store: Arc<QueryStore>) -> Self {
        QueryEngine {
            backend,
            store,
            space: None,
            memoize: true,
            voting: VoteConfig::default(),
            stats: EngineStats::default(),
            evidence: VoteEvidence::default(),
            recorder: None,
        }
    }

    /// Read-only access to the backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the backend (for reconfiguration; the engine picks
    /// up the new namespace automatically on the next query).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Consumes the engine and returns the backend.
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// The shared store behind this engine.
    pub fn store(&self) -> &Arc<QueryStore> {
        &self.store
    }

    /// The namespace handle of the backend's *current* configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if the backend is unconfigured.
    pub fn current_space(&mut self) -> Result<StoreSpace, BackendError> {
        self.refresh_space().map(|(_, space)| space.clone())
    }

    /// Enables or disables store consultation/recording for this engine
    /// (disabled engines always execute on the backend).
    pub fn set_memoize(&mut self, memoize: bool) {
        self.memoize = memoize;
    }

    /// Whether the engine consults and fills the store.
    pub fn memoize(&self) -> bool {
        self.memoize
    }

    /// Replaces the repetition/majority-vote configuration.
    pub fn set_vote_config(&mut self, voting: VoteConfig) {
        self.voting = voting;
    }

    /// The current repetition/majority-vote configuration.
    pub fn vote_config(&self) -> VoteConfig {
        self.voting
    }

    /// Attaches (or detaches, with `None`) a span recorder.  While attached,
    /// every batch through [`QueryEngine::run_many`] emits an
    /// `engine.run_batch` span carrying its `batch_len` and its store-hit /
    /// backend-execution split — so batch amortization shows up on the trace
    /// timeline — and every voting round that escalates emits an
    /// `engine.vote_escalation` event under that span.
    pub fn set_recorder(&mut self, recorder: Option<Arc<Recorder>>) {
        self.recorder = recorder;
    }

    /// The recorder this engine emits spans into, if any.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// This engine's local work counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Accumulated voting evidence of this engine (see [`VoteEvidence`]).
    pub fn vote_evidence(&self) -> &VoteEvidence {
        &self.evidence
    }

    fn refresh_space(&mut self) -> Result<&(QueryConfig, StoreSpace), BackendError> {
        let config = self.backend.config()?;
        let stale = match &self.space {
            Some((cached, _)) => *cached != config,
            None => true,
        };
        if stale {
            let space = self.store.space(&config.to_string());
            self.space = Some((config, space));
        }
        Ok(self.space.as_ref().expect("space was just refreshed"))
    }

    /// Runs a single concrete query: store lookup, backend execution on a
    /// miss, recording of consistent answers.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn run(&mut self, query: &Query) -> Result<QueryOutcome, BackendError> {
        self.run_many(std::slice::from_ref(query))
            .map(|mut outcomes| outcomes.pop().expect("one query yields one outcome"))
    }

    /// Runs a batch of concrete queries: everything the store knows is served
    /// from memory, the rest goes to the backend in batched
    /// [`QueryBackend::execute_batch`] calls (one per voting repetition — a
    /// single round trip for remote backends, which vote server-side).
    ///
    /// The batch is the amortization unit of the query path: the backend's
    /// configuration is fetched (and the store namespace rendered) once per
    /// batch, not once per query, and the repetition count rides along to the
    /// voting layer instead of being re-queried there.
    ///
    /// # Errors
    ///
    /// Propagates backend errors; no partial results are returned.
    pub fn run_many(&mut self, queries: &[Query]) -> Result<Vec<QueryOutcome>, BackendError> {
        let memoize = self.memoize;
        // One `backend.config()` per batch: the voting layer reuses the
        // repetition count fetched here rather than re-rendering the config.
        let (batch_reps, space) = if memoize {
            let (config, space) = self.refresh_space()?;
            (Some(config.reps), Some(space.clone()))
        } else {
            (None, None)
        };
        // The Arc is cloned so the span borrows a local recorder, leaving
        // `self` free for the mutable backend call below.
        let recorder = self.recorder.clone();
        let mut span = obs::maybe_span(recorder.as_deref(), "engine.run_batch");
        let parent = span.as_ref().map(obs::Span::id);
        self.stats.queries += queries.len() as u64;

        let mut results: Vec<Option<QueryOutcome>> = Vec::with_capacity(queries.len());
        let mut missing: Vec<usize> = Vec::new();
        for (index, query) in queries.iter().enumerate() {
            let cached = space.as_ref().and_then(|s| s.lookup(query));
            match cached {
                Some(outcomes) => {
                    self.stats.store_hits += 1;
                    results.push(Some(QueryOutcome {
                        rendered: render_query(query),
                        outcomes,
                        consistent: true,
                        from_cache: true,
                    }));
                }
                None => {
                    results.push(None);
                    missing.push(index);
                }
            }
        }

        if let Some(span) = span.as_mut() {
            span.set("batch_len", queries.len() as u64);
            span.set("store_hits", (queries.len() - missing.len()) as u64);
            span.set("backend", missing.len() as u64);
        }

        if !missing.is_empty() {
            let reps = match batch_reps {
                Some(reps) => reps,
                // Memoization off: the config was not fetched above.
                None => self.backend.config()?.reps,
            };
            let to_run: Vec<Query> = missing.iter().map(|&i| queries[i].clone()).collect();
            let executed = self.execute_voted(&to_run, reps, parent)?;
            self.stats.backend_queries += executed.len() as u64;
            for (&index, (outcomes, consistent)) in missing.iter().zip(executed) {
                if let Some(space) = &space {
                    space.record(&queries[index], &outcomes, consistent);
                }
                results[index] = Some(QueryOutcome {
                    rendered: render_query(&queries[index]),
                    outcomes,
                    consistent,
                    from_cache: false,
                });
            }
        }

        Ok(results
            .into_iter()
            .map(|r| r.expect("every query is answered"))
            .collect())
    }

    /// Executes a batch on the backend with the engine's repetition /
    /// majority-vote layer (see [`VoteConfig`]).
    ///
    /// The repetition count comes from the backend's own
    /// [`QueryConfig::reps`] — the knob is honored here, in the one place
    /// every backend shares, instead of inside each backend; `run_many`
    /// fetches it once per batch and passes it down.  Backends that
    /// [handle repetitions themselves](QueryBackend::handles_repetitions)
    /// (remote engines) and `reps == 1` configurations are executed once,
    /// with the backend's consistency flag passed through.
    fn execute_voted(
        &mut self,
        queries: &[Query],
        reps: usize,
        parent: Option<u64>,
    ) -> Result<Vec<(Vec<HitMiss>, bool)>, BackendError> {
        let voting = self.voting;
        if !voting.enabled || reps <= 1 || self.backend.handles_repetitions() {
            let executed = self.backend.execute_batch(queries)?;
            self.stats.backend_executions += executed.len() as u64;
            return Ok(executed);
        }

        /// Running tally of one query's repetitions.
        struct Tally {
            /// Hit votes per profiled access.
            hits: Vec<u32>,
            /// Repetitions executed.
            reps: u32,
            /// All repetitions reported a consistent execution and the same
            /// number of profiled accesses.
            well_formed: bool,
        }

        impl Tally {
            fn add(&mut self, outcomes: &[HitMiss], rep_consistent: bool) {
                if self.reps == 0 {
                    self.hits = vec![0; outcomes.len()];
                } else if outcomes.len() != self.hits.len() {
                    self.well_formed = false;
                    self.reps += 1;
                    return;
                }
                for (votes, outcome) in self.hits.iter_mut().zip(outcomes) {
                    if *outcome == HitMiss::Hit {
                        *votes += 1;
                    }
                }
                self.well_formed &= rep_consistent;
                self.reps += 1;
            }

            /// Minimum vote margin across the profiled accesses, in permille
            /// (1000 for unanimous or access-free queries).
            fn margin_permille(&self) -> u64 {
                let total = u64::from(self.reps);
                self.hits
                    .iter()
                    .map(|&h| {
                        let hits = u64::from(h);
                        let misses = total - hits;
                        (hits.abs_diff(misses)) * 1000 / total.max(1)
                    })
                    .min()
                    .unwrap_or(1000)
            }

            fn majority(&self) -> Vec<HitMiss> {
                let total = self.reps;
                self.hits
                    .iter()
                    .map(|&h| {
                        if 2 * h > total {
                            HitMiss::Hit
                        } else {
                            HitMiss::Miss
                        }
                    })
                    .collect()
            }
        }

        let mut tallies: Vec<Tally> = (0..queries.len())
            .map(|_| Tally {
                hits: Vec::new(),
                reps: 0,
                well_formed: true,
            })
            .collect();
        let mut pending: Vec<usize> = (0..queries.len()).collect();
        let mut round_reps = reps;
        let mut total_reps = 0usize;
        let max_rounds = voting.max_rounds.max(1);
        for round in 1..=max_rounds {
            let subset: Vec<Query> = pending.iter().map(|&i| queries[i].clone()).collect();
            for _ in 0..round_reps {
                let executed = self.backend.execute_batch(&subset)?;
                self.stats.backend_executions += executed.len() as u64;
                for (&index, (outcomes, rep_consistent)) in pending.iter().zip(executed) {
                    tallies[index].add(&outcomes, rep_consistent);
                }
            }
            total_reps += round_reps;
            // Escalate only the queries whose vote is still too close; each
            // round doubles their total repetition count.
            pending.retain(|&index| {
                let tally = &tallies[index];
                tally.well_formed && tally.margin_permille() < u64::from(voting.margin_permille)
            });
            if pending.is_empty() || round == max_rounds {
                break;
            }
            if let Some(recorder) = self.recorder.as_deref() {
                recorder.event(
                    "engine.vote_escalation",
                    parent,
                    &[
                        ("round", FieldValue::U64(u64::from(round))),
                        ("pending", FieldValue::U64(pending.len() as u64)),
                    ],
                );
            }
            round_reps = total_reps;
        }

        let mut results = Vec::with_capacity(queries.len());
        for (query, tally) in queries.iter().zip(tallies) {
            let margin = tally.margin_permille();
            let settled = tally.well_formed && margin >= u64::from(voting.margin_permille);
            self.store.record_vote(
                margin,
                u64::from(tally.reps),
                u64::from(tally.reps) > reps as u64,
                settled,
            );
            self.evidence.voted += 1;
            if !settled {
                self.evidence.unsettled += 1;
            }
            if margin < self.evidence.worst_margin_permille || self.evidence.voted == 1 {
                self.evidence.worst_margin_permille = margin;
                self.evidence.worst_query = render_query(query);
            }
            results.push((tally.majority(), settled));
        }
        Ok(results)
    }

    /// Expands an MBL expression for the backend's associativity and runs
    /// every resulting concrete query (as one batch).
    ///
    /// # Errors
    ///
    /// Returns parse/expansion errors and backend errors.
    pub fn query_mbl(&mut self, mbl: &str) -> Result<Vec<QueryOutcome>, BackendError> {
        let assoc = self.backend.associativity()?;
        let queries = expand_query(mbl, assoc)?;
        self.run_many(&queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache::LevelId;

    /// A deterministic toy backend: every access to an even block hits, odd
    /// blocks miss; execution count is observable.
    #[derive(Debug, Clone)]
    struct ParityBackend {
        executed: u64,
        consistent: bool,
    }

    impl ParityBackend {
        fn new() -> Self {
            ParityBackend {
                executed: 0,
                consistent: true,
            }
        }
    }

    impl QueryBackend for ParityBackend {
        fn execute(&mut self, query: &Query) -> Result<(Vec<HitMiss>, bool), BackendError> {
            self.executed += 1;
            let outcomes = query
                .iter()
                .filter(|op| op.tag == Some(mbl::Tag::Profile))
                .map(|op| {
                    if op.block.0 % 2 == 0 {
                        HitMiss::Hit
                    } else {
                        HitMiss::Miss
                    }
                })
                .collect();
            Ok((outcomes, self.consistent))
        }

        fn config(&self) -> Result<QueryConfig, BackendError> {
            Ok(QueryConfig {
                backend: "parity".to_string(),
                reset: "none".to_string(),
                reps: 1,
                target: Target::new(LevelId::L1, 0, 0),
            })
        }

        fn associativity(&self) -> Result<usize, BackendError> {
            Ok(4)
        }
    }

    fn concrete(mbl: &str) -> Query {
        expand_query(mbl, 4).unwrap().pop().unwrap()
    }

    #[test]
    fn second_run_is_served_from_the_store() {
        let mut engine = QueryEngine::new(ParityBackend::new());
        let q = concrete("A? B?");
        let first = engine.run(&q).unwrap();
        assert!(!first.from_cache);
        assert_eq!(first.outcomes, vec![HitMiss::Hit, HitMiss::Miss]);
        let second = engine.run(&q).unwrap();
        assert!(second.from_cache);
        assert_eq!(second.outcomes, first.outcomes);
        assert_eq!(engine.backend().executed, 1);
        let stats = engine.stats();
        assert_eq!(
            (stats.queries, stats.store_hits, stats.backend_queries),
            (2, 1, 1)
        );
    }

    #[test]
    fn engines_sharing_a_store_share_answers() {
        let store = Arc::new(QueryStore::new());
        let mut a = QueryEngine::with_store(ParityBackend::new(), Arc::clone(&store));
        let mut b = QueryEngine::with_store(ParityBackend::new(), Arc::clone(&store));
        let q = concrete("A?");
        assert!(!a.run(&q).unwrap().from_cache);
        assert!(b.run(&q).unwrap().from_cache);
        assert_eq!(b.backend().executed, 0);
    }

    #[test]
    fn clones_share_the_store_but_not_the_counters() {
        let mut original = QueryEngine::new(ParityBackend::new());
        original.run(&concrete("A?")).unwrap();
        let mut clone = original.clone();
        assert_eq!(clone.stats(), EngineStats::default());
        assert!(clone.run(&concrete("A?")).unwrap().from_cache);
    }

    #[test]
    fn inconsistent_answers_are_not_memoized() {
        let mut engine = QueryEngine::new(ParityBackend::new());
        engine.backend_mut().consistent = false;
        let q = concrete("A?");
        assert!(!engine.run(&q).unwrap().consistent);
        // The degraded answer was not stored: the next run re-executes.
        assert!(!engine.run(&q).unwrap().from_cache);
        assert_eq!(engine.backend().executed, 2);
    }

    #[test]
    fn disabling_memoization_bypasses_the_store() {
        let mut engine = QueryEngine::new(ParityBackend::new());
        engine.set_memoize(false);
        assert!(!engine.memoize());
        let q = concrete("A?");
        engine.run(&q).unwrap();
        assert!(!engine.run(&q).unwrap().from_cache);
        assert_eq!(engine.backend().executed, 2);
        assert_eq!(engine.store().entries(), 0);
    }

    #[test]
    fn mbl_expansion_goes_through_one_batch() {
        let mut engine = QueryEngine::new(ParityBackend::new());
        let results = engine.query_mbl("@ X _?").unwrap();
        assert_eq!(results.len(), 4);
        // One batch call per expansion set is the contract run_many provides;
        // the toy backend still counts one execution per query.
        assert_eq!(engine.backend().executed, 4);
        // Prefix sharing: "@ X" is a shared prefix of all four expansions.
        assert!(engine.store().entries() > 0);
    }

    #[test]
    fn recorder_traces_batches_and_store_hits() {
        let sink = Arc::new(obs::RingSink::new(64));
        let mut engine = QueryEngine::new(ParityBackend::new());
        engine.set_recorder(Some(Arc::new(Recorder::new(sink.clone()))));
        let q = concrete("A? B?");
        engine.run(&q).unwrap();
        engine.run(&q).unwrap();
        let lines = sink.drain();
        assert_eq!(lines.len(), 2, "one span per batch");
        assert!(lines[0].contains("\"name\":\"engine.run_batch\""));
        assert!(lines[0].contains("\"batch_len\":1"));
        assert!(lines[0].contains("\"store_hits\":0"));
        assert!(lines[0].contains("\"backend\":1"));
        assert!(lines[1].contains("\"store_hits\":1"));
        assert!(lines[1].contains("\"backend\":0"));
    }

    #[test]
    fn vote_escalations_emit_events_under_the_batch_span() {
        /// A fair coin: alternates miss/hit per raw execution, so a majority
        /// vote never reaches any margin and every round escalates.
        #[derive(Debug, Clone)]
        struct FlakyBackend {
            calls: u64,
        }
        impl QueryBackend for FlakyBackend {
            fn execute(&mut self, query: &Query) -> Result<(Vec<HitMiss>, bool), BackendError> {
                self.calls += 1;
                let outcome = if self.calls.is_multiple_of(2) {
                    HitMiss::Hit
                } else {
                    HitMiss::Miss
                };
                let outcomes = query
                    .iter()
                    .filter(|op| op.tag == Some(mbl::Tag::Profile))
                    .map(|_| outcome)
                    .collect();
                Ok((outcomes, true))
            }
            fn config(&self) -> Result<QueryConfig, BackendError> {
                Ok(QueryConfig {
                    backend: "flaky".to_string(),
                    reset: "none".to_string(),
                    reps: 2,
                    target: Target::new(LevelId::L1, 0, 0),
                })
            }
            fn associativity(&self) -> Result<usize, BackendError> {
                Ok(4)
            }
        }

        let sink = Arc::new(obs::RingSink::new(64));
        let mut engine = QueryEngine::new(FlakyBackend { calls: 0 });
        engine.set_recorder(Some(Arc::new(Recorder::new(sink.clone()))));
        engine.set_vote_config(VoteConfig {
            enabled: true,
            margin_permille: 500,
            max_rounds: 2,
        });
        let outcome = engine.run(&concrete("A?")).unwrap();
        assert!(!outcome.consistent, "a fair coin never settles");
        let lines = sink.drain();
        let escalations: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("\"name\":\"engine.vote_escalation\""))
            .collect();
        assert_eq!(escalations.len(), 1, "max_rounds=2 escalates exactly once");
        assert!(escalations[0].contains("\"round\":1"));
        assert!(escalations[0].contains("\"pending\":1"));
        // The batch span was opened first (id 1); the event nests under it.
        assert!(escalations[0].contains("\"parent\":1"));
    }

    #[test]
    fn reconfiguring_the_backend_renames_the_namespace() {
        #[derive(Debug, Clone)]
        struct Switchable(ParityBackend, usize);
        impl QueryBackend for Switchable {
            fn execute(&mut self, q: &Query) -> Result<(Vec<HitMiss>, bool), BackendError> {
                self.0.execute(q)
            }
            fn config(&self) -> Result<QueryConfig, BackendError> {
                let mut config = self.0.config()?;
                config.target.set = self.1;
                Ok(config)
            }
            fn associativity(&self) -> Result<usize, BackendError> {
                self.0.associativity()
            }
        }
        let mut engine = QueryEngine::new(Switchable(ParityBackend::new(), 0));
        let q = concrete("A?");
        engine.run(&q).unwrap();
        engine.backend_mut().1 = 1;
        assert!(!engine.run(&q).unwrap().from_cache, "new namespace, no hit");
        assert_eq!(engine.store().namespaces(), 2);
    }

    #[test]
    fn a_batch_fetches_the_config_exactly_once() {
        // Regression guard for the batch amortization contract: however many
        // queries a batch carries, the engine fetches (and renders) the
        // backend configuration once — the voting layer reuses it instead of
        // asking again — and the store ends up with exactly one namespace.
        use std::sync::atomic::{AtomicU64, Ordering};
        #[derive(Debug, Clone)]
        struct ConfigCounter(ParityBackend, Arc<AtomicU64>);
        impl QueryBackend for ConfigCounter {
            fn execute(&mut self, q: &Query) -> Result<(Vec<HitMiss>, bool), BackendError> {
                self.0.execute(q)
            }
            fn config(&self) -> Result<QueryConfig, BackendError> {
                self.1.fetch_add(1, Ordering::Relaxed);
                self.0.config()
            }
            fn associativity(&self) -> Result<usize, BackendError> {
                self.0.associativity()
            }
        }

        let calls = Arc::new(AtomicU64::new(0));
        let mut engine = QueryEngine::new(ConfigCounter(ParityBackend::new(), calls.clone()));
        let queries = expand_query("@ X _?", 4).unwrap();
        assert!(queries.len() > 1, "the batch must be non-trivial");
        engine.run_many(&queries).unwrap();
        assert_eq!(
            calls.load(Ordering::Relaxed),
            1,
            "a batch of {} queries must render the namespace once",
            queries.len()
        );
        assert_eq!(engine.store().namespaces(), 1, "one store key per config");
        // A second, fully store-served batch still revalidates the namespace
        // (that is how reconfiguration is detected) — once, not per query.
        engine.run_many(&queries).unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }
}
