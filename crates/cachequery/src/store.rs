//! The query store: one namespaced, prefix-trie memoization layer for
//! concrete query outcomes — the LevelDB role of §4.2.
//!
//! The original frontend memoizes every query response in LevelDB so that
//! repeated queries — from the same client or a different one — never touch
//! the scarce hardware backend again.  This reproduction goes one step
//! further: instead of a flat key-value map it reuses
//! [`learning::QueryCache`], the thread-safe arena-backed prefix trie built
//! for membership queries.  Because a query's profiled outcomes are
//! *prefix-consistent* — the hit/miss classification of access `i` depends
//! only on the reset state and the accesses before it, never on what comes
//! after — recording one concrete query also answers every prefix of it, and
//! overlapping expansions from different clients share trie nodes instead of
//! duplicating whole key strings.
//!
//! The store is namespaced by the rendered [`QueryConfig`](crate::QueryConfig)
//! of the backend that produced an answer: the full backend identity (CPU
//! model, seed, CAT restriction — or a simulated-policy description), the
//! reset sequence, the repetition count and the target cache set.  Two
//! consumers share answers exactly when a backend would have executed their
//! queries identically.
//!
//! Only *consistent* answers (all repetitions agreed) are shared; a degraded
//! majority vote is returned to its requester but never memoized, so noise
//! cannot be frozen into the store.  A recording that contradicts an earlier
//! one (the nondeterminism signal of §7.1) is dropped and counted in
//! [`QueryStore::conflicts`].
//!
//! # Durability
//!
//! A store opened with [`QueryStore::open`] (or [`QueryStore::with_options`]
//! and a directory) is backed by the log-structured files of
//! [`persist`](crate::persist): every fresh recording is framed and handed to
//! a dedicated writer thread over a *bounded* channel (the hot lookup path
//! never blocks on disk — a full queue drops the append and counts it, and
//! the next snapshot heals the gap because snapshots capture the whole
//! store), the writer compacts the log into an atomic snapshot past a size
//! threshold, and startup replays snapshot-then-log so a restarted `cqd`
//! serves yesterday's campaign from memory.  A `kill -9` loses at most the
//! unsynced tail of the log.
//!
//! # Bounded memory
//!
//! A store configured with [`StoreOptions::max_entries`] evicts at
//! *namespace granularity*: when the global entry count exceeds the cap, a
//! pluggable [`EvictionPolicy`] — by default an LRU simulator from
//! [`policies`], driven by namespace-touch events — names a victim namespace
//! whose trie is cleared in place.  Existing [`StoreSpace`] handles stay
//! valid and simply miss afterwards; the namespace refills on use.  Eviction
//! is thereby self-referential in the CacheQuery sense: the replacement
//! policies this system learns and simulates also decide what the system
//! itself forgets.
//!
//! One [`QueryStore`] instance sits behind every [`QueryEngine`]
//! (crate::QueryEngine); engines that should share answers (the `cqd`
//! daemon's sessions, workers and learn jobs; the per-worker oracle clones of
//! a parallel learning run) share one store through an [`Arc`].

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock, Weak};

use cache::HitMiss;
use learning::QueryCache;
use mbl::{expand_query, render_query, MemOp, Query, Tag};
use policies::{KeyedPolicy, PolicyError, PolicyKind, ReplacementPolicy};

use crate::persist;

/// One namespace's trie: symbols are whole memory operations (block + tag),
/// outputs are the classification of the access (`None` for unprofiled and
/// invalidating operations).
type Space = QueryCache<MemOp, Option<HitMiss>>;

/// Chooses which namespace a bounded [`QueryStore`] forgets when it exceeds
/// its entry cap.
///
/// The store drives the policy with namespace-*touch* events (every lookup
/// or recording against a namespace touches it) and asks for a victim when
/// over the cap.  [`PolicyEvictor`] adapts any registered replacement-policy
/// simulator to this interface; custom strategies only need these four
/// methods.
pub trait EvictionPolicy: Send + std::fmt::Debug {
    /// Records an access to `namespace` (insertion into tracking, or a
    /// promotion if already tracked).
    fn touch(&mut self, namespace: &str);

    /// Names one tracked namespace to discard, removing it from tracking.
    /// `None` when nothing is tracked.
    fn victim(&mut self) -> Option<String>;

    /// Drops `namespace` from tracking without an eviction (the store
    /// cleared it for another reason).
    fn forget(&mut self, namespace: &str);

    /// Display name of the strategy (e.g. `LRU`).
    fn name(&self) -> &'static str;
}

/// An [`EvictionPolicy`] backed by a replacement-policy simulator from
/// [`policies`]: the namespaces currently tracked are the "lines" of one
/// cache set, and the policy's victim selection decides which namespace the
/// store forgets.
///
/// The tracking associativity bounds how many namespaces the policy can
/// distinguish, not how many the store may hold — untracked namespaces are
/// still evictable through the store's fallback scan.
#[derive(Debug)]
pub struct PolicyEvictor {
    tracked: KeyedPolicy<String>,
}

/// Tracking associativity of [`PolicyEvictor::default`] (LRU@16): wider than
/// any realistic concurrent-campaign namespace count, narrow enough that the
/// linear way scan stays cheap.
pub const DEFAULT_EVICTOR_WAYS: usize = 16;

impl PolicyEvictor {
    /// Wraps an explicit policy instance; tracking capacity is the policy's
    /// associativity.
    pub fn new(policy: Box<dyn ReplacementPolicy>) -> Self {
        PolicyEvictor {
            tracked: KeyedPolicy::new(policy),
        }
    }

    /// Builds an evictor from a registered policy kind at `ways` tracking
    /// associativity.
    ///
    /// # Errors
    ///
    /// Fails when the kind does not support `ways` (e.g. PLRU at a
    /// non-power-of-two).
    pub fn of_kind(kind: PolicyKind, ways: usize) -> Result<Self, PolicyError> {
        Ok(PolicyEvictor::new(kind.build(ways)?))
    }

    /// Parses an evictor spec of the form `POLICY` or `POLICY@WAYS` (e.g.
    /// `lru`, `srrip-fp@8`) — the grammar of `cqd --store-evict`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown policies, malformed way
    /// counts and unsupported associativities.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let (name, ways) = match spec.split_once('@') {
            None => (spec, DEFAULT_EVICTOR_WAYS),
            Some((name, ways)) => (
                name,
                ways.parse::<usize>()
                    .map_err(|_| format!("invalid way count in eviction spec '{spec}'"))?,
            ),
        };
        let kind: PolicyKind = name.parse().map_err(|e| format!("{e}"))?;
        PolicyEvictor::of_kind(kind, ways).map_err(|e| e.to_string())
    }
}

impl Default for PolicyEvictor {
    fn default() -> Self {
        PolicyEvictor::of_kind(PolicyKind::Lru, DEFAULT_EVICTOR_WAYS)
            .expect("LRU supports every associativity")
    }
}

impl EvictionPolicy for PolicyEvictor {
    fn touch(&mut self, namespace: &str) {
        // A displaced key here only falls out of *tracking* (the policy can
        // distinguish at most `ways` namespaces); the store's fallback scan
        // keeps untracked namespaces evictable.
        self.tracked.touch(namespace.to_string());
    }

    fn victim(&mut self) -> Option<String> {
        self.tracked.evict()
    }

    fn forget(&mut self, namespace: &str) {
        self.tracked.forget(&namespace.to_string());
    }

    fn name(&self) -> &'static str {
        self.tracked.policy_name()
    }
}

/// Observer of a store's traffic, attached at construction via
/// [`StoreOptions::tap`].
///
/// The tap sees every lookup (with its hit/miss fate) and every successful
/// recording — the event stream `storebench` captures from a live campaign
/// and replays against capped stores to measure eviction-policy degradation.
/// A store without a tap pays one `Option` check per operation.
pub trait StoreTap: Send + Sync + std::fmt::Debug {
    /// A lookup in `namespace`; `hit` is whether it was served from memory.
    fn on_lookup(&self, namespace: &str, query: &Query, hit: bool);

    /// A successful recording in `namespace` of the profiled `outcomes` of
    /// `query`.
    fn on_record(&self, namespace: &str, query: &Query, outcomes: &[HitMiss]);
}

/// Configuration of a [`QueryStore`] beyond the in-memory default — see
/// [`QueryStore::with_options`].
#[derive(Debug)]
pub struct StoreOptions {
    /// Directory for the record log and snapshots; `None` keeps the store
    /// memory-only.
    pub dir: Option<PathBuf>,
    /// Global entry (trie node) cap; `None` leaves the store unbounded.
    pub max_entries: Option<u64>,
    /// Eviction strategy for a bounded store; defaults to
    /// [`PolicyEvictor::default`] (LRU@16).  Ignored when `max_entries` is
    /// `None`.
    pub evictor: Option<Box<dyn EvictionPolicy>>,
    /// Traffic observer (see [`StoreTap`]).
    pub tap: Option<Arc<dyn StoreTap>>,
    /// Depth of the bounded channel feeding the writer thread.  When the
    /// writer falls behind, appends are dropped (and counted) instead of
    /// blocking the query path; the next snapshot heals the gap.
    pub queue_depth: usize,
    /// Log size past which the writer compacts into a snapshot.
    pub compact_bytes: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            dir: None,
            max_entries: None,
            evictor: None,
            tap: None,
            queue_depth: 1024,
            compact_bytes: 4 << 20,
        }
    }
}

/// Counters of a store's persistence layer, all zero for a memory-only
/// store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PersistStats {
    /// Records handed to the writer thread since open.
    pub appended: u64,
    /// Appends lost: the writer's queue was full, or a write failed.  Lost
    /// appends are durability gaps (healed by the next snapshot), never
    /// in-memory data loss.
    pub dropped: u64,
    /// Compacted snapshots written since open.
    pub snapshots: u64,
    /// Records recovered at open (snapshot lines plus log records).
    pub replayed: u64,
}

/// Outcome of one [`QueryStore::import`] / startup replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImportReport {
    /// Lines stored (possibly re-recording already-known answers).
    pub imported: u64,
    /// Lines rejected before touching the store: missing fields, pattern
    /// characters other than `H`/`M`, unparseable queries, or a pattern
    /// whose length mismatches the query's profiled-access count.
    pub malformed: u64,
    /// Well-formed lines dropped because they contradicted the current
    /// contents (also counted in [`QueryStore::conflicts`]).
    pub conflicted: u64,
}

/// One row of [`QueryStore::namespace_usage`]: a namespace with its size and
/// lifetime lookup counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamespaceUsage {
    /// The namespace (a rendered backend configuration).
    pub name: String,
    /// Distinct cached access prefixes (trie nodes).
    pub entries: u64,
    /// Estimated heap footprint of the trie, in bytes.
    pub bytes: u64,
    /// Lookups served from memory (lifetime — survives eviction).
    pub hits: u64,
    /// Lookups that missed (lifetime — survives eviction).
    pub misses: u64,
}

/// A handle to one namespace of a [`QueryStore`]: the cheap, lock-free way to
/// issue many lookups/recordings against the same backend configuration.
///
/// Handles are obtained from [`QueryStore::space`] and can be cloned and sent
/// across threads freely; all clones address the same trie.  Handles stay
/// valid across evictions — a cleared namespace simply misses until refilled.
#[derive(Debug, Clone)]
pub struct StoreSpace {
    name: Arc<str>,
    trie: Arc<Space>,
    inner: Arc<StoreInner>,
}

impl StoreSpace {
    /// Returns the memoized profiled outcomes of `query` if the whole access
    /// sequence is cached.
    ///
    /// Served answers are always consistent (inconsistent runs are never
    /// recorded).
    pub fn lookup(&self, query: &Query) -> Option<Vec<HitMiss>> {
        let outputs = self.trie.lookup(query);
        if let Some(tap) = &self.inner.tap {
            tap.on_lookup(&self.name, query, outputs.is_some());
        }
        self.inner.note_touch(&self.name);
        Some(outputs?.into_iter().flatten().collect())
    }

    /// Records the profiled `outcomes` of `query`.
    ///
    /// `consistent == false` runs are skipped (returning `false`): a degraded
    /// majority vote must not be served to other consumers as a clean answer.
    /// A recording that contradicts an existing entry is dropped and counted
    /// as a conflict.  Returns whether the answer was stored.
    pub fn record(&self, query: &Query, outcomes: &[HitMiss], consistent: bool) -> bool {
        if !consistent {
            return false;
        }
        let profiled_ops = query
            .iter()
            .filter(|op| op.tag == Some(Tag::Profile))
            .count();
        if profiled_ops != outcomes.len() {
            // The outcome vector does not line up with the query's profiled
            // accesses; refusing to store is safer than storing garbage.
            self.inner.conflicts.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut profiled = outcomes.iter();
        let outputs: Vec<Option<HitMiss>> = query
            .iter()
            .map(|op| {
                if op.tag == Some(Tag::Profile) {
                    profiled.next().copied()
                } else {
                    None
                }
            })
            .collect();
        match self.trie.record(query, &outputs) {
            Ok(fresh) => {
                if fresh > 0 {
                    self.inner
                        .total_entries
                        .fetch_add(fresh as u64, Ordering::Relaxed);
                }
                // Append even when no nodes are fresh: a shorter query can
                // profile an interior node that existing entries only passed
                // through, and that outcome must survive a log-only replay.
                self.inner.append_to_log(&self.name, query, outcomes);
                if let Some(tap) = &self.inner.tap {
                    tap.on_record(&self.name, query, outcomes);
                }
                self.inner.note_touch(&self.name);
                true
            }
            Err(_) => {
                self.inner.conflicts.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Lookups served from memory in this namespace.
    pub fn hits(&self) -> u64 {
        self.trie.hits()
    }

    /// Lookups that missed in this namespace.
    pub fn misses(&self) -> u64 {
        self.trie.misses()
    }

    /// One consistent `(hits, misses)` snapshot of this namespace (see
    /// [`learning::QueryCache::counts`]).
    pub fn counts(&self) -> (u64, u64) {
        self.trie.counts()
    }

    /// Distinct cached access prefixes (trie nodes) in this namespace.
    pub fn entries(&self) -> u64 {
        self.trie.entries()
    }

    /// Estimated heap footprint of this namespace's trie, in bytes (see
    /// [`learning::QueryCache::approx_bytes`]).
    pub fn approx_bytes(&self) -> u64 {
        self.trie.approx_bytes()
    }

    /// Fraction of this namespace's lookups served from memory, computed
    /// from one consistent counter snapshot.
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = self.counts();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }
}

/// Aggregate statistics of the engine-level majority votes recorded against
/// a store (see `QueryEngine`'s `VoteConfig`): how many queries were voted,
/// how many needed escalation, how many never settled, and the worst final
/// vote margin observed — the noise dashboard `cqd stats` reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteStats {
    /// Queries that went through the engine's repetition vote.
    pub voted: u64,
    /// Backend executions those votes consumed (repetitions and escalations
    /// included): `executions / voted` is the effective repetition count.
    pub executions: u64,
    /// Voted queries that needed at least one escalation round.
    pub escalated: u64,
    /// Voted queries whose margin never reached the threshold; their
    /// (degraded) majority answer was returned but not stored.
    pub unsettled: u64,
    /// The smallest final vote margin observed, in permille (1000 until the
    /// first vote is recorded).
    pub min_margin_permille: u64,
}

impl Default for VoteStats {
    fn default() -> Self {
        VoteStats {
            voted: 0,
            executions: 0,
            escalated: 0,
            unsettled: 0,
            min_margin_permille: 1000,
        }
    }
}

/// Atomic counterparts of [`VoteStats`].
#[derive(Debug)]
struct VoteCounters {
    voted: AtomicU64,
    executions: AtomicU64,
    escalated: AtomicU64,
    unsettled: AtomicU64,
    min_margin_permille: AtomicU64,
}

impl Default for VoteCounters {
    fn default() -> Self {
        VoteCounters {
            voted: AtomicU64::new(0),
            executions: AtomicU64::new(0),
            escalated: AtomicU64::new(0),
            unsettled: AtomicU64::new(0),
            min_margin_permille: AtomicU64::new(1000),
        }
    }
}

/// Messages to the persistence writer thread.
#[derive(Debug)]
enum PersistMsg {
    /// Append one framed export line to the record log.
    Append(String),
    /// Flush and fsync the log, then acknowledge.
    Sync(SyncSender<()>),
    /// Compact the store into a snapshot (truncating the log), then
    /// acknowledge if a channel is given.
    Snapshot(Option<SyncSender<()>>),
}

/// The live persistence attachment of a durable store.
#[derive(Debug)]
struct Persist {
    dir: PathBuf,
    tx: SyncSender<PersistMsg>,
    appended: AtomicU64,
    dropped: AtomicU64,
    snapshots: AtomicU64,
    replayed: u64,
}

/// The entry cap and its eviction strategy.
#[derive(Debug)]
struct Bound {
    max_entries: u64,
    evictor: Mutex<Box<dyn EvictionPolicy>>,
}

/// Shared state behind a [`QueryStore`] and all its [`StoreSpace`] handles.
#[derive(Debug)]
struct StoreInner {
    spaces: RwLock<HashMap<String, Arc<Space>>>,
    conflicts: AtomicU64,
    votes: VoteCounters,
    /// Exact global trie-node count, maintained from `record`'s fresh-node
    /// deltas and `clear`'s drop counts — the cheap load the entry cap is
    /// enforced against.
    total_entries: AtomicU64,
    /// Namespaces cleared by the entry cap.
    evictions: AtomicU64,
    bound: Option<Bound>,
    /// Set once at the end of `with_options` (after replay, so recovered
    /// records are not re-appended to the log they came from).
    persist: OnceLock<Persist>,
    tap: Option<Arc<dyn StoreTap>>,
}

impl Default for StoreInner {
    fn default() -> Self {
        StoreInner {
            spaces: RwLock::new(HashMap::new()),
            conflicts: AtomicU64::new(0),
            votes: VoteCounters::default(),
            total_entries: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bound: None,
            persist: OnceLock::new(),
            tap: None,
        }
    }
}

impl StoreInner {
    /// Serializes every namespace to the tab-separated export format (also
    /// used by the writer thread for compaction).
    fn export(&self) -> String {
        let spaces = self.spaces.read().unwrap_or_else(PoisonError::into_inner);
        let mut lines: Vec<String> = Vec::new();
        for (namespace, space) in spaces.iter() {
            for (query, outputs) in space.maximal_entries() {
                let pattern: String = outputs
                    .iter()
                    .flatten()
                    .map(|o| if *o == HitMiss::Hit { 'H' } else { 'M' })
                    .collect();
                lines.push(format!("{namespace}\t{pattern}\t{}", render_query(&query)));
            }
        }
        lines.sort();
        lines.join("\n")
    }

    /// Hands one export line to the writer thread; never blocks — a full
    /// queue or a detached writer drops the append and counts it.
    fn append_to_log(&self, namespace: &str, query: &Query, outcomes: &[HitMiss]) {
        let Some(persist) = self.persist.get() else {
            return;
        };
        let pattern: String = outcomes
            .iter()
            .map(|o| if *o == HitMiss::Hit { 'H' } else { 'M' })
            .collect();
        let line = format!("{namespace}\t{pattern}\t{}", render_query(query));
        match persist.tx.try_send(PersistMsg::Append(line)) {
            Ok(()) => {
                persist.appended.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                persist.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Touches `namespace` on the eviction policy and enforces the entry cap
    /// (no-op for unbounded stores).
    fn note_touch(&self, namespace: &str) {
        let Some(bound) = &self.bound else {
            return;
        };
        let mut evictor = bound.evictor.lock().unwrap_or_else(PoisonError::into_inner);
        evictor.touch(namespace);
        while self.total_entries.load(Ordering::Relaxed) > bound.max_entries {
            if !self.evict_one(namespace, evictor.as_mut()) {
                break;
            }
        }
    }

    /// Clears one victim namespace; returns whether any entries were freed.
    ///
    /// The policy's candidates are tried first (each rejected candidate has
    /// already been dropped from tracking, so the loop terminates); when the
    /// policy runs dry the store falls back to any other resident namespace,
    /// and as a last resort clears `current` itself (the cap is smaller than
    /// one campaign's working set).
    fn evict_one(&self, current: &str, evictor: &mut dyn EvictionPolicy) -> bool {
        let mut popped_current = false;
        loop {
            match evictor.victim() {
                Some(name) if name == current => popped_current = true,
                Some(name) => {
                    if self.clear_namespace(&name) {
                        if popped_current {
                            evictor.touch(current);
                        }
                        return true;
                    }
                }
                None => break,
            }
        }
        let fallback = {
            let spaces = self.spaces.read().unwrap_or_else(PoisonError::into_inner);
            spaces
                .iter()
                .find(|(name, space)| name.as_str() != current && space.entries() > 0)
                .map(|(name, _)| name.clone())
        };
        if let Some(name) = fallback {
            if popped_current {
                evictor.touch(current);
            }
            if self.clear_namespace(&name) {
                return true;
            }
        }
        self.clear_namespace(current)
    }

    /// Clears `namespace`'s trie in place (handles stay valid; subsequent
    /// lookups miss).  Returns whether anything was dropped.
    fn clear_namespace(&self, namespace: &str) -> bool {
        let space = {
            let spaces = self.spaces.read().unwrap_or_else(PoisonError::into_inner);
            spaces.get(namespace).cloned()
        };
        let Some(space) = space else {
            return false;
        };
        let dropped = space.clear();
        if dropped == 0 {
            return false;
        }
        self.total_entries.fetch_sub(dropped, Ordering::Relaxed);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        true
    }
}

/// A concurrent, namespaced memoization store for concrete query outcomes:
/// the single caching layer every query path of this reproduction goes
/// through.  [`QueryStore::new`] is memory-only and unbounded;
/// [`QueryStore::open`] adds the durable record log, and
/// [`QueryStore::with_options`] additionally bounds memory with
/// policy-driven eviction.
///
/// # Example
///
/// ```
/// use cache::HitMiss;
/// use cachequery::QueryStore;
/// use mbl::expand_query;
///
/// let store = QueryStore::new();
/// let space = store.space("skylake seed=7 cat=- reset=F+R reps=3 L1 set=0 slice=0");
/// let query = &expand_query("A B A?", 8).unwrap()[0];
/// assert_eq!(space.lookup(query), None);
/// space.record(query, &[HitMiss::Hit], true);
/// // The query itself — and any prefix of it — now hits.
/// assert_eq!(space.lookup(query), Some(vec![HitMiss::Hit]));
/// let prefix = &expand_query("A B", 8).unwrap()[0];
/// assert_eq!(space.lookup(prefix), Some(vec![]));
/// ```
#[derive(Debug)]
pub struct QueryStore {
    inner: Arc<StoreInner>,
}

impl Default for QueryStore {
    fn default() -> Self {
        QueryStore::new()
    }
}

impl QueryStore {
    /// Creates an empty, unbounded, memory-only store.
    pub fn new() -> Self {
        QueryStore::with_options(StoreOptions::default())
            .expect("a memory-only store performs no I/O")
    }

    /// Opens a durable store in `dir` with default options: unbounded
    /// memory, 1024-deep writer queue, 4 MiB compaction threshold.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from reading the snapshot/log or creating the
    /// directory.  See [`QueryStore::with_options`] for the replay contract.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        QueryStore::with_options(StoreOptions {
            dir: Some(dir.into()),
            ..StoreOptions::default()
        })
    }

    /// Creates a store from explicit [`StoreOptions`].
    ///
    /// With a directory, startup replays the compacted snapshot first, then
    /// the record log (stopping at the first torn or corrupt record and
    /// truncating the log back to the last valid boundary), and only then
    /// attaches the writer thread — so recovered records are never
    /// re-appended to the log they came from.  The entry cap, if any, is
    /// enforced during replay too.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a memory-only configuration cannot fail.
    pub fn with_options(options: StoreOptions) -> io::Result<Self> {
        let StoreOptions {
            dir,
            max_entries,
            evictor,
            tap,
            queue_depth,
            compact_bytes,
        } = options;
        let bound = max_entries.map(|max_entries| Bound {
            max_entries,
            evictor: Mutex::new(evictor.unwrap_or_else(|| Box::<PolicyEvictor>::default())),
        });
        let inner = Arc::new(StoreInner {
            bound,
            tap,
            ..StoreInner::default()
        });
        let store = QueryStore { inner };
        let Some(dir) = dir else {
            return Ok(store);
        };

        std::fs::create_dir_all(&dir)?;
        let mut replayed = 0u64;
        if let Some(snapshot) = persist::read_snapshot(&dir)? {
            replayed += store.import(&snapshot).imported;
        }
        let (records, valid_len) = persist::read_log(&dir)?;
        for line in &records {
            replayed += store.import(line).imported;
        }
        persist::truncate_log(&dir, valid_len)?;

        // Open the log eagerly so open-time I/O errors surface here, and so
        // the writer thread never races directory removal with file creation.
        let log = persist::open_log_for_append(&dir)?;
        let (tx, rx) = mpsc::sync_channel(queue_depth.max(1));
        let weak = Arc::downgrade(&store.inner);
        let writer_dir = dir.clone();
        std::thread::Builder::new()
            .name("cq-store-writer".to_string())
            .spawn(move || writer_loop(rx, log, writer_dir, weak, compact_bytes, valid_len))?;
        let _ = store.inner.persist.set(Persist {
            dir,
            tx,
            appended: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            replayed,
        });
        Ok(store)
    }

    /// The store directory, when the store is durable.
    pub fn store_dir(&self) -> Option<&Path> {
        self.inner.persist.get().map(|p| p.dir.as_path())
    }

    /// Persistence counters (all zero for a memory-only store).
    pub fn persist_stats(&self) -> PersistStats {
        match self.inner.persist.get() {
            None => PersistStats::default(),
            Some(p) => PersistStats {
                appended: p.appended.load(Ordering::Relaxed),
                dropped: p.dropped.load(Ordering::Relaxed),
                snapshots: p.snapshots.load(Ordering::Relaxed),
                replayed: p.replayed,
            },
        }
    }

    /// Blocks until every append handed to the writer so far is flushed and
    /// fsynced to the record log.  No-op for a memory-only store.
    pub fn flush(&self) {
        let Some(persist) = self.inner.persist.get() else {
            return;
        };
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        if persist.tx.send(PersistMsg::Sync(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Blocks until the store is compacted into a fresh snapshot (and the
    /// log truncated).  No-op for a memory-only store.
    pub fn snapshot(&self) {
        let Some(persist) = self.inner.persist.get() else {
            return;
        };
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        if persist.tx.send(PersistMsg::Snapshot(Some(ack_tx))).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// The namespace handle for `namespace`, created empty on first use.
    pub fn space(&self, namespace: &str) -> StoreSpace {
        if let Some(space) = self
            .inner
            .spaces
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(namespace)
        {
            return StoreSpace {
                name: Arc::from(namespace),
                trie: Arc::clone(space),
                inner: Arc::clone(&self.inner),
            };
        }
        let mut spaces = self
            .inner
            .spaces
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let trie = Arc::clone(
            spaces
                .entry(namespace.to_string())
                .or_insert_with(|| Arc::new(QueryCache::new())),
        );
        drop(spaces);
        StoreSpace {
            name: Arc::from(namespace),
            trie,
            inner: Arc::clone(&self.inner),
        }
    }

    /// Returns the memoized profiled outcomes of `query` under `namespace`,
    /// if the whole access sequence is cached.
    pub fn lookup(&self, namespace: &str, query: &Query) -> Option<Vec<HitMiss>> {
        self.space(namespace).lookup(query)
    }

    /// Records the profiled `outcomes` of `query` under `namespace` (see
    /// [`StoreSpace::record`]).  Returns whether the answer was stored.
    pub fn record(
        &self,
        namespace: &str,
        query: &Query,
        outcomes: &[HitMiss],
        consistent: bool,
    ) -> bool {
        self.space(namespace).record(query, outcomes, consistent)
    }

    /// Lookups served from memory, across all namespaces.
    pub fn hits(&self) -> u64 {
        self.fold(|s| s.hits())
    }

    /// Lookups that missed, across all namespaces.
    pub fn misses(&self) -> u64 {
        self.fold(|s| s.misses())
    }

    /// One `(hits, misses)` snapshot across all namespaces, each namespace
    /// sampled consistently (see [`learning::QueryCache::counts`]) — what
    /// every stats rendering should use instead of separate
    /// [`hits`](Self::hits)/[`misses`](Self::misses) loads.
    pub fn counts(&self) -> (u64, u64) {
        let spaces = self
            .inner
            .spaces
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        spaces.values().fold((0, 0), |(hits, misses), space| {
            let (h, m) = space.counts();
            (hits + h, misses + m)
        })
    }

    /// Distinct cached access prefixes (trie nodes), across all namespaces.
    pub fn entries(&self) -> u64 {
        self.fold(|s| s.entries())
    }

    /// Namespaces cleared by the entry cap since the store opened.
    pub fn evictions(&self) -> u64 {
        self.inner.evictions.load(Ordering::Relaxed)
    }

    /// The configured entry cap, if any.
    pub fn max_entries(&self) -> Option<u64> {
        self.inner.bound.as_ref().map(|b| b.max_entries)
    }

    /// Recordings dropped because they contradicted the store or were
    /// malformed.
    pub fn conflicts(&self) -> u64 {
        self.inner.conflicts.load(Ordering::Relaxed)
    }

    /// Records the outcome of one engine-level majority vote: its final
    /// margin (permille), the backend executions it consumed, whether it
    /// escalated past the base repetition count, and whether it settled
    /// above the margin threshold.
    pub fn record_vote(
        &self,
        margin_permille: u64,
        executions: u64,
        escalated: bool,
        settled: bool,
    ) {
        let votes = &self.inner.votes;
        votes.voted.fetch_add(1, Ordering::Relaxed);
        votes.executions.fetch_add(executions, Ordering::Relaxed);
        if escalated {
            votes.escalated.fetch_add(1, Ordering::Relaxed);
        }
        if !settled {
            votes.unsettled.fetch_add(1, Ordering::Relaxed);
        }
        votes
            .min_margin_permille
            .fetch_min(margin_permille, Ordering::Relaxed);
    }

    /// Aggregate vote-margin statistics recorded against this store — one
    /// tally covering *every* engine sharing the store, pooled session
    /// backends and learning campaigns alike.
    pub fn vote_stats(&self) -> VoteStats {
        let votes = &self.inner.votes;
        VoteStats {
            voted: votes.voted.load(Ordering::Relaxed),
            executions: votes.executions.load(Ordering::Relaxed),
            escalated: votes.escalated.load(Ordering::Relaxed),
            unsettled: votes.unsettled.load(Ordering::Relaxed),
            min_margin_permille: votes.min_margin_permille.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct backend configurations seen.
    pub fn namespaces(&self) -> usize {
        self.inner
            .spaces
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Every namespace with its entry (trie node) count, sorted by name —
    /// the per-namespace breakdown the `cqd` `stats` command reports.
    pub fn namespace_entries(&self) -> Vec<(String, u64)> {
        self.namespace_usage()
            .into_iter()
            .map(|usage| (usage.name, usage.entries))
            .collect()
    }

    /// Every namespace with its size and lifetime lookup counters, sorted by
    /// name (see [`NamespaceUsage`]) — what `cqd stats` reports so operators
    /// can see which backend configuration is eating the memory and which is
    /// actually being served from it.
    pub fn namespace_usage(&self) -> Vec<NamespaceUsage> {
        let mut usage: Vec<NamespaceUsage> = self
            .inner
            .spaces
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, space)| {
                let (hits, misses) = space.counts();
                NamespaceUsage {
                    name: name.clone(),
                    entries: space.entries(),
                    bytes: space.approx_bytes(),
                    hits,
                    misses,
                }
            })
            .collect();
        usage.sort_by(|a, b| a.name.cmp(&b.name));
        usage
    }

    /// Estimated heap footprint of the whole store, in bytes (sum over
    /// namespaces).
    pub fn approx_bytes(&self) -> u64 {
        self.fold(|s| s.approx_bytes())
    }

    /// Fraction of lookups served from memory, computed from one
    /// [`counts`](Self::counts) snapshot.
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = self.counts();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Serializes the store to a plain-text format: one tab-separated line
    /// per maximal recorded query (`namespace \t pattern \t query`).  Because
    /// the trie is prefix-closed, exporting the maximal paths loses nothing.
    pub fn export(&self) -> String {
        self.inner.export()
    }

    /// Restores entries exported by [`QueryStore::export`] (also the replay
    /// path of [`QueryStore::open`]), reporting what happened to every line.
    ///
    /// Lines are *validated* before they touch the store: a pattern with any
    /// character other than `H`/`M`, or whose length does not match the
    /// query's profiled-access count, is rejected as malformed rather than
    /// silently coerced (a corrupted export must not become plausible-looking
    /// wrong answers).  Well-formed entries contradicting the current
    /// contents are dropped and counted as conflicts.
    pub fn import(&self, text: &str) -> ImportReport {
        let mut report = ImportReport::default();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let (Some(namespace), Some(pattern), Some(rendered)) =
                (parts.next(), parts.next(), parts.next())
            else {
                report.malformed += 1;
                continue;
            };
            if !pattern.chars().all(|c| c == 'H' || c == 'M') {
                report.malformed += 1;
                continue;
            }
            // A rendered concrete query contains no macros, so it expands to
            // itself at any associativity.
            let Ok(mut queries) = expand_query(rendered, 1) else {
                report.malformed += 1;
                continue;
            };
            if queries.len() != 1 {
                report.malformed += 1;
                continue;
            }
            let query = queries.pop().expect("length checked");
            let profiled_ops = query
                .iter()
                .filter(|op| op.tag == Some(Tag::Profile))
                .count();
            if profiled_ops != pattern.len() {
                report.malformed += 1;
                continue;
            }
            let outcomes: Vec<HitMiss> = pattern
                .chars()
                .map(|c| {
                    if c == 'H' {
                        HitMiss::Hit
                    } else {
                        HitMiss::Miss
                    }
                })
                .collect();
            if self.space(namespace).record(&query, &outcomes, true) {
                report.imported += 1;
            } else {
                report.conflicted += 1;
            }
        }
        report
    }

    fn fold(&self, per_space: impl Fn(&Space) -> u64) -> u64 {
        self.inner
            .spaces
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(|s| per_space(s))
            .sum()
    }
}

/// The persistence writer: drains the bounded channel, buffers appends,
/// flushes when idle, fsyncs on demand, and compacts the log into an atomic
/// snapshot past `compact_bytes`.  Exits when every sender is gone (the
/// store was dropped) after a final flush.
fn writer_loop(
    rx: Receiver<PersistMsg>,
    log: std::fs::File,
    dir: PathBuf,
    store: Weak<StoreInner>,
    compact_bytes: u64,
    mut log_bytes: u64,
) {
    let mut log = io::BufWriter::new(log);
    loop {
        let Ok(first) = rx.recv() else {
            break;
        };
        let mut next = Some(first);
        while let Some(msg) = next.take() {
            match msg {
                PersistMsg::Append(line) => {
                    let frame = persist::encode_record(line.as_bytes());
                    match io::Write::write_all(&mut log, &frame) {
                        Ok(()) => log_bytes += frame.len() as u64,
                        Err(_) => {
                            if let Some(inner) = store.upgrade() {
                                if let Some(p) = inner.persist.get() {
                                    p.dropped.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                }
                PersistMsg::Sync(ack) => {
                    let _ = io::Write::flush(&mut log);
                    let _ = log.get_ref().sync_data();
                    let _ = ack.send(());
                }
                PersistMsg::Snapshot(ack) => {
                    compact(&mut log, &dir, &store, &mut log_bytes);
                    if let Some(ack) = ack {
                        let _ = ack.send(());
                    }
                }
            }
            next = rx.try_recv().ok();
        }
        // The channel is idle: make the buffered tail visible on disk.
        let _ = io::Write::flush(&mut log);
        if log_bytes > compact_bytes {
            compact(&mut log, &dir, &store, &mut log_bytes);
        }
    }
    let _ = io::Write::flush(&mut log);
    let _ = log.get_ref().sync_data();
}

/// Compacts the store into a snapshot and truncates the log.
///
/// Ordering is what makes this safe: buffered appends are flushed *before*
/// the export (every record processed so far was inserted into the trie
/// before it was sent, so the export covers it), the snapshot replaces its
/// predecessor atomically, and only then is the log truncated.  A crash at
/// any point replays either the old snapshot plus the old log, or the new
/// snapshot plus whatever was appended after it — both consistent.
fn compact(
    log: &mut io::BufWriter<std::fs::File>,
    dir: &Path,
    store: &Weak<StoreInner>,
    log_bytes: &mut u64,
) {
    let Some(inner) = store.upgrade() else {
        return;
    };
    let _ = io::Write::flush(log);
    let text = inner.export();
    if persist::write_snapshot(dir, &text).is_ok() && log.get_ref().set_len(0).is_ok() {
        *log_bytes = 0;
        if let Some(p) = inner.persist.get() {
            p.snapshots.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn concrete(mbl: &str) -> Query {
        let mut queries = expand_query(mbl, 8).unwrap();
        assert_eq!(queries.len(), 1);
        queries.pop().unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cq_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const NS: &str = "skylake seed=7 cat=- reset=F+R reps=3 L1 set=0 slice=0";
    const NS2: &str = "skylake seed=7 cat=- reset=F+R reps=3 L1 set=1 slice=0";

    #[test]
    fn lookups_miss_until_recorded_and_namespaces_are_isolated() {
        let store = QueryStore::new();
        let q = concrete("A B A?");
        assert_eq!(store.lookup(NS, &q), None);
        assert!(store.record(NS, &q, &[HitMiss::Hit], true));
        assert_eq!(store.lookup(NS, &q), Some(vec![HitMiss::Hit]));
        // A different target set is a different namespace.
        assert_eq!(store.lookup(NS2, &q), None);
        assert_eq!(store.namespaces(), 2);
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 2);
        assert_eq!(store.counts(), (1, 2));
        assert!(store.hit_rate() > 0.0);
    }

    #[test]
    fn prefixes_of_recorded_queries_hit() {
        let store = QueryStore::new();
        store.record(NS, &concrete("A? B? C?"), &[HitMiss::Miss; 3], true);
        assert_eq!(
            store.lookup(NS, &concrete("A? B?")),
            Some(vec![HitMiss::Miss, HitMiss::Miss])
        );
        // Same blocks, different tags: a different access sequence.
        assert_eq!(store.lookup(NS, &concrete("A B")), None);
    }

    #[test]
    fn inconsistent_answers_are_not_shared() {
        let store = QueryStore::new();
        let q = concrete("A?");
        assert!(!store.record(NS, &q, &[HitMiss::Hit], false));
        assert_eq!(store.lookup(NS, &q), None);
    }

    #[test]
    fn contradictions_count_as_conflicts() {
        let store = QueryStore::new();
        let q = concrete("A?");
        assert!(store.record(NS, &q, &[HitMiss::Hit], true));
        assert!(!store.record(NS, &q, &[HitMiss::Miss], true));
        assert_eq!(store.conflicts(), 1);
        // The original answer survives.
        assert_eq!(store.lookup(NS, &q), Some(vec![HitMiss::Hit]));
    }

    #[test]
    fn malformed_outcome_vectors_are_rejected() {
        let store = QueryStore::new();
        let q = concrete("A? B?");
        assert!(!store.record(NS, &q, &[HitMiss::Hit], true));
        assert_eq!(store.conflicts(), 1);
    }

    #[test]
    fn namespace_entries_report_per_space_sizes() {
        let store = QueryStore::new();
        store.record(NS, &concrete("A B A?"), &[HitMiss::Hit], true);
        store.record(NS2, &concrete("A?"), &[HitMiss::Miss], true);
        assert_eq!(
            store.namespace_entries(),
            vec![(NS.to_string(), 3), (NS2.to_string(), 1)]
        );
    }

    #[test]
    fn namespace_usage_reports_bytes_and_lookup_counters() {
        let store = QueryStore::new();
        store.record(NS, &concrete("A B A?"), &[HitMiss::Hit], true);
        store.record(NS2, &concrete("A?"), &[HitMiss::Miss], true);
        store.lookup(NS, &concrete("A B A?"));
        let usage = store.namespace_usage();
        assert_eq!(usage.len(), 2);
        for row in &usage {
            assert!(row.entries > 0, "{} has entries", row.name);
            assert!(row.bytes > 0, "{} has a byte estimate", row.name);
        }
        // The bigger namespace costs more bytes, and the total folds exactly.
        assert!(
            usage[0].bytes > usage[1].bytes,
            "3-node trie outweighs 1-node trie"
        );
        assert_eq!(store.approx_bytes(), usage[0].bytes + usage[1].bytes);
        // The lookup above hit NS and is visible in its per-namespace row.
        assert_eq!((usage[0].hits, usage[0].misses), (1, 0));
        assert_eq!((usage[1].hits, usage[1].misses), (0, 0));
    }

    #[test]
    fn export_import_round_trips_across_stores() {
        let store = QueryStore::new();
        store.record(NS, &concrete("A B A?"), &[HitMiss::Hit], true);
        store.record(NS, &concrete("A B C?"), &[HitMiss::Miss], true);
        store.record(NS2, &concrete("X! A?"), &[HitMiss::Miss], true);
        let exported = store.export();

        let fresh = QueryStore::new();
        let report = fresh.import(&exported);
        assert_eq!(report.imported, 3);
        assert_eq!((report.malformed, report.conflicted), (0, 0));
        assert_eq!(
            fresh.lookup(NS, &concrete("A B A?")),
            Some(vec![HitMiss::Hit])
        );
        assert_eq!(
            fresh.lookup(NS, &concrete("A B C?")),
            Some(vec![HitMiss::Miss])
        );
        assert_eq!(
            fresh.lookup(NS2, &concrete("X! A?")),
            Some(vec![HitMiss::Miss])
        );
        assert_eq!(fresh.entries(), store.entries());
        // Garbage lines are rejected and counted, never stored.
        let report = fresh.import("not a store line\nns\tH");
        assert_eq!(report.malformed, 2);
        assert_eq!(fresh.entries(), store.entries());
    }

    #[test]
    fn corrupted_patterns_are_malformed_not_coerced() {
        // Regression test: a corrupted export line whose pattern contains a
        // non-H/M character used to be silently recorded with the garbage
        // coerced to Miss.  It must be rejected and counted instead.
        let store = QueryStore::new();
        let good = QueryStore::new();
        good.record(NS, &concrete("A B A?"), &[HitMiss::Hit], true);
        let exported = good.export();
        let corrupted = exported.replace("\tH\t", "\tX\t");
        assert_ne!(corrupted, exported, "the pattern column was rewritten");

        let report = store.import(&corrupted);
        assert_eq!(report.malformed, 1);
        assert_eq!(report.imported, 0);
        assert_eq!(store.entries(), 0, "nothing was stored from garbage");
        // The same query must still be answerable with the *correct* data.
        assert_eq!(store.lookup(NS, &concrete("A B A?")), None);
    }

    #[test]
    fn pattern_length_mismatches_are_malformed() {
        let store = QueryStore::new();
        // "A B A?" has exactly one profiled access; two pattern characters
        // cannot line up with it.
        let line = format!("{NS}\tHH\tA B A?");
        let report = store.import(&line);
        assert_eq!(report.malformed, 1);
        assert_eq!(store.entries(), 0);
        assert_eq!(store.conflicts(), 0, "rejected before touching the trie");
    }

    #[test]
    fn import_counts_conflicts_separately() {
        let store = QueryStore::new();
        store.record(NS, &concrete("A?"), &[HitMiss::Hit], true);
        let line = format!("{NS}\tM\tA?");
        let report = store.import(&line);
        assert_eq!(report.conflicted, 1);
        assert_eq!(report.imported, 0);
        assert_eq!(store.lookup(NS, &concrete("A?")), Some(vec![HitMiss::Hit]));
    }

    #[test]
    fn concurrent_consumers_share_one_store() {
        let store = Arc::new(QueryStore::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let q = concrete(&format!("{} A?", mbl::block_name(mbl::BlockId(t + 1))));
                    store.record(NS, &q, &[HitMiss::Miss], true);
                });
            }
        });
        assert_eq!(
            store.entries(),
            8,
            "4 distinct 2-op queries, no sharing of the first op"
        );
    }

    #[test]
    fn bounded_stores_evict_whole_namespaces() {
        let store = QueryStore::with_options(StoreOptions {
            max_entries: Some(4),
            ..StoreOptions::default()
        })
        .unwrap();
        // NS fills 3 entries, NS2 pushes the total to 5 > 4: the least
        // recently touched namespace (NS) is cleared whole.
        store.record(NS, &concrete("A B A?"), &[HitMiss::Hit], true);
        store.record(NS2, &concrete("X Y?"), &[HitMiss::Miss], true);
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.lookup(NS, &concrete("A B A?")), None);
        assert_eq!(
            store.lookup(NS2, &concrete("X Y?")),
            Some(vec![HitMiss::Miss])
        );
        // The evicted namespace's handle is still usable and refills.
        store.record(NS, &concrete("A?"), &[HitMiss::Miss], true);
        assert_eq!(store.lookup(NS, &concrete("A?")), Some(vec![HitMiss::Miss]));
    }

    #[test]
    fn eviction_prefers_other_namespaces_over_the_current_one() {
        let store = QueryStore::with_options(StoreOptions {
            max_entries: Some(6),
            ..StoreOptions::default()
        })
        .unwrap();
        store.record(NS2, &concrete("X?"), &[HitMiss::Miss], true);
        // NS grows past the cap in one namespace; NS2 is sacrificed first,
        // then NS itself is cleared as the last resort.
        store.record(NS, &concrete("A B C D E F A?"), &[HitMiss::Hit], true);
        assert!(store.evictions() >= 1);
        assert_eq!(store.lookup(NS2, &concrete("X?")), None, "NS2 was evicted");
    }

    #[test]
    fn a_cap_wider_than_the_store_never_evicts() {
        let store = QueryStore::with_options(StoreOptions {
            max_entries: Some(1_000),
            ..StoreOptions::default()
        })
        .unwrap();
        store.record(NS, &concrete("A B A?"), &[HitMiss::Hit], true);
        store.record(NS2, &concrete("X Y?"), &[HitMiss::Miss], true);
        assert_eq!(store.evictions(), 0);
        assert_eq!(store.entries(), 5);
    }

    #[test]
    fn durable_stores_replay_their_log_on_open() {
        let dir = temp_dir("replay");
        {
            let store = QueryStore::open(&dir).unwrap();
            store.record(NS, &concrete("A B A?"), &[HitMiss::Hit], true);
            store.record(NS2, &concrete("X! A?"), &[HitMiss::Miss], true);
            store.flush();
            let stats = store.persist_stats();
            assert_eq!(stats.appended, 2);
            assert_eq!(stats.dropped, 0);
        }
        let reopened = QueryStore::open(&dir).unwrap();
        assert_eq!(reopened.persist_stats().replayed, 2);
        assert_eq!(
            reopened.lookup(NS, &concrete("A B A?")),
            Some(vec![HitMiss::Hit])
        );
        assert_eq!(
            reopened.lookup(NS2, &concrete("X! A?")),
            Some(vec![HitMiss::Miss])
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_outcomes_survive_a_log_only_replay() {
        let dir = temp_dir("interior");
        {
            let store = QueryStore::open(&dir).unwrap();
            // The long query creates the nodes; the short one adds no fresh
            // nodes but profiles an interior node the first only passed
            // through.  Both must be in the log.
            store.record(NS, &concrete("A B C?"), &[HitMiss::Miss], true);
            store.record(NS, &concrete("A B?"), &[HitMiss::Hit], true);
            store.flush();
            assert_eq!(store.persist_stats().appended, 2);
        }
        let reopened = QueryStore::open(&dir).unwrap();
        assert_eq!(
            reopened.lookup(NS, &concrete("A B?")),
            Some(vec![HitMiss::Hit])
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshots_compact_the_log_and_replay_first() {
        let dir = temp_dir("snapshot");
        {
            let store = QueryStore::open(&dir).unwrap();
            store.record(NS, &concrete("A B A?"), &[HitMiss::Hit], true);
            store.snapshot();
            assert_eq!(store.persist_stats().snapshots, 1);
            // Recorded after the snapshot: lives only in the log.
            store.record(NS, &concrete("A B C?"), &[HitMiss::Miss], true);
            store.flush();
        }
        assert!(persist::snapshot_path(&dir).exists());
        let reopened = QueryStore::open(&dir).unwrap();
        assert_eq!(
            reopened.lookup(NS, &concrete("A B A?")),
            Some(vec![HitMiss::Hit])
        );
        assert_eq!(
            reopened.lookup(NS, &concrete("A B C?")),
            Some(vec![HitMiss::Miss])
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_torn_log_tail_is_truncated_on_open() {
        let dir = temp_dir("torn");
        {
            let store = QueryStore::open(&dir).unwrap();
            store.record(NS, &concrete("A B A?"), &[HitMiss::Hit], true);
            store.flush();
        }
        // Simulate a kill -9 mid-append: chop bytes off the log's tail.
        let log_path = persist::log_path(&dir);
        let bytes = std::fs::read(&log_path).unwrap();
        std::fs::write(&log_path, &bytes[..bytes.len() - 3]).unwrap();

        let reopened = QueryStore::open(&dir).unwrap();
        assert_eq!(reopened.persist_stats().replayed, 0, "the record was torn");
        assert_eq!(reopened.lookup(NS, &concrete("A B A?")), None);
        // The log was truncated back to a record boundary: new appends work.
        reopened.record(NS, &concrete("A?"), &[HitMiss::Miss], true);
        reopened.flush();
        drop(reopened);
        let third = QueryStore::open(&dir).unwrap();
        assert_eq!(third.lookup(NS, &concrete("A?")), Some(vec![HitMiss::Miss]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evictor_specs_parse_policies_and_ways() {
        assert_eq!(PolicyEvictor::from_spec("lru").unwrap().name(), "LRU");
        assert_eq!(
            PolicyEvictor::from_spec("srrip-fp@8").unwrap().name(),
            "SRRIP-FP"
        );
        assert!(PolicyEvictor::from_spec("clairvoyant").is_err());
        assert!(PolicyEvictor::from_spec("lru@zero").is_err());
        assert!(
            PolicyEvictor::from_spec("plru@3").is_err(),
            "non-power-of-two"
        );
    }

    #[derive(Debug, Default)]
    struct CountingTap {
        lookups: AtomicU64,
        hits: AtomicU64,
        records: AtomicU64,
    }

    impl StoreTap for CountingTap {
        fn on_lookup(&self, _namespace: &str, _query: &Query, hit: bool) {
            self.lookups.fetch_add(1, Ordering::Relaxed);
            if hit {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
        }

        fn on_record(&self, _namespace: &str, _query: &Query, _outcomes: &[HitMiss]) {
            self.records.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn taps_see_every_lookup_and_record() {
        let tap = Arc::new(CountingTap::default());
        let store = QueryStore::with_options(StoreOptions {
            tap: Some(Arc::<CountingTap>::clone(&tap) as Arc<dyn StoreTap>),
            ..StoreOptions::default()
        })
        .unwrap();
        let q = concrete("A B A?");
        store.lookup(NS, &q);
        store.record(NS, &q, &[HitMiss::Hit], true);
        store.lookup(NS, &q);
        assert_eq!(tap.lookups.load(Ordering::Relaxed), 2);
        assert_eq!(tap.hits.load(Ordering::Relaxed), 1);
        assert_eq!(tap.records.load(Ordering::Relaxed), 1);
    }
}
