//! The query store: one namespaced, prefix-trie memoization layer for
//! concrete query outcomes — the LevelDB role of §4.2.
//!
//! The original frontend memoizes every query response in LevelDB so that
//! repeated queries — from the same client or a different one — never touch
//! the scarce hardware backend again.  This reproduction goes one step
//! further: instead of a flat key-value map it reuses
//! [`learning::QueryCache`], the thread-safe arena-backed prefix trie built
//! for membership queries.  Because a query's profiled outcomes are
//! *prefix-consistent* — the hit/miss classification of access `i` depends
//! only on the reset state and the accesses before it, never on what comes
//! after — recording one concrete query also answers every prefix of it, and
//! overlapping expansions from different clients share trie nodes instead of
//! duplicating whole key strings.
//!
//! The store is namespaced by the rendered [`QueryConfig`](crate::QueryConfig)
//! of the backend that produced an answer: the full backend identity (CPU
//! model, seed, CAT restriction — or a simulated-policy description), the
//! reset sequence, the repetition count and the target cache set.  Two
//! consumers share answers exactly when a backend would have executed their
//! queries identically.
//!
//! Only *consistent* answers (all repetitions agreed) are shared; a degraded
//! majority vote is returned to its requester but never memoized, so noise
//! cannot be frozen into the store.  A recording that contradicts an earlier
//! one (the nondeterminism signal of §7.1) is dropped and counted in
//! [`QueryStore::conflicts`].
//!
//! One [`QueryStore`] instance sits behind every [`QueryEngine`]
//! (crate::QueryEngine); engines that should share answers (the `cqd`
//! daemon's sessions, workers and learn jobs; the per-worker oracle clones of
//! a parallel learning run) share one store through an [`Arc`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use cache::HitMiss;
use learning::QueryCache;
use mbl::{expand_query, render_query, MemOp, Query, Tag};

/// One namespace's trie: symbols are whole memory operations (block + tag),
/// outputs are the classification of the access (`None` for unprofiled and
/// invalidating operations).
type Space = QueryCache<MemOp, Option<HitMiss>>;

/// A handle to one namespace of a [`QueryStore`]: the cheap, lock-free way to
/// issue many lookups/recordings against the same backend configuration.
///
/// Handles are obtained from [`QueryStore::space`] and can be cloned and sent
/// across threads freely; all clones address the same trie.
#[derive(Debug, Clone)]
pub struct StoreSpace {
    trie: Arc<Space>,
    conflicts: Arc<AtomicU64>,
}

impl StoreSpace {
    /// Returns the memoized profiled outcomes of `query` if the whole access
    /// sequence is cached.
    ///
    /// Served answers are always consistent (inconsistent runs are never
    /// recorded).
    pub fn lookup(&self, query: &Query) -> Option<Vec<HitMiss>> {
        let outputs = self.trie.lookup(query)?;
        Some(outputs.into_iter().flatten().collect())
    }

    /// Records the profiled `outcomes` of `query`.
    ///
    /// `consistent == false` runs are skipped (returning `false`): a degraded
    /// majority vote must not be served to other consumers as a clean answer.
    /// A recording that contradicts an existing entry is dropped and counted
    /// as a conflict.  Returns whether the answer was stored.
    pub fn record(&self, query: &Query, outcomes: &[HitMiss], consistent: bool) -> bool {
        if !consistent {
            return false;
        }
        let profiled_ops = query
            .iter()
            .filter(|op| op.tag == Some(Tag::Profile))
            .count();
        if profiled_ops != outcomes.len() {
            // The outcome vector does not line up with the query's profiled
            // accesses; refusing to store is safer than storing garbage.
            self.conflicts.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut profiled = outcomes.iter();
        let outputs: Vec<Option<HitMiss>> = query
            .iter()
            .map(|op| {
                if op.tag == Some(Tag::Profile) {
                    profiled.next().copied()
                } else {
                    None
                }
            })
            .collect();
        match self.trie.record(query, &outputs) {
            Ok(()) => true,
            Err(_) => {
                self.conflicts.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Lookups served from memory in this namespace.
    pub fn hits(&self) -> u64 {
        self.trie.hits()
    }

    /// Lookups that missed in this namespace.
    pub fn misses(&self) -> u64 {
        self.trie.misses()
    }

    /// Distinct cached access prefixes (trie nodes) in this namespace.
    pub fn entries(&self) -> u64 {
        self.trie.entries()
    }

    /// Estimated heap footprint of this namespace's trie, in bytes (see
    /// [`learning::QueryCache::approx_bytes`]).
    pub fn approx_bytes(&self) -> u64 {
        self.trie.approx_bytes()
    }

    /// Fraction of this namespace's lookups served from memory.
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = (self.hits(), self.misses());
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }
}

/// Aggregate statistics of the engine-level majority votes recorded against
/// a store (see `QueryEngine`'s `VoteConfig`): how many queries were voted,
/// how many needed escalation, how many never settled, and the worst final
/// vote margin observed — the noise dashboard `cqd stats` reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteStats {
    /// Queries that went through the engine's repetition vote.
    pub voted: u64,
    /// Backend executions those votes consumed (repetitions and escalations
    /// included): `executions / voted` is the effective repetition count.
    pub executions: u64,
    /// Voted queries that needed at least one escalation round.
    pub escalated: u64,
    /// Voted queries whose margin never reached the threshold; their
    /// (degraded) majority answer was returned but not stored.
    pub unsettled: u64,
    /// The smallest final vote margin observed, in permille (1000 until the
    /// first vote is recorded).
    pub min_margin_permille: u64,
}

impl Default for VoteStats {
    fn default() -> Self {
        VoteStats {
            voted: 0,
            executions: 0,
            escalated: 0,
            unsettled: 0,
            min_margin_permille: 1000,
        }
    }
}

/// Atomic counterparts of [`VoteStats`].
#[derive(Debug)]
struct VoteCounters {
    voted: AtomicU64,
    executions: AtomicU64,
    escalated: AtomicU64,
    unsettled: AtomicU64,
    min_margin_permille: AtomicU64,
}

impl Default for VoteCounters {
    fn default() -> Self {
        VoteCounters {
            voted: AtomicU64::new(0),
            executions: AtomicU64::new(0),
            escalated: AtomicU64::new(0),
            unsettled: AtomicU64::new(0),
            min_margin_permille: AtomicU64::new(1000),
        }
    }
}

/// A concurrent, namespaced memoization store for concrete query outcomes:
/// the single caching layer every query path of this reproduction goes
/// through.
///
/// # Example
///
/// ```
/// use cache::HitMiss;
/// use cachequery::QueryStore;
/// use mbl::expand_query;
///
/// let store = QueryStore::new();
/// let space = store.space("skylake seed=7 cat=- reset=F+R reps=3 L1 set=0 slice=0");
/// let query = &expand_query("A B A?", 8).unwrap()[0];
/// assert_eq!(space.lookup(query), None);
/// space.record(query, &[HitMiss::Hit], true);
/// // The query itself — and any prefix of it — now hits.
/// assert_eq!(space.lookup(query), Some(vec![HitMiss::Hit]));
/// let prefix = &expand_query("A B", 8).unwrap()[0];
/// assert_eq!(space.lookup(prefix), Some(vec![]));
/// ```
#[derive(Debug, Default)]
pub struct QueryStore {
    spaces: RwLock<HashMap<String, Arc<Space>>>,
    conflicts: Arc<AtomicU64>,
    votes: VoteCounters,
}

impl QueryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        QueryStore::default()
    }

    /// The namespace handle for `namespace`, created empty on first use.
    pub fn space(&self, namespace: &str) -> StoreSpace {
        if let Some(space) = self
            .spaces
            .read()
            .expect("store lock poisoned")
            .get(namespace)
        {
            return StoreSpace {
                trie: Arc::clone(space),
                conflicts: Arc::clone(&self.conflicts),
            };
        }
        let mut spaces = self.spaces.write().expect("store lock poisoned");
        let trie = Arc::clone(
            spaces
                .entry(namespace.to_string())
                .or_insert_with(|| Arc::new(QueryCache::new())),
        );
        StoreSpace {
            trie,
            conflicts: Arc::clone(&self.conflicts),
        }
    }

    /// Returns the memoized profiled outcomes of `query` under `namespace`,
    /// if the whole access sequence is cached.
    pub fn lookup(&self, namespace: &str, query: &Query) -> Option<Vec<HitMiss>> {
        self.space(namespace).lookup(query)
    }

    /// Records the profiled `outcomes` of `query` under `namespace` (see
    /// [`StoreSpace::record`]).  Returns whether the answer was stored.
    pub fn record(
        &self,
        namespace: &str,
        query: &Query,
        outcomes: &[HitMiss],
        consistent: bool,
    ) -> bool {
        self.space(namespace).record(query, outcomes, consistent)
    }

    /// Lookups served from memory, across all namespaces.
    pub fn hits(&self) -> u64 {
        self.fold(|s| s.hits())
    }

    /// Lookups that missed, across all namespaces.
    pub fn misses(&self) -> u64 {
        self.fold(|s| s.misses())
    }

    /// Distinct cached access prefixes (trie nodes), across all namespaces.
    pub fn entries(&self) -> u64 {
        self.fold(|s| s.entries())
    }

    /// Recordings dropped because they contradicted the store or were
    /// malformed.
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }

    /// Records the outcome of one engine-level majority vote: its final
    /// margin (permille), the backend executions it consumed, whether it
    /// escalated past the base repetition count, and whether it settled
    /// above the margin threshold.
    pub fn record_vote(
        &self,
        margin_permille: u64,
        executions: u64,
        escalated: bool,
        settled: bool,
    ) {
        self.votes.voted.fetch_add(1, Ordering::Relaxed);
        self.votes
            .executions
            .fetch_add(executions, Ordering::Relaxed);
        if escalated {
            self.votes.escalated.fetch_add(1, Ordering::Relaxed);
        }
        if !settled {
            self.votes.unsettled.fetch_add(1, Ordering::Relaxed);
        }
        self.votes
            .min_margin_permille
            .fetch_min(margin_permille, Ordering::Relaxed);
    }

    /// Aggregate vote-margin statistics recorded against this store — one
    /// tally covering *every* engine sharing the store, pooled session
    /// backends and learning campaigns alike.
    pub fn vote_stats(&self) -> VoteStats {
        VoteStats {
            voted: self.votes.voted.load(Ordering::Relaxed),
            executions: self.votes.executions.load(Ordering::Relaxed),
            escalated: self.votes.escalated.load(Ordering::Relaxed),
            unsettled: self.votes.unsettled.load(Ordering::Relaxed),
            min_margin_permille: self.votes.min_margin_permille.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct backend configurations seen.
    pub fn namespaces(&self) -> usize {
        self.spaces.read().expect("store lock poisoned").len()
    }

    /// Every namespace with its entry (trie node) count, sorted by name —
    /// the per-namespace breakdown the `cqd` `stats` command reports.
    pub fn namespace_entries(&self) -> Vec<(String, u64)> {
        self.namespace_usage()
            .into_iter()
            .map(|(name, entries, _)| (name, entries))
            .collect()
    }

    /// Every namespace with its entry count *and* estimated byte footprint,
    /// sorted by name: `(namespace, entries, approx_bytes)`.  The byte figure
    /// is the trie's estimated heap usage (see
    /// [`learning::QueryCache::approx_bytes`]) — what `cqd stats` reports so
    /// operators can see which backend configuration is eating the memory.
    pub fn namespace_usage(&self) -> Vec<(String, u64, u64)> {
        let mut entries: Vec<(String, u64, u64)> = self
            .spaces
            .read()
            .expect("store lock poisoned")
            .iter()
            .map(|(name, space)| (name.clone(), space.entries(), space.approx_bytes()))
            .collect();
        entries.sort();
        entries
    }

    /// Estimated heap footprint of the whole store, in bytes (sum over
    /// namespaces).
    pub fn approx_bytes(&self) -> u64 {
        self.fold(|s| s.approx_bytes())
    }

    /// Fraction of lookups served from memory.
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = (self.hits(), self.misses());
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Serializes the store to a plain-text format: one tab-separated line
    /// per maximal recorded query (`namespace \t pattern \t query`).  Because
    /// the trie is prefix-closed, exporting the maximal paths loses nothing.
    pub fn export(&self) -> String {
        let spaces = self.spaces.read().expect("store lock poisoned");
        let mut lines: Vec<String> = Vec::new();
        for (namespace, space) in spaces.iter() {
            for (query, outputs) in space.maximal_entries() {
                let pattern: String = outputs
                    .iter()
                    .flatten()
                    .map(|o| if *o == HitMiss::Hit { 'H' } else { 'M' })
                    .collect();
                lines.push(format!("{namespace}\t{pattern}\t{}", render_query(&query)));
            }
        }
        lines.sort();
        lines.join("\n")
    }

    /// Restores entries exported by [`QueryStore::export`].  Malformed lines
    /// and entries contradicting the current contents are ignored (the
    /// latter are counted as conflicts).
    pub fn import(&self, text: &str) {
        for line in text.lines() {
            let mut parts = line.splitn(3, '\t');
            let (Some(namespace), Some(pattern), Some(rendered)) =
                (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            // A rendered concrete query contains no macros, so it expands to
            // itself at any associativity.
            let Ok(mut queries) = expand_query(rendered, 1) else {
                continue;
            };
            if queries.len() != 1 {
                continue;
            }
            let query = queries.pop().expect("length checked");
            let outcomes: Vec<HitMiss> = pattern
                .chars()
                .map(|c| {
                    if c == 'H' {
                        HitMiss::Hit
                    } else {
                        HitMiss::Miss
                    }
                })
                .collect();
            self.space(namespace).record(&query, &outcomes, true);
        }
    }

    fn fold(&self, per_space: impl Fn(&Space) -> u64) -> u64 {
        self.spaces
            .read()
            .expect("store lock poisoned")
            .values()
            .map(|s| per_space(s))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn concrete(mbl: &str) -> Query {
        let mut queries = expand_query(mbl, 8).unwrap();
        assert_eq!(queries.len(), 1);
        queries.pop().unwrap()
    }

    const NS: &str = "skylake seed=7 cat=- reset=F+R reps=3 L1 set=0 slice=0";
    const NS2: &str = "skylake seed=7 cat=- reset=F+R reps=3 L1 set=1 slice=0";

    #[test]
    fn lookups_miss_until_recorded_and_namespaces_are_isolated() {
        let store = QueryStore::new();
        let q = concrete("A B A?");
        assert_eq!(store.lookup(NS, &q), None);
        assert!(store.record(NS, &q, &[HitMiss::Hit], true));
        assert_eq!(store.lookup(NS, &q), Some(vec![HitMiss::Hit]));
        // A different target set is a different namespace.
        assert_eq!(store.lookup(NS2, &q), None);
        assert_eq!(store.namespaces(), 2);
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 2);
        assert!(store.hit_rate() > 0.0);
    }

    #[test]
    fn prefixes_of_recorded_queries_hit() {
        let store = QueryStore::new();
        store.record(NS, &concrete("A? B? C?"), &[HitMiss::Miss; 3], true);
        assert_eq!(
            store.lookup(NS, &concrete("A? B?")),
            Some(vec![HitMiss::Miss, HitMiss::Miss])
        );
        // Same blocks, different tags: a different access sequence.
        assert_eq!(store.lookup(NS, &concrete("A B")), None);
    }

    #[test]
    fn inconsistent_answers_are_not_shared() {
        let store = QueryStore::new();
        let q = concrete("A?");
        assert!(!store.record(NS, &q, &[HitMiss::Hit], false));
        assert_eq!(store.lookup(NS, &q), None);
    }

    #[test]
    fn contradictions_count_as_conflicts() {
        let store = QueryStore::new();
        let q = concrete("A?");
        assert!(store.record(NS, &q, &[HitMiss::Hit], true));
        assert!(!store.record(NS, &q, &[HitMiss::Miss], true));
        assert_eq!(store.conflicts(), 1);
        // The original answer survives.
        assert_eq!(store.lookup(NS, &q), Some(vec![HitMiss::Hit]));
    }

    #[test]
    fn malformed_outcome_vectors_are_rejected() {
        let store = QueryStore::new();
        let q = concrete("A? B?");
        assert!(!store.record(NS, &q, &[HitMiss::Hit], true));
        assert_eq!(store.conflicts(), 1);
    }

    #[test]
    fn namespace_entries_report_per_space_sizes() {
        let store = QueryStore::new();
        store.record(NS, &concrete("A B A?"), &[HitMiss::Hit], true);
        store.record(NS2, &concrete("A?"), &[HitMiss::Miss], true);
        assert_eq!(
            store.namespace_entries(),
            vec![(NS.to_string(), 3), (NS2.to_string(), 1)]
        );
    }

    #[test]
    fn namespace_usage_reports_byte_estimates() {
        let store = QueryStore::new();
        store.record(NS, &concrete("A B A?"), &[HitMiss::Hit], true);
        store.record(NS2, &concrete("A?"), &[HitMiss::Miss], true);
        let usage = store.namespace_usage();
        assert_eq!(usage.len(), 2);
        for (name, entries, bytes) in &usage {
            assert!(*entries > 0, "{name} has entries");
            assert!(*bytes > 0, "{name} has a byte estimate");
        }
        // The bigger namespace costs more bytes, and the total folds exactly.
        assert!(usage[0].2 > usage[1].2, "3-node trie outweighs 1-node trie");
        assert_eq!(store.approx_bytes(), usage[0].2 + usage[1].2);
    }

    #[test]
    fn export_import_round_trips_across_stores() {
        let store = QueryStore::new();
        store.record(NS, &concrete("A B A?"), &[HitMiss::Hit], true);
        store.record(NS, &concrete("A B C?"), &[HitMiss::Miss], true);
        store.record(NS2, &concrete("X! A?"), &[HitMiss::Miss], true);
        let exported = store.export();

        let fresh = QueryStore::new();
        fresh.import(&exported);
        assert_eq!(
            fresh.lookup(NS, &concrete("A B A?")),
            Some(vec![HitMiss::Hit])
        );
        assert_eq!(
            fresh.lookup(NS, &concrete("A B C?")),
            Some(vec![HitMiss::Miss])
        );
        assert_eq!(
            fresh.lookup(NS2, &concrete("X! A?")),
            Some(vec![HitMiss::Miss])
        );
        assert_eq!(fresh.entries(), store.entries());
        // Garbage lines are skipped silently.
        fresh.import("not a store line\nns\tH");
        assert_eq!(fresh.entries(), store.entries());
    }

    #[test]
    fn concurrent_consumers_share_one_store() {
        let store = Arc::new(QueryStore::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let q = concrete(&format!("{} A?", mbl::block_name(mbl::BlockId(t + 1))));
                    store.record(NS, &q, &[HitMiss::Miss], true);
                });
            }
        });
        assert_eq!(
            store.entries(),
            8,
            "4 distinct 2-op queries, no sharing of the first op"
        );
    }
}
