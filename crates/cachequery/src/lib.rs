//! CacheQuery: an abstract interface to individual hardware cache sets.
//!
//! This crate reproduces the tool of §4 of the paper on top of the simulated
//! silicon CPUs of the [`hardware`] crate.  Users pick a cache level and a
//! cache set, write queries in [MemBlockLang](mbl) over *abstract* blocks
//! (`A`, `B`, `C`, …), and receive the hit/miss outcome of every profiled
//! access — without ever dealing with virtual-to-physical translation, slice
//! hashing, congruent-address selection, interference from other cache
//! levels, or measurement noise.
//!
//! The split mirrors the original tool — with one query path for everything:
//!
//! * [`Backend`] plays the role of the Linux kernel module: it owns the
//!   (simulated) machine, quiesces it, allocates memory pools, selects
//!   congruent addresses for the target set, generates the access plan
//!   (including the higher-level eviction loads used for *cache filtering*),
//!   executes it, measures latencies and classifies them against calibrated
//!   thresholds.  It is one implementation of the [`QueryBackend`] trait —
//!   the abstraction every "scarce oracle" of this repo implements.
//! * [`QueryEngine`] is the single memoization layer (the LevelDB role of
//!   §4.2): a namespaced prefix-trie [`QueryStore`] in front of any
//!   [`QueryBackend`].  Engines that should share answers — concurrent `cqd`
//!   sessions, learning jobs, per-worker oracle clones — share one store.
//! * [`CacheQuery`] is the frontend: a thin MBL shell (expansion, batching,
//!   the interactive/batch entry points) over one engine.
//! * [`leader`](detect_leader_sets) implements the thrashing-based leader-set
//!   detection of Appendix B.
//!
//! # Example
//!
//! ```
//! use cachequery::{CacheQuery, Target};
//! use cache::LevelId;
//! use hardware::{CpuModel, SimulatedCpu};
//!
//! let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 7);
//! let mut cq = CacheQuery::new(cpu);
//! cq.set_target(Target::new(LevelId::L1, 13, 0)).unwrap();
//! // Fill the set, access one more block, and probe whether A survived.
//! let results = cq.query("@ X A?").unwrap();
//! assert_eq!(results.len(), 1);        // one expanded query
//! assert_eq!(results[0].outcomes.len(), 1); // one profiled access
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod backend;
mod engine;
mod frontend;
mod leader;
mod noise;
pub mod persist;
mod repl;
mod reset;
mod store;

pub use backend::{Backend, BackendError, Target};
pub use engine::{
    EngineStats, QueryBackend, QueryConfig, QueryEngine, QueryOutcome, VoteConfig, VoteEvidence,
};
pub use frontend::{CacheQuery, QueryStats};
pub use leader::{
    detect_leader_sets, detect_leader_sets_with, LeaderClass, LeaderDetectConfig, LeaderReport,
    LeaderSetInfo,
};
pub use noise::{NoiseSpec, NoiseStats, NoisyBackend, DEFAULT_NOISY_REPS};
pub use repl::{execute_command, parse_command, process_command, Command, ReplSession, HELP_TEXT};
pub use reset::ResetSequence;
pub use store::{
    EvictionPolicy, ImportReport, NamespaceUsage, PersistStats, PolicyEvictor, QueryStore,
    StoreOptions, StoreSpace, StoreTap, VoteStats, DEFAULT_EVICTOR_WAYS,
};
