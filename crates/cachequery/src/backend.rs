//! The CacheQuery backend: the part that talks to the (simulated) machine.
//!
//! The original backend is a Linux kernel module; its responsibilities
//! (§4.2/§4.3) are reproduced here one by one:
//!
//! * **Set mapping / address selection** — find virtual addresses whose
//!   physical translations are congruent in the target cache set, so that the
//!   abstract blocks `A`, `B`, `C`, … of a query can be bound to concrete
//!   loads.
//! * **Cache filtering** — when the target is L2 or L3, every access is
//!   followed by loads to *non-interfering eviction sets* (congruent in the
//!   smaller caches, not congruent in the target level) so the next access to
//!   the block is served by the target level.
//! * **Profiling and classification** — profiled accesses measure latency and
//!   are classified as hit or miss at the target level against a calibrated
//!   threshold.
//! * **Noise handling** — the machine is quiesced and every query is executed
//!   several times with a majority vote.

use std::fmt;

use cache::{CacheGeometry, HitMiss, LevelId};
use hardware::{CatError, SimulatedCpu, VirtAddr};
use mbl::{BlockId, ExpandError, MemOp, Query, Tag};

use crate::reset::ResetSequence;

/// A cache set chosen as the target of queries: a level, a set index within a
/// slice, and a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Target {
    /// Cache level.
    pub level: LevelId,
    /// Set index within the slice.
    pub set: usize,
    /// Slice index (0 for single-slice levels).
    pub slice: usize,
}

impl Target {
    /// Creates a target.
    pub fn new(level: LevelId, set: usize, slice: usize) -> Self {
        Target { level, set, slice }
    }

    /// The flat set index (`slice * sets_per_slice + set`) under `geometry`.
    pub fn flat_index(&self, geometry: CacheGeometry) -> usize {
        self.slice * geometry.sets_per_slice + self.set
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} set {} slice {}", self.level, self.set, self.slice)
    }
}

/// Errors raised by the backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The requested set index is out of range for the level.
    SetOutOfRange {
        /// Requested set.
        set: usize,
        /// Number of sets per slice.
        sets_per_slice: usize,
    },
    /// The requested slice index is out of range for the level.
    SliceOutOfRange {
        /// Requested slice.
        slice: usize,
        /// Number of slices.
        slices: usize,
    },
    /// Not enough congruent addresses could be found in the memory pools.
    AddressSelection {
        /// How many addresses were needed.
        needed: usize,
        /// How many were found.
        found: usize,
    },
    /// No target has been selected yet.
    NoTarget,
    /// An MBL expression failed to parse or expand.
    Expand(ExpandError),
    /// Applying CAT failed.
    Cat(CatError),
    /// A non-hardware backend (a remote `cqd` session, a simulated-policy
    /// backend) failed; the payload is its rendered error.
    Service(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::SetOutOfRange {
                set,
                sets_per_slice,
            } => write!(
                f,
                "set {set} out of range (level has {sets_per_slice} sets per slice)"
            ),
            BackendError::SliceOutOfRange { slice, slices } => {
                write!(f, "slice {slice} out of range (level has {slices} slices)")
            }
            BackendError::AddressSelection { needed, found } => write!(
                f,
                "could not find enough congruent addresses (needed {needed}, found {found})"
            ),
            BackendError::NoTarget => write!(f, "no target cache set selected"),
            BackendError::Expand(e) => write!(f, "{e}"),
            BackendError::Cat(e) => write!(f, "{e}"),
            BackendError::Service(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<ExpandError> for BackendError {
    fn from(e: ExpandError) -> Self {
        BackendError::Expand(e)
    }
}

impl From<CatError> for BackendError {
    fn from(e: CatError) -> Self {
        BackendError::Cat(e)
    }
}

/// Per-target state: the bound block addresses, the filter (eviction) sets and
/// the calibrated classification threshold.
#[derive(Debug, Clone)]
struct TargetState {
    target: Target,
    /// Flat set index in the target level.
    flat: usize,
    /// Virtual address bound to each abstract block (`blocks[i]` is block `i`).
    blocks: Vec<VirtAddr>,
    /// Eviction addresses congruent with the target blocks in L1 but in
    /// different L2/L3 sets.
    l1_filter: Vec<VirtAddr>,
    /// Eviction addresses congruent in L2 but in a different L3 set (only
    /// populated for L3 targets).
    l2_filter: Vec<VirtAddr>,
    /// Latencies at or below this value are classified as a hit in the target
    /// level.
    hit_threshold: u64,
}

/// Number of filter passes performed when evicting a block from the caches
/// above the target level.
const FILTER_PASSES: usize = 3;
/// Filter sets contain `FILTER_FACTOR * associativity` addresses.
const FILTER_FACTOR: usize = 2;
/// Number of measurement pairs used to calibrate the hit/miss threshold.
const CALIBRATION_SAMPLES: usize = 21;
/// Number of abstract blocks bound eagerly when a target is selected.
const INITIAL_BLOCKS: usize = 48;
/// Size of each memory pool allocation (bytes).
const POOL_BYTES: u64 = 8 << 20;

/// The backend: owns the simulated CPU and executes concrete queries against
/// a selected target cache set.
///
/// `Clone` duplicates the whole simulated machine (CPU, bound addresses,
/// calibration), yielding an independent backend that answers identically —
/// the basis for per-worker oracle instances in parallel learning.
#[derive(Debug, Clone)]
pub struct Backend {
    cpu: SimulatedCpu,
    /// Line-aligned virtual addresses available for address selection.
    pool_lines: Vec<VirtAddr>,
    /// How far `pool_lines` has been scanned for each selection predicate is
    /// not tracked; selection simply skips addresses that are already in use.
    in_use: std::collections::HashSet<u64>,
    state: Option<TargetState>,
    repetitions: usize,
    reset: ResetSequence,
    /// Total number of loads issued for queries (excludes calibration).
    query_loads: u64,
    /// Total number of queries executed (after repetition).
    queries_run: u64,
}

impl Backend {
    /// Wraps a simulated CPU, quiescing it and allocating the first memory
    /// pool (the equivalent of loading the kernel module).
    pub fn new(mut cpu: SimulatedCpu) -> Self {
        cpu.quiesce(true);
        let mut backend = Backend {
            cpu,
            pool_lines: Vec::new(),
            in_use: std::collections::HashSet::new(),
            state: None,
            repetitions: 3,
            reset: ResetSequence::default(),
            query_loads: 0,
            queries_run: 0,
        };
        backend.grow_pool();
        backend
    }

    /// The wrapped CPU (read-only).
    pub fn cpu(&self) -> &SimulatedCpu {
        &self.cpu
    }

    /// Number of times each query is executed for the majority vote.
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }

    /// Sets the number of repetitions (values are rounded up to an odd
    /// number; 0 is treated as 1).
    pub fn set_repetitions(&mut self, repetitions: usize) {
        let r = repetitions.max(1);
        self.repetitions = if r.is_multiple_of(2) { r + 1 } else { r };
    }

    /// The reset sequence applied before every query execution.
    pub fn reset_sequence(&self) -> &ResetSequence {
        &self.reset
    }

    /// Sets the reset sequence.
    pub fn set_reset_sequence(&mut self, reset: ResetSequence) {
        self.reset = reset;
    }

    /// Applies Intel CAT to restrict the last-level cache to `ways` ways.
    /// The current target (if any) is re-selected afterwards because the
    /// effective associativity changed.
    ///
    /// # Errors
    ///
    /// Propagates [`CatError`] and address-selection failures.
    pub fn apply_cat(&mut self, ways: usize) -> Result<(), BackendError> {
        self.cpu.apply_cat(LevelId::L3, ways)?;
        if let Some(state) = self.state.take() {
            self.select_target(state.target)?;
        }
        Ok(())
    }

    /// The currently selected target, if any.
    pub fn target(&self) -> Option<Target> {
        self.state.as_ref().map(|s| s.target)
    }

    /// The associativity of the currently selected target level (after CAT).
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::NoTarget`] if no target is selected.
    pub fn associativity(&self) -> Result<usize, BackendError> {
        let state = self.state.as_ref().ok_or(BackendError::NoTarget)?;
        Ok(self.cpu.geometry(state.target.level).associativity)
    }

    /// Number of loads issued on behalf of queries so far.
    pub fn query_loads(&self) -> u64 {
        self.query_loads
    }

    /// Number of query executions so far: one per [`Backend::run_single`]
    /// call, i.e. one per engine-level voting repetition.
    pub fn queries_run(&self) -> u64 {
        self.queries_run
    }

    /// Selects the target cache set: binds abstract blocks to congruent
    /// addresses, builds the filter sets and calibrates the classification
    /// threshold.
    ///
    /// # Errors
    ///
    /// Returns an error if the target is out of range or address selection
    /// fails.
    pub fn select_target(&mut self, target: Target) -> Result<(), BackendError> {
        let geometry = self.cpu.geometry(target.level);
        if target.set >= geometry.sets_per_slice {
            return Err(BackendError::SetOutOfRange {
                set: target.set,
                sets_per_slice: geometry.sets_per_slice,
            });
        }
        if target.slice >= geometry.slices {
            return Err(BackendError::SliceOutOfRange {
                slice: target.slice,
                slices: geometry.slices,
            });
        }
        let flat = target.flat_index(geometry);
        self.in_use.clear();

        // Bind the abstract blocks to addresses congruent in the target set.
        let blocks = self.find_addresses(INITIAL_BLOCKS, |cpu, phys| {
            cpu.geometry(target.level).flat_index(phys) == flat
        })?;

        // Build the filter (eviction) sets from the physical location of the
        // first block: all congruent blocks share their L1 and L2 set, so a
        // single filter set per level works for every block.
        let probe = blocks[0];
        let probe_phys = self.cpu.translate(probe);
        let l1_flat = self.cpu.geometry(LevelId::L1).flat_index(probe_phys);
        let l2_flat = self.cpu.geometry(LevelId::L2).flat_index(probe_phys);
        let l3_flat = self.cpu.geometry(LevelId::L3).flat_index(probe_phys);

        let l1_ways = self.cpu.geometry(LevelId::L1).associativity;
        let l1_filter = self.find_addresses(FILTER_FACTOR * l1_ways, |cpu, phys| {
            cpu.geometry(LevelId::L1).flat_index(phys) == l1_flat
                && cpu.geometry(LevelId::L2).flat_index(phys) != l2_flat
                && cpu.geometry(LevelId::L3).flat_index(phys) != l3_flat
        })?;

        let l2_filter = if target.level == LevelId::L3 {
            let l2_ways = self.cpu.geometry(LevelId::L2).associativity;
            self.find_addresses(FILTER_FACTOR * l2_ways, |cpu, phys| {
                cpu.geometry(LevelId::L2).flat_index(phys) == l2_flat
                    && cpu.geometry(LevelId::L3).flat_index(phys) != l3_flat
            })?
        } else {
            Vec::new()
        };

        let mut state = TargetState {
            target,
            flat,
            blocks,
            l1_filter,
            l2_filter,
            hit_threshold: 0,
        };
        self.calibrate(&mut state);
        self.state = Some(state);
        Ok(())
    }

    /// Executes a concrete query **once**: reset, replay, measure, classify.
    ///
    /// This is the raw single-measurement path — the *only* execution entry
    /// point.  Repetition and majority voting live in `QueryEngine` (which
    /// reads the count from [`QueryConfig::reps`](crate::QueryConfig::reps)),
    /// so every backend shares one noise-handling implementation; run this
    /// backend through an engine to get voted answers.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::NoTarget`] if no target is selected, or an
    /// address-selection error if the query uses more distinct blocks than can
    /// be bound.
    pub fn run_single(&mut self, query: &Query) -> Result<Vec<HitMiss>, BackendError> {
        if self.state.is_none() {
            return Err(BackendError::NoTarget);
        }
        self.ensure_blocks(query)?;
        self.queries_run += 1;
        Ok(self.run_once(query))
    }

    /// Executes the reset sequence followed by the query once, returning raw
    /// classifications.
    fn run_once(&mut self, query: &Query) -> Vec<HitMiss> {
        self.reset_target_set();
        let state = self.state.as_ref().expect("caller checked the target");
        let level = state.target.level;
        let threshold = state.hit_threshold;
        let ops: Vec<MemOp> = query.clone();

        let mut outcomes = Vec::new();
        for op in &ops {
            match op.tag {
                Some(Tag::Invalidate) => {
                    let addr = self.block_address(op.block);
                    self.cpu.clflush(addr);
                }
                tag => {
                    let addr = self.block_address(op.block);
                    let latency = self.cpu.load(addr);
                    self.query_loads += 1;
                    if tag == Some(Tag::Profile) {
                        outcomes.push(if latency <= threshold {
                            HitMiss::Hit
                        } else {
                            HitMiss::Miss
                        });
                    }
                    if level != LevelId::L1 {
                        self.filter_higher_levels();
                    }
                }
            }
        }
        outcomes
    }

    /// Brings the target set into the fixed initial state: flush every bound
    /// block, then run the refill part of the reset sequence.
    fn reset_target_set(&mut self) {
        let (blocks, assoc) = {
            let state = self.state.as_ref().expect("caller checked the target");
            (
                state.blocks.clone(),
                self.cpu.geometry(state.target.level).associativity,
            )
        };
        for addr in &blocks {
            self.cpu.clflush(*addr);
        }
        let refill = self
            .reset
            .refill_query(assoc)
            .expect("reset sequences are validated when set");
        let level = self.state.as_ref().expect("target checked").target.level;
        for op in &refill {
            let addr = self.block_address(op.block);
            if op.tag == Some(Tag::Invalidate) {
                self.cpu.clflush(addr);
            } else {
                self.cpu.load(addr);
                self.query_loads += 1;
                if level != LevelId::L1 {
                    self.filter_higher_levels();
                }
            }
        }
    }

    /// Evicts the most recently accessed block from the cache levels above
    /// the target by touching the non-interfering filter sets.
    fn filter_higher_levels(&mut self) {
        let (l1_filter, l2_filter) = {
            let state = self.state.as_ref().expect("caller checked the target");
            (state.l1_filter.clone(), state.l2_filter.clone())
        };
        for _ in 0..FILTER_PASSES {
            for &addr in &l1_filter {
                self.cpu.load(addr);
                self.query_loads += 1;
            }
            for &addr in &l2_filter {
                self.cpu.load(addr);
                self.query_loads += 1;
            }
        }
    }

    /// The virtual address bound to `block`.
    ///
    /// # Panics
    ///
    /// Panics if the block has not been bound ([`Backend::ensure_blocks`] is
    /// called before running a query).
    fn block_address(&self, block: BlockId) -> VirtAddr {
        self.state
            .as_ref()
            .expect("caller checked the target")
            .blocks[block.0 as usize]
    }

    /// Makes sure every block mentioned in `query` is bound to a congruent
    /// address, extending the binding if necessary.
    fn ensure_blocks(&mut self, query: &Query) -> Result<(), BackendError> {
        let max_block = query.iter().map(|op| op.block.0 as usize).max();
        let Some(max_block) = max_block else {
            return Ok(());
        };
        let (flat, level, current) = {
            let state = self.state.as_ref().ok_or(BackendError::NoTarget)?;
            (state.flat, state.target.level, state.blocks.len())
        };
        if max_block < current {
            return Ok(());
        }
        let extra = self.find_addresses(max_block + 1 - current, |cpu, phys| {
            cpu.geometry(level).flat_index(phys) == flat
        })?;
        let state = self.state.as_mut().expect("checked above");
        state.blocks.extend(extra);
        Ok(())
    }

    /// Finds `count` line-aligned virtual addresses whose physical translation
    /// satisfies `predicate`, growing the memory pool as needed.
    fn find_addresses(
        &mut self,
        count: usize,
        predicate: impl Fn(&SimulatedCpu, cache::PhysAddr) -> bool,
    ) -> Result<Vec<VirtAddr>, BackendError> {
        let mut found = Vec::with_capacity(count);
        let mut scanned = 0;
        let mut grow_attempts = 0;
        while found.len() < count {
            while scanned < self.pool_lines.len() && found.len() < count {
                let addr = self.pool_lines[scanned];
                scanned += 1;
                if self.in_use.contains(&addr.0) {
                    continue;
                }
                let phys = self.cpu.translate(addr);
                if predicate(&self.cpu, phys) {
                    self.in_use.insert(addr.0);
                    found.push(addr);
                }
            }
            if found.len() < count {
                if grow_attempts >= 8 {
                    return Err(BackendError::AddressSelection {
                        needed: count,
                        found: found.len(),
                    });
                }
                self.grow_pool();
                grow_attempts += 1;
            }
        }
        Ok(found)
    }

    /// Allocates another memory pool and registers its line addresses.
    fn grow_pool(&mut self) {
        let base = self.cpu.allocate_pool(POOL_BYTES);
        let line = 64u64;
        for offset in (0..POOL_BYTES).step_by(line as usize) {
            self.pool_lines.push(base.offset(offset));
        }
    }

    /// Calibrates the hit/miss classification threshold for the target level:
    /// the midpoint between the median latency of a known target-level hit and
    /// the median latency of a known target-level miss (i.e. an access served
    /// by the next level, or by memory for the last-level cache).
    fn calibrate(&mut self, state: &mut TargetState) {
        let level = state.target.level;
        let block = state.blocks[0];
        let mut hits = Vec::with_capacity(CALIBRATION_SAMPLES);
        let mut misses = Vec::with_capacity(CALIBRATION_SAMPLES);

        for _ in 0..CALIBRATION_SAMPLES {
            // Known hit at the target level: load, evict from the levels
            // above the target, load again.
            self.cpu.clflush(block);
            self.cpu.load(block);
            if level != LevelId::L1 {
                Self::run_filter(&mut self.cpu, &state.l1_filter, &state.l2_filter);
            }
            hits.push(self.cpu.load(block));

            // Known miss at the target level: for L1/L2, evict the block from
            // the target level *and everything above* by touching the filter
            // set of the target level itself is not possible without
            // disturbing the set, so instead the block is pushed to the next
            // level by eviction sets; for the last-level cache a clflush
            // yields a memory access.
            match level {
                LevelId::L1 => {
                    // Evict from L1 only: the L1 filter set is non-congruent
                    // in L2/L3, so the block stays in L2.
                    Self::run_filter(&mut self.cpu, &state.l1_filter, &[]);
                    misses.push(self.cpu.load(block));
                }
                LevelId::L2 => {
                    // Evict from L1 and L2: the block remains in L3.
                    Self::run_filter(&mut self.cpu, &state.l1_filter, &state.l2_filter);
                    let l2_ways = self.cpu.geometry(LevelId::L2).associativity;
                    let l2_evict = self.find_l2_evict_set(state, 2 * l2_ways);
                    Self::run_filter(&mut self.cpu, &l2_evict, &[]);
                    misses.push(self.cpu.load(block));
                }
                LevelId::L3 => {
                    self.cpu.clflush(block);
                    misses.push(self.cpu.load(block));
                }
            }
            self.cpu.clflush(block);
        }

        hits.sort_unstable();
        misses.sort_unstable();
        let hit_median = hits[hits.len() / 2];
        let miss_median = misses[misses.len() / 2];
        state.hit_threshold = (hit_median + miss_median) / 2;
    }

    /// For L2-target calibration: an eviction set congruent with the target in
    /// L2 (and hence L1) but not in L3, used to push the calibration block to
    /// L3.  Cached in `l2_filter` when the target is L3; recomputed lazily for
    /// L2 targets.
    fn find_l2_evict_set(&mut self, state: &TargetState, count: usize) -> Vec<VirtAddr> {
        if !state.l2_filter.is_empty() {
            return state.l2_filter.clone();
        }
        let probe_phys = self.cpu.translate(state.blocks[0]);
        let l2_flat = self.cpu.geometry(LevelId::L2).flat_index(probe_phys);
        let l3_flat = self.cpu.geometry(LevelId::L3).flat_index(probe_phys);
        self.find_addresses(count, |cpu, phys| {
            cpu.geometry(LevelId::L2).flat_index(phys) == l2_flat
                && cpu.geometry(LevelId::L3).flat_index(phys) != l3_flat
        })
        .unwrap_or_default()
    }

    fn run_filter(cpu: &mut SimulatedCpu, first: &[VirtAddr], second: &[VirtAddr]) {
        for _ in 0..FILTER_PASSES {
            for &addr in first {
                cpu.load(addr);
            }
            for &addr in second {
                cpu.load(addr);
            }
        }
    }
}

impl crate::engine::QueryBackend for Backend {
    fn execute(&mut self, query: &Query) -> Result<(Vec<HitMiss>, bool), BackendError> {
        // One raw measurement: the engine repeats and votes per
        // `QueryConfig::reps`, so the backend must not vote on top.
        self.run_single(query).map(|outcomes| (outcomes, true))
    }

    fn config(&self) -> Result<crate::engine::QueryConfig, BackendError> {
        let target = self.target().ok_or(BackendError::NoTarget)?;
        let cat = self
            .cpu()
            .cat_ways()
            .map_or_else(|| "-".to_string(), |ways| ways.to_string());
        Ok(crate::engine::QueryConfig {
            backend: format!(
                "{} seed={} cat={cat}",
                self.cpu().model().short_name(),
                self.cpu().seed()
            ),
            reset: self.reset_sequence().to_string(),
            reps: self.repetitions(),
            target,
        })
    }

    fn associativity(&self) -> Result<usize, BackendError> {
        Backend::associativity(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryEngine;
    use hardware::CpuModel;
    use mbl::expand_query;

    /// Backend tests drive the production path — a memoization-disabled
    /// [`QueryEngine`], which performs the backend's `reps` majority vote —
    /// so there is exactly one voting implementation in the crate.
    fn engine(model: CpuModel) -> QueryEngine<Backend> {
        let mut engine = QueryEngine::new(Backend::new(SimulatedCpu::new(model, 99)));
        engine.set_memoize(false);
        engine
    }

    fn run_str(e: &mut QueryEngine<Backend>, q: &str) -> Vec<HitMiss> {
        let assoc = e.backend().associativity().unwrap();
        let queries = expand_query(q, assoc).unwrap();
        assert_eq!(queries.len(), 1, "test queries must expand to one query");
        e.run(&queries[0]).unwrap().outcomes
    }

    #[test]
    fn l1_fill_and_probe_behaves_like_plru() {
        let mut e = engine(CpuModel::SkylakeI5_6500);
        e.backend_mut()
            .select_target(Target::new(LevelId::L1, 5, 0))
            .unwrap();
        // After the reset fill A..H, probing every block must hit.
        let outcomes = run_str(&mut e, "(@)?");
        assert_eq!(outcomes, vec![HitMiss::Hit; 8]);
        // An extra block X misses, and probing X afterwards hits.
        let outcomes = run_str(&mut e, "X? X?");
        assert_eq!(outcomes, vec![HitMiss::Miss, HitMiss::Hit]);
    }

    #[test]
    fn l1_eviction_is_observable() {
        let mut e = engine(CpuModel::SkylakeI5_6500);
        e.backend_mut()
            .select_target(Target::new(LevelId::L1, 9, 0))
            .unwrap();
        // Fill the 8-way set, access one more block: exactly one of the
        // original blocks must have been evicted.
        let assoc = e.backend().associativity().unwrap();
        let queries = expand_query("@ X _?", assoc).unwrap();
        assert_eq!(queries.len(), assoc);
        let mut misses = 0;
        for q in &queries {
            if e.run(q).unwrap().outcomes[0] == HitMiss::Miss {
                misses += 1;
            }
        }
        assert_eq!(misses, 1, "exactly one block should have been evicted");
    }

    #[test]
    fn l2_target_sees_the_new1_policy_not_l1_hits() {
        let mut e = engine(CpuModel::SkylakeI5_6500);
        e.backend_mut()
            .select_target(Target::new(LevelId::L2, 77, 0))
            .unwrap();
        assert_eq!(e.backend().associativity().unwrap(), 4);
        // Without cache filtering these probes would all be L1 hits and the
        // query would be meaningless; with filtering the profiled accesses
        // reflect the L2 state: after filling A B C D, all four blocks are
        // cached.
        let outcomes = run_str(&mut e, "(@)?");
        assert_eq!(outcomes, vec![HitMiss::Hit; 4]);
    }

    #[test]
    fn invalidation_tag_flushes_the_block() {
        let mut e = engine(CpuModel::SkylakeI5_6500);
        e.backend_mut()
            .select_target(Target::new(LevelId::L1, 3, 0))
            .unwrap();
        let outcomes = run_str(&mut e, "A A! A?");
        assert_eq!(outcomes, vec![HitMiss::Miss]);
    }

    #[test]
    fn target_validation_errors() {
        let mut b = Backend::new(SimulatedCpu::new(CpuModel::SkylakeI5_6500, 99));
        assert!(matches!(
            b.select_target(Target::new(LevelId::L1, 64, 0)),
            Err(BackendError::SetOutOfRange { .. })
        ));
        assert!(matches!(
            b.select_target(Target::new(LevelId::L1, 0, 1)),
            Err(BackendError::SliceOutOfRange { .. })
        ));
        let q = expand_query("A?", 4).unwrap();
        assert!(matches!(b.run_single(&q[0]), Err(BackendError::NoTarget)));
    }

    #[test]
    fn repetitions_are_forced_odd() {
        let mut b = Backend::new(SimulatedCpu::new(CpuModel::SkylakeI5_6500, 99));
        b.set_repetitions(4);
        assert_eq!(b.repetitions(), 5);
        b.set_repetitions(0);
        assert_eq!(b.repetitions(), 1);
    }

    #[test]
    fn cat_restricts_the_l3_target() {
        let mut b = Backend::new(SimulatedCpu::new(CpuModel::SkylakeI5_6500, 99));
        b.apply_cat(4).unwrap();
        b.select_target(Target::new(LevelId::L3, 0, 0)).unwrap();
        assert_eq!(b.associativity().unwrap(), 4);
    }

    #[test]
    fn blocks_beyond_the_initial_binding_are_bound_on_demand() {
        let mut e = engine(CpuModel::SkylakeI5_6500);
        e.backend_mut()
            .select_target(Target::new(LevelId::L1, 1, 0))
            .unwrap();
        // Block index 59 ("BH") is far beyond the initial binding of 48.
        let outcomes = run_str(&mut e, "BH?");
        assert_eq!(outcomes, vec![HitMiss::Miss]);
    }
}
