//! A tiny command interpreter for interactive use of CacheQuery.
//!
//! The original frontend offers a REPL shell for executing queries and
//! changing the target cache set on the fly (§4.2).  This module splits the
//! string protocol into two pure halves so that every consumer of the command
//! language shares one implementation:
//!
//! * [`parse_command`] turns one command line into a [`Command`] value (the
//!   *syntax* of the protocol), and
//! * [`execute_command`] interprets a [`Command`] against a [`ReplSession`]
//!   (the *semantics* over an in-process [`CacheQuery`]).
//!
//! [`process_command`] composes the two for the interactive `mbl_repl`
//! example; the `cqd` network daemon (the `server` crate) reuses
//! [`parse_command`] and maps the same [`Command`] values onto its
//! session-routing machinery instead.

use cache::{HitMiss, LevelId};

use crate::backend::Target;
use crate::frontend::CacheQuery;
use crate::reset::ResetSequence;

/// State of an interactive session: the tool plus the staged target
/// selection.
#[derive(Debug)]
pub struct ReplSession {
    /// The underlying CacheQuery instance.
    pub tool: CacheQuery,
    level: LevelId,
    set: usize,
    slice: usize,
    target_dirty: bool,
}

impl ReplSession {
    /// Creates a session targeting L1 set 0 by default.
    pub fn new(tool: CacheQuery) -> Self {
        ReplSession {
            tool,
            level: LevelId::L1,
            set: 0,
            slice: 0,
            target_dirty: true,
        }
    }

    fn ensure_target(&mut self) -> Result<(), String> {
        if self.target_dirty {
            self.tool
                .set_target(Target::new(self.level, self.set, self.slice))
                .map_err(|e| e.to_string())?;
            self.target_dirty = false;
        }
        Ok(())
    }
}

/// One parsed command of the CacheQuery string protocol (§4.2).
///
/// The same command language is spoken by the interactive `mbl_repl` example
/// and by `cqd` sessions; both go through [`parse_command`], so the protocol
/// cannot drift between the two frontends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `help`: list the available commands.
    Help,
    /// `level <L1|L2|L3>`: stage a new target cache level.
    Level(LevelId),
    /// `set <n>`: stage a new target set index.
    Set(usize),
    /// `slice <n>`: stage a new target slice index.
    Slice(usize),
    /// `assoc`: report the associativity of the (staged) target.
    Assoc,
    /// `reps <n>`: set the repetition count of the majority vote.
    Reps(usize),
    /// `reset <F+R | MBL sequence>`: set the reset sequence.
    Reset(ResetSequence),
    /// `cat <ways>`: restrict the last-level cache with Intel CAT.
    Cat(usize),
    /// `target`: print the staged target selection.
    Target,
    /// `stats`: print the session's work counters.
    Stats,
    /// Anything else: an MBL query to expand and execute.
    Query(String),
    /// A recognized command with malformed arguments; the payload is the
    /// usage string to report.
    Usage(&'static str),
}

/// The `help` response (also the reference list of commands).
pub const HELP_TEXT: &str = "commands: level <L1|L2|L3>, set <n>, slice <n>, assoc, reps <n>, \
                             reset <F+R|sequence>, cat <ways>, target, stats, or an MBL query";

/// Parses one line of the CacheQuery command protocol.
///
/// Returns `None` for blank lines.  Malformed arguments of known commands
/// parse to [`Command::Usage`] (carrying the usage message) rather than an
/// error, mirroring the forgiving behaviour of the original shell; anything
/// that is not a known command word is treated as an MBL query.
pub fn parse_command(line: &str) -> Option<Command> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let mut parts = line.split_whitespace();
    let command = parts.next().expect("non-empty line");
    let rest: Vec<&str> = parts.collect();

    Some(match command {
        "help" => Command::Help,
        "level" => match rest.first().and_then(|s| LevelId::parse(s)) {
            Some(level) => Command::Level(level),
            None => Command::Usage("usage: level <L1|L2|L3>"),
        },
        "set" => match rest.first().and_then(|s| s.parse().ok()) {
            Some(set) => Command::Set(set),
            None => Command::Usage("usage: set <index>"),
        },
        "slice" => match rest.first().and_then(|s| s.parse().ok()) {
            Some(slice) => Command::Slice(slice),
            None => Command::Usage("usage: slice <index>"),
        },
        "assoc" => Command::Assoc,
        "reps" => match rest.first().and_then(|s| s.parse().ok()) {
            Some(reps) => Command::Reps(reps),
            None => Command::Usage("usage: reps <count>"),
        },
        "reset" => {
            if rest.is_empty() {
                Command::Usage("usage: reset <F+R | MBL sequence>")
            } else {
                let spec = rest.join(" ");
                Command::Reset(if spec.eq_ignore_ascii_case("f+r") {
                    ResetSequence::FlushRefill
                } else {
                    ResetSequence::Custom(spec)
                })
            }
        }
        "cat" => match rest.first().and_then(|s| s.parse().ok()) {
            Some(ways) => Command::Cat(ways),
            None => Command::Usage("usage: cat <ways>"),
        },
        "target" => Command::Target,
        "stats" => Command::Stats,
        _ => Command::Query(line.to_string()),
    })
}

/// Renders a hit/miss vector the way the paper prints traces
/// (`Hit Hit Miss …`).
fn render_outcomes(outcomes: &[HitMiss]) -> String {
    if outcomes.is_empty() {
        return "(no profiled accesses)".to_string();
    }
    outcomes
        .iter()
        .map(|o| o.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Interprets one parsed [`Command`] against an in-process session and
/// returns the textual response.
pub fn execute_command(session: &mut ReplSession, command: &Command) -> String {
    match command {
        Command::Help => HELP_TEXT.to_string(),
        Command::Usage(usage) => (*usage).to_string(),
        Command::Level(level) => {
            session.level = *level;
            session.target_dirty = true;
            format!("target level set to {level}")
        }
        Command::Set(set) => {
            session.set = *set;
            session.target_dirty = true;
            format!("target set index set to {set}")
        }
        Command::Slice(slice) => {
            session.slice = *slice;
            session.target_dirty = true;
            format!("target slice set to {slice}")
        }
        Command::Assoc => match session.ensure_target() {
            Ok(()) => format!(
                "associativity: {}",
                session.tool.associativity().expect("target just selected")
            ),
            Err(e) => format!("error: {e}"),
        },
        Command::Reps(reps) => {
            session.tool.set_repetitions(*reps);
            format!(
                "repetitions set to {}",
                session.tool.backend().repetitions()
            )
        }
        Command::Reset(reset) => {
            session.tool.set_reset_sequence(reset.clone());
            format!("reset sequence set to {reset}")
        }
        Command::Cat(ways) => match session.tool.apply_cat(*ways) {
            Ok(()) => {
                session.target_dirty = true;
                format!("last-level cache restricted to {ways} ways")
            }
            Err(e) => format!("error: {e}"),
        },
        Command::Target => format!(
            "target: {} set {} slice {}",
            session.level, session.set, session.slice
        ),
        Command::Stats => {
            let stats = session.tool.stats();
            format!(
                "queries: {} (cache hits: {}), backend queries: {}, loads: {}",
                stats.queries, stats.cache_hits, stats.backend_queries, stats.backend_loads
            )
        }
        Command::Query(mbl) => {
            if let Err(e) = session.ensure_target() {
                return format!("error: {e}");
            }
            match session.tool.query(mbl) {
                Ok(results) => results
                    .iter()
                    .map(|r| format!("{} -> {}", r.rendered, render_outcomes(&r.outcomes)))
                    .collect::<Vec<_>>()
                    .join("\n"),
                Err(e) => format!("error: {e}"),
            }
        }
    }
}

/// Processes one command line and returns the textual response.
///
/// Supported commands: `help`, `level <L1|L2|L3>`, `set <n>`, `slice <n>`,
/// `assoc`, `reps <n>`, `reset <F+R | mbl sequence>`, `cat <ways>`, `stats`,
/// `target`; anything else is treated as an MBL query.
pub fn process_command(session: &mut ReplSession, line: &str) -> String {
    match parse_command(line) {
        Some(command) => execute_command(session, &command),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardware::{CpuModel, SimulatedCpu};

    fn session() -> ReplSession {
        let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 3);
        ReplSession::new(CacheQuery::new(cpu))
    }

    #[test]
    fn configures_target_and_runs_queries() {
        let mut s = session();
        assert!(process_command(&mut s, "level L1").contains("L1"));
        assert!(process_command(&mut s, "set 12").contains("12"));
        assert!(process_command(&mut s, "assoc").contains('8'));
        let out = process_command(&mut s, "A B C A?");
        assert!(out.contains("Hit"), "unexpected output: {out}");
    }

    #[test]
    fn figure_1_trace_via_the_repl() {
        let mut s = session();
        process_command(&mut s, "level L2");
        process_command(&mut s, "set 63");
        // A B C A on an empty 4-way set: the first three accesses are not
        // profiled, the re-access of A hits.
        let out = process_command(&mut s, "A B C A?");
        assert!(out.ends_with("Hit"), "unexpected output: {out}");
    }

    #[test]
    fn unknown_levels_and_malformed_numbers_are_reported() {
        let mut s = session();
        assert!(process_command(&mut s, "level L9").contains("usage"));
        assert!(process_command(&mut s, "set x").contains("usage"));
        assert!(process_command(&mut s, "reps").contains("usage"));
    }

    #[test]
    fn stats_and_help_are_available() {
        let mut s = session();
        assert!(process_command(&mut s, "help").contains("MBL"));
        process_command(&mut s, "A?");
        assert!(process_command(&mut s, "stats").contains("queries: 1"));
    }

    #[test]
    fn reset_and_cat_commands() {
        let mut s = session();
        assert!(process_command(&mut s, "reset D C B A @").contains("D C B A @"));
        assert!(process_command(&mut s, "cat 4").contains("4 ways"));
        process_command(&mut s, "level L3");
        assert!(process_command(&mut s, "assoc").contains('4'));
    }

    #[test]
    fn bad_mbl_queries_report_errors() {
        let mut s = session();
        let out = process_command(&mut s, "A (");
        assert!(out.contains("error"), "unexpected output: {out}");
    }

    #[test]
    fn parsing_is_a_pure_function_of_the_line() {
        assert_eq!(parse_command(""), None);
        assert_eq!(parse_command("   "), None);
        assert_eq!(parse_command("help"), Some(Command::Help));
        assert_eq!(parse_command("level L2"), Some(Command::Level(LevelId::L2)));
        assert_eq!(parse_command("set 12"), Some(Command::Set(12)));
        assert_eq!(parse_command("slice 1"), Some(Command::Slice(1)));
        assert_eq!(parse_command("reps 5"), Some(Command::Reps(5)));
        assert_eq!(
            parse_command("reset f+r"),
            Some(Command::Reset(ResetSequence::FlushRefill))
        );
        assert_eq!(
            parse_command("reset D C B A @"),
            Some(Command::Reset(ResetSequence::Custom("D C B A @".into())))
        );
        assert_eq!(parse_command("cat 4"), Some(Command::Cat(4)));
        assert_eq!(
            parse_command("@ X A?"),
            Some(Command::Query("@ X A?".into()))
        );
        assert!(matches!(parse_command("level"), Some(Command::Usage(_))));
    }
}
