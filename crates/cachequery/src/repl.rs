//! A tiny command interpreter for interactive use of CacheQuery.
//!
//! The original frontend offers a REPL shell for executing queries and
//! changing the target cache set on the fly (§4.2).  This module provides the
//! same commands as a pure function from command lines to response strings,
//! which the `mbl_repl` example wires to stdin/stdout and which is easy to
//! test.

use cache::{HitMiss, LevelId};

use crate::backend::Target;
use crate::frontend::CacheQuery;
use crate::reset::ResetSequence;

/// State of an interactive session: the tool plus the staged target
/// selection.
#[derive(Debug)]
pub struct ReplSession {
    /// The underlying CacheQuery instance.
    pub tool: CacheQuery,
    level: LevelId,
    set: usize,
    slice: usize,
    target_dirty: bool,
}

impl ReplSession {
    /// Creates a session targeting L1 set 0 by default.
    pub fn new(tool: CacheQuery) -> Self {
        ReplSession {
            tool,
            level: LevelId::L1,
            set: 0,
            slice: 0,
            target_dirty: true,
        }
    }

    fn ensure_target(&mut self) -> Result<(), String> {
        if self.target_dirty {
            self.tool
                .set_target(Target::new(self.level, self.set, self.slice))
                .map_err(|e| e.to_string())?;
            self.target_dirty = false;
        }
        Ok(())
    }
}

/// Renders a hit/miss vector the way the paper prints traces
/// (`Hit Hit Miss …`).
fn render_outcomes(outcomes: &[HitMiss]) -> String {
    if outcomes.is_empty() {
        return "(no profiled accesses)".to_string();
    }
    outcomes
        .iter()
        .map(|o| o.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Processes one command line and returns the textual response.
///
/// Supported commands: `help`, `level <L1|L2|L3>`, `set <n>`, `slice <n>`,
/// `assoc`, `reps <n>`, `reset <F+R | mbl sequence>`, `cat <ways>`, `stats`,
/// `target`; anything else is treated as an MBL query.
pub fn process_command(session: &mut ReplSession, line: &str) -> String {
    let line = line.trim();
    if line.is_empty() {
        return String::new();
    }
    let mut parts = line.split_whitespace();
    let command = parts.next().expect("non-empty line");
    let rest: Vec<&str> = parts.collect();

    match command {
        "help" => "commands: level <L1|L2|L3>, set <n>, slice <n>, assoc, reps <n>, \
                   reset <F+R|sequence>, cat <ways>, target, stats, or an MBL query"
            .to_string(),
        "level" => match rest.first().and_then(|s| LevelId::parse(s)) {
            Some(level) => {
                session.level = level;
                session.target_dirty = true;
                format!("target level set to {level}")
            }
            None => "usage: level <L1|L2|L3>".to_string(),
        },
        "set" => match rest.first().and_then(|s| s.parse().ok()) {
            Some(set) => {
                session.set = set;
                session.target_dirty = true;
                format!("target set index set to {set}")
            }
            None => "usage: set <index>".to_string(),
        },
        "slice" => match rest.first().and_then(|s| s.parse().ok()) {
            Some(slice) => {
                session.slice = slice;
                session.target_dirty = true;
                format!("target slice set to {slice}")
            }
            None => "usage: slice <index>".to_string(),
        },
        "assoc" => match session.ensure_target() {
            Ok(()) => format!(
                "associativity: {}",
                session.tool.associativity().expect("target just selected")
            ),
            Err(e) => format!("error: {e}"),
        },
        "reps" => match rest.first().and_then(|s| s.parse().ok()) {
            Some(reps) => {
                session.tool.set_repetitions(reps);
                format!(
                    "repetitions set to {}",
                    session.tool.backend().repetitions()
                )
            }
            None => "usage: reps <count>".to_string(),
        },
        "reset" => {
            if rest.is_empty() {
                return "usage: reset <F+R | MBL sequence>".to_string();
            }
            let spec = rest.join(" ");
            let reset = if spec.eq_ignore_ascii_case("f+r") {
                ResetSequence::FlushRefill
            } else {
                ResetSequence::Custom(spec.clone())
            };
            session.tool.set_reset_sequence(reset);
            format!("reset sequence set to {spec}")
        }
        "cat" => match rest.first().and_then(|s| s.parse().ok()) {
            Some(ways) => match session.tool.apply_cat(ways) {
                Ok(()) => {
                    session.target_dirty = true;
                    format!("last-level cache restricted to {ways} ways")
                }
                Err(e) => format!("error: {e}"),
            },
            None => "usage: cat <ways>".to_string(),
        },
        "target" => format!(
            "target: {} set {} slice {}",
            session.level, session.set, session.slice
        ),
        "stats" => {
            let stats = session.tool.stats();
            format!(
                "queries: {} (cache hits: {}), backend queries: {}, loads: {}",
                stats.queries, stats.cache_hits, stats.backend_queries, stats.backend_loads
            )
        }
        _ => {
            // Everything else is an MBL query.
            if let Err(e) = session.ensure_target() {
                return format!("error: {e}");
            }
            match session.tool.query(line) {
                Ok(results) => results
                    .iter()
                    .map(|r| format!("{} -> {}", r.rendered, render_outcomes(&r.outcomes)))
                    .collect::<Vec<_>>()
                    .join("\n"),
                Err(e) => format!("error: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardware::{CpuModel, SimulatedCpu};

    fn session() -> ReplSession {
        let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 3);
        ReplSession::new(CacheQuery::new(cpu))
    }

    #[test]
    fn configures_target_and_runs_queries() {
        let mut s = session();
        assert!(process_command(&mut s, "level L1").contains("L1"));
        assert!(process_command(&mut s, "set 12").contains("12"));
        assert!(process_command(&mut s, "assoc").contains('8'));
        let out = process_command(&mut s, "A B C A?");
        assert!(out.contains("Hit"), "unexpected output: {out}");
    }

    #[test]
    fn figure_1_trace_via_the_repl() {
        let mut s = session();
        process_command(&mut s, "level L2");
        process_command(&mut s, "set 63");
        // A B C A on an empty 4-way set: the first three accesses are not
        // profiled, the re-access of A hits.
        let out = process_command(&mut s, "A B C A?");
        assert!(out.ends_with("Hit"), "unexpected output: {out}");
    }

    #[test]
    fn unknown_levels_and_malformed_numbers_are_reported() {
        let mut s = session();
        assert!(process_command(&mut s, "level L9").contains("usage"));
        assert!(process_command(&mut s, "set x").contains("usage"));
        assert!(process_command(&mut s, "reps").contains("usage"));
    }

    #[test]
    fn stats_and_help_are_available() {
        let mut s = session();
        assert!(process_command(&mut s, "help").contains("MBL"));
        process_command(&mut s, "A?");
        assert!(process_command(&mut s, "stats").contains("queries: 1"));
    }

    #[test]
    fn reset_and_cat_commands() {
        let mut s = session();
        assert!(process_command(&mut s, "reset D C B A @").contains("D C B A @"));
        assert!(process_command(&mut s, "cat 4").contains("4 ways"));
        process_command(&mut s, "level L3");
        assert!(process_command(&mut s, "assoc").contains('4'));
    }

    #[test]
    fn bad_mbl_queries_report_errors() {
        let mut s = session();
        let out = process_command(&mut s, "A (");
        assert!(out.contains("error"), "unexpected output: {out}");
    }
}
