//! Leader-set detection via thrashing queries (Appendix B of the paper).
//!
//! Adaptive last-level caches dedicate a few *leader* sets to fixed policies
//! and let the rest follow the winner.  The paper identifies the leaders by
//! running thrashing access patterns per set: sets that always thrash
//! (≈100 % misses) implement the fixed thrash-vulnerable policy, sets that
//! never thrash implement the fixed thrash-resistant policy, and sets whose
//! behaviour changes with the state of the duel are followers.

use cache::{HitMiss, LevelId};
use mbl::{BlockId, MemOp, Query};

use crate::backend::{BackendError, Target};
use crate::frontend::CacheQuery;

/// Classification of a cache set by the thrashing experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaderClass {
    /// Fixed policy susceptible to thrashing (a primary leader set).
    ThrashVulnerable,
    /// Fixed thrash-resistant policy (an alternate leader set).
    ThrashResistant,
    /// Behaviour changes between the two phases: a follower set.
    Adaptive,
}

/// Per-set measurement of the leader-detection experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderSetInfo {
    /// Set index within the slice.
    pub set: usize,
    /// Slice index.
    pub slice: usize,
    /// Classification.
    pub class: LeaderClass,
    /// Miss rate of the thrashing pattern in the first phase (duel in its
    /// initial state).
    pub miss_rate_initial: f64,
    /// Miss rate after the duel has been driven towards the thrash-resistant
    /// policy.
    pub miss_rate_after_duel: f64,
}

/// Result of [`detect_leader_sets`].
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderReport {
    /// The analysed cache level.
    pub level: LevelId,
    /// One entry per analysed set.
    pub sets: Vec<LeaderSetInfo>,
}

impl LeaderReport {
    /// Sets classified as primary (thrash-vulnerable) leaders.
    pub fn thrash_vulnerable(&self) -> Vec<(usize, usize)> {
        self.sets
            .iter()
            .filter(|s| s.class == LeaderClass::ThrashVulnerable)
            .map(|s| (s.set, s.slice))
            .collect()
    }

    /// Sets classified as alternate (thrash-resistant) leaders.
    pub fn thrash_resistant(&self) -> Vec<(usize, usize)> {
        self.sets
            .iter()
            .filter(|s| s.class == LeaderClass::ThrashResistant)
            .map(|s| (s.set, s.slice))
            .collect()
    }

    /// Sets classified as followers.
    pub fn adaptive(&self) -> Vec<(usize, usize)> {
        self.sets
            .iter()
            .filter(|s| s.class == LeaderClass::Adaptive)
            .map(|s| (s.set, s.slice))
            .collect()
    }

    /// The classification of `(set, slice)`, if it was a candidate.
    pub fn class_of(&self, set: usize, slice: usize) -> Option<LeaderClass> {
        self.sets
            .iter()
            .find(|s| s.set == set && s.slice == slice)
            .map(|s| s.class)
    }
}

/// Tuning of [`detect_leader_sets_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderDetectConfig {
    /// Extra rounds of thrashing the phase-1 "vulnerable" bucket between the
    /// two measurement phases, driving the duel towards the thrash-resistant
    /// policy (primary leaders vote with every miss).
    pub extra_duel_rounds: usize,
    /// Rounds of the *down-drive* disambiguation: when the duel starts out
    /// favouring the thrash-resistant policy, followers are indistinguishable
    /// from alternate leaders in the two main phases (neither thrashes).
    /// Thrashing the resistant bucket makes its alternate leaders vote the
    /// duel back towards the thrash-vulnerable policy, after which a final
    /// re-measurement exposes the followers.  `0` skips the phase (the
    /// pre-existing behaviour, sufficient when the duel starts neutral).
    pub down_drive_rounds: usize,
    /// Rounds of the *up-drive* disambiguation, the mirror image of the
    /// down-drive: a follower measured right after an alternate leader (whose
    /// probe misses vote the duel down) can thrash in both main phases and
    /// masquerade as a primary leader.  Thrashing the vulnerable bucket makes
    /// its primary leaders vote the duel up, after which a re-measurement of
    /// the bucket exposes such followers.  `0` skips the phase.
    pub up_drive_rounds: usize,
}

impl Default for LeaderDetectConfig {
    fn default() -> Self {
        LeaderDetectConfig {
            extra_duel_rounds: 2,
            down_drive_rounds: 4,
            up_drive_rounds: 4,
        }
    }
}

/// Miss-rate threshold above which a phase counts as "thrashing".
const THRASH_THRESHOLD: f64 = 0.75;
/// Number of working-set rounds before the profiled round.
const WARMUP_ROUNDS: usize = 3;

/// Builds the thrashing query: a working set of `assoc + 1` blocks accessed
/// cyclically, with the last round profiled.
fn thrashing_query(assoc: usize) -> Query {
    let working_set = assoc + 1;
    let mut query = Vec::new();
    for round in 0..=WARMUP_ROUNDS {
        for b in 0..working_set {
            let op = if round == WARMUP_ROUNDS {
                MemOp::profiled(BlockId(b as u32))
            } else {
                MemOp::access(BlockId(b as u32))
            };
            query.push(op);
        }
    }
    query
}

fn miss_rate(outcomes: &[HitMiss]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().filter(|&&o| o == HitMiss::Miss).count() as f64 / outcomes.len() as f64
}

/// Measures the thrashing miss rate of one target set.
fn thrash_rate(cq: &mut CacheQuery, target: Target) -> Result<f64, BackendError> {
    cq.set_target(target)?;
    let assoc = cq.associativity()?;
    let query = thrashing_query(assoc);
    let outcome = cq.run_query(&query)?;
    Ok(miss_rate(&outcome.outcomes))
}

/// Runs the two-phase leader-set detection experiment of Appendix B on the
/// given `(set, slice)` pairs of `level`.
///
/// Phase 1 measures the thrashing miss rate of every candidate set.  The
/// thrashing itself pushes the policy-selection counter towards the
/// thrash-resistant policy (every miss in a primary leader votes against it),
/// after which phase 2 re-measures all candidates.  Sets that thrash in both
/// phases are fixed thrash-vulnerable leaders, sets that never thrash are
/// fixed thrash-resistant leaders, and sets whose behaviour flips are
/// followers.
///
/// # Errors
///
/// Propagates backend errors (invalid sets, address-selection failures).
pub fn detect_leader_sets(
    cq: &mut CacheQuery,
    level: LevelId,
    candidates: &[(usize, usize)],
    extra_duel_rounds: usize,
) -> Result<LeaderReport, BackendError> {
    detect_leader_sets_with(
        cq,
        level,
        candidates,
        &LeaderDetectConfig {
            extra_duel_rounds,
            down_drive_rounds: 0,
            up_drive_rounds: 0,
        },
    )
}

/// [`detect_leader_sets`] with explicit tuning — in particular the
/// *down-drive* disambiguation phase that makes detection correct from an
/// arbitrary initial duel (PSEL) state, which is what the cartography
/// campaign relies on.
///
/// # Errors
///
/// Propagates backend errors (invalid sets, address-selection failures).
pub fn detect_leader_sets_with(
    cq: &mut CacheQuery,
    level: LevelId,
    candidates: &[(usize, usize)],
    config: &LeaderDetectConfig,
) -> Result<LeaderReport, BackendError> {
    // Response caching would make phase 2 return phase-1 answers.
    cq.enable_cache(false);

    let mut initial = Vec::with_capacity(candidates.len());
    for &(set, slice) in candidates {
        initial.push(thrash_rate(cq, Target::new(level, set, slice))?);
    }

    // Drive the duel further towards the thrash-resistant policy by thrashing
    // the candidates that looked vulnerable in phase 1 (leaders among them
    // vote with every miss).
    for _round in 0..config.extra_duel_rounds {
        for (i, &(set, slice)) in candidates.iter().enumerate() {
            if initial[i] >= THRASH_THRESHOLD {
                let _ = thrash_rate(cq, Target::new(level, set, slice))?;
            }
        }
    }

    let mut sets = Vec::with_capacity(candidates.len());
    for (i, &(set, slice)) in candidates.iter().enumerate() {
        let after = thrash_rate(cq, Target::new(level, set, slice))?;
        let class = match (initial[i] >= THRASH_THRESHOLD, after >= THRASH_THRESHOLD) {
            (true, true) => LeaderClass::ThrashVulnerable,
            (false, false) => LeaderClass::ThrashResistant,
            _ => LeaderClass::Adaptive,
        };
        sets.push(LeaderSetInfo {
            set,
            slice,
            class,
            miss_rate_initial: initial[i],
            miss_rate_after_duel: after,
        });
    }

    // Down-drive disambiguation: a duel that already favoured the
    // thrash-resistant policy when phase 1 ran makes followers look exactly
    // like alternate leaders (neither bucket ever thrashed).  Thrash the
    // resistant bucket — only its alternate leaders vote, pushing the duel
    // back towards the thrash-vulnerable policy — then re-measure it: sets
    // that now thrash were following the duel all along.
    if config.down_drive_rounds > 0 {
        let resistant: Vec<usize> = sets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.class == LeaderClass::ThrashResistant)
            .map(|(i, _)| i)
            .collect();
        if !resistant.is_empty() {
            for _round in 0..config.down_drive_rounds {
                for &i in &resistant {
                    let info = &sets[i];
                    let _ = thrash_rate(cq, Target::new(level, info.set, info.slice))?;
                }
            }
            for &i in &resistant {
                let (set, slice) = (sets[i].set, sets[i].slice);
                let rate = thrash_rate(cq, Target::new(level, set, slice))?;
                if rate >= THRASH_THRESHOLD {
                    sets[i].class = LeaderClass::Adaptive;
                    sets[i].miss_rate_after_duel = rate;
                }
            }
        }
    }

    // Up-drive disambiguation, the mirror image: a follower whose two main
    // measurements both ran while the duel happened to favour the
    // thrash-vulnerable policy (e.g. right after an alternate leader's probe
    // voted the duel down) thrashes twice and masquerades as a primary
    // leader.  Thrash the vulnerable bucket — its primary leaders vote the
    // duel up with every miss — then re-measure it: sets that now resist
    // were following the duel all along.  The re-measurement itself is
    // stable, because no set of the vulnerable bucket votes downwards.
    if config.up_drive_rounds > 0 {
        let vulnerable: Vec<usize> = sets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.class == LeaderClass::ThrashVulnerable)
            .map(|(i, _)| i)
            .collect();
        if !vulnerable.is_empty() {
            for _round in 0..config.up_drive_rounds {
                for &i in &vulnerable {
                    let info = &sets[i];
                    let _ = thrash_rate(cq, Target::new(level, info.set, info.slice))?;
                }
            }
            for &i in &vulnerable {
                let (set, slice) = (sets[i].set, sets[i].slice);
                let rate = thrash_rate(cq, Target::new(level, set, slice))?;
                if rate < THRASH_THRESHOLD {
                    sets[i].class = LeaderClass::Adaptive;
                    sets[i].miss_rate_after_duel = rate;
                }
            }
        }
    }

    cq.enable_cache(true);
    Ok(LeaderReport { level, sets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardware::{CpuModel, SimulatedCpu};
    use mbl::render_query;

    #[test]
    fn thrashing_query_has_the_right_shape() {
        let q = thrashing_query(4);
        assert_eq!(q.len(), 5 * (WARMUP_ROUNDS + 1));
        // Only the last round is profiled.
        let profiled = q.iter().filter(|op| op.tag.is_some()).count();
        assert_eq!(profiled, 5);
        assert!(render_query(&q).starts_with("A B C D E A B C D E"));
    }

    #[test]
    fn miss_rate_is_a_fraction() {
        assert_eq!(miss_rate(&[]), 0.0);
        assert_eq!(miss_rate(&[HitMiss::Miss, HitMiss::Hit]), 0.5);
    }

    #[test]
    fn detects_skylake_style_leaders_on_the_simulated_l3() {
        let cpu = SimulatedCpu::new(CpuModel::SkylakeI5_6500, 11);
        let mut cq = CacheQuery::new(cpu);
        cq.apply_cat(4).unwrap();
        // Candidate sets: two known primary leaders (0 and 33, Table 4) and
        // two ordinary follower sets.
        let candidates = [(0, 0), (33, 0), (1, 0), (7, 0)];
        let report = detect_leader_sets(&mut cq, LevelId::L3, &candidates, 2).unwrap();
        let vulnerable = report.thrash_vulnerable();
        assert!(
            vulnerable.contains(&(0, 0)),
            "set 0 should be a leader: {report:?}"
        );
        assert!(
            vulnerable.contains(&(33, 0)),
            "set 33 should be a leader: {report:?}"
        );
        assert!(
            !vulnerable.contains(&(1, 0)) && !vulnerable.contains(&(7, 0)),
            "follower sets misclassified as leaders: {report:?}"
        );
    }
}
