//! The on-disk format of the durable [`QueryStore`](crate::QueryStore): an
//! append-only record log plus compacted snapshots.
//!
//! The paper's frontend memoizes answers in LevelDB (§4.2) so month-long
//! hardware campaigns survive restarts.  This module is the std-only
//! equivalent — two files inside the store directory:
//!
//! * **`store.log`** — an append-only sequence of framed records.  Each
//!   record is `[u32 LE payload length][u32 LE FNV-1a checksum][payload]`;
//!   the payload is one line of the store's tab-separated export format
//!   (`namespace \t pattern \t rendered query`).  Records are appended by
//!   one writer thread as queries are recorded, so a crash loses at most
//!   the unsynced tail.
//! * **`store.snap`** — a compacted snapshot: the full plain-text
//!   [`export`](crate::QueryStore::export) of the store, written atomically
//!   (temp file + fsync + rename) whenever the log grows past the
//!   compaction threshold and on graceful shutdown.  After a snapshot the
//!   log is truncated to zero.
//!
//! Startup replays **snapshot first, then log**: the snapshot holds
//! everything compacted so far, the log holds everything since.  Because
//! re-recording an already-stored answer is a no-op (tries are
//! prefix-consistent), records that ended up in both files are harmless.
//!
//! Recovery is prefix-honest: [`decode_log`] walks records in order and
//! stops at the first frame that is short, oversized, fails its checksum or
//! is not UTF-8 — everything before the cut is recovered, nothing after a
//! corruption is trusted, and the caller truncates the log back to the last
//! valid boundary so the next append starts clean.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File name of the append-only record log inside a store directory.
pub const LOG_FILE: &str = "store.log";

/// File name of the compacted snapshot inside a store directory.
pub const SNAP_FILE: &str = "store.snap";

/// Scratch name the snapshot is written under before the atomic rename.
const SNAP_TMP: &str = "store.snap.tmp";

/// Upper bound on one record's payload, in bytes.  A length prefix above
/// this is treated as corruption (a truncated header read as garbage), not
/// as a gigantic record.
pub const MAX_RECORD_LEN: u32 = 1 << 20;

/// 32-bit FNV-1a over the payload — cheap, dependency-free, and plenty to
/// catch torn writes and bit rot in a length-prefixed log.
pub fn checksum(payload: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &byte in payload {
        hash ^= u32::from(byte);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Frames one payload as a log record: `[len][checksum][payload]`.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&checksum(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Decodes a log image into its valid record payloads.
///
/// Returns `(payloads, valid_end)` where `valid_end` is the byte offset just
/// past the last intact record: the prefix `bytes[..valid_end]` is exactly
/// the recoverable part of the log, and the caller should truncate the file
/// to it before appending again.  Decoding stops — never panics — at the
/// first truncated header, truncated payload, oversized length, checksum
/// mismatch or non-UTF-8 payload.
pub fn decode_log(bytes: &[u8]) -> (Vec<String>, usize) {
    let mut payloads = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        if rest.len() < 8 {
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let sum = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_LEN {
            break;
        }
        let len = len as usize;
        if rest.len() < 8 + len {
            break;
        }
        let payload = &rest[8..8 + len];
        if checksum(payload) != sum {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        payloads.push(text.to_string());
        offset += 8 + len;
    }
    (payloads, offset)
}

/// Path of the record log inside `dir`.
pub fn log_path(dir: &Path) -> PathBuf {
    dir.join(LOG_FILE)
}

/// Path of the compacted snapshot inside `dir`.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAP_FILE)
}

/// Reads and decodes the record log of `dir`.
///
/// Returns the recovered payloads and the valid byte length (see
/// [`decode_log`]); a missing log reads as empty.
///
/// # Errors
///
/// Propagates I/O errors other than the log not existing.
pub fn read_log(dir: &Path) -> io::Result<(Vec<String>, u64)> {
    let bytes = match fs::read(log_path(dir)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let (payloads, valid_end) = decode_log(&bytes);
    Ok((payloads, valid_end as u64))
}

/// Truncates the record log of `dir` to `len` bytes — discarding the
/// unrecoverable tail after a crash so the next append starts at a record
/// boundary.  A missing log is fine when `len` is zero.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn truncate_log(dir: &Path, len: u64) -> io::Result<()> {
    match OpenOptions::new().write(true).open(log_path(dir)) {
        Ok(file) => {
            file.set_len(len)?;
            file.sync_data()
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound && len == 0 => Ok(()),
        Err(e) => Err(e),
    }
}

/// Opens (creating if needed) the record log of `dir` for appending.
///
/// # Errors
///
/// Propagates I/O errors (including a non-creatable directory).
pub fn open_log_for_append(dir: &Path) -> io::Result<File> {
    fs::create_dir_all(dir)?;
    OpenOptions::new()
        .create(true)
        .append(true)
        .open(log_path(dir))
}

/// Reads the compacted snapshot of `dir`, `None` when there is none yet.
///
/// # Errors
///
/// Propagates I/O errors other than the snapshot not existing.
pub fn read_snapshot(dir: &Path) -> io::Result<Option<String>> {
    match fs::read_to_string(snapshot_path(dir)) {
        Ok(text) => Ok(Some(text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Writes `text` as the compacted snapshot of `dir`, atomically: the bytes
/// go to a temp file, are fsynced, and replace the previous snapshot in one
/// rename, so a crash mid-snapshot leaves the old snapshot intact.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_snapshot(dir: &Path, text: &str) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let tmp = dir.join(SNAP_TMP);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_data()?;
    }
    fs::rename(&tmp, snapshot_path(dir))?;
    // Make the rename itself durable where the platform allows syncing a
    // directory handle; failure here only risks replaying the previous
    // snapshot plus the log, which is still a consistent state.
    if let Ok(dir_handle) = File::open(dir) {
        let _ = dir_handle.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_the_frame() {
        let lines = ["ns\tHM\tA B? C?", "other ns\tH\tX?"];
        let mut log = Vec::new();
        for line in lines {
            log.extend_from_slice(&encode_record(line.as_bytes()));
        }
        let (decoded, valid_end) = decode_log(&log);
        assert_eq!(decoded, lines);
        assert_eq!(valid_end, log.len());
    }

    #[test]
    fn truncated_tails_are_dropped_not_misread() {
        let first = encode_record(b"ns\tH\tA?");
        let second = encode_record(b"ns\tM\tB?");
        let mut log = first.clone();
        log.extend_from_slice(&second);
        // Cut anywhere strictly inside the second record: only the first
        // survives, and the valid prefix ends exactly at its boundary.
        for cut in first.len()..log.len() {
            let (decoded, valid_end) = decode_log(&log[..cut]);
            assert_eq!(decoded.len(), 1, "cut at {cut}");
            assert_eq!(valid_end, first.len(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupted_payloads_fail_the_checksum() {
        let mut log = encode_record(b"ns\tH\tA?");
        let last = log.len() - 1;
        log[last] ^= 0x01;
        let (decoded, valid_end) = decode_log(&log);
        assert!(decoded.is_empty());
        assert_eq!(valid_end, 0);
    }

    #[test]
    fn oversized_length_prefixes_are_treated_as_corruption() {
        let mut log = Vec::new();
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&[0u8; 100]);
        let (decoded, valid_end) = decode_log(&log);
        assert!(decoded.is_empty());
        assert_eq!(valid_end, 0);
    }

    #[test]
    fn snapshot_write_is_atomic_and_readable() {
        let dir = std::env::temp_dir().join(format!(
            "cq_persist_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(read_snapshot(&dir).unwrap(), None);
        write_snapshot(&dir, "ns\tH\tA?\n").unwrap();
        assert_eq!(read_snapshot(&dir).unwrap().as_deref(), Some("ns\tH\tA?\n"));
        write_snapshot(&dir, "ns\tM\tB?\n").unwrap();
        assert_eq!(read_snapshot(&dir).unwrap().as_deref(), Some("ns\tM\tB?\n"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn log_files_survive_the_read_truncate_append_cycle() {
        let dir = std::env::temp_dir().join(format!(
            "cq_persist_log_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(read_log(&dir).unwrap(), (Vec::new(), 0));
        truncate_log(&dir, 0).unwrap();

        let mut log = open_log_for_append(&dir).unwrap();
        log.write_all(&encode_record(b"ns\tH\tA?")).unwrap();
        log.write_all(&encode_record(b"ns\tM\tB?")).unwrap();
        // A torn third record…
        log.write_all(&encode_record(b"ns\tM\tC?")[..5]).unwrap();
        log.sync_data().unwrap();
        drop(log);

        let (records, valid) = read_log(&dir).unwrap();
        assert_eq!(records, vec!["ns\tH\tA?", "ns\tM\tB?"]);
        truncate_log(&dir, valid).unwrap();

        // …is healed by the truncate: the next append continues cleanly.
        let mut log = open_log_for_append(&dir).unwrap();
        log.write_all(&encode_record(b"ns\tM\tC?")).unwrap();
        drop(log);
        let (records, _) = read_log(&dir).unwrap();
        assert_eq!(records, vec!["ns\tH\tA?", "ns\tM\tB?", "ns\tM\tC?"]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
