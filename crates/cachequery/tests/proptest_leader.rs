//! Property-based tests of leader-set detection: for planted role layouts —
//! the published Skylake/Haswell selection functions as well as arbitrary
//! random layouts — under random machine seeds and random initial PSEL
//! states, [`detect_leader_sets_with`] must recover the exact planted role
//! of every candidate set.
//!
//! The candidate list always covers the planted leaders: the disambiguation
//! phases work by making leaders *vote* the duel in a known direction, so a
//! sweep that skips every leader of one class has no way to move the duel —
//! exactly like the real experiment, which sweeps the whole cache.

use proptest::prelude::*;

use cache::{skylake_like_roles, CacheGeometry, DuelingRole, LevelId};
use cachequery::{detect_leader_sets_with, CacheQuery, LeaderClass, LeaderDetectConfig};
use hardware::{CpuModel, CpuSpec, LevelPolicy, LevelSpec, SimulatedCpu};
use policies::PolicyKind;

/// Sets of the planted adaptive L3 — small enough that one detection run is
/// milliseconds, large enough for the Skylake selection function to plant
/// two leaders of each class (0/33 primary, 31/62 alternate).
const L3_SETS: usize = 64;

/// A small three-level CPU whose adaptive L3 uses the given role layout.
fn planted_spec(roles: Vec<DuelingRole>) -> CpuSpec {
    const LINE: u64 = 64;
    CpuSpec {
        name: "planted (test)",
        supports_cat: true,
        levels: vec![
            LevelSpec {
                level: LevelId::L1,
                geometry: CacheGeometry::new(2, 8, 1, LINE),
                policy: LevelPolicy::Fixed(PolicyKind::Plru),
                inclusive: false,
            },
            LevelSpec {
                level: LevelId::L2,
                geometry: CacheGeometry::new(4, 16, 1, LINE),
                policy: LevelPolicy::Fixed(PolicyKind::New1),
                inclusive: false,
            },
            LevelSpec {
                level: LevelId::L3,
                geometry: CacheGeometry::new(4, L3_SETS, 1, LINE),
                policy: LevelPolicy::Adaptive { roles },
                inclusive: true,
            },
        ],
    }
}

fn expected_class(role: DuelingRole) -> LeaderClass {
    match role {
        DuelingRole::LeaderPrimary => LeaderClass::ThrashVulnerable,
        DuelingRole::LeaderAlternate => LeaderClass::ThrashResistant,
        DuelingRole::Follower => LeaderClass::Adaptive,
    }
}

/// Runs detection on `candidates` of a machine with the planted `roles`,
/// after forcing the initial PSEL, and asserts every candidate's recovered
/// class matches its planted role.
fn assert_layout_recovered(
    roles: &[DuelingRole],
    seed: u64,
    initial_psel: i32,
    candidates: &[usize],
    config: &LeaderDetectConfig,
) -> Result<(), TestCaseError> {
    let cpu = SimulatedCpu::new_planted(roles, seed);
    let mut cq = CacheQuery::new(cpu);
    cq.backend()
        .cpu()
        .l3_dueling()
        .expect("the planted L3 is adaptive")
        .force_psel(initial_psel);
    let pairs: Vec<(usize, usize)> = candidates.iter().map(|&s| (s, 0)).collect();
    let report = detect_leader_sets_with(&mut cq, LevelId::L3, &pairs, config)
        .expect("detection runs on the planted machine");
    for info in &report.sets {
        let planted = roles[info.set];
        prop_assert_eq!(
            info.class,
            expected_class(planted),
            "set {} (planted {:?}, psel {}, seed {}): {:?}",
            info.set,
            planted,
            initial_psel,
            seed,
            info
        );
    }
    Ok(())
}

/// Convenience constructor used by the assertions above.
trait Planted {
    fn new_planted(roles: &[DuelingRole], seed: u64) -> SimulatedCpu;
}

impl Planted for SimulatedCpu {
    fn new_planted(roles: &[DuelingRole], seed: u64) -> SimulatedCpu {
        SimulatedCpu::with_spec(CpuModel::SkylakeI5_6500, planted_spec(roles.to_vec()), seed)
    }
}

/// Initial PSEL states the *default* drive rounds are sized for.  The drives
/// move the counter by a bounded number of leader votes per round, so a
/// counter planted at saturation (±511 for 10 bits) needs proportionally
/// more rounds — which `saturated_psel_recovery_with_generous_drive_rounds`
/// pins.
fn moderate_psel() -> impl Strategy<Value = i32> {
    (0u32..=192).prop_map(|v| v as i32 - 96)
}

/// A random role layout over [`L3_SETS`] sets with at least one leader of
/// each class: `(primary, alternate, follower-noise)` — the two leader
/// indices are distinct by construction.
fn random_layout() -> impl Strategy<Value = Vec<DuelingRole>> {
    (
        0usize..L3_SETS,
        0usize..L3_SETS - 1,
        proptest::collection::vec(0u8..=16, L3_SETS),
    )
        .prop_map(|(primary, alt_raw, noise)| {
            let alternate = if alt_raw == primary {
                L3_SETS - 1
            } else {
                alt_raw
            };
            let mut roles: Vec<DuelingRole> = noise
                .into_iter()
                .map(|n| match n {
                    // Mostly followers, with a sprinkle of extra leaders.
                    0 => DuelingRole::LeaderPrimary,
                    1 => DuelingRole::LeaderAlternate,
                    _ => DuelingRole::Follower,
                })
                .collect();
            roles[primary] = DuelingRole::LeaderPrimary;
            roles[alternate] = DuelingRole::LeaderAlternate;
            roles
        })
}

/// Candidate sample: all planted leaders (the voters the drives rely on)
/// plus a handful of followers picked by index.
fn candidates_for(roles: &[DuelingRole], picks: &[usize]) -> Vec<usize> {
    let mut candidates: Vec<usize> = roles
        .iter()
        .enumerate()
        .filter(|(_, &r)| r != DuelingRole::Follower)
        .map(|(i, _)| i)
        .collect();
    for &p in picks {
        let follower = p % L3_SETS;
        if roles[follower] == DuelingRole::Follower && !candidates.contains(&follower) {
            candidates.push(follower);
        }
    }
    candidates
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Skylake-style selection function is recovered exactly for any
    /// machine seed, any moderate initial duel state, and any follower
    /// sample.
    #[test]
    fn planted_skylake_layout_is_recovered(
        seed in 0u64..1000,
        psel in moderate_psel(),
        picks in proptest::collection::vec(0usize..L3_SETS, 1..5),
    ) {
        let roles = skylake_like_roles(L3_SETS, 1);
        let candidates = candidates_for(&roles, &picks);
        assert_layout_recovered(&roles, seed, psel, &candidates, &LeaderDetectConfig::default())?;
    }

    /// A Haswell-style layout — contiguous leader blocks, like the published
    /// selection restricted to slice 0 — is recovered exactly.
    #[test]
    fn planted_haswell_style_layout_is_recovered(
        seed in 0u64..1000,
        psel in moderate_psel(),
        picks in proptest::collection::vec(0usize..L3_SETS, 1..5),
    ) {
        // The published function plants 64-set blocks at 512 and 768 of a
        // 2048-set slice; scaled to the small planted L3 the blocks are
        // 16–23 (primary) and 40–47 (alternate).
        let mut roles = vec![DuelingRole::Follower; L3_SETS];
        roles[16..24].fill(DuelingRole::LeaderPrimary);
        roles[40..48].fill(DuelingRole::LeaderAlternate);
        let candidates = candidates_for(&roles, &picks);
        assert_layout_recovered(&roles, seed, psel, &candidates, &LeaderDetectConfig::default())?;
    }

    /// Arbitrary random layouts (with at least one leader of each class) are
    /// recovered exactly.
    #[test]
    fn random_planted_layouts_are_recovered(
        roles in random_layout(),
        seed in 0u64..1000,
        psel in moderate_psel(),
        picks in proptest::collection::vec(0usize..L3_SETS, 1..5),
    ) {
        let candidates = candidates_for(&roles, &picks);
        assert_layout_recovered(&roles, seed, psel, &candidates, &LeaderDetectConfig::default())?;
    }
}

/// A duel planted at *saturation* is beyond the default drive budget by
/// design; generously sized drive rounds recover the layout even from the
/// counter's extremes.
#[test]
fn saturated_psel_recovery_with_generous_drive_rounds() {
    let roles = skylake_like_roles(L3_SETS, 1);
    let candidates = candidates_for(&roles, &[1, 7, 40]);
    let config = LeaderDetectConfig {
        extra_duel_rounds: 2,
        down_drive_rounds: 48,
        up_drive_rounds: 48,
    };
    for psel in [-511, 511] {
        assert_layout_recovered(&roles, 7, psel, &candidates, &config)
            .expect("saturated duel states must still be recoverable");
    }
}
