//! Property-based tests of the noise-robustness layer: for random fault
//! rates up to 10% and random short MBL expansions, the voted engine answer
//! over a fault-injecting backend equals the fault-free backend answer, and
//! the shared store never records a contradicted entry.
//!
//! The inner backend is a miniature policy-set simulation (the same shape as
//! `polca::PolicySimBackend`, rebuilt here because `polca` sits above this
//! crate), so the reference answers are exact and the only nondeterminism in
//! the whole test is the seeded fault stream.

use cache::{Block, CacheSet, HitMiss, LevelId};
use cachequery::{
    BackendError, NoiseSpec, NoisyBackend, QueryBackend, QueryConfig, QueryEngine, Target,
};
use mbl::{expand_query, render_query, BlockId, MemOp, Query, Tag};
use policies::PolicyKind;
use proptest::prelude::*;

/// A deterministic cache-set backend running a named replacement policy from
/// the canonical initial state, answering every query exactly.
#[derive(Debug, Clone)]
struct MiniSimBackend {
    kind: PolicyKind,
    template: CacheSet,
}

impl MiniSimBackend {
    fn new(kind: PolicyKind, associativity: usize) -> Self {
        let policy = kind.build(associativity).expect("supported associativity");
        let template = CacheSet::filled(policy, (0..associativity as u64).map(Block::new));
        MiniSimBackend { kind, template }
    }
}

impl QueryBackend for MiniSimBackend {
    fn execute(&mut self, query: &Query) -> Result<(Vec<HitMiss>, bool), BackendError> {
        let mut set = self.template.clone();
        let mut outcomes = Vec::new();
        for op in query {
            let block = Block::new(u64::from(op.block.0));
            match op.tag {
                Some(Tag::Invalidate) => {
                    set.invalidate(block);
                }
                tag => {
                    let outcome = set.access(block).outcome();
                    if tag == Some(Tag::Profile) {
                        outcomes.push(outcome);
                    }
                }
            }
        }
        Ok((outcomes, true))
    }

    fn config(&self) -> Result<QueryConfig, BackendError> {
        Ok(QueryConfig {
            backend: format!("minisim:{}@{}", self.kind, self.template.associativity()),
            reset: "cc0".to_string(),
            reps: 1,
            target: Target::new(LevelId::L1, 0, 0),
        })
    }

    fn associativity(&self) -> Result<usize, BackendError> {
        Ok(self.template.associativity())
    }
}

/// Repetition count of the voted runs: high enough that a wrong majority at
/// 10% fault rates is out of reach of 64 seeded cases.
const TEST_REPS: usize = 21;

fn noise_strategy() -> impl Strategy<Value = NoiseSpec> {
    (0u32..=100, 0u32..=100, 0u32..=100, 0u64..1_000_000).prop_map(
        |(flip_permille, drop_permille, evict_permille, seed)| NoiseSpec {
            flip_permille,
            drop_permille,
            evict_permille,
            seed,
        },
    )
}

/// A random short MBL expression: a handful of concrete ops (blocks A–F,
/// tagged or plain), optionally ending in the `_?` wildcard so some
/// expressions expand to a whole batch of concrete queries.
fn mbl_strategy() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec((0u32..6, 0usize..4), 1..7),
        0u8..2,
    )
        .prop_map(|(ops, wildcard)| {
            let wildcard = wildcard == 1;
            let query: Query = ops
                .into_iter()
                .map(|(block, tag)| match tag {
                    0 => MemOp::profiled(BlockId(block)),
                    1 => MemOp::invalidate(BlockId(block)),
                    _ => MemOp::access(BlockId(block)),
                })
                .collect();
            let mut rendered = render_query(&query);
            if wildcard {
                rendered.push_str(" _?");
            }
            rendered
        })
}

fn policy_strategy() -> impl Strategy<Value = (PolicyKind, usize)> {
    proptest::sample::select(vec![
        (PolicyKind::Lru, 4),
        (PolicyKind::Fifo, 4),
        (PolicyKind::Plru, 4),
        (PolicyKind::SrripHp, 2),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: whatever faults are injected (any combination
    /// of flips, drops and spurious evictions at rates ≤ 10%), the voted
    /// engine answer equals the fault-free backend answer — and nothing
    /// contradictory is ever committed to the store.
    #[test]
    fn voted_answers_equal_the_fault_free_answers(
        (kind, assoc) in policy_strategy(),
        noise in noise_strategy(),
        exprs in proptest::collection::vec(mbl_strategy(), 1..5),
    ) {
        let mut clean = MiniSimBackend::new(kind, assoc);
        let noisy = NoisyBackend::new(clean.clone(), noise).with_repetitions(TEST_REPS);
        let mut engine = QueryEngine::new(noisy);

        let mut voted_queries = 0u64;
        for expr in &exprs {
            let expanded = expand_query(expr, assoc).expect("generated MBL is well-formed");
            let reference = clean.execute_batch(&expanded).expect("exact simulation");
            let answers = engine.query_mbl(expr).expect("noisy engine answers");
            prop_assert_eq!(answers.len(), reference.len());
            for (answer, (expected, _)) in answers.iter().zip(&reference) {
                if !answer.from_cache {
                    voted_queries += 1;
                }
                prop_assert_eq!(
                    &answer.outcomes, expected,
                    "voting failed to recover '{}' under {:?}", answer.rendered, noise
                );
            }
        }

        // Only agreed results were committed: replaying every expression is
        // served from the store with the same (correct) answers.
        for expr in &exprs {
            for answer in engine.query_mbl(expr).expect("replay") {
                prop_assert!(answer.from_cache, "settled answers must be memoized");
            }
        }
        prop_assert_eq!(
            engine.store().conflicts(), 0,
            "a voted result contradicted the store"
        );
        let votes = engine.store().vote_stats();
        prop_assert_eq!(votes.voted, voted_queries);
        prop_assert_eq!(votes.unsettled, 0, "a vote failed to settle at 10% rates");
    }

    /// The voting layer is what the property above exercises: with voting
    /// disabled and real fault rates, corrupted answers do reach the caller.
    #[test]
    fn without_voting_faults_reach_the_caller(seed in 0u64..1000) {
        let clean = MiniSimBackend::new(PolicyKind::Lru, 4);
        let noisy = NoisyBackend::new(clean, NoiseSpec::flips(400, seed));
        let mut engine = QueryEngine::new(noisy);
        engine.set_vote_config(cachequery::VoteConfig::disabled());
        engine.set_memoize(false);
        // 20 executions of a 4-access probe at a 40% flip rate: the odds of
        // not seeing a single flip are (0.6)^80 ≈ 10^-18.
        let q = &expand_query("A? B? C? D?", 4).unwrap()[0];
        let reference = engine.run(q).unwrap().outcomes.clone();
        let mut saw_disagreement = false;
        for _ in 0..20 {
            if engine.run(q).unwrap().outcomes != reference {
                saw_disagreement = true;
                break;
            }
        }
        prop_assert!(saw_disagreement, "faults never surfaced without voting");
    }
}
