//! Property-based crash-recovery tests for the durable store's record log:
//! cutting the log at *any* byte offset — or flipping any single byte —
//! must recover exactly the intact record prefix, never panic, and never
//! invent or corrupt an answer.
//!
//! The first two properties exercise the frame decoder directly; the third
//! drives a real [`QueryStore`] through record → flush → truncate → reopen
//! and checks that the reopened store serves exactly the surviving prefix
//! of answers and heals the log back to a record boundary.

use std::sync::atomic::{AtomicUsize, Ordering};

use cache::HitMiss;
use cachequery::{persist, QueryStore};
use mbl::expand_query;
use proptest::prelude::*;

/// Payload strategy that loves frame-hostile content: empty strings, tabs,
/// newlines, NULs, multi-byte UTF-8 and plain export-looking lines.
fn payload() -> impl Strategy<Value = String> {
    let ch = prop_oneof![
        Just('a'),
        Just('Z'),
        Just('0'),
        Just(' '),
        Just('\t'),
        Just('\n'),
        Just('\0'),
        Just('?'),
        Just('ü'),
        Just('🦀'),
    ];
    proptest::collection::vec(ch, 0..20).prop_map(|chars| chars.into_iter().collect())
}

/// Frames `payloads` into a log image and returns the image plus the byte
/// offset where each record's frame ends.
fn build_log(payloads: &[String]) -> (Vec<u8>, Vec<usize>) {
    let mut log = Vec::new();
    let mut ends = Vec::new();
    for payload in payloads {
        log.extend_from_slice(&persist::encode_record(payload.as_bytes()));
        ends.push(log.len());
    }
    (log, ends)
}

proptest! {
    /// Cutting the log anywhere recovers exactly the records whose frames
    /// lie entirely before the cut, and reports the valid prefix length as
    /// exactly the last surviving record boundary.
    #[test]
    fn any_truncation_recovers_the_exact_record_prefix(
        payloads in proptest::collection::vec(payload(), 0..8),
        cut_permille in 0u32..=1000,
    ) {
        let (log, ends) = build_log(&payloads);
        let cut = (log.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        let (decoded, valid_end) = persist::decode_log(&log[..cut]);
        let survivors = ends.iter().filter(|&&end| end <= cut).count();
        prop_assert_eq!(decoded.len(), survivors);
        prop_assert_eq!(&decoded[..], &payloads[..survivors]);
        let expected_end = if survivors == 0 { 0 } else { ends[survivors - 1] };
        prop_assert_eq!(valid_end, expected_end);
    }

    /// Flipping any single byte never yields a record that differs from the
    /// original stream: decoding still returns a clean prefix of the
    /// original payloads, cut no later than the damaged frame.
    #[test]
    fn a_flipped_byte_never_corrupts_recovered_records(
        payloads in proptest::collection::vec(payload(), 1..8),
        flip_permille in 0u32..1000,
        flip_bit in 0u32..8,
    ) {
        let (mut log, ends) = build_log(&payloads);
        let flip = (log.len() as u64 * u64::from(flip_permille) / 1000) as usize;
        let flip = flip.min(log.len() - 1);
        log[flip] ^= 1 << flip_bit;
        let (decoded, valid_end) = persist::decode_log(&log);
        // Records strictly before the damaged frame must all survive…
        let intact = ends.iter().filter(|&&end| end <= flip).count();
        prop_assert!(decoded.len() >= intact);
        // …and nothing recovered may differ from what was written.
        prop_assert_eq!(&decoded[..], &payloads[..decoded.len()]);
        prop_assert!(valid_end <= log.len());
    }
}

/// Gives every proptest case its own store directory.
fn case_dir() -> std::path::PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("cq_proptest_persist_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Prefix-consistent oracle: the outcome of a profiled access depends only
/// on the accessed block, so any two queries sharing a prefix agree on it.
fn oracle(mbl: &str) -> Vec<HitMiss> {
    mbl.split_whitespace()
        .map(|op| {
            if op.bytes().next().unwrap_or(b'A') % 2 == 0 {
                HitMiss::Hit
            } else {
                HitMiss::Miss
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end crash recovery: record a batch of answers durably, cut
    /// the log file at an arbitrary byte offset (a simulated torn write),
    /// and reopen.  The reopened store must come up without panicking,
    /// serve every answer whose record survived the cut, and truncate the
    /// log back to the last record boundary.
    #[test]
    fn a_store_reopened_over_a_truncated_log_serves_the_surviving_prefix(
        picks in proptest::collection::vec((0usize..4, 1usize..=3), 1..6),
        cut_permille in 0u32..=1000,
    ) {
        const NS: &str = "skylake seed=7 cat=- reset=F+R reps=3 L1 set=0 slice=0";
        let dir = case_dir();

        // Record a deterministic, prefix-consistent batch of answers.
        let blocks = ["A?", "B?", "C?", "D?"];
        let mbls: Vec<String> = picks
            .iter()
            .map(|&(start, len)| {
                (0..len)
                    .map(|i| blocks[(start + i) % blocks.len()])
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        {
            let store = QueryStore::open(&dir).unwrap();
            for mbl in &mbls {
                let query = expand_query(mbl, 8).unwrap().pop().unwrap();
                prop_assert!(store.record(NS, &query, &oracle(mbl), true));
            }
            store.flush();
        }

        // Tear the log at an arbitrary byte offset.
        let log_path = persist::log_path(&dir);
        let bytes = std::fs::read(&log_path).unwrap();
        let cut = (bytes.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        std::fs::write(&log_path, &bytes[..cut]).unwrap();
        let (survivors, valid_end) = persist::decode_log(&bytes[..cut]);

        // Reopen: recovery must be exact and must heal the log.
        let store = QueryStore::open(&dir).unwrap();
        prop_assert_eq!(store.persist_stats().replayed, survivors.len() as u64);
        for line in &survivors {
            let rendered = line.rsplit('\t').next().unwrap();
            let query = expand_query(rendered, 8).unwrap().pop().unwrap();
            prop_assert_eq!(store.lookup(NS, &query), Some(oracle(rendered)));
        }
        prop_assert_eq!(
            std::fs::metadata(&log_path).unwrap().len(),
            valid_end as u64
        );
        store.flush();
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
