//! Property-based tests for MemBlockLang expansion (Appendix A laws).

use mbl::{block_name, expand_query, parse_block_name, render_query, BlockId};
use proptest::prelude::*;

/// A strategy for small, well-formed MBL expressions rendered as strings.
fn mbl_expression() -> impl Strategy<Value = String> {
    let block = (0u32..6).prop_map(|b| block_name(BlockId(b)));
    let atom = prop_oneof![
        block.clone(),
        Just("@".to_string()),
        Just("_".to_string()),
        block.clone().prop_map(|b| format!("{b}?")),
        block.prop_map(|b| format!("{b}!")),
    ];
    proptest::collection::vec(atom, 1..6).prop_map(|parts| parts.join(" "))
}

proptest! {
    /// Block naming is a bijection between indices and spreadsheet-style
    /// names.
    #[test]
    fn block_names_round_trip(id in 0u32..100_000) {
        let name = block_name(BlockId(id));
        prop_assert_eq!(parse_block_name(&name), Some(BlockId(id)));
        prop_assert!(name.bytes().all(|b| b.is_ascii_uppercase()));
    }

    /// Every well-formed expression expands, and rendering each expanded
    /// query re-parses and re-expands to exactly itself (idempotence of the
    /// concrete query syntax).
    #[test]
    fn expansion_is_idempotent_on_concrete_queries(expr in mbl_expression(), assoc in 1usize..9) {
        let queries = expand_query(&expr, assoc).expect("well-formed expressions expand");
        prop_assert!(!queries.is_empty());
        for query in &queries {
            let rendered = render_query(query);
            let again = expand_query(&rendered, assoc).expect("rendered queries re-parse");
            prop_assert_eq!(again.len(), 1);
            prop_assert_eq!(&again[0], query);
        }
    }

    /// Concatenation multiplies cardinalities: |e1 e2| = |e1| * |e2| for
    /// tag-free expressions.
    #[test]
    fn concatenation_multiplies_cardinalities(
        left in prop_oneof![Just("@"), Just("_"), Just("A"), Just("{A, B}")],
        right in prop_oneof![Just("@"), Just("_"), Just("B"), Just("{C, D E}")],
        assoc in 1usize..6,
    ) {
        let combined = format!("{left} {right}");
        let l = expand_query(left, assoc).unwrap().len();
        let r = expand_query(right, assoc).unwrap().len();
        let c = expand_query(&combined, assoc).unwrap().len();
        prop_assert_eq!(c, l * r);
    }

    /// The power operator multiplies query lengths accordingly:
    /// every query of (e)^k has length k * (length of the repeated query).
    #[test]
    fn power_scales_query_length(k in 1u32..5, assoc in 1usize..6) {
        let base = expand_query("(A B C)", assoc).unwrap();
        let powered = expand_query(&format!("(A B C){k}"), assoc).unwrap();
        prop_assert_eq!(powered.len(), base.len());
        for q in &powered {
            prop_assert_eq!(q.len(), 3 * k as usize);
        }
    }

    /// The `@` and `_` macros always reflect the associativity.
    #[test]
    fn macros_track_associativity(assoc in 1usize..12) {
        let at = expand_query("@", assoc).unwrap();
        prop_assert_eq!(at.len(), 1);
        prop_assert_eq!(at[0].len(), assoc);
        let wild = expand_query("_", assoc).unwrap();
        prop_assert_eq!(wild.len(), assoc);
        prop_assert!(wild.iter().all(|q| q.len() == 1));
    }
}
